# Empty compiler generated dependencies file for test_taq.
# This may be replaced when dependencies are built.
