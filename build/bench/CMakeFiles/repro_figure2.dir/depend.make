# Empty dependencies file for repro_figure2.
# This may be replaced when dependencies are built.
