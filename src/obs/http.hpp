// Minimal loopback HTTP/1.1 listener for the monitoring and service planes.
//
// Serves registered routes (/metrics, /healthz, and the backtest service's
// /jobs API) from ONE background thread on 127.0.0.1 only — this is an
// operator endpoint inside the trading host, not a web server: no
// keep-alive, no TLS, no concurrency, request line + headers capped at
// 8 KiB, bodies capped at 256 KiB, every connection closed after one
// response. Port 0 binds an ephemeral port; port() returns the real one
// after start(), which is how tests (and the engine's `port_out` hand-off)
// discover where to scrape.
//
// Requests carry method, target and body to the handler; routes declare
// which methods they accept (GET by default) and unsupported methods on a
// registered path get 405 with an Allow header. Prefix routes
// (route_prefix) serve path families like /jobs/{id}. Error mapping:
//   400 malformed request line / connection closed mid-header,
//   404 no route, 405 method not allowed, 413 body over cap,
//   431 headers over cap without a terminator.
//
// Handlers run on the listener thread, so anything they touch must be
// thread-safe against the rest of the process (Registry snapshots,
// HeartbeatMonitor reads and the svc JobTable are). Compiled identically
// with MM_OBS_ENABLED on or off — the server only shuttles strings.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace mm::obs {

struct HttpRequest {
  std::string method;  // "GET", "POST", ... (as sent; never empty on dispatch)
  std::string target;  // path with any ?query stripped
  std::string body;    // raw request body ("" when none)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class MetricsServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  // Zero-arg form for the common read-only GET route ("/metrics").
  using SimpleHandler = std::function<HttpResponse()>;

  static constexpr std::size_t kMaxHeaderBytes = 8192;
  static constexpr std::size_t kMaxBodyBytes = 256 * 1024;

  MetricsServer() = default;
  ~MetricsServer();

  // Register a handler for an exact path ("/metrics"). Call before start().
  // `methods` lists the verbs the route accepts; anything else on this path
  // answers 405. Registering the same path again replaces the route.
  void route(const std::string& path, Handler handler,
             std::vector<std::string> methods = {"GET"});
  void route(const std::string& path, SimpleHandler handler,
             std::vector<std::string> methods = {"GET"});

  // Register a handler for a path family ("/jobs/" serves /jobs/{anything}).
  // Exact routes win over prefixes; among prefixes the longest match wins.
  void route_prefix(const std::string& prefix, Handler handler,
                    std::vector<std::string> methods = {"GET"});

  // Bind 127.0.0.1:`port` (0 = ephemeral), start the listener thread.
  Status start(std::uint16_t port);
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

 private:
  struct Route {
    std::string path;
    bool is_prefix = false;
    std::vector<std::string> methods;
    Handler handler;
  };

  void serve();
  void handle(int client) const;
  const Route* match(const std::string& target) const;

  std::vector<Route> routes_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> running_{false};
};

}  // namespace mm::obs
