// Maronna robust correlation (bivariate M-estimator of scatter).
//
// Implements the pairwise robust correlation the paper attributes to Maronna
// (1976) and to Chilson et al.'s parallel robust-correlation work [14]: a
// bivariate M-estimator of location and scatter computed by iterative
// reweighting, using a Huber-type weight function. Observations far from the
// current location (in Mahalanobis distance) are smoothly downweighted, so a
// handful of bad ticks cannot swing the estimate the way they swing Pearson.
//
// The pairwise estimates do NOT assemble into a positive semi-definite
// matrix (the paper's §IV caveat); see psd.hpp for the repair.
#pragma once

#include <cstddef>
#include <vector>

namespace mm::stats {

struct MaronnaConfig {
  // Huber tuning constant on the Mahalanobis distance (in 2 dimensions,
  // d² ~ chi²(2); k² = 5.99 is the 95% quantile).
  double huber_k2 = 5.99;
  // Convergence threshold on the max relative change of scatter entries.
  double tolerance = 1e-6;
  int max_iterations = 50;
};

struct MaronnaResult {
  double correlation = 0.0;
  double location_x = 0.0;
  double location_y = 0.0;
  double scatter_xx = 0.0;
  double scatter_xy = 0.0;
  double scatter_yy = 0.0;
  int iterations = 0;
  bool converged = false;
};

// Full estimator output. n must be >= 2; degenerate inputs (zero dispersion)
// yield correlation 0.
MaronnaResult maronna_estimate(const double* x, const double* y, std::size_t n,
                               const MaronnaConfig& config = {});

// Correlation-only conveniences.
double maronna(const double* x, const double* y, std::size_t n,
               const MaronnaConfig& config = {});
double maronna(const std::vector<double>& x, const std::vector<double>& y,
               const MaronnaConfig& config = {});

}  // namespace mm::stats
