// Tests for the lockstep ReturnWindows and its incremental Pearson.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/pearson.hpp"
#include "stats/windows.hpp"

namespace mm::stats {
namespace {

TEST(AllPairs, CanonicalOrderAndCount) {
  const auto pairs = all_pairs(4);
  ASSERT_EQ(pairs.size(), 6u);
  EXPECT_EQ(pairs[0].i, 0u);
  EXPECT_EQ(pairs[0].j, 1u);
  EXPECT_EQ(pairs[5].i, 2u);
  EXPECT_EQ(pairs[5].j, 3u);
  for (const auto& p : pairs) EXPECT_LT(p.i, p.j);
  // The paper's counts: 61 symbols -> 1830 pairs; 8000 -> ~32M.
  EXPECT_EQ(all_pairs(61).size(), 1830u);
}

TEST(SymMatrix, PackedStorageRoundTrip) {
  SymMatrix m(3, 0.0);
  m.set(0, 1, 0.5);
  m.set(2, 1, -0.25);  // reversed indices hit the same slot
  m.fill_diagonal(1.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(m(1, 2), -0.25);
  EXPECT_DOUBLE_EQ(m(2, 2), 1.0);
  EXPECT_EQ(m.packed_size(), 6u);

  const auto rebuilt = SymMatrix::from_packed(3, m.packed());
  EXPECT_DOUBLE_EQ(SymMatrix::max_abs_diff(m, rebuilt), 0.0);
}

TEST(ReturnWindows, ReadyAfterWindowPushes) {
  ReturnWindows w(2, 5, true);
  std::vector<double> r = {0.01, -0.01};
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(w.ready());
    w.push(r);
  }
  w.push(r);
  EXPECT_TRUE(w.ready());
}

TEST(ReturnWindows, CopyWindowIsOldestToNewest) {
  ReturnWindows w(1, 3, false);
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) w.push({x});
  double out[3];
  w.copy_window(0, out);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 4.0);
  EXPECT_DOUBLE_EQ(out[2], 5.0);
}

TEST(ReturnWindows, IncrementalPearsonMatchesBatchEveryStep) {
  constexpr std::size_t n = 5;
  constexpr std::size_t window = 12;
  ReturnWindows w(n, window, true);
  mm::Rng rng(4);
  std::vector<std::vector<double>> history(n);

  for (int step = 0; step < 500; ++step) {
    std::vector<double> r(n);
    const double f = rng.normal();
    for (std::size_t i = 0; i < n; ++i) {
      r[i] = 0.5 * f + rng.normal();
      history[i].push_back(r[i]);
    }
    w.push(r);
    if (!w.ready()) continue;

    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const std::size_t lo = history[i].size() - window;
        const double batch =
            pearson(history[i].data() + lo, history[j].data() + lo, window);
        ASSERT_NEAR(w.pearson(i, j), batch, 1e-9)
            << "pair (" << i << "," << j << ") at step " << step;
      }
    }
  }
}

TEST(ReturnWindows, SumsTrackWindowExactly) {
  ReturnWindows w(2, 3, true);
  w.push({1.0, 10.0});
  w.push({2.0, 20.0});
  w.push({3.0, 30.0});
  EXPECT_DOUBLE_EQ(w.sum(0), 6.0);
  EXPECT_DOUBLE_EQ(w.sum_sq(1), 100.0 + 400.0 + 900.0);
  EXPECT_DOUBLE_EQ(w.cross_sum(0, 1), 10.0 + 40.0 + 90.0);
  w.push({4.0, 40.0});  // evicts (1, 10)
  EXPECT_DOUBLE_EQ(w.sum(0), 9.0);
  EXPECT_DOUBLE_EQ(w.cross_sum(0, 1), 40.0 + 90.0 + 160.0);
}

TEST(ReturnWindows, CrossSumsOptional) {
  ReturnWindows w(3, 4, false);
  EXPECT_FALSE(w.tracks_cross_sums());
  for (int i = 0; i < 4; ++i) w.push({0.1, 0.2, 0.3});
  // pearson requires cross sums; copy_window still works.
  double out[4];
  w.copy_window(2, out);
  EXPECT_DOUBLE_EQ(out[3], 0.3);
}

TEST(ReturnWindows, LongStreamNumericalStability) {
  // The periodic rebuild must keep running sums faithful over tens of
  // thousands of pushes.
  constexpr std::size_t window = 50;
  ReturnWindows w(2, window, true);
  mm::Rng rng(5);
  std::vector<double> hx, hy;
  for (int step = 0; step < 30000; ++step) {
    const double f = rng.normal();
    const double x = f + rng.normal();
    const double y = f + rng.normal();
    w.push({x, y});
    hx.push_back(x);
    hy.push_back(y);
  }
  const std::size_t lo = hx.size() - window;
  const double batch = pearson(hx.data() + lo, hy.data() + lo, window);
  EXPECT_NEAR(w.pearson(0, 1), batch, 1e-8);
}

}  // namespace
}  // namespace mm::stats
