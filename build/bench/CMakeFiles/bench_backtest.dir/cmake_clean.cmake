file(REMOVE_RECURSE
  "CMakeFiles/bench_backtest.dir/bench_backtest.cpp.o"
  "CMakeFiles/bench_backtest.dir/bench_backtest.cpp.o.d"
  "bench_backtest"
  "bench_backtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
