#!/usr/bin/env bash
# Build and run the correlation-kernel, mm::obs and mpmini-transport
# benchmarks, writing google-benchmark JSON to BENCH_corr.json, BENCH_obs.json
# and BENCH_mpmini.json at the repo root. BENCH_corr.json includes the
# universe-scaling entries (BM_MatrixScaling*: full-matrix Pearson and warm
# Maronna at n = 61/250/1000/2000, scalar vs AVX2 kernel level) — the big
# universes run a fixed two iterations, so expect the correlation pass to
# take a couple of minutes. BENCH_svc.json adds the backtest-service numbers:
# cold vs memoized 4-paramset sweeps (the multi-tenant amortization factor)
# and the warm CorrStore/DayCache acquire costs. BENCH_wire.json adds the mmq
# wire-format numbers: single-threaded quote parse throughput (budgeted at
# > 10 M quotes/s), the carry-buffer straddle path, encode throughput, and
# whole-session loopback TCP day fetches.
# Usage: scripts/bench_json.sh [build-dir] (default: build).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j --target bench_json
echo "Wrote $repo_root/BENCH_corr.json, $repo_root/BENCH_obs.json, $repo_root/BENCH_mpmini.json, $repo_root/BENCH_svc.json and $repo_root/BENCH_wire.json"
