file(REMOVE_RECURSE
  "libmm_mpmini.a"
)
