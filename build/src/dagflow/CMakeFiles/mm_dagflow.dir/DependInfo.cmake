
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dagflow/context.cpp" "src/dagflow/CMakeFiles/mm_dagflow.dir/context.cpp.o" "gcc" "src/dagflow/CMakeFiles/mm_dagflow.dir/context.cpp.o.d"
  "/root/repo/src/dagflow/graph.cpp" "src/dagflow/CMakeFiles/mm_dagflow.dir/graph.cpp.o" "gcc" "src/dagflow/CMakeFiles/mm_dagflow.dir/graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpmini/CMakeFiles/mm_mpmini.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
