#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "engine/pipeline.hpp"
#include "marketdata/generator.hpp"
#include "obs/prometheus.hpp"
#include "wire/quote_source.hpp"

namespace mm::svc {

namespace {

// Split a spec's paramsets into pipeline units: groups sharing (∆s, M), in
// first-appearance order, members in spec order. One unit = one run_pipeline
// call whose correlation stream is memoized per (day, universe, ∆s, M,
// estimator class).
std::vector<std::vector<std::size_t>> unit_groups(const JobSpec& spec) {
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::pair<std::int64_t, std::int64_t>> keys;
  for (std::size_t i = 0; i < spec.paramsets.size(); ++i) {
    const auto key = std::make_pair(spec.paramsets[i].delta_s,
                                    spec.paramsets[i].corr_window);
    std::size_t g = 0;
    for (; g < keys.size(); ++g)
      if (keys[g] == key) break;
    if (g == keys.size()) {
      keys.push_back(key);
      groups.emplace_back();
    }
    groups[g].push_back(i);
  }
  return groups;
}

std::string estimator_class(const JobSpec& spec,
                            const std::vector<std::size_t>& group) {
  for (const std::size_t i : group)
    if (spec.paramsets[i].ctype != stats::Ctype::pearson)
      return "pearson+maronna";
  return "pearson";
}

Status validate_spec(const JobSpec& spec) {
  if (spec.tenant.empty())
    return Error(Errc::invalid_argument, "job spec needs a non-empty tenant");
  if (spec.symbols < 2 || spec.symbols > 4096)
    return Error(Errc::invalid_argument, "symbols must be in [2, 4096]");
  if (spec.paramsets.empty() || spec.paramsets.size() > 256)
    return Error(Errc::invalid_argument, "paramsets must have 1..256 entries");
  for (const auto& p : spec.paramsets)
    if (auto valid = p.validate(); !valid.has_value()) return valid.error();
  return {};
}

obs::HttpResponse json_response(int status, const json::Value& body) {
  return {status, "application/json", body.dump()};
}

obs::HttpResponse error_response(int status, const std::string& message) {
  json::Value body = json::Value::object();
  body.set("error", message);
  return json_response(status, body);
}

// Trace "process" id for the service-plane worker rings — far above any
// pipeline rank pid so job/unit/day-cache spans get their own row group.
constexpr std::int32_t kServicePid = 1 << 20;

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

BacktestService::BacktestService(ServiceConfig config)
    : config_(config),
      day_cache_(
          [this](const std::string& key) -> Expected<std::vector<md::Quote>> {
            // Wire-fed mode: the feed server owns day generation; every
            // replica pointed at it caches the identical bytes.
            if (config_.feed_port != 0)
              return wire::fetch_day(config_.feed_host, config_.feed_port, key);
            // Key format is JobSpec::day_key(): synthetic/<n>/<seed>/<day>.
            std::size_t symbols = 0;
            unsigned long long seed = 0;
            int day = 0;
            if (std::sscanf(key.c_str(), "synthetic/%zu/%llu/%d", &symbols,
                            &seed, &day) != 3)
              return Error(Errc::invalid_argument, "bad day key: " + key);
            const auto universe = universe_for(symbols);
            md::GeneratorConfig generator;
            generator.seed = seed;
            if (config_.quote_rate > 0.0) generator.quote_rate = config_.quote_rate;
            const md::SyntheticDay synthetic(*universe, generator, day);
            return synthetic.quotes();
          },
          config.day_cache_bytes, &registry_),
      corr_store_(config.corr_store_bytes, &registry_),
      scheduler_(&queue_, [this](const std::shared_ptr<Job>& job) { run_job(job); },
                 config.workers) {
  wire_routes();
}

BacktestService::~BacktestService() { stop(); }

Status BacktestService::start() {
  MM_ASSERT_MSG(!started_, "service started twice");
  auto status = server_.start(config_.port);
  if (!status.has_value()) return status;
  scheduler_.start();
  started_ = true;
  return {};
}

void BacktestService::stop() {
  if (!started_) return;
  started_ = false;
  server_.stop();
  scheduler_.stop();
}

Expected<std::string> BacktestService::submit(JobSpec spec) {
  if (auto valid = validate_spec(spec); !valid.has_value())
    return valid.error();

  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);
  job->units_total = static_cast<int>(unit_groups(job->spec).size());
  job->submitted = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "job-%llu",
                  static_cast<unsigned long long>(++next_id_));
    job->id = buf;
    jobs_[job->id] = job;
  }
  if (config_.job_traces) {
    // One trace per job, allocated at POST: every span and envelope header
    // the job's units produce carries this id, and the sink is job-scoped so
    // GET /jobs/{id}/trace returns only this job's events.
    job->trace_id = obs::next_trace_id();
    job->trace = std::make_shared<obs::TraceSink>(config_.trace_ring_events);
    job->trace->set_meta("job", job->id);
    job->trace->set_meta("tenant", job->spec.tenant);
    job->trace->set_meta("trace_id", std::to_string(job->trace_id));
  }
  registry_
      .counter(obs::labeled("svc.jobs_submitted", {{"tenant", job->spec.tenant}}))
      .add();
  if (auto admitted = queue_.try_push(job, config_.tenant_queue_limit);
      !admitted.has_value()) {
    job->state.store(JobState::cancelled, std::memory_order_release);
    if (admitted.error().code == Errc::capacity)
      registry_
          .counter(obs::labeled("svc.jobs_rejected",
                                {{"tenant", job->spec.tenant}}))
          .add();
    return admitted.error();
  }
  return job->id;
}

std::shared_ptr<Job> BacktestService::find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  auto it = jobs_.find(id);
  return it != jobs_.end() ? it->second : nullptr;
}

bool BacktestService::wait(const std::string& id, std::int64_t timeout_ms) const {
  const auto job = find(id);
  if (job == nullptr) return false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const JobState state = job->state.load(std::memory_order_acquire);
    if (state == JobState::done || state == JobState::failed ||
        state == JobState::cancelled)
      return true;
    if (timeout_ms > 0 && std::chrono::steady_clock::now() >= deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

bool BacktestService::cancel(const std::string& id) {
  const auto job = find(id);
  if (job == nullptr) return false;
  const JobState state = job->state.load(std::memory_order_acquire);
  if (state == JobState::done || state == JobState::failed ||
      state == JobState::cancelled)
    return false;
  if (queue_.remove(id)) {
    // Still queued: cancel immediately (it will never run).
    job->state.store(JobState::cancelled, std::memory_order_release);
  } else {
    // Running (or about to): the runner honors the bit at the next unit
    // boundary and sets the terminal state itself.
    job->cancel.store(true, std::memory_order_release);
  }
  registry_
      .counter(obs::labeled("svc.jobs_cancelled", {{"tenant", job->spec.tenant}}))
      .add();
  return true;
}

std::vector<std::shared_ptr<Job>> BacktestService::jobs() const {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  std::vector<std::shared_ptr<Job>> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    (void)id;
    out.push_back(job);
  }
  return out;
}

std::string BacktestService::render_metrics() const {
  return obs::prom_render(registry_.snapshot());
}

std::shared_ptr<const md::Universe> BacktestService::universe_for(
    std::size_t symbols) {
  std::lock_guard<std::mutex> lock(universes_mutex_);
  auto& slot = universes_[symbols];
  if (slot == nullptr)
    slot = std::make_shared<const md::Universe>(md::make_universe(symbols));
  return slot;
}

void BacktestService::run_job(const std::shared_ptr<Job>& job) {
  const std::string& tenant = job->spec.tenant;
  if (job->cancel.load(std::memory_order_acquire)) {
    job->state.store(JobState::cancelled, std::memory_order_release);
    return;
  }
  // Queue-wait attribution: submit instant -> this worker picking it up.
  const std::int64_t queue_wait_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - job->submitted)
          .count();
  job->state.store(JobState::running, std::memory_order_release);
  registry_.gauge("svc.jobs_running").add(1);

  const auto stage_hist = [&](const char* stage) -> obs::Histogram& {
    return registry_.histogram(
        obs::labeled("svc.stage_ns", {{"stage", stage}, {"tenant", tenant}}));
  };
  stage_hist("queue").record(queue_wait_ns);

  // Service-plane tracing: this worker thread owns the job end to end, so it
  // gets its own ring in the job's sink (job/unit/day-cache spans) and runs
  // under the job's root context. Pipeline ranks write their own rings into
  // the same sink via PipelineConfig::trace.
  obs::TraceSink* sink = job->trace.get();
  obs::TraceRing* ring = nullptr;
  if (sink != nullptr) {
    ring = &sink->ring(kServicePid, "service");
    sink->set_thread_name(kServicePid, 0, "job-runner");
  }
  obs::TraceRingScope ring_scope(ring);
  obs::TraceContextScope context_scope(obs::make_trace_context(job->trace_id));
  obs::ObsSpan job_span(ring, "job");

  const auto fail = [&](const std::string& message) {
    {
      std::lock_guard<std::mutex> lock(job->mutex);
      job->error = message;
    }
    job->state.store(JobState::failed, std::memory_order_release);
    registry_.counter(obs::labeled("svc.jobs_failed", {{"tenant", tenant}})).add();
    registry_.gauge("svc.jobs_running").add(-1);
  };

  const auto groups = unit_groups(job->spec);
  JobResult result;
  result.units = static_cast<int>(groups.size());
  std::vector<std::int64_t> cache_ns, compute_ns, exchange_ns;
  cache_ns.reserve(groups.size());
  compute_ns.reserve(groups.size());
  exchange_ns.reserve(groups.size());

  for (const auto& group : groups) {
    if (job->cancel.load(std::memory_order_acquire)) {
      job->state.store(JobState::cancelled, std::memory_order_release);
      registry_.gauge("svc.jobs_running").add(-1);
      return;
    }
    obs::ObsSpan unit_span(ring, "unit");

    const std::int64_t cache_t0 = steady_now_ns();
    Expected<md::DayCache::Day> day = [&] {
      obs::ObsSpan cache_span(ring, "day-cache");
      return day_cache_.get(job->spec.day_key());
    }();
    cache_ns.push_back(steady_now_ns() - cache_t0);
    stage_hist("cache").record(cache_ns.back());
    if (!day.has_value()) return fail("day load: " + day.error().message);
    const auto universe = universe_for(job->spec.symbols);

    stats::CorrKey key;
    key.universe = job->spec.universe_key();
    key.date = job->spec.day;
    key.delta_s = job->spec.paramsets[group.front()].delta_s;
    key.window = job->spec.paramsets[group.front()].corr_window;
    key.estimator = estimator_class(job->spec, group);
    if (corr_store_.peek(key) != nullptr) ++result.units_from_cache;

    engine::PipelineConfig config;
    config.symbols = job->spec.symbols;
    for (const std::size_t i : group)
      config.strategies.push_back(job->spec.paramsets[i]);
    config.batch_size = config_.batch_size;
    config.channel_capacity = config_.channel_capacity;
    config.day = day.value();
    config.corr_store = &corr_store_;
    config.corr_key = key;
    config.metrics = &registry_;
    config.trace = sink;
    config.trace_context = obs::make_trace_context(job->trace_id);

    const std::int64_t compute_t0 = steady_now_ns();
    const engine::PipelineResult run =
        engine::run_pipeline(config, *universe, {});
    compute_ns.push_back(steady_now_ns() - compute_t0);
    stage_hist("compute").record(compute_ns.back());
    // Exchange = time the unit's dag nodes spent stalled on transport
    // credits (the per-run metrics delta sums dag.*.credit_stall_ns).
    exchange_ns.push_back(run.metrics.counter_suffix_total(".credit_stall_ns"));
    stage_hist("exchange").record(exchange_ns.back());
    if (run.degraded) {
      std::string nodes;
      for (const auto& status : run.faults) nodes += " " + status.name;
      return fail("pipeline degraded:" + nodes);
    }

    // Master sorts summaries by strategy_id == position within this unit's
    // strategy list, which is `group` order.
    MM_ASSERT(run.master.strategy_summaries.size() == group.size());
    for (std::size_t w = 0; w < group.size(); ++w) {
      const auto& summary = run.master.strategy_summaries[w];
      ParamOutcome outcome;
      outcome.index = group[static_cast<std::size_t>(summary.strategy_id)];
      outcome.trades = summary.trades;
      outcome.total_pnl = summary.total_pnl;
      outcome.trade_returns = summary.trade_returns;
      result.paramsets.push_back(std::move(outcome));
    }
    result.orders += run.master.orders;
    result.trades += run.master.trades;
    result.wall_seconds += run.wall_seconds;

    job->units_done.fetch_add(1, std::memory_order_relaxed);
    registry_.counter(obs::labeled("svc.units_done", {{"tenant", tenant}})).add();
    registry_.counter(obs::labeled("svc.trades", {{"tenant", tenant}}))
        .add(run.master.trades);
  }

  std::sort(result.paramsets.begin(), result.paramsets.end(),
            [](const ParamOutcome& a, const ParamOutcome& b) {
              return a.index < b.index;
            });
  result.latency.push_back(summarize_stage("queue", {queue_wait_ns}));
  result.latency.push_back(summarize_stage("cache", std::move(cache_ns)));
  result.latency.push_back(summarize_stage("compute", std::move(compute_ns)));
  result.latency.push_back(summarize_stage("exchange", std::move(exchange_ns)));
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    job->result = std::move(result);
  }
  job->state.store(JobState::done, std::memory_order_release);
  registry_.counter(obs::labeled("svc.jobs_done", {{"tenant", tenant}})).add();
  registry_.gauge("svc.jobs_running").add(-1);
}

void BacktestService::wire_routes() {
  server_.route("/healthz", []() { return obs::HttpResponse{200, "text/plain", "ok\n"}; });
  server_.route("/metrics", [this]() {
    return obs::HttpResponse{200, "text/plain; version=0.0.4", render_metrics()};
  });

  server_.route(
      "/jobs",
      [this](const obs::HttpRequest& req) -> obs::HttpResponse {
        if (req.method == "POST") {
          auto spec = parse_job_spec(req.body);
          if (!spec.has_value()) return error_response(400, spec.error().message);
          auto id = submit(std::move(spec.value()));
          if (!id.has_value()) {
            // Admission pushback is the tenant's to handle (back off and
            // retry); everything else is the service going away.
            const int status =
                id.error().code == Errc::capacity ? 429 : 503;
            return error_response(status, id.error().message);
          }
          json::Value body = json::Value::object();
          body.set("id", id.value());
          body.set("state", "queued");
          if (const auto job = find(id.value());
              job != nullptr && job->trace_id != 0)
            body.set("trace_id", static_cast<std::int64_t>(job->trace_id));
          return json_response(201, body);
        }
        // GET: list.
        json::Value list = json::Value::array();
        for (const auto& job : jobs()) {
          json::Value row = json::Value::object();
          row.set("id", job->id);
          row.set("tenant", job->spec.tenant);
          row.set("state", to_string(job->state.load(std::memory_order_acquire)));
          list.push(std::move(row));
        }
        json::Value body = json::Value::object();
        body.set("jobs", std::move(list));
        return json_response(200, body);
      },
      {"GET", "POST"});

  server_.route_prefix(
      "/jobs/",
      [this](const obs::HttpRequest& req) -> obs::HttpResponse {
        // /jobs/{id}, /jobs/{id}/result or /jobs/{id}/trace
        std::string rest = req.target.substr(std::string("/jobs/").size());
        bool want_result = false;
        bool want_trace = false;
        if (const auto slash = rest.find('/'); slash != std::string::npos) {
          if (rest.substr(slash) == "/result")
            want_result = true;
          else if (rest.substr(slash) == "/trace")
            want_trace = true;
          else
            return error_response(404, "no such route");
          rest.resize(slash);
        }
        const auto job = find(rest);
        if (job == nullptr) return error_response(404, "no such job: " + rest);

        if (req.method == "DELETE") {
          if (want_result || want_trace)
            return error_response(404, "no such route");
          if (!cancel(job->id))
            return error_response(409, "job already terminal");
          return json_response(202, job_status_json(*job));
        }
        if (want_result) {
          const JobState state = job->state.load(std::memory_order_acquire);
          if (state != JobState::done)
            return error_response(
                409, std::string("job is ") + to_string(state) + ", not done");
          return json_response(200, job_result_json(*job));
        }
        if (want_trace) {
          // Served only once terminal: the state acquire-load orders this
          // read after every ring write the job's threads made, so the
          // serialization never races a live pipeline.
          const JobState state = job->state.load(std::memory_order_acquire);
          if (state == JobState::queued || state == JobState::running)
            return error_response(
                409, std::string("job is ") + to_string(state) +
                         "; trace is served once the job is terminal");
          if (job->trace == nullptr)
            return error_response(404, "job tracing is disabled");
          return obs::HttpResponse{200, "application/json",
                                   job->trace->chrome_json()};
        }
        return json_response(200, job_status_json(*job));
      },
      {"GET", "DELETE"});
}

}  // namespace mm::svc
