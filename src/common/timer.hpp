// Wall-clock stopwatch used by the benches and the pipeline's throughput
// reporting.
#pragma once

#include <chrono>
#include <cstdint>

namespace mm {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  std::int64_t elapsed_micros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() - start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mm
