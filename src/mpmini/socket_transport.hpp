// Multi-process TCP transport: one OS process per rank, full socket mesh.
//
// Rendezvous handshake (rank 0 is the rendezvous point):
//
//   1. Every rank opens a TCP listener — rank 0 on the advertised rendezvous
//      port, everyone else on an ephemeral port.
//   2. Ranks 1..n-1 connect to rank 0 (with retry, listeners race up) and
//      send a registration {rank, my listener port, my host}. That
//      connection IS the mesh link between the pair.
//   3. Once all n-1 registrations arrived, rank 0 sends each peer the full
//      port table.
//   4. Rank r then dials every lower nonzero rank q < r directly (sending a
//      registration so q learns who called) and accepts the n-1-r higher
//      ranks on its own listener: exactly one socket per rank pair.
//   5. Each rank starts one reader thread per peer; inbound envelopes are
//      deserialized and delivered into the LOCAL rank's mailbox, where the
//      usual matching (tags, wildcards, Mprobe reservation, deadlines)
//      applies untouched.
//
// Envelope serialization is little-endian and carries the full header —
// source, tag, comm id, per-(source, comm) sequence AND the PR 9 trace
// context (trace id + flow id) — so FIFO order and cross-process flow
// stitching survive the wire. Builds with MM_OBS_ENABLED=OFF write zeroed
// trace fields, keeping the two build flavors wire-compatible.
//
// Failure semantics: transmit() to a dead peer throws (poisoning the sending
// rank like a fault-plan kill); a peer that disconnects before its goodbye
// is logged and treated as gone. stop() performs a goodbye barrier — send
// `bye` to every peer, drain inbound traffic until every peer's `bye`
// arrives — which is what makes "join all ranks" hold across processes:
// in-flight messages are fully delivered before any process tears down.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "mpmini/transport.hpp"
#include "wire/socket.hpp"

namespace mm::mpi {

// Where and who this process is in a socket-mode world.
struct Rendezvous {
  int rank = -1;             // this process's world rank
  std::string host = "127.0.0.1";  // rank 0's rendezvous address
  std::uint16_t port = 0;    // rank 0's rendezvous port
  // Optional pre-bound listening fd adopted by rank 0 (lets a test bind the
  // port before forking, eliminating the port race). Ownership transfers.
  int listen_fd = -1;
  std::chrono::milliseconds connect_timeout{10000};
};

// Parse MM_MPMINI_RANK and MM_MPMINI_RENDEZVOUS ("host:port") — the env
// route used when MM_MPMINI_TRANSPORT=socket selects this transport.
Expected<Rendezvous> rendezvous_from_env();

class SocketTransport final : public Transport {
 public:
  SocketTransport(int world_size, Rendezvous rendezvous);
  ~SocketTransport() override;

  TransportMode mode() const override { return TransportMode::socket; }
  int local_rank() const { return rz_.rank; }

  // Run the rendezvous handshake and start the reader threads. Throws
  // std::runtime_error when the mesh cannot be established.
  void start() override;

  // Goodbye barrier + teardown (see file comment). Idempotent.
  void stop() override;

  void transmit(int src_world, int dest_world, Message&& msg) override;
  Mailbox& mailbox(int world_rank) override;
  void attach_obs(obs::Gauge* queue_peak, obs::Gauge* ring_peak) override;

 private:
  struct Peer {
    wire::Socket sock;
    std::mutex send_mutex;                // transmit serialization per link
    std::vector<std::uint8_t> tx;         // send scratch (reused)
    std::thread reader;
    bool bye_sent = false;                // guarded by send_mutex
  };

  void reader_loop(int peer_rank);
  Status send_envelope(Peer& peer, const Message& msg);
  void note_bye();

  int size_ = 0;
  Rendezvous rz_;
  Mailbox mailbox_;                        // the local rank's mailbox
  std::vector<std::unique_ptr<Peer>> peers_;  // [world rank]; null at local
  std::mutex bye_mutex_;
  std::condition_variable bye_cv_;
  int byes_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<bool> stopping_{false};
};

}  // namespace mm::mpi
