# Empty compiler generated dependencies file for test_feed.
# This may be replaced when dependencies are built.
