# Empty compiler generated dependencies file for test_corr_engine.
# This may be replaced when dependencies are built.
