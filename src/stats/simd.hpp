// Runtime-dispatched SIMD kernels for the correlation plane.
//
// The all-pairs study at thousands of symbols spends its time in a handful
// of dense double-precision loops: the two-pass Pearson accumulator, the
// packed cross-sum triangle update in ReturnWindows::push, the
// pearson_matrix row kernel, and the Maronna reweighting pass. Each kernel
// here exists in two variants:
//
//   * a scalar variant, compiled unconditionally — the canonical definition
//     of the arithmetic. It is written in "lane form": reductions keep four
//     independent accumulators that are combined as (l0 + l2) + (l1 + l3)
//     with any remainder added sequentially afterwards, exactly mirroring
//     the AVX2 horizontal-sum order.
//   * an AVX2 variant, compiled only when MM_SIMD is ON and the compiler
//     supports -mavx2, selected at runtime via CPU detection.
//
// Because the scalar variant is lane-matched and both translation units are
// built with -ffp-contract=off (no fused multiply-add anywhere), the two
// variants produce BIT-IDENTICAL results for every kernel: additions happen
// in the same order, and the remaining operations (mul, div, sqrt, compare,
// blend) are IEEE-754 exact per element. The golden tests in
// tests/test_simd_kernels.cpp assert this across aligned, unaligned and
// remainder lengths, which is what lets the engines dispatch freely without
// splitting the numerical contract.
//
// Layout contract: every kernel reads plain contiguous double arrays — the
// SoA layouts the window store already uses (ReturnWindows::data_ rows, the
// packed SymMatrix triangle, the unwrap arena). No alignment is required;
// the AVX2 variants use unaligned loads.
#pragma once

#include <cstddef>

namespace mm::stats::simd {

enum class Level { scalar = 0, avx2 = 1 };

// Human-readable level name ("scalar" / "avx2"), for bench labels and logs.
const char* level_name(Level level);

// True when the AVX2 variants were compiled in (MM_SIMD=ON on an x86-64
// toolchain). Independent of what the host CPU supports.
bool avx2_compiled();

// True when the AVX2 variants are both compiled in and runnable on this CPU.
bool avx2_supported();

// The level the dispatched kernels currently use: the best supported level,
// unless overridden. The MM_SIMD_LEVEL environment variable ("scalar" or
// "avx2") pins the initial choice; ScopedLevel overrides it temporarily.
Level active_level();

// Force a specific level (bench/tests). Returns false — and changes nothing
// — if `level` is not available in this build/host. Not thread-safe against
// concurrent kernel callers making dispatch decisions mid-benchmark; switch
// levels only between measured regions.
bool set_level(Level level);

// RAII level override for tests and benchmarks.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level);
  ~ScopedLevel();
  bool engaged() const { return engaged_; }

  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  Level saved_;
  bool engaged_;
};

// --- kernel result bundles -------------------------------------------------

struct PairSums {
  double sx = 0.0;
  double sy = 0.0;
};

struct CenteredSums {
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
};

struct WeightedSums {
  double sw = 0.0;
  double swx = 0.0;
  double swy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
};

// --- dispatch table --------------------------------------------------------
//
// One indirect call per kernel invocation; the table pointer is resolved
// once at startup (and by set_level). Kernel granularity is a whole array
// pass, so the indirection is noise.

struct KernelTable {
  // Σx, Σy over x[0..n), y[0..n)  (pass 1 of batch Pearson).
  PairSums (*pair_sums)(const double* x, const double* y, std::size_t n);

  // Σ(x-mx)², Σ(y-my)², Σ(x-mx)(y-my)  (pass 2 of batch Pearson).
  CenteredSums (*centered_sums)(const double* x, const double* y, std::size_t n,
                                double mx, double my);

  // Σ x·y (window rebuild of the cross-sum triangle).
  double (*dot)(const double* x, const double* y, std::size_t n);

  // row[k] += xi * r[k]                 for k in [0, n)  (warmup inserts).
  void (*cross_insert)(double* row, const double* r, double xi, std::size_t n);

  // row[k] += xi * r[k] - oi * old[k]   for k in [0, n)  (fused evict+insert).
  void (*cross_evict_insert)(double* row, const double* r, const double* old_col,
                             double xi, double oi, std::size_t n);

  // One pearson_matrix row segment: for k in [0, n)
  //   orow[k] = 0 unless degen_j[k] == 0, else
  //     cov   = crow[k] - sum_i * sums_j[k] / count
  //     denom = sqrt(vi * vars_j[k])
  //     orow[k] = denom > 0 && finite ? clamp(cov / denom, -1, 1) : 0
  // The caller handles a degenerate row-symbol i by zero-filling instead.
  // degen_j holds 0.0 (usable) / 1.0 (degenerate) per column symbol.
  void (*pearson_row)(double* orow, const double* crow, const double* sums_j,
                      const double* vars_j, const double* degen_j, double sum_i,
                      double vi, double count, std::size_t n);

  // One Maronna reweighting pass over x[0..n), y[0..n) with location
  // (mx, my), inverse scatter (ixx, ixy, iyy) and Huber bound k2:
  //   d2 = dx*dx*ixx + 2*dx*dy*ixy + dy*dy*iyy
  //   w  = d2 <= k2 ? 1 : k2 / d2
  // accumulating sw, Σw·x, Σw·y, Σw·dx², Σw·dx·dy, Σw·dy².
  WeightedSums (*maronna_weighted_sums)(const double* x, const double* y,
                                        std::size_t n, double mx, double my,
                                        double ixx, double ixy, double iyy,
                                        double k2);
};

// The active table (dispatched entry point used by the stats kernels).
const KernelTable& kernels();

// Explicit variants, for the golden equivalence tests and the scaling
// benchmarks. `table_for` returns scalar when AVX2 is unavailable.
const KernelTable& scalar_kernels();
const KernelTable& table_for(Level level);

}  // namespace mm::stats::simd
