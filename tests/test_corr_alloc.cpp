// Allocation-freedom contract of the correlation plane's steady state.
//
// At thousands of symbols the correlation step runs every ∆s interval for a
// whole session; any per-step heap traffic turns into allocator contention
// and latency jitter at exactly the wrong moment. These tests count global
// operator new calls (binary-wide replacement — which is why they live in
// their own executable, same pattern as tests/test_transport.cpp) and assert:
//
//   * CorrelationCalculator::push + matrix_into is allocation-free in steady
//     state for Pearson, cold Maronna (the MaronnaScratch path) and
//     warm-started Maronna — including across a cold restart;
//   * a single-rank ParallelCorrelationEngine::step is allocation-free in
//     steady state (the serial fast path);
//   * a multi-rank step allocates only the transport's bounded per-message
//     envelopes — constant per step, independent of how long it runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.hpp"
#include "mpmini/environment.hpp"
#include "stats/corr_engine.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

// GCC pairs these replacements against its builtin knowledge of new/delete
// and flags the malloc/free plumbing; the pairing here is consistent.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mm::stats {
namespace {

std::uint64_t allocations() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

// Lockstep factor-model returns, reused across steps without reallocating.
class StepSource {
 public:
  explicit StepSource(std::size_t symbols, std::uint64_t seed)
      : rng_(seed), step_(symbols) {}

  const std::vector<double>& next() {
    const double f = rng_.normal();
    for (auto& r : step_) r = 1e-4 * (0.7 * f + rng_.normal());
    return step_;
  }

 private:
  Rng rng_;
  std::vector<double> step_;
};

// Steady-state allocations of `steps` push + matrix_into cycles, after a
// warmup that fills the windows and sizes every lazily-grown buffer.
std::uint64_t calculator_steady_state_allocs(const CorrEngineConfig& cfg,
                                             std::size_t symbols,
                                             std::size_t steps) {
  CorrelationCalculator calc(cfg, symbols);
  StepSource source(symbols, 42);
  SymMatrix out;
  for (std::size_t t = 0; t < cfg.window + 2; ++t) calc.push(source.next());
  calc.matrix_into(out);  // sizes out, unwrap arena, scratch, warm state
  calc.matrix_into(out);  // second call re-walks every memoized path

  const auto before = allocations();
  for (std::size_t t = 0; t < steps; ++t) {
    calc.push(source.next());
    calc.matrix_into(out);
  }
  return allocations() - before;
}

TEST(CorrAlloc, PearsonMatrixSteadyStateIsAllocationFree) {
  CorrEngineConfig cfg;
  cfg.window = 32;
  EXPECT_EQ(calculator_steady_state_allocs(cfg, 24, 8), 0u);
}

TEST(CorrAlloc, ColdMaronnaSteadyStateIsAllocationFree) {
  CorrEngineConfig cfg;
  cfg.type = Ctype::maronna;
  cfg.window = 24;
  cfg.warm_start = false;  // every pair runs the median/MAD cold start
  EXPECT_EQ(calculator_steady_state_allocs(cfg, 10, 4), 0u);
}

TEST(CorrAlloc, WarmMaronnaSteadyStateIsAllocationFreeAcrossColdRestart) {
  CorrEngineConfig cfg;
  cfg.type = Ctype::maronna;
  cfg.window = 24;
  cfg.warm_start = true;
  cfg.warm_restart_interval = 3;  // force cold restarts inside the window
  EXPECT_EQ(calculator_steady_state_allocs(cfg, 10, 8), 0u);
}

TEST(CorrAlloc, CombinedSteadyStateIsAllocationFree) {
  CorrEngineConfig cfg;
  cfg.type = Ctype::combined;
  cfg.window = 24;
  cfg.warm_start = true;
  EXPECT_EQ(calculator_steady_state_allocs(cfg, 10, 4), 0u);
}

TEST(CorrAlloc, SerialEngineStepIsAllocationFree) {
  CorrEngineConfig cfg;
  cfg.window = 32;
  constexpr std::size_t symbols = 24;
  mpi::Environment::run(1, [&](mpi::Comm& comm) {
    ParallelCorrelationEngine engine(comm, cfg, symbols);
    StepSource source(symbols, 7);
    for (std::size_t t = 0; t < cfg.window + 2; ++t) engine.step(source.next());

    const auto before = allocations();
    double checksum = 0.0;
    for (std::size_t t = 0; t < 8; ++t) {
      const auto& m = engine.step(source.next());
      checksum += m(0, 1);
    }
    EXPECT_EQ(allocations() - before, 0u) << "checksum " << checksum;
  });
}

TEST(CorrAlloc, MultiRankStepAllocationsAreBoundedPerStep) {
  CorrEngineConfig cfg;
  cfg.window = 16;
  constexpr std::size_t symbols = 12;
  mpi::Environment::run(3, [&](mpi::Comm& comm) {
    ParallelCorrelationEngine engine(comm, cfg, symbols);
    StepSource source(symbols, 11);  // same stream on every rank; rank 0 wins
    for (std::size_t t = 0; t < cfg.window + 2; ++t) engine.step(source.next());

    // Steady-state cost of a step is the transport's per-message envelopes
    // only: a few sends and two broadcasts across three ranks. The bound is
    // deliberately loose — what matters is that it does not scale with the
    // step count (no leak) and does not include matrix/buffer churn.
    constexpr std::uint64_t kMaxAllocsPerStepAllRanks = 200;
    constexpr std::size_t kSteps = 6;
    comm.barrier();
    const auto before = allocations();
    for (std::size_t t = 0; t < kSteps; ++t) engine.step(source.next());
    comm.barrier();
    if (comm.rank() == 0) {
      const auto per_step = (allocations() - before) / kSteps;
      EXPECT_LE(per_step, kMaxAllocsPerStepAllRanks);
    }
  });
}

}  // namespace
}  // namespace mm::stats
