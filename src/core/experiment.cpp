#include "core/experiment.hpp"

#include <algorithm>
#include <map>

#include "common/timer.hpp"
#include "core/metrics.hpp"
#include "marketdata/bars.hpp"
#include "mpmini/collectives.hpp"
#include "mpmini/environment.hpp"
#include "mpmini/serde.hpp"

namespace mm::core {
namespace {

constexpr std::size_t n_ctypes = 3;

// Running state for one (ctype, level, shard-pair): the paper accumulates a
// daily cumulative return per day plus win/loss counts across the month.
struct CellAccum {
  std::vector<double> daily_returns;
  WinLoss wl;
};

// Per-pair final measures for one treatment.
struct PairMeasures {
  double monthly_return_plus1 = 1.0;
  double max_daily_drawdown = 0.0;
  double win_loss = 0.0;
};

struct ShardOutput {
  std::vector<stats::PairIndex> pairs;  // shard, canonical order
  std::size_t n_levels = 0;
  // [ctype][local pair] — averaged over levels (the paper's aggregation).
  std::array<std::vector<PairMeasures>, n_ctypes> measures;
  // [(ctype * n_levels) + level][local pair] — kept when level detail is on.
  std::vector<std::vector<PairMeasures>> by_level;
  std::uint64_t total_trades = 0;
  std::size_t quotes_processed = 0;
  std::size_t quotes_dropped = 0;
};

// Run the whole experiment for one shard of pairs. Deterministic in
// (config, shard) — every rank regenerates identical market data.
ShardOutput run_shard(const ExperimentConfig& config,
                      const std::vector<stats::PairIndex>& shard) {
  const md::Universe universe = md::make_universe(config.symbols);
  const auto days = md::business_days(config.first_day, config.days);
  const auto levels = config.grid.levels();
  const auto windows = config.grid.distinct_corr_windows();

  // All grid levels share ∆s (Table I evaluates one ∆s = 30 s); assert so a
  // future grid change cannot silently sample at the wrong granularity.
  const std::int64_t delta_s = levels.front().delta_s;
  for (const auto& level : levels) MM_ASSERT(level.delta_s == delta_s);

  ShardOutput out;
  out.pairs = shard;

  // accum[(ctype * L + level) * shard + local_pair]
  const std::size_t n_levels = levels.size();
  std::vector<CellAccum> accum(n_ctypes * n_levels * shard.size());
  const auto cell = [&](std::size_t c, std::size_t l, std::size_t p) -> CellAccum& {
    return accum[(c * n_levels + l) * shard.size() + p];
  };

  for (int day_index = 0; day_index < config.days; ++day_index) {
    md::GeneratorConfig gen = config.generator;
    const md::SyntheticDay day(universe, gen, config.first_day_index + day_index);

    md::QuoteCleaner cleaner(config.symbols, config.cleaner);
    const auto cleaned = cleaner.clean(day.quotes());
    out.quotes_processed += day.quotes().size();
    out.quotes_dropped += day.quotes().size() - cleaned.size();

    const auto bam =
        md::sample_bam_series(cleaned, config.symbols, gen.session, delta_s);

    for (const std::int64_t m : windows) {
      const auto series =
          compute_market_corr_series(bam, m, /*need_maronna=*/true, config.maronna,
                                     shard, config.warm_maronna);
      for (std::size_t l = 0; l < n_levels; ++l) {
        if (levels[l].corr_window != m) continue;
        for (std::size_t c = 0; c < n_ctypes; ++c) {
          StrategyParams params = levels[l];
          params.ctype = stats::all_ctypes[c];
          for (std::size_t p = 0; p < shard.size(); ++p) {
            const auto trades =
                run_pair_day(params, bam[shard[p].i], bam[shard[p].j], series, p);
            std::vector<double> trade_returns;
            trade_returns.reserve(trades.size());
            for (const auto& t : trades) trade_returns.push_back(t.trade_return);
            out.total_trades += trades.size();

            CellAccum& a = cell(c, l, p);
            a.daily_returns.push_back(cumulative_return(trade_returns));
            a.wl.merge(win_loss(trade_returns));
          }
        }
      }
    }
  }

  // Finalize: per (ctype, level, pair) measures, then the paper's
  // average-over-levels aggregation.
  out.n_levels = n_levels;
  out.by_level.assign(n_ctypes * n_levels, {});
  for (std::size_t c = 0; c < n_ctypes; ++c) {
    out.measures[c].resize(shard.size());
    for (std::size_t l = 0; l < n_levels; ++l)
      out.by_level[c * n_levels + l].resize(shard.size());
    for (std::size_t p = 0; p < shard.size(); ++p) {
      double sum_ret = 0.0, sum_mdd = 0.0, sum_wl = 0.0;
      for (std::size_t l = 0; l < n_levels; ++l) {
        const CellAccum& a = cell(c, l, p);
        PairMeasures m;
        m.monthly_return_plus1 = cumulative_return(a.daily_returns) + 1.0;
        m.max_daily_drawdown = max_drawdown(a.daily_returns);
        m.win_loss = a.wl.ratio();
        out.by_level[c * n_levels + l][p] = m;
        sum_ret += m.monthly_return_plus1;
        sum_mdd += m.max_daily_drawdown;
        sum_wl += m.win_loss;
      }
      const auto nl = static_cast<double>(n_levels);
      out.measures[c][p] = {sum_ret / nl, sum_mdd / nl, sum_wl / nl};
    }
  }
  if (!config.keep_level_detail) out.by_level.clear();
  return out;
}

ExperimentResult assemble(const ExperimentConfig& config,
                          const std::vector<ShardOutput>& shards) {
  const md::Universe universe = md::make_universe(config.symbols);
  const auto pairs = stats::all_pairs(config.symbols);

  ExperimentResult result;
  result.symbols = config.symbols;
  result.pair_count = pairs.size();
  result.days = config.days;
  result.pair_names.reserve(pairs.size());
  for (const auto& pr : pairs)
    result.pair_names.push_back(universe.table.name(pr.i) + "/" +
                                universe.table.name(pr.j));

  // Map canonical pair -> global slot.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> slot;
  for (std::size_t k = 0; k < pairs.size(); ++k) slot[{pairs[k].i, pairs[k].j}] = k;

  for (std::size_t c = 0; c < n_ctypes; ++c) {
    result.monthly_return_plus1[c].assign(pairs.size(), 0.0);
    result.max_daily_drawdown[c].assign(pairs.size(), 0.0);
    result.win_loss[c].assign(pairs.size(), 0.0);
  }

  const std::size_t n_levels = config.grid.levels().size();
  if (config.keep_level_detail) {
    for (std::size_t c = 0; c < n_ctypes; ++c) {
      result.level_monthly_return_plus1[c].assign(n_levels,
                                                  std::vector<double>(pairs.size(), 0.0));
      result.level_max_daily_drawdown[c].assign(n_levels,
                                                std::vector<double>(pairs.size(), 0.0));
      result.level_win_loss[c].assign(n_levels,
                                      std::vector<double>(pairs.size(), 0.0));
    }
  }

  for (const auto& shard : shards) {
    result.total_trades += shard.total_trades;
    result.quotes_processed += shard.quotes_processed;
    result.quotes_dropped += shard.quotes_dropped;
    for (std::size_t p = 0; p < shard.pairs.size(); ++p) {
      const std::size_t k = slot.at({shard.pairs[p].i, shard.pairs[p].j});
      for (std::size_t c = 0; c < n_ctypes; ++c) {
        result.monthly_return_plus1[c][k] = shard.measures[c][p].monthly_return_plus1;
        result.max_daily_drawdown[c][k] = shard.measures[c][p].max_daily_drawdown;
        result.win_loss[c][k] = shard.measures[c][p].win_loss;
        if (config.keep_level_detail && !shard.by_level.empty()) {
          for (std::size_t l = 0; l < n_levels; ++l) {
            const PairMeasures& m = shard.by_level[c * n_levels + l][p];
            result.level_monthly_return_plus1[c][l][k] = m.monthly_return_plus1;
            result.level_max_daily_drawdown[c][l][k] = m.max_daily_drawdown;
            result.level_win_loss[c][l][k] = m.win_loss;
          }
        }
      }
    }
  }
  // quotes counters are per-shard duplicates of the same generated day; keep
  // one copy's worth.
  if (shards.size() > 1) {
    result.quotes_processed = shards.front().quotes_processed;
    result.quotes_dropped = shards.front().quotes_dropped;
  }
  return result;
}

void pack_measures(mpi::Packer& packer, const std::vector<PairMeasures>& ms) {
  for (const auto& m : ms) {
    packer.put<double>(m.monthly_return_plus1);
    packer.put<double>(m.max_daily_drawdown);
    packer.put<double>(m.win_loss);
  }
}

void unpack_measures(mpi::Unpacker& unpacker, std::vector<PairMeasures>& ms) {
  for (auto& m : ms) {
    m.monthly_return_plus1 = unpacker.get<double>();
    m.max_daily_drawdown = unpacker.get<double>();
    m.win_loss = unpacker.get<double>();
  }
}

std::vector<std::uint8_t> pack_shard(const ShardOutput& shard) {
  mpi::Packer packer;
  packer.put<std::uint64_t>(shard.pairs.size());
  for (const auto& p : shard.pairs) {
    packer.put<std::uint32_t>(p.i);
    packer.put<std::uint32_t>(p.j);
  }
  for (std::size_t c = 0; c < n_ctypes; ++c) pack_measures(packer, shard.measures[c]);
  packer.put<std::uint64_t>(shard.n_levels);
  packer.put<std::uint64_t>(shard.by_level.size());
  for (const auto& level : shard.by_level) pack_measures(packer, level);
  packer.put<std::uint64_t>(shard.total_trades);
  packer.put<std::uint64_t>(shard.quotes_processed);
  packer.put<std::uint64_t>(shard.quotes_dropped);
  return packer.take();
}

ShardOutput unpack_shard(const std::vector<std::uint8_t>& bytes) {
  mpi::Unpacker unpacker(bytes);
  ShardOutput shard;
  const auto count = unpacker.get<std::uint64_t>();
  shard.pairs.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    stats::PairIndex p{};
    p.i = unpacker.get<std::uint32_t>();
    p.j = unpacker.get<std::uint32_t>();
    shard.pairs.push_back(p);
  }
  for (std::size_t c = 0; c < n_ctypes; ++c) {
    shard.measures[c].resize(count);
    unpack_measures(unpacker, shard.measures[c]);
  }
  shard.n_levels = static_cast<std::size_t>(unpacker.get<std::uint64_t>());
  shard.by_level.resize(static_cast<std::size_t>(unpacker.get<std::uint64_t>()));
  for (auto& level : shard.by_level) {
    level.resize(count);
    unpack_measures(unpacker, level);
  }
  shard.total_trades = unpacker.get<std::uint64_t>();
  shard.quotes_processed = static_cast<std::size_t>(unpacker.get<std::uint64_t>());
  shard.quotes_dropped = static_cast<std::size_t>(unpacker.get<std::uint64_t>());
  return shard;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  Stopwatch watch;
  const auto shard = run_shard(config, stats::all_pairs(config.symbols));
  auto result = assemble(config, {shard});
  result.wall_seconds = watch.elapsed_seconds();
  return result;
}

ExperimentResult run_experiment_parallel(const ExperimentConfig& config) {
  MM_ASSERT_MSG(config.ranks >= 1, "need at least one rank");
  Stopwatch watch;

  ExperimentResult result;
  mpi::Environment::run(config.ranks, [&](mpi::Comm& comm) {
    // Static shard: pair k -> rank k % size.
    const auto pairs = stats::all_pairs(config.symbols);
    std::vector<stats::PairIndex> mine;
    for (std::size_t k = 0; k < pairs.size(); ++k)
      if (static_cast<int>(k % static_cast<std::size_t>(comm.size())) == comm.rank())
        mine.push_back(pairs[k]);

    const auto shard = run_shard(config, mine);
    auto gathered = comm.gather_bytes(pack_shard(shard), 0);
    if (comm.rank() == 0) {
      std::vector<ShardOutput> shards;
      shards.reserve(gathered.size());
      for (const auto& bytes : gathered) shards.push_back(unpack_shard(bytes));
      result = assemble(config, shards);
    }
  });
  result.wall_seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace mm::core
