// Pooled message envelopes for the mailbox's queued-message store.
//
// A message that cannot complete a posted receive immediately is parked in
// the mailbox queue. The queue is an intrusive doubly-linked list of Envelope
// nodes drawn from this pool: a free-list over power-of-two arena blocks, so
// steady-state queue churn (push/pop at similar rates) recycles nodes and
// never calls operator new. Blocks are only carved when the free list runs
// dry (deep backlog), and are returned to the system when the pool dies with
// its mailbox.
//
// Not thread-safe: the pool is owned by one Mailbox and used only under its
// mutex, exactly like the queue it feeds.
#pragma once

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "mpmini/message.hpp"

namespace mm::mpi {

// One queued message plus its matching state (probe reservation) and the
// intrusive links that thread it into the mailbox queue or the free list.
struct Envelope {
  Message msg;
  bool reserved = false;             // reserved by a blocking probe
  std::thread::id reserved_by;
  Envelope* prev = nullptr;
  Envelope* next = nullptr;
};

class EnvelopePool {
 public:
  explicit EnvelopePool(std::size_t first_block = 64) : next_block_(first_block) {}

  // Pop a recycled envelope, carving a fresh arena block only when the free
  // list is empty. The returned node's links are cleared; `msg` may hold a
  // moved-from payload whose capacity is reused by the next assignment.
  Envelope* acquire() {
    if (free_ == nullptr) grow();
    Envelope* e = free_;
    free_ = e->next;
    e->prev = nullptr;
    e->next = nullptr;
    e->reserved = false;
    return e;
  }

  // Return a consumed envelope to the free list. The payload buffer is left
  // in place (moved-from, capacity intact) so re-acquiring reuses it.
  void release(Envelope* e) {
    e->prev = nullptr;
    e->next = free_;
    free_ = e;
  }

  // Number of arena blocks carved so far (tests: steady state stays at one).
  std::size_t blocks() const { return blocks_.size(); }

  EnvelopePool(const EnvelopePool&) = delete;
  EnvelopePool& operator=(const EnvelopePool&) = delete;

 private:
  void grow() {
    auto block = std::make_unique<Envelope[]>(next_block_);
    for (std::size_t i = 0; i < next_block_; ++i) {
      block[i].next = free_;
      free_ = &block[i];
    }
    blocks_.push_back(std::move(block));
    next_block_ *= 2;  // geometric growth keeps block count logarithmic
  }

  Envelope* free_ = nullptr;
  std::size_t next_block_;
  std::vector<std::unique_ptr<Envelope[]>> blocks_;
};

}  // namespace mm::mpi
