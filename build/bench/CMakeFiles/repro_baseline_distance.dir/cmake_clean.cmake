file(REMOVE_RECURSE
  "CMakeFiles/repro_baseline_distance.dir/repro_baseline_distance.cpp.o"
  "CMakeFiles/repro_baseline_distance.dir/repro_baseline_distance.cpp.o.d"
  "repro_baseline_distance"
  "repro_baseline_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_baseline_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
