// Microbenchmarks for the mm::obs hot path. The headline number is
// BM_CounterAdd: one thread-local shard lookup plus a relaxed fetch_add,
// budgeted at under 10 ns per increment (see DESIGN.md "Observability").
// The threaded variants demonstrate that sharding keeps concurrent writers
// off each other's cache lines; BM_SpanNull shows a disabled ObsSpan costs
// nothing (no clock reads).
#include <benchmark/benchmark.h>

#include <vector>

#include "obs/heartbeat.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace {

using namespace mm::obs;

void BM_HeartbeatBeat(benchmark::State& state) {
  // The liveness hot path: every transport op calls beat() — one relaxed
  // store of a pre-incremented local sequence, no clock read, no RMW.
  // Budgeted at under 10 ns (see BENCH_obs.json / DESIGN.md).
#if MM_OBS_ENABLED
  HeartbeatBoard board(1);
  Pulse pulse;
  pulse.slot = board.slot(0);
#else
  Pulse pulse;
#endif
  for (auto _ : state) {
    pulse.beat();
    benchmark::DoNotOptimize(&pulse);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeartbeatBeat);

void BM_HeartbeatBeatUnarmed(benchmark::State& state) {
  // Threads outside a monitored run: beat() is one null check.
  Pulse pulse;
  for (auto _ : state) {
    pulse.beat();
    benchmark::DoNotOptimize(&pulse);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeartbeatBeatUnarmed);

void BM_CounterAdd(benchmark::State& state) {
  static Counter counter;  // shared across the threaded variants
  for (auto _ : state) counter.add();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);
BENCHMARK(BM_CounterAdd)->Threads(4)->UseRealTime();
BENCHMARK(BM_CounterAdd)->Threads(8)->UseRealTime();

void BM_GaugeMaxOf(benchmark::State& state) {
  static Gauge gauge;
  std::int64_t v = 0;
  for (auto _ : state) gauge.max_of(++v);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeMaxOf);
BENCHMARK(BM_GaugeMaxOf)->Threads(4)->UseRealTime();

void BM_HistogramRecord(benchmark::State& state) {
  static Histogram hist(default_latency_bounds_ns());
  std::int64_t v = 0;
  for (auto _ : state) {
    // Rotate through the bucket range so the bound scan isn't always length 1.
    v = (v + 77'777) & ((1 << 22) - 1);
    hist.record(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);
BENCHMARK(BM_HistogramRecord)->Threads(4)->UseRealTime();

void BM_SpanNull(benchmark::State& state) {
  // Both targets null: the span must not even read the clock.
  for (auto _ : state) {
    ObsSpan span(nullptr, "noop");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanNull);

void BM_SpanHistogram(benchmark::State& state) {
  // Two steady_clock reads + one histogram record per span.
  static Histogram hist(default_latency_bounds_ns());
  for (auto _ : state) {
    ObsSpan span(nullptr, "timed", &hist);
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanHistogram);

void BM_SpanTraced(benchmark::State& state) {
  // Span into a trace ring (single-writer; rings are per rank thread).
  TraceSink sink(1u << 20);
  TraceRing& ring = sink.ring(0, "bench");
  for (auto _ : state) {
    ObsSpan span(&ring, "traced");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanTraced);

void BM_SpanWithContext(benchmark::State& state) {
  // What a traced send pays on top of BM_SpanTraced: allocate a flow id,
  // stamp the envelope header from the thread context, and emit the
  // flow-start next to the span (mirrors mpmini's internal_send path).
  TraceSink sink(1u << 20);
  TraceRing& ring = sink.ring(0, "bench");
  TraceRingScope ring_scope(&ring);
  TraceContextScope context_scope(make_trace_context(next_trace_id()));
  for (auto _ : state) {
    const TraceContext context = current_trace_context();
    std::uint64_t header_trace_id = 0;
    std::uint32_t header_flow = 0;
    if (context.valid()) {
#if MM_OBS_ENABLED
      header_trace_id = context.trace_id;
#endif
      header_flow = next_span_id();
    }
    benchmark::DoNotOptimize(header_trace_id);
    const std::int64_t t0 = now_ns();
    ring.flow_start("msg", t0, header_flow);
    ring.complete("send", t0, now_ns() - t0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanWithContext);

void BM_EnvelopeHeaderIdle(benchmark::State& state) {
  // The per-message cost tracing adds to the transport hot path when it is
  // compiled in but NOT active (no ring installed): one thread-local address
  // computation plus a branch. This is the number the pingpong p50 budget
  // (< 5% regression, BENCH_mpmini.json) rides on.
  for (auto _ : state) {
    ThreadTrace& tt = thread_trace();
    bool traced = tt.ring != nullptr && tt.context.valid();
    benchmark::DoNotOptimize(traced);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnvelopeHeaderIdle);

void BM_RegistrySnapshot(benchmark::State& state) {
  // Cold-side cost: aggregate a realistically sized registry.
  Registry registry;
  for (int i = 0; i < 32; ++i)
    registry.counter("bench.counter." + std::to_string(i)).add(1);
  for (int i = 0; i < 8; ++i)
    registry.histogram("bench.hist." + std::to_string(i)).record(1000);
  for (auto _ : state) benchmark::DoNotOptimize(registry.snapshot());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistrySnapshot);

}  // namespace
