# Empty dependencies file for repro_section4_scaling.
# This may be replaced when dependencies are built.
