# Empty compiler generated dependencies file for repro_future_walkforward.
# This may be replaced when dependencies are built.
