# Empty dependencies file for test_bars.
# This may be replaced when dependencies are built.
