// Tests for the EWMA variance/correlation estimators.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/ewma.hpp"
#include "stats/pearson.hpp"

namespace mm::stats {
namespace {

TEST(EwmaVariance, ConvergesOnStationaryStream) {
  EwmaVariance v(0.99);
  mm::Rng rng(1);
  for (int i = 0; i < 20000; ++i) v.push(rng.normal(5.0, 2.0));
  EXPECT_NEAR(v.mean(), 5.0, 0.3);
  EXPECT_NEAR(std::sqrt(v.variance()), 2.0, 0.3);
}

TEST(EwmaVariance, TracksLevelShiftFasterWithSmallLambda) {
  EwmaVariance fast(0.9), slow(0.999);
  mm::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.normal(0.0, 1.0);
    fast.push(x);
    slow.push(x);
  }
  for (int i = 0; i < 50; ++i) {
    const double x = rng.normal(10.0, 1.0);
    fast.push(x);
    slow.push(x);
  }
  EXPECT_GT(fast.mean(), 9.0);
  EXPECT_LT(slow.mean(), 2.0);
}

TEST(EwmaCorrelation, MatchesPearsonOnStationaryStream) {
  EwmaCorrelation ewma(0.995);
  mm::Rng rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 30000; ++i) {
    const double f = rng.normal();
    const double x = f + rng.normal();
    const double y = f + rng.normal();
    ewma.push(x, y);
    xs.push_back(x);
    ys.push_back(y);
  }
  EXPECT_NEAR(ewma.correlation(), pearson(xs, ys), 0.1);
  EXPECT_NEAR(ewma.correlation(), 0.5, 0.1);
}

TEST(EwmaCorrelation, BoundedAndSafeOnDegenerateInput) {
  EwmaCorrelation ewma(0.9);
  for (int i = 0; i < 10; ++i) ewma.push(1.0, 2.0);  // constants
  EXPECT_DOUBLE_EQ(ewma.correlation(), 0.0);
}

TEST(EwmaCorrelation, ReactsToCorrelationBreak) {
  EwmaCorrelation ewma(0.97);  // effective window ~33
  mm::Rng rng(4);
  // Strongly correlated regime...
  for (int i = 0; i < 2000; ++i) {
    const double f = rng.normal();
    ewma.push(2.0 * f + 0.3 * rng.normal(), 2.0 * f + 0.3 * rng.normal());
  }
  const double before = ewma.correlation();
  EXPECT_GT(before, 0.9);
  // ...then independence: the estimate must decay toward zero.
  for (int i = 0; i < 200; ++i) ewma.push(rng.normal(), rng.normal());
  EXPECT_LT(ewma.correlation(), 0.25);
}

TEST(EwmaCorrelation, EffectiveWindow) {
  EXPECT_NEAR(EwmaCorrelation(0.99).effective_window(), 100.0, 1e-9);
  EXPECT_NEAR(EwmaCorrelation(0.9).effective_window(), 10.0, 1e-9);
}

}  // namespace
}  // namespace mm::stats
