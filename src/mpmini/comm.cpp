#include "mpmini/comm.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <thread>

#include "mpmini/serde.hpp"
#include "obs/heartbeat.hpp"

namespace mm::mpi {
namespace {

inline void bump(obs::Counter* counter, std::uint64_t n = 1) {
  if (counter != nullptr) counter->add(n);
}

}  // namespace

World::World(int size)
    // When the env picks the socket transport, a bare in-process World still
    // needs working local delivery (Environment builds the socket world
    // explicitly); fall back to rings for everything the env didn't route.
    : World(size, transport_mode() == TransportMode::socket ? TransportMode::ring
                                                            : transport_mode()) {}

World::World(int size, TransportMode mode)
    : World(size, std::make_unique<InProcessTransport>(size, mode)) {}

World::World(int size, std::unique_ptr<Transport> transport)
    : size_(size), transport_(std::move(transport)) {
  MM_ASSERT_MSG(size > 0, "World size must be positive");
  MM_ASSERT(transport_ != nullptr);
  op_counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) op_counts_[static_cast<std::size_t>(i)] = 0;
}

void World::attach_obs(obs::Registry& registry) {
  metrics_.send_messages = &registry.counter("mpmini.send.messages");
  metrics_.send_bytes = &registry.counter("mpmini.send.bytes");
  metrics_.recv_messages = &registry.counter("mpmini.recv.messages");
  metrics_.recv_bytes = &registry.counter("mpmini.recv.bytes");
  metrics_.timeouts = &registry.counter("mpmini.deadline.timeouts");
  metrics_.faults_dropped = &registry.counter("mpmini.fault.dropped");
  metrics_.faults_duplicated = &registry.counter("mpmini.fault.duplicated");
  metrics_.faults_delayed = &registry.counter("mpmini.fault.delayed");
  obs::Gauge& queue_peak = registry.gauge("mpmini.mailbox.queue_peak");
  obs::Gauge& ring_peak = registry.gauge("mpmini.ring.depth_peak");
  // The gauges are high watermarks; a second run on the same registry must
  // start from zero, not inherit the previous world's peaks.
  queue_peak.reset();
  ring_peak.reset();
  transport_->attach_obs(&queue_peak, &ring_peak);
}

void World::check_op(int world_rank) {
  // Heartbeat publish site: every transport operation beats the calling rank
  // thread's pulse — one relaxed store when armed, one branch when not.
  obs::Pulse& pulse = obs::pulse_this_thread();
  pulse.beat();
  if (fault_plan_.kill_rank != world_rank) return;
  const auto op = ++op_counts_[static_cast<std::size_t>(world_rank)];
  if (op >= fault_plan_.kill_at_op) {
    // A killed rank goes SILENT: no more beats, and its heartbeat slot is
    // never retired — the monitor must detect the death from silence alone.
    pulse.mark_dead();
    throw RankKilled(world_rank);
  }
}

Comm::Comm(World* world, std::uint64_t comm_id, int rank, std::vector<int> members)
    : world_(world), comm_id_(comm_id), rank_(rank), members_(std::move(members)) {
  MM_ASSERT(world_ != nullptr);
  MM_ASSERT(rank_ >= 0 && rank_ < static_cast<int>(members_.size()));
}

int Comm::next_collective_tag() {
  // 2^22 in-flight collective generations per communicator before wraparound;
  // messages from generation g can never coexist with generation g + 2^22.
  return reserved_tag_base + static_cast<int>(collective_seq_++ % (1u << 22));
}

void Comm::fault_point() { world_->check_op(members_[static_cast<std::size_t>(rank_)]); }

void Comm::internal_send(int dest, int tag, std::vector<std::uint8_t> payload) {
  MM_ASSERT_MSG(dest >= 0 && dest < size(), "send: destination rank out of range");
  fault_point();
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.comm_id = comm_id_;
  msg.sequence = send_seq_++;
  msg.payload = std::move(payload);
#if MM_OBS_ENABLED
  // Causal header: when this thread has a trace ring and a live context,
  // stamp the context's trace id and a fresh flow id into the envelope so
  // the matching receive can emit the other half of the flow arrow. Idle
  // cost (ring attached but context untraced, or no ring at all) is one
  // thread-local read and a branch.
  obs::ThreadTrace& thread_trace = obs::thread_trace();
  std::int64_t send_t0 = 0;
  std::uint32_t send_flow = 0;
  if (thread_trace.ring != nullptr && thread_trace.context.valid()) {
    msg.trace_id = thread_trace.context.trace_id;
    msg.flow = send_flow = obs::next_span_id();
    send_t0 = obs::now_ns();
  }
#endif
  const int dest_world = members_[static_cast<std::size_t>(dest)];
  const WorldObs& metrics = world_->metrics();
  bump(metrics.send_messages);
  bump(metrics.send_bytes, msg.payload.size());

  const int src_world = members_[static_cast<std::size_t>(rank_)];
  // Hot-path transmit, delegated to the world's transport: a lane-ring push
  // in ring mode (lock-free), the locked mailbox path otherwise, a serialized
  // envelope over the peer's TCP link in socket mode.
  const auto transmit = [&](Message&& m) {
    world_->transmit(src_world, dest_world, std::move(m));
  };

  const FaultPlan& plan = world_->fault_plan();
  if (plan.active()) {
    const FaultDecision decision = plan.decide(msg, dest_world);
    if (decision.drop) {
      bump(metrics.faults_dropped);
      return;
    }
    if (decision.delay.count() > 0) {
      bump(metrics.faults_delayed);
      // The injected latency is served on the sending thread BEFORE any ring
      // slot or mailbox lock is touched: a delayed message stalls its own
      // sender's stream (per-source FIFO demands that) but never unrelated
      // senders' traffic into the same rank.
      std::this_thread::sleep_for(decision.delay);
    }
    if (decision.duplicate) {
      bump(metrics.faults_duplicated);
      Message duplicate(msg);
#if MM_OBS_ENABLED
      // The duplicate is a transport artifact, not a causal edge: strip its
      // trace header so the receiver doesn't emit a second flow finish (and
      // doesn't adopt a context) for the same logical send.
      duplicate.trace_id = 0;
      duplicate.flow = 0;
#endif
      transmit(std::move(duplicate));
    }
  }
  transmit(std::move(msg));
#if MM_OBS_ENABLED
  // Span + flow start are emitted only for messages that actually went out:
  // a fault-plan drop returns above and orphans no spans.
  if (send_t0 != 0) {
    const std::int64_t dur = std::max<std::int64_t>(obs::now_ns() - send_t0, 1);
    thread_trace.ring->complete("send", send_t0, dur);
    // ts inside the send span so the viewer binds the arrow tail to it.
    thread_trace.ring->flow_start("msg", send_t0, send_flow);
  }
#endif
}

void Comm::send(int dest, int tag, std::vector<std::uint8_t> payload) {
  MM_ASSERT_MSG(tag >= 0 && tag < reserved_tag_base,
                "user tags must be in [0, reserved_tag_base)");
  internal_send(dest, tag, std::move(payload));
}

Request Comm::isend(int dest, int tag, std::vector<std::uint8_t> payload) {
  send(dest, tag, std::move(payload));
  return Request::completed();
}

std::vector<std::uint8_t> Comm::recv(int source, int tag, RecvStatus* status) {
  fault_point();
  Mailbox& box = world_->mailbox(members_[static_cast<std::size_t>(rank_)]);
#if MM_OBS_ENABLED
  obs::ThreadTrace& thread_trace = obs::thread_trace();
  const std::int64_t recv_t0 =
      thread_trace.ring != nullptr ? obs::now_ns() : 0;
#endif
  // Fast path: stack ticket inside the mailbox, zero allocation per receive.
  Message msg = box.receive(comm_id_, source, tag);
  bump(world_->metrics().recv_messages);
  bump(world_->metrics().recv_bytes, msg.payload.size());
  if (status != nullptr) {
    status->source = msg.source;
    status->tag = msg.tag;
    status->byte_count = msg.payload.size();
#if MM_OBS_ENABLED
    status->trace_id = msg.trace_id;
    status->flow = msg.flow;
#endif
  }
#if MM_OBS_ENABLED
  if (recv_t0 != 0 && msg.trace_id != 0) {
    // The recv span covers the wait; the flow finish lands inside it and
    // closes the arrow the sender started.
    const std::int64_t dur = std::max<std::int64_t>(obs::now_ns() - recv_t0, 1);
    thread_trace.ring->complete("recv", recv_t0, dur);
    thread_trace.ring->flow_finish("msg", recv_t0, msg.flow);
  }
#endif
  return std::move(msg.payload);
}

Expected<std::vector<std::uint8_t>> Comm::recv_for(std::chrono::milliseconds timeout,
                                                   int source, int tag,
                                                   RecvStatus* status) {
  fault_point();
  Mailbox& box = world_->mailbox(members_[static_cast<std::size_t>(rank_)]);
#if MM_OBS_ENABLED
  obs::ThreadTrace& thread_trace = obs::thread_trace();
  const std::int64_t recv_t0 =
      thread_trace.ring != nullptr ? obs::now_ns() : 0;
#endif
  Message msg;
  // receive_for withdraws its (stack) ticket on timeout, so a message
  // arriving later stays available for future receives instead of being
  // swallowed by an abandoned ticket.
  if (!box.receive_for(comm_id_, source, tag, timeout, &msg)) {
    bump(world_->metrics().timeouts);
    return Error(Errc::timeout, "recv_for: no matching message within deadline");
  }
  bump(world_->metrics().recv_messages);
  bump(world_->metrics().recv_bytes, msg.payload.size());
  if (status != nullptr) {
    status->source = msg.source;
    status->tag = msg.tag;
    status->byte_count = msg.payload.size();
#if MM_OBS_ENABLED
    status->trace_id = msg.trace_id;
    status->flow = msg.flow;
#endif
  }
#if MM_OBS_ENABLED
  if (recv_t0 != 0 && msg.trace_id != 0) {
    const std::int64_t dur = std::max<std::int64_t>(obs::now_ns() - recv_t0, 1);
    thread_trace.ring->complete("recv", recv_t0, dur);
    thread_trace.ring->flow_finish("msg", recv_t0, msg.flow);
  }
#endif
  return std::move(msg.payload);
}

Request Comm::irecv(int source, int tag) {
  fault_point();
  Mailbox& box = world_->mailbox(members_[static_cast<std::size_t>(rank_)]);
  return Request::receiving(&box, box.post_recv(comm_id_, source, tag));
}

RecvStatus Comm::probe(int source, int tag) {
  fault_point();
  return world_->mailbox(members_[static_cast<std::size_t>(rank_)])
      .probe(comm_id_, source, tag);
}

Expected<RecvStatus> Comm::probe_for(std::chrono::milliseconds timeout, int source,
                                     int tag) {
  fault_point();
  RecvStatus status;
  if (!world_->mailbox(members_[static_cast<std::size_t>(rank_)])
           .probe_for(comm_id_, source, tag, timeout, &status)) {
    bump(world_->metrics().timeouts);
    return Error(Errc::timeout, "probe_for: no matching message within deadline");
  }
  return status;
}

bool Comm::iprobe(int source, int tag, RecvStatus* status) {
  fault_point();
  return world_->mailbox(members_[static_cast<std::size_t>(rank_)])
      .iprobe(comm_id_, source, tag, status);
}

std::vector<std::uint8_t> Comm::sendrecv(int dest, int send_tag,
                                         std::vector<std::uint8_t> payload, int source,
                                         int recv_tag, RecvStatus* status) {
  send(dest, send_tag, std::move(payload));
  return recv(source, recv_tag, status);
}

void Comm::barrier() {
  const int tag = next_collective_tag();
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) (void)recv(any_source, tag);
    for (int r = 1; r < size(); ++r) internal_send(r, tag, {});
  } else {
    internal_send(0, tag, {});
    (void)recv(0, tag);
  }
}

void Comm::bcast_bytes(std::vector<std::uint8_t>& buf, int root) {
  MM_ASSERT(root >= 0 && root < size());
  const int tag = next_collective_tag();
  const int n = size();
  if (n == 1) return;

  // Binomial tree rooted at `root`: virtual rank v = (rank - root) mod n.
  // Node v's parent clears v's lowest set bit; its children are v + bit for
  // every bit strictly below that lowest set bit (all bits for the root).
  const int v = (rank_ - root + n) % n;
  if (v != 0) {
    const int parent_v = v & (v - 1);
    buf = recv((parent_v + root) % n, tag);
  }
  const int lsb = (v == 0) ? (1 << 30) : (v & -v);
  int top = 1;
  while ((top << 1) < n) top <<= 1;
  for (int bit = top; bit >= 1; bit >>= 1) {
    if (bit >= lsb) continue;
    const int child_v = v | bit;
    if (child_v >= n) continue;
    internal_send((child_v + root) % n, tag, buf);
  }
}

std::vector<std::vector<std::uint8_t>> Comm::gather_bytes(std::vector<std::uint8_t> mine,
                                                          int root) {
  MM_ASSERT(root >= 0 && root < size());
  const int tag = next_collective_tag();
  std::vector<std::vector<std::uint8_t>> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(rank_)] = std::move(mine);
    for (int i = 0; i < size() - 1; ++i) {
      RecvStatus status;
      auto payload = recv(any_source, tag, &status);
      out[static_cast<std::size_t>(status.source)] = std::move(payload);
    }
  } else {
    internal_send(root, tag, std::move(mine));
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> Comm::allgather_bytes(
    std::vector<std::uint8_t> mine) {
  auto gathered = gather_bytes(std::move(mine), 0);
  // Frame the gathered buffers into one bcast payload.
  Packer packer;
  if (rank_ == 0) {
    packer.put<std::uint64_t>(gathered.size());
    for (const auto& part : gathered) packer.put_vector(part);
  }
  std::vector<std::uint8_t> framed = packer.take();
  bcast_bytes(framed, 0);
  if (rank_ == 0) return gathered;

  Unpacker unpacker(framed);
  const auto count = unpacker.get<std::uint64_t>();
  std::vector<std::vector<std::uint8_t>> out(count);
  for (auto& part : out) part = unpacker.get_vector<std::uint8_t>();
  return out;
}

std::vector<std::uint8_t> Comm::scatter_bytes(
    const std::vector<std::vector<std::uint8_t>>& parts, int root) {
  MM_ASSERT(root >= 0 && root < size());
  const int tag = next_collective_tag();
  if (rank_ == root) {
    MM_ASSERT_MSG(static_cast<int>(parts.size()) == size(),
                  "scatter: need one part per member");
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      internal_send(r, tag, parts[static_cast<std::size_t>(r)]);
    }
    return parts[static_cast<std::size_t>(rank_)];
  }
  return recv(root, tag);
}

Comm Comm::split(int color, int key) {
  // Share (color, key) with every member.
  Packer packer;
  packer.put<int>(color);
  packer.put<int>(key);
  auto all = allgather_bytes(packer.take());

  struct Entry {
    int color;
    int key;
    int parent_rank;
  };
  std::vector<Entry> entries;
  entries.reserve(all.size());
  for (std::size_t r = 0; r < all.size(); ++r) {
    Unpacker unpacker(all[r]);
    Entry e;
    e.color = unpacker.get<int>();
    e.key = unpacker.get<int>();
    e.parent_rank = static_cast<int>(r);
    entries.push_back(e);
  }

  // Rank 0 allocates one fresh comm id per distinct color (ascending) so all
  // members agree on ids without racing the world allocator.
  std::map<int, std::uint64_t> color_ids;
  Packer id_packer;
  if (rank_ == 0) {
    for (const auto& e : entries)
      if (!color_ids.count(e.color)) color_ids[e.color] = 0;
    id_packer.put<std::uint64_t>(color_ids.size());
    for (auto& [c, id] : color_ids) {
      id = world_->allocate_comm_id();
      id_packer.put<int>(c);
      id_packer.put<std::uint64_t>(id);
    }
  }
  std::vector<std::uint8_t> id_buf = id_packer.take();
  bcast_bytes(id_buf, 0);
  if (rank_ != 0) {
    Unpacker unpacker(id_buf);
    const auto n = unpacker.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i) {
      const int c = unpacker.get<int>();
      const auto id = unpacker.get<std::uint64_t>();
      color_ids[c] = id;
    }
  }

  // My group, ordered by (key, parent rank).
  std::vector<Entry> group;
  for (const auto& e : entries)
    if (e.color == entries[static_cast<std::size_t>(rank_)].color) group.push_back(e);
  std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.parent_rank < b.parent_rank;
  });

  std::vector<int> members;
  members.reserve(group.size());
  int my_new_rank = -1;
  for (std::size_t i = 0; i < group.size(); ++i) {
    members.push_back(members_[static_cast<std::size_t>(group[i].parent_rank)]);
    if (group[i].parent_rank == rank_) my_new_rank = static_cast<int>(i);
  }
  MM_ASSERT(my_new_rank >= 0);
  return Comm(world_, color_ids.at(entries[static_cast<std::size_t>(rank_)].color),
              my_new_rank, std::move(members));
}

Comm Comm::duplicate() {
  std::uint64_t new_id = 0;
  Packer packer;
  if (rank_ == 0) {
    new_id = world_->allocate_comm_id();
    packer.put<std::uint64_t>(new_id);
  }
  std::vector<std::uint8_t> buf = packer.take();
  bcast_bytes(buf, 0);
  if (rank_ != 0) {
    Unpacker unpacker(buf);
    new_id = unpacker.get<std::uint64_t>();
  }
  return Comm(world_, new_id, rank_, members_);
}

}  // namespace mm::mpi
