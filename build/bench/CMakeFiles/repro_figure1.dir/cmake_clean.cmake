file(REMOVE_RECURSE
  "CMakeFiles/repro_figure1.dir/repro_figure1.cpp.o"
  "CMakeFiles/repro_figure1.dir/repro_figure1.cpp.o.d"
  "repro_figure1"
  "repro_figure1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_figure1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
