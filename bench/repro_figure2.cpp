// Figure 2 reproduction: box plots (five-number summaries + outliers) of the
// three performance metrics per correlation type.
#include <cstdio>

#include "core/report.hpp"
#include "repro_common.hpp"

int main(int argc, char** argv) {
  mm::Cli cli("repro_figure2",
              "Reproduce Figure 2: box plots of the three performance metrics");
  const auto cfg = mm::bench::build_config(cli, argc, argv);
  const auto result = mm::bench::run_with_banner(
      cfg, "Figure 2 — box plots per correlation treatment");

  using mm::core::Measure;
  const struct {
    Measure measure;
    const char* title;
  } panels[] = {
      {Measure::monthly_return, "(a) average cumulative monthly returns"},
      {Measure::max_daily_drawdown, "(b) average maximum daily drawdown"},
      {Measure::win_loss, "(c) average win-loss ratio"},
  };
  for (const auto& panel : panels) {
    std::printf("Figure 2%s\n", panel.title);
    std::printf("%s\n", mm::core::render_boxplots(result, panel.measure).c_str());
  }
  std::printf("paper shape: heavy right tails with many high outliers for the\n"
              "returns panel (fattest for Maronna); drawdown strongly right-\n"
              "skewed; win-loss distributions nearly identical across types.\n");
  return 0;
}
