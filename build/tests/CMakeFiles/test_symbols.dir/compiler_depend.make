# Empty compiler generated dependencies file for test_symbols.
# This may be replaced when dependencies are built.
