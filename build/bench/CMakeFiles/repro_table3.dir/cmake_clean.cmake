file(REMOVE_RECURSE
  "CMakeFiles/repro_table3.dir/repro_table3.cpp.o"
  "CMakeFiles/repro_table3.dir/repro_table3.cpp.o.d"
  "repro_table3"
  "repro_table3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_table3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
