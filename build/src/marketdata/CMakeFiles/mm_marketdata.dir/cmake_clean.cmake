file(REMOVE_RECURSE
  "CMakeFiles/mm_marketdata.dir/bars.cpp.o"
  "CMakeFiles/mm_marketdata.dir/bars.cpp.o.d"
  "CMakeFiles/mm_marketdata.dir/calendar.cpp.o"
  "CMakeFiles/mm_marketdata.dir/calendar.cpp.o.d"
  "CMakeFiles/mm_marketdata.dir/cleaner.cpp.o"
  "CMakeFiles/mm_marketdata.dir/cleaner.cpp.o.d"
  "CMakeFiles/mm_marketdata.dir/feed.cpp.o"
  "CMakeFiles/mm_marketdata.dir/feed.cpp.o.d"
  "CMakeFiles/mm_marketdata.dir/generator.cpp.o"
  "CMakeFiles/mm_marketdata.dir/generator.cpp.o.d"
  "CMakeFiles/mm_marketdata.dir/symbols.cpp.o"
  "CMakeFiles/mm_marketdata.dir/symbols.cpp.o.d"
  "CMakeFiles/mm_marketdata.dir/taq.cpp.o"
  "CMakeFiles/mm_marketdata.dir/taq.cpp.o.d"
  "CMakeFiles/mm_marketdata.dir/tickdb.cpp.o"
  "CMakeFiles/mm_marketdata.dir/tickdb.cpp.o.d"
  "libmm_marketdata.a"
  "libmm_marketdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_marketdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
