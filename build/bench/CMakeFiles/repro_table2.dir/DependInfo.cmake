
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/repro_table2.cpp" "bench/CMakeFiles/repro_table2.dir/repro_table2.cpp.o" "gcc" "bench/CMakeFiles/repro_table2.dir/repro_table2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/mm_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/marketdata/CMakeFiles/mm_marketdata.dir/DependInfo.cmake"
  "/root/repo/build/src/dagflow/CMakeFiles/mm_dagflow.dir/DependInfo.cmake"
  "/root/repo/build/src/mpmini/CMakeFiles/mm_mpmini.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
