#include "stats/maronna.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "stats/simd.hpp"

namespace mm::stats {
namespace {

// Destructive median: permutes v[0..n) in place (nth_element), which is fine
// for the scratch buffers this runs on — only the value multiset matters to
// every later consumer (the MAD over deviations).
double median_inplace(double* v, std::size_t n) {
  const std::size_t mid = n / 2;
  std::nth_element(v, v + static_cast<std::ptrdiff_t>(mid), v + n);
  const double hi = v[mid];
  if (n % 2 == 1) return hi;
  const double lo = *std::max_element(v, v + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

// Median absolute deviation scaled to be consistent for the normal, using
// caller-provided deviation scratch — the matrix engines call this O(n²)
// times per step, so a fresh vector per call was the dominant allocation.
double mad(const double* v, std::size_t n, double center,
           std::vector<double>& dev) {
  dev.resize(n);
  for (std::size_t i = 0; i < n; ++i) dev[i] = std::abs(v[i] - center);
  return 1.4826 * median_inplace(dev.data(), n);
}

// The reweighting fixed point, shared verbatim by the cold and warm entry
// points so that both iterate the exact same map (bit-for-bit) and therefore
// agree at convergence. `out` arrives with location/scatter seeded; the
// floors are carried through every iteration exactly as the cold start
// historically did (they are 0 except for MAD-degenerate cold starts).
//
// `warm` (the re-estimate path only) enables two refinements that shorten
// the geometric tail without touching the answer:
//
//   * Anderson(1) residual extrapolation — x_{k+1} = F(x_k) − θ·(F(x_k) −
//     F(x_{k−1})) with θ from a secant fit on the last two scale-normalized
//     residuals, accepted only onto a positive-definite iterate. For the
//     nearly linear map this cancels the dominant error mode, which matters
//     most for the slowly contracting pairs (q ≈ 0.3–0.5).
//   * A distance-bound early stop — the just-accepted map value sits within
//     delta·q/(1−q) of the fixed point, an order of magnitude tighter than
//     delta itself near convergence. q is the freshest observed residual
//     ratio clamped to [0.05, 0.5], and the bound must clear half the
//     tolerance. A post-extrapolation ratio understates the map's own
//     contraction, so the clamp bounds the worst-case stop at delta < 9.5·tol
//     — i.e. within a small multiple of the tolerance of the fixed point,
//     far inside the warm-vs-batch agreement the golden tests assert.
//
// Cold starts use neither, keeping the batch estimator bit-for-bit
// reproducible; warm answers land within the same tolerance of the same
// fixed point either way — only the map-evaluation count changes.
void iterate_fixed_point(const double* x, const double* y, std::size_t n,
                         double floor_x, double floor_y,
                         const MaronnaConfig& config, bool warm,
                         MaronnaResult& out) {
  double mx = out.location_x;
  double my = out.location_y;
  double vxx = out.scatter_xx;
  double vxy = out.scatter_xy;
  double vyy = out.scatter_yy;

  const auto nd = static_cast<double>(n);
  double prev_delta = -1.0;  // previous step size; <0 until one full step seen
  double measured_q = -1.0;  // freshest plain-step |step_k|/|step_{k-1}|
  // Anderson(1) history: previous map value F(x_{k-1}) and its residual,
  // components scale-normalized so locations (data units) and scatter
  // (units²) mix meaningfully in the secant inner products.
  bool have_prev_f = false;
  double pf_mx = 0.0, pf_my = 0.0, pf_vxx = 0.0, pf_vxy = 0.0, pf_vyy = 0.0;
  double pr[5] = {0.0, 0.0, 0.0, 0.0, 0.0};
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    // Invert the 2x2 scatter.
    const double det = vxx * vyy - vxy * vxy;
    if (det <= 0.0 || !std::isfinite(det)) break;
    const double ixx = vyy / det;
    const double iyy = vxx / det;
    const double ixy = -vxy / det;

    // One reweighting pass over the window — the kernel computes the Huber
    // weight on the Mahalanobis distance and the six weighted sums in a
    // single sweep (SIMD-dispatched; scalar and AVX2 agree bitwise).
    const auto s = simd::kernels().maronna_weighted_sums(
        x, y, n, mx, my, ixx, ixy, iyy, config.huber_k2);
    if (s.sw <= 0.0) break;

    const double new_mx = s.swx / s.sw;
    const double new_my = s.swy / s.sw;
    // Scatter normalized by n (Maronna's fixed-point with Huber rho keeps the
    // estimate consistent up to a scale factor that cancels in correlation).
    const double new_vxx = s.sxx / nd + floor_x;
    const double new_vyy = s.syy / nd + floor_y;
    const double new_vxy = s.sxy / nd;

    const double scale = std::max({std::abs(vxx), std::abs(vyy), 1e-300});
    const double delta = std::max({std::abs(new_vxx - vxx), std::abs(new_vyy - vyy),
                                   std::abs(new_vxy - vxy)}) /
                         scale;
    const double step_mx = new_mx - mx;
    const double step_my = new_my - my;
    const double step_vxx = new_vxx - vxx;
    const double step_vyy = new_vyy - vyy;
    const double step_vxy = new_vxy - vxy;
    mx = new_mx;
    my = new_my;
    vxx = new_vxx;
    vyy = new_vyy;
    vxy = new_vxy;
    out.iterations = iter + 1;
    // Observed residual contraction ratio (cold runs measure but never act
    // on it, keeping their iterates bit-identical to the historical loop).
    // Across an extrapolated step this understates the map's own contraction;
    // the clamp below bounds how lenient that can make the stopping rule.
    const double q = prev_delta > 0.0 ? delta / prev_delta : -1.0;
    if (q > 0.0 && q < 1.0) measured_q = q;
    if (delta < config.tolerance) {
      out.converged = true;
      break;
    }
    if (warm && measured_q > 0.0) {
      // Distance bound: the accepted iterate is within delta·q/(1−q) of the
      // fixed point. Clamp q away from 0 (a transiently tiny ratio must not
      // license a sloppy stop) and away from 1 (keep the bound finite), and
      // demand half the tolerance for safety.
      const double qc = std::clamp(measured_q, 0.05, 0.5);
      if (delta * qc / (1.0 - qc) < 0.5 * config.tolerance) {
        out.converged = true;
        break;
      }
    }
    if (warm) {
      // Scale-normalized residual of this evaluation.
      const double ls = std::sqrt(scale);
      const double r[5] = {step_mx / ls, step_my / ls, step_vxx / scale,
                           step_vxy / scale, step_vyy / scale};
      if (have_prev_f) {
        double num = 0.0, den = 0.0;
        for (int c = 0; c < 5; ++c) {
          const double dr = r[c] - pr[c];
          num += r[c] * dr;
          den += dr * dr;
        }
        if (den > 1e-300) {
          const double theta = std::clamp(num / den, -4.0, 4.0);
          // Accept the extrapolated iterate only if positive definite;
          // otherwise keep the plain map value.
          const double axx = vxx - theta * (vxx - pf_vxx);
          const double ayy = vyy - theta * (vyy - pf_vyy);
          const double axy = vxy - theta * (vxy - pf_vxy);
          if (axx > 0.0 && ayy > 0.0 && axx * ayy - axy * axy > 0.0) {
            mx -= theta * (mx - pf_mx);
            my -= theta * (my - pf_my);
            vxx = axx;
            vyy = ayy;
            vxy = axy;
          }
        }
      }
      pf_mx = new_mx;
      pf_my = new_my;
      pf_vxx = new_vxx;
      pf_vxy = new_vxy;
      pf_vyy = new_vyy;
      for (int c = 0; c < 5; ++c) pr[c] = r[c];
      have_prev_f = true;
    }
    prev_delta = delta;
  }
  if (measured_q > 0.0) out.contraction = measured_q;

  out.location_x = mx;
  out.location_y = my;
  out.scatter_xx = vxx;
  out.scatter_xy = vxy;
  out.scatter_yy = vyy;

  const double denom = std::sqrt(vxx * vyy);
  if (denom <= 0.0 || !std::isfinite(denom)) {
    out.correlation = 0.0;
  } else {
    out.correlation = std::clamp(vxy / denom, -1.0, 1.0);
  }
}

// A warm seed must be a converged, finite, positive-definite estimate —
// anything else re-enters through the cold start.
bool usable_seed(const MaronnaResult& seed) {
  if (!seed.converged) return false;
  if (!std::isfinite(seed.location_x) || !std::isfinite(seed.location_y)) return false;
  if (!std::isfinite(seed.scatter_xx) || !std::isfinite(seed.scatter_xy) ||
      !std::isfinite(seed.scatter_yy))
    return false;
  if (seed.scatter_xx <= 0.0 || seed.scatter_yy <= 0.0) return false;
  return seed.scatter_xx * seed.scatter_yy - seed.scatter_xy * seed.scatter_xy > 0.0;
}

}  // namespace

MaronnaResult maronna_estimate(const double* x, const double* y, std::size_t n,
                               const MaronnaConfig& config,
                               MaronnaScratch& scratch) {
  MM_ASSERT_MSG(n >= 2, "maronna needs n >= 2");
  MaronnaResult out;

  // Robust initialization: coordinatewise medians and MADs, zero covariance.
  // The copies live in the caller's scratch (nth_element permutes them), so
  // steady-state matrix sweeps re-use capacity instead of allocating per
  // pair.
  scratch.xs.assign(x, x + n);
  scratch.ys.assign(y, y + n);
  const double mx = median_inplace(scratch.xs.data(), n);
  const double my = median_inplace(scratch.ys.data(), n);
  const double sx = mad(x, n, mx, scratch.dev);
  const double sy = mad(y, n, my, scratch.dev);

  // Degenerate dispersion (e.g. a constant return window): fall back to a
  // tiny floor so the iteration is defined; if both are flat, report 0.
  if (sx <= 0.0 && sy <= 0.0) {
    out.location_x = mx;
    out.location_y = my;
    return out;
  }
  const double floor_x = sx > 0.0 ? 0.0 : 1e-12;
  const double floor_y = sy > 0.0 ? 0.0 : 1e-12;

  out.location_x = mx;
  out.location_y = my;
  out.scatter_xx = sx * sx + floor_x;
  out.scatter_yy = sy * sy + floor_y;
  out.scatter_xy = 0.0;
  iterate_fixed_point(x, y, n, floor_x, floor_y, config, /*warm=*/false, out);
  return out;
}

MaronnaResult maronna_estimate(const double* x, const double* y, std::size_t n,
                               const MaronnaConfig& config) {
  MaronnaScratch scratch;
  return maronna_estimate(x, y, n, config, scratch);
}

MaronnaResult maronna_reestimate(const double* x, const double* y, std::size_t n,
                                 const MaronnaResult& seed,
                                 const MaronnaConfig& config,
                                 MaronnaScratch& scratch) {
  MM_ASSERT_MSG(n >= 2, "maronna needs n >= 2");
  if (!usable_seed(seed)) return maronna_estimate(x, y, n, config, scratch);

  MaronnaResult out;
  out.location_x = seed.location_x;
  out.location_y = seed.location_y;
  out.scatter_xx = seed.scatter_xx;
  out.scatter_xy = seed.scatter_xy;
  out.scatter_yy = seed.scatter_yy;
  out.contraction = seed.contraction;
  // Floor-free map: callers must not warm-start MAD-degenerate windows (see
  // mad_is_zero), so this is the same map the cold start iterates there.
  iterate_fixed_point(x, y, n, /*floor_x=*/0.0, /*floor_y=*/0.0, config,
                      /*warm=*/true, out);
  return out;
}

MaronnaResult maronna_reestimate(const double* x, const double* y, std::size_t n,
                                 const MaronnaResult& seed,
                                 const MaronnaConfig& config) {
  MaronnaScratch scratch;
  return maronna_reestimate(x, y, n, seed, config, scratch);
}

bool mad_is_zero(const double* v, std::size_t n) {
  // MAD(v) == 0  ⟺  strictly more than half of the values equal the median
  // ⟺ a majority element exists. Boyer–Moore: find the only possible
  // majority candidate, then count it.
  double candidate = v[0];
  std::size_t votes = 1;
  for (std::size_t i = 1; i < n; ++i) {
    if (votes == 0) {
      candidate = v[i];
      votes = 1;
    } else if (v[i] == candidate) {
      ++votes;
    } else {
      --votes;
    }
  }
  if (votes == 0) return false;
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (v[i] == candidate) ++count;
  return count > n / 2;
}

WarmMaronna::WarmMaronna(std::size_t pairs, const MaronnaConfig& config,
                         int restart_interval)
    : config_(config),
      restart_interval_(restart_interval),
      state_(pairs),
      cold_step_(pairs, -1),
      computed_step_(pairs, -1),
      seedable_(pairs, 0) {
  MM_ASSERT_MSG(restart_interval >= 1, "warm restart interval must be >= 1");
}

double WarmMaronna::estimate(std::size_t slot, const double* x, const double* y,
                             std::size_t n, bool degenerate) {
  MM_ASSERT(slot < state_.size());
  // Memoized: the same pair queried twice in one step must see one value.
  if (computed_step_[slot] == step_) return state_[slot].correlation;

  // MAD-degenerate windows engage the cold start's dispersion floors — a
  // different iteration map — so they always recompute cold and never seed.
  // The caller supplies the flag (computed per symbol per step, see the
  // header contract) instead of this class rescanning per pair.
  MaronnaResult res;
  if (!degenerate && seedable_[slot] &&
      step_ - cold_step_[slot] < restart_interval_) {
    res = maronna_reestimate(x, y, n, state_[slot], config_, scratch_);
    ++warm_calls_;
    if (!res.converged) {
      // Warm chain went stale (e.g. an abrupt regime change): restart cold so
      // the estimate cannot drift away from the batch answer.
      res = maronna_estimate(x, y, n, config_, scratch_);
      cold_step_[slot] = step_;
      ++cold_calls_;
    }
  } else {
    res = maronna_estimate(x, y, n, config_, scratch_);
    cold_step_[slot] = step_;
    ++cold_calls_;
  }

  state_[slot] = res;
  computed_step_[slot] = step_;
  seedable_[slot] = !degenerate && res.converged && res.scatter_xx > 0.0 &&
                    res.scatter_yy > 0.0 &&
                    res.scatter_xx * res.scatter_yy -
                            res.scatter_xy * res.scatter_xy >
                        0.0;
  return res.correlation;
}

double maronna(const double* x, const double* y, std::size_t n,
               const MaronnaConfig& config) {
  return maronna_estimate(x, y, n, config).correlation;
}

double maronna(const std::vector<double>& x, const std::vector<double>& y,
               const MaronnaConfig& config) {
  MM_ASSERT_MSG(x.size() == y.size(), "maronna: length mismatch");
  return maronna(x.data(), y.data(), x.size(), config);
}

}  // namespace mm::stats
