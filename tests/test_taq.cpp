// Tests for TAQ CSV and binary quote file I/O.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "marketdata/generator.hpp"
#include "marketdata/taq.hpp"

namespace mm::md {
namespace {

class TaqFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mm_taq_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST(ParseTime, ValidFormats) {
  EXPECT_EQ(*parse_time_of_day("09:30:04"),
            9 * ms_per_hour + 30 * ms_per_minute + 4 * ms_per_second);
  EXPECT_EQ(*parse_time_of_day("16:00:00"), 16 * ms_per_hour);
  EXPECT_EQ(*parse_time_of_day("09:30:04.123"),
            9 * ms_per_hour + 30 * ms_per_minute + 4 * ms_per_second + 123);
  EXPECT_EQ(*parse_time_of_day(" 10:00:00 "), 10 * ms_per_hour);
}

TEST(ParseTime, Invalid) {
  EXPECT_FALSE(parse_time_of_day("9:30:04").has_value());
  EXPECT_FALSE(parse_time_of_day("09-30-04").has_value());
  EXPECT_FALSE(parse_time_of_day("09:30:04.").has_value());
  EXPECT_FALSE(parse_time_of_day("09:30:04.1").has_value());
  EXPECT_FALSE(parse_time_of_day("25:00:00").has_value());
  EXPECT_FALSE(parse_time_of_day("").has_value());
}

TEST(FormatTime, RoundTrips) {
  for (const char* t : {"09:30:04", "16:00:00", "09:30:04.123"}) {
    EXPECT_EQ(format_time_of_day(*parse_time_of_day(t)), t);
  }
}

TEST(FormatRow, MatchesTableIIColumns) {
  SymbolTable symbols;
  Quote q;
  q.ts_ms = *parse_time_of_day("09:30:04");
  q.symbol = symbols.intern("NVDA");
  q.bid = 16.38;
  q.ask = 20.1;
  q.bid_size = 3;
  q.ask_size = 3;
  EXPECT_EQ(format_taq_row(q, symbols), "09:30:04,NVDA,16.38,20.10,3,3");
}

TEST_F(TaqFiles, CsvRoundTrip) {
  const auto universe = make_universe(4);
  GeneratorConfig cfg;
  cfg.quote_rate = 0.02;
  const SyntheticDay day(universe, cfg, 0);
  const auto& quotes = day.quotes();
  ASSERT_GT(quotes.size(), 100u);

  ASSERT_TRUE(write_taq_csv(path("day.csv"), quotes, universe.table).has_value());

  SymbolTable read_symbols;
  auto read = read_taq_csv(path("day.csv"), read_symbols);
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(read->size(), quotes.size());
  for (std::size_t k = 0; k < quotes.size(); ++k) {
    const auto& a = quotes[k];
    const auto& b = (*read)[k];
    // CSV stores whole seconds + prices to cents; both are exact here.
    EXPECT_EQ(a.ts_ms / 1000, b.ts_ms / 1000);
    EXPECT_EQ(universe.table.name(a.symbol), read_symbols.name(b.symbol));
    EXPECT_NEAR(a.bid, b.bid, 0.005);
    EXPECT_NEAR(a.ask, b.ask, 0.005);
    EXPECT_EQ(a.bid_size, b.bid_size);
    EXPECT_EQ(a.ask_size, b.ask_size);
  }
}

TEST_F(TaqFiles, CsvRejectsMalformedRow) {
  {
    std::ofstream out(path("bad.csv"));
    out << "Timestamp,Symbol,BidPrice,AskPrice,BidSize,AskSize\n";
    out << "09:30:04,NVDA,16.38,20.10,3\n";  // five fields
  }
  SymbolTable symbols;
  EXPECT_FALSE(read_taq_csv(path("bad.csv"), symbols).has_value());
}

TEST_F(TaqFiles, CsvRejectsBadNumbers) {
  {
    std::ofstream out(path("bad2.csv"));
    out << "09:30:04,NVDA,abc,20.10,3,3\n";
  }
  SymbolTable symbols;
  EXPECT_FALSE(read_taq_csv(path("bad2.csv"), symbols).has_value());
}

TEST_F(TaqFiles, CsvRejectsEmptySymbol) {
  {
    std::ofstream out(path("nosym.csv"));
    out << "09:30:04, ,16.38,20.10,3,3\n";
  }
  SymbolTable symbols;
  EXPECT_FALSE(read_taq_csv(path("nosym.csv"), symbols).has_value());
}

TEST_F(TaqFiles, CsvMissingFile) {
  SymbolTable symbols;
  EXPECT_FALSE(read_taq_csv(path("nope.csv"), symbols).has_value());
}

TEST_F(TaqFiles, BinaryRoundTripIsExact) {
  const auto universe = make_universe(3);
  GeneratorConfig cfg;
  cfg.quote_rate = 0.02;
  const SyntheticDay day(universe, cfg, 1);

  ASSERT_TRUE(write_quotes_binary(path("day.bin"), day.quotes()).has_value());
  auto read = read_quotes_binary(path("day.bin"));
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(read->size(), day.quotes().size());
  for (std::size_t k = 0; k < read->size(); ++k) {
    EXPECT_EQ((*read)[k].ts_ms, day.quotes()[k].ts_ms);
    EXPECT_DOUBLE_EQ((*read)[k].bid, day.quotes()[k].bid);
    EXPECT_DOUBLE_EQ((*read)[k].ask, day.quotes()[k].ask);
  }
}

TEST_F(TaqFiles, BinaryRejectsGarbage) {
  {
    std::ofstream out(path("junk.bin"), std::ios::binary);
    out << "this is not a quote file at all";
  }
  EXPECT_FALSE(read_quotes_binary(path("junk.bin")).has_value());
}

TEST_F(TaqFiles, BinaryRejectsTruncation) {
  const auto universe = make_universe(2);
  GeneratorConfig cfg;
  cfg.quote_rate = 0.01;
  const SyntheticDay day(universe, cfg, 0);
  ASSERT_TRUE(write_quotes_binary(path("t.bin"), day.quotes()).has_value());
  // Truncate the file.
  std::filesystem::resize_file(path("t.bin"), 64);
  EXPECT_FALSE(read_quotes_binary(path("t.bin")).has_value());
}

TEST_F(TaqFiles, GarbageLinesNeverCrashOnlyError) {
  // Deterministic fuzz: random byte soup, random field counts, random
  // numerics — the reader must return a parse error (or succeed for the rare
  // valid line), never crash or hang.
  std::uint64_t state = 4242;
  const auto next = [&state](std::uint64_t bound) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (state >> 33) % bound;
  };
  const char charset[] = "0123456789:,.-abcXYZ \t";
  for (int trial = 0; trial < 40; ++trial) {
    std::string content;
    const auto lines = 1 + next(5);
    for (std::uint64_t l = 0; l < lines; ++l) {
      const auto len = next(60);
      for (std::uint64_t c = 0; c < len; ++c)
        content += charset[next(sizeof(charset) - 1)];
      content += '\n';
    }
    const auto p = path("fuzz.csv");
    {
      std::ofstream out(p);
      out << content;
    }
    SymbolTable symbols;
    const auto result = read_taq_csv(p, symbols);  // must simply return
    if (result.has_value()) SUCCEED();
  }
}

TEST_F(TaqFiles, EmptyQuoteVectorRoundTrips) {
  ASSERT_TRUE(write_quotes_binary(path("empty.bin"), {}).has_value());
  auto read = read_quotes_binary(path("empty.bin"));
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(read->empty());
}

}  // namespace
}  // namespace mm::md
