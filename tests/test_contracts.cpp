// Contract (death) tests: API misuse must fail fast and loudly via MM_ASSERT
// rather than corrupting state. These document the hard preconditions of the
// public API.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/strategy.hpp"
#include "marketdata/bars.hpp"
#include "mpmini/serde.hpp"
#include "stats/rolling.hpp"
#include "stats/sym_matrix.hpp"
#include "stats/windows.hpp"

namespace mm {
namespace {

using DeathTest = ::testing::Test;

TEST(ContractStrategy, NonIncreasingIntervalAborts) {
  core::StrategyParams p = core::ParamGrid::base();
  core::PairStrategy s(p, 780);
  s.step(5, 100.0, 50.0, 0.9, true);
  EXPECT_DEATH(s.step(5, 100.0, 50.0, 0.9, true), "strictly increasing");
  EXPECT_DEATH(s.step(4, 100.0, 50.0, 0.9, true), "strictly increasing");
}

TEST(ContractStrategy, NonPositivePriceAborts) {
  core::StrategyParams p = core::ParamGrid::base();
  core::PairStrategy s(p, 780);
  EXPECT_DEATH(s.step(0, 0.0, 50.0, 0.9, true), "non-positive price");
  EXPECT_DEATH(s.step(0, 100.0, -1.0, 0.9, true), "non-positive price");
}

TEST(ContractStrategy, InvalidParamsAbortAtConstruction) {
  core::StrategyParams p = core::ParamGrid::base();
  p.retracement = 1.5;
  EXPECT_DEATH(core::PairStrategy(p, 780), "invalid StrategyParams");
}

TEST(ContractMetrics, TotalLossAborts) {
  EXPECT_DEATH(core::cumulative_return({-1.0}), "compounding");
  EXPECT_DEATH(core::cumulative_return({-1.5}), "compounding");
}

TEST(ContractRolling, EmptyWindowQueriesAbort) {
  stats::RollingWindow<int> w(4);
  EXPECT_DEATH((void)w.newest(), "");
  stats::RollingMinMax mm(4);
  EXPECT_DEATH((void)mm.min(), "");
}

TEST(ContractWindows, WrongReturnCountAborts) {
  stats::ReturnWindows w(3, 5, true);
  EXPECT_DEATH(w.push({0.1, 0.2}), "one return per symbol");
}

TEST(ContractWindows, EarlyPearsonAborts) {
  stats::ReturnWindows w(2, 5, true);
  w.push({0.1, 0.2});
  EXPECT_DEATH((void)w.pearson(0, 1), "window is full");
}

TEST(ContractSymMatrix, OutOfRangeAborts) {
  stats::SymMatrix m(3, 0.0);
  EXPECT_DEATH((void)m(0, 3), "");
  EXPECT_DEATH(m.set(3, 0, 1.0), "");
}

TEST(ContractSerde, UnderrunAborts) {
  mpi::Packer packer;
  packer.put<int>(1);
  const auto bytes = packer.take();
  mpi::Unpacker u(bytes);
  (void)u.get<int>();
  EXPECT_DEATH((void)u.get<double>(), "underrun");
}

TEST(ContractBars, LogReturnsRejectNonPositivePrices) {
  EXPECT_DEATH((void)md::log_returns({1.0, 0.0}), "non-positive price");
}

}  // namespace
}  // namespace mm
