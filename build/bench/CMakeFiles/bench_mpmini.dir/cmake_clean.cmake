file(REMOVE_RECURSE
  "CMakeFiles/bench_mpmini.dir/bench_mpmini.cpp.o"
  "CMakeFiles/bench_mpmini.dir/bench_mpmini.cpp.o.d"
  "bench_mpmini"
  "bench_mpmini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mpmini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
