// Launchers for mpmini programs: thread-per-rank, or one process per rank.
//
// Environment::run(n, fn) plays the role of mpirun: it creates an n-rank
// world, starts one thread per rank, hands each a world communicator, and
// joins. A rank that throws poisons the run; the first exception is rethrown
// to the caller after all ranks have finished.
//
// With MM_MPMINI_TRANSPORT=socket the same run() call instead drives ONLY
// the local rank (MM_MPMINI_RANK) over the TCP socket transport, meeting the
// other rank processes at MM_MPMINI_RENDEZVOUS — mpirun's role moves to
// whatever launched the processes (scripts/transport_smoke.sh shows the
// pattern). run_rendezvous() is the programmatic route to the same thing.
#pragma once

#include <chrono>
#include <functional>

#include "mpmini/comm.hpp"
#include "mpmini/fault.hpp"
#include "mpmini/socket_transport.hpp"
#include "obs/heartbeat.hpp"
#include "obs/registry.hpp"

namespace mm::mpi {

class Environment {
 public:
  // Runs `rank_main` on `world_size` ranks and blocks until all complete.
  static void run(int world_size, const std::function<void(Comm&)>& rank_main);

  // Same, with a fault plan installed on the world before any rank starts.
  // A rank killed by the plan surfaces as a rethrown RankKilled (first error
  // wins) once every rank has finished — callers that inject kills must make
  // the surviving ranks deadline-aware or they will wait on the dead rank
  // forever.
  //
  // With a non-null `metrics` registry the world records transport telemetry
  // into it (see WorldObs); the registry must outlive the run.
  //
  // With a non-null `heartbeat` board (one slot per rank, owned by the
  // caller's monitoring plane) every rank thread arms a pulse before
  // rank_main and publishes beats from the transport hook and the mailbox's
  // blocking waits. A rank that returns normally retires its slot (`done`);
  // one that throws — fault-plan kill or its own exception — leaves the slot
  // unretired and goes silent, which the heartbeat monitor reports as `down`.
  static void run(int world_size, const std::function<void(Comm&)>& rank_main,
                  const FaultPlan& fault, obs::Registry* metrics = nullptr,
                  obs::HeartbeatBoard* heartbeat = nullptr,
                  std::chrono::nanoseconds heartbeat_interval =
                      std::chrono::milliseconds{100});

  // Multi-process launcher: runs ONLY rank `rz.rank` of a `world_size`-rank
  // world in this process, connected to its peers over the TCP socket
  // transport (see socket_transport.hpp for the handshake). Every rank
  // process must call this with the same world_size; the call returns after
  // the local rank main finished AND the goodbye barrier drained in-flight
  // traffic, so joining all rank processes is equivalent to the thread
  // launcher's join-all. The fault plan applies to the local rank only;
  // heartbeat boards observe only local slots (each process has its own
  // monitoring plane).
  static void run_rendezvous(const Rendezvous& rz, int world_size,
                             const std::function<void(Comm&)>& rank_main,
                             const FaultPlan& fault = FaultPlan{},
                             obs::Registry* metrics = nullptr,
                             obs::HeartbeatBoard* heartbeat = nullptr,
                             std::chrono::nanoseconds heartbeat_interval =
                                 std::chrono::milliseconds{100});
};

}  // namespace mm::mpi
