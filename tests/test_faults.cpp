// Fault-matrix tests for the Fig. 1 pipeline: kill each stage mid-day, drop
// or delay messages in flight, kill a correlation replica — and in every case
// run_pipeline() must RETURN (degraded and reporting the fault) rather than
// hang. Fault injection is deterministic (pure envelope hashes), so degraded
// runs are reproducible for a given seed.
#include <gtest/gtest.h>

#include <chrono>

#include "engine/pipeline.hpp"
#include "marketdata/generator.hpp"

namespace mm::engine {
namespace {

using std::chrono::milliseconds;

struct Scenario {
  md::Universe universe;
  std::vector<md::Quote> quotes;
};

Scenario make_scenario(std::size_t symbols, int day) {
  Scenario s{md::make_universe(symbols), {}};
  md::GeneratorConfig cfg;
  cfg.quote_rate = 0.15;
  const md::SyntheticDay synth(s.universe, cfg, day);
  s.quotes = synth.quotes();
  return s;
}

core::StrategyParams pipeline_params(double divergence = 0.0005) {
  core::StrategyParams p = core::ParamGrid::base();
  p.ctype = stats::Ctype::pearson;
  p.divergence = divergence;
  return p;
}

PipelineConfig base_config() {
  PipelineConfig cfg;
  cfg.symbols = 4;
  cfg.strategies = {pipeline_params()};
  // Small batches keep even the collector chatty (hundreds of transport ops
  // per day), so a mid-day kill step lands in every stage.
  cfg.batch_size = 64;
  return cfg;
}

// Rank layout of base_config's graph (one rank per node, in add order):
// collector=0, cleaner=1, snapshot=2, correlation=3, strategy-0=4, master=5.
constexpr int rank_count = 6;
constexpr int master_rank = 5;

class FaultMatrixKill : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(EveryStage, FaultMatrixKill,
                         ::testing::Range(0, rank_count));

TEST_P(FaultMatrixKill, KilledStageMidDayStillReturnsWithFaultReported) {
  const int victim = GetParam();
  const auto scenario = make_scenario(4, 0);

  // Healthy reference: no faults reported, and enough traffic through every
  // stage that a mid-day kill step actually lands.
  const auto healthy = run_pipeline(base_config(), scenario.universe, scenario.quotes);
  ASSERT_FALSE(healthy.degraded);
  ASSERT_TRUE(healthy.faults.empty());
  ASSERT_GE(healthy.master.orders + 1, 3u);  // master sees >= 3 records

  PipelineConfig cfg = base_config();
  cfg.fault.kill_rank = victim;
  // The master only handles orders and summaries, so its op budget is far
  // smaller than the streaming stages'; scale its kill step to the healthy
  // run's record count so the kill lands mid-day, past communicator setup.
  cfg.fault.kill_at_op =
      victim == master_rank
          ? 10 + healthy.stages.back().records_in / 2
          : 80;
  cfg.stage_deadline = milliseconds{1000};
  cfg.replica_deadline = milliseconds{1000};

  const auto result = run_pipeline(cfg, scenario.universe, scenario.quotes);

  // The whole point: it RETURNED, degraded, and says who died.
  EXPECT_TRUE(result.degraded) << "victim rank " << victim;
  ASSERT_FALSE(result.faults.empty()) << "victim rank " << victim;
  bool victim_reported = false;
  for (const auto& fault : result.faults)
    if (fault.failed) victim_reported = true;
  EXPECT_TRUE(victim_reported) << "victim rank " << victim;
  EXPECT_LT(result.wall_seconds, 60.0);
}

TEST(FaultMatrix, DroppedMessagesLeaveDegradedReportNotHang) {
  const auto scenario = make_scenario(4, 1);
  PipelineConfig cfg = base_config();
  cfg.fault.seed = 2026;
  cfg.fault.drop_prob = 0.05;
  // Small channels so lost flow-control credits exhaust an edge's capacity
  // mid-day: the producer must then declare the edge dead within its
  // deadline instead of waiting for credits that will never come.
  cfg.channel_capacity = 16;
  cfg.stage_deadline = milliseconds{1000};

  const auto result = run_pipeline(cfg, scenario.universe, scenario.quotes);
  EXPECT_TRUE(result.degraded);
  EXPECT_FALSE(result.faults.empty());
  EXPECT_LT(result.wall_seconds, 60.0);

  // Determinism: the same seed injects the same fault set, so the degraded
  // outcome is reproducible. (Record counts are NOT asserted equal — how far
  // a stage gets before a deadline fires is wall-clock dependent.)
  const auto replay = run_pipeline(cfg, scenario.universe, scenario.quotes);
  EXPECT_TRUE(replay.degraded);
}

TEST(FaultMatrix, DelaysChangeTimingButNotResults) {
  const auto scenario = make_scenario(4, 2);
  const auto healthy = run_pipeline(base_config(), scenario.universe, scenario.quotes);

  PipelineConfig cfg = base_config();
  cfg.fault.seed = 7;
  cfg.fault.delay_prob = 0.3;
  cfg.fault.delay = std::chrono::microseconds{300};

  const auto delayed = run_pipeline(cfg, scenario.universe, scenario.quotes);
  EXPECT_FALSE(delayed.degraded);
  EXPECT_EQ(delayed.master.trades, healthy.master.trades);
  EXPECT_EQ(delayed.master.orders, healthy.master.orders);
  EXPECT_NEAR(delayed.master.total_pnl, healthy.master.total_pnl, 1e-9);
}

TEST(FaultMatrix, KilledCorrelationReplicaReshardsWithIdenticalResults) {
  // Fig. 1's parallel correlation engine with one replica killed mid-day:
  // the leader reshards the dead replica's pairs onto the survivors and
  // recomputes the in-flight round locally, so the day's trading is
  // BIT-IDENTICAL to the healthy run — the degradation is visible only in
  // the fault report and the stage's fault counter.
  const auto scenario = make_scenario(4, 3);
  PipelineConfig cfg = base_config();
  cfg.correlation_replicas = 3;  // group ranks 3 (leader), 4, 5

  const auto healthy = run_pipeline(cfg, scenario.universe, scenario.quotes);
  ASSERT_FALSE(healthy.degraded);
  ASSERT_EQ(healthy.stages[3].faults, 0u);

  PipelineConfig faulted = cfg;
  faulted.fault.kill_rank = 4;  // first non-leader replica
  faulted.fault.kill_at_op = 100;
  faulted.replica_deadline = milliseconds{1000};

  const auto result = run_pipeline(faulted, scenario.universe, scenario.quotes);

  EXPECT_EQ(result.master.trades, healthy.master.trades);
  EXPECT_EQ(result.master.orders, healthy.master.orders);
  EXPECT_NEAR(result.master.total_pnl, healthy.master.total_pnl, 1e-9);

  EXPECT_GE(result.stages[3].faults, 1u);  // at least one reshard event
  EXPECT_TRUE(result.degraded);
  bool corr_reported = false;
  for (const auto& fault : result.faults)
    if (fault.name == "correlation" && fault.failed) corr_reported = true;
  EXPECT_TRUE(corr_reported);
  // The master saw clean end-of-day streams: degradation stayed inside the
  // correlation group.
  EXPECT_FALSE(result.master.degraded);
  EXPECT_TRUE(result.master.failed_strategies.empty());
}

TEST(FaultMatrix, DeadStrategyWorkerDegradesOnlyThatStrategy) {
  // Two strategy workers; one is killed mid-day. The master must mark ONLY
  // that strategy as failed, and the surviving strategy's full day must
  // match a single-strategy healthy run exactly.
  const auto scenario = make_scenario(4, 4);

  PipelineConfig solo = base_config();  // strategy-0 alone, healthy
  const auto healthy_solo = run_pipeline(solo, scenario.universe, scenario.quotes);
  ASSERT_GT(healthy_solo.master.trades, 0u);

  PipelineConfig cfg = base_config();
  cfg.strategies = {pipeline_params(0.0005), pipeline_params(0.001)};
  // Ranks: collector=0, cleaner=1, snapshot=2, corr=3, strategy-0=4,
  // strategy-1=5, master=6.
  cfg.fault.kill_rank = 5;
  cfg.fault.kill_at_op = 150;
  cfg.stage_deadline = milliseconds{1000};

  const auto result = run_pipeline(cfg, scenario.universe, scenario.quotes);

  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(result.master.degraded);
  EXPECT_EQ(result.master.failed_strategies, std::vector<int>{1});
  // Trades come from end-of-day summaries; strategy-1 died before its
  // summary, so the books hold exactly the surviving strategy's full day.
  EXPECT_EQ(result.master.trades, healthy_solo.master.trades);
  EXPECT_NEAR(result.master.total_pnl, healthy_solo.master.total_pnl, 1e-9);
  bool strategy1_reported = false;
  for (const auto& fault : result.faults)
    if (fault.name == "strategy-1" && fault.failed) strategy1_reported = true;
  EXPECT_TRUE(strategy1_reported);
  EXPECT_LT(result.wall_seconds, 60.0);
}

}  // namespace
}  // namespace mm::engine
