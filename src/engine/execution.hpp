// Execution simulation and implementation shortfall.
//
// The paper's §VI: "Future studies would also benefit from considering
// various 'implementation shortfalls' that occur in practice such as
// transaction costs, moving the market (on big orders) and lost opportunity
// (inability to fill an order)." This module implements that study: it takes
// the master's decision log (orders priced at the bid-ask midpoint the
// strategy saw) and re-executes it against the actual quote stream under a
// configurable friction model:
//
//   * spread crossing — buys lift the ask, sells hit the bid;
//   * decision-to-fill latency — fills use the book as of decision time + L;
//   * market impact — an extra price concession proportional to order size;
//   * lost opportunity — orders with no quote within the fill horizon are
//     dropped (entry legs) and the trade never happens.
//
// The shortfall report compares realized fills against decision prices, per
// leg and in aggregate (dollars and basis points of traded notional).
#pragma once

#include <cstdint>
#include <vector>

#include "engine/messages.hpp"
#include "marketdata/calendar.hpp"
#include "marketdata/types.hpp"

namespace mm::engine {

struct ExecutionConfig {
  // Fills cross the spread (false books at BAM — the frictionless baseline).
  bool cross_spread = true;
  // Delay between the decision (end of the order's interval) and execution.
  md::TimeMs latency_ms = 0;
  // Extra price concession per leg, as a fraction of price per 100 shares
  // (crude linear market impact).
  double impact_frac_per_lot = 0.0;
  // How long after decision+latency a quote must exist for the fill to
  // happen; beyond it the order is "lost opportunity".
  md::TimeMs fill_horizon_ms = 5 * 60 * 1000;
  // The strategy's interval width (to convert order intervals to times).
  std::int64_t delta_s = 30;
  md::Session session{};
};

struct LegFill {
  std::uint32_t symbol = 0;
  double shares = 0.0;         // signed
  double decision_price = 0.0;
  double fill_price = 0.0;
  // Signed cost: positive = worse than decision (paid more / received less).
  double shortfall_dollars = 0.0;
};

struct ExecutionResult {
  std::vector<LegFill> fills;
  std::uint64_t orders_filled = 0;
  std::uint64_t orders_lost = 0;    // no quote inside the horizon
  double decision_notional = 0.0;   // Σ |shares| x decision price over fills
  double shortfall_dollars = 0.0;   // Σ leg shortfalls
  double shortfall_bps() const {
    return decision_notional > 0.0 ? 1e4 * shortfall_dollars / decision_notional : 0.0;
  }
};

// Re-execute `orders` (time-ordered by interval) against the (time-sorted)
// quote stream. Quotes should be the CLEANED stream — real routers do not
// fill against bad prints either.
ExecutionResult simulate_execution(const std::vector<Order>& orders,
                                   const std::vector<md::Quote>& quotes,
                                   std::size_t symbol_count,
                                   const ExecutionConfig& config);

}  // namespace mm::engine
