// Minimal JSON value: one parser and one serializer for every JSON surface
// in the tree (job specs/results in src/svc, the obs snapshot/trace/flight
// emitters' string escaping, tests' round-trip assertions).
//
// Scope is deliberately small — this is a config/report format, not a codec
// hot path:
//   * numbers are int64 when they look integral, double otherwise; doubles
//     serialize with the shortest digit string that round-trips exactly
//     (so a value that travels spec -> JSON -> spec is bit-identical);
//   * objects preserve insertion order (deterministic output, stable diffs)
//     and look up keys linearly — fine at config sizes;
//   * parse depth is capped (kMaxDepth) so hostile input cannot blow the
//     stack; inputs must be full documents (trailing garbage is an error);
//   * non-finite doubles serialize as null (JSON has no NaN/Inf).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace mm::json {

class Value;
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Type : std::uint8_t { null, boolean, number, string, array, object };

  Value() = default;  // null
  Value(std::nullptr_t) {}                       // NOLINT(google-explicit-constructor)
  Value(bool b) : type_(Type::boolean), bool_(b) {}  // NOLINT
  Value(double d) : type_(Type::number), num_(d) {}  // NOLINT
  Value(std::int64_t i) : type_(Type::number), is_int_(true), int_(i) {}  // NOLINT
  Value(int i) : Value(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(std::size_t u) : Value(static_cast<std::int64_t>(u)) {}  // NOLINT
  Value(std::string s) : type_(Type::string), str_(std::move(s)) {}  // NOLINT
  Value(std::string_view s) : Value(std::string(s)) {}  // NOLINT
  Value(const char* s) : Value(std::string(s)) {}       // NOLINT

  static Value array() {
    Value v;
    v.type_ = Type::array;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::object;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::null; }
  bool is_bool() const { return type_ == Type::boolean; }
  bool is_number() const { return type_ == Type::number; }
  // True only for numbers that were written/parsed without a fractional part.
  bool is_int() const { return type_ == Type::number && is_int_; }
  bool is_string() const { return type_ == Type::string; }
  bool is_array() const { return type_ == Type::array; }
  bool is_object() const { return type_ == Type::object; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_double(double fallback = 0.0) const {
    if (!is_number()) return fallback;
    return is_int_ ? static_cast<double>(int_) : num_;
  }
  std::int64_t as_int(std::int64_t fallback = 0) const {
    if (!is_number()) return fallback;
    return is_int_ ? int_ : static_cast<std::int64_t>(num_);
  }
  const std::string& as_string() const { return str_; }  // empty unless string

  // --- array -------------------------------------------------------------
  std::size_t size() const {
    return is_array() ? items_.size() : is_object() ? members_.size() : 0;
  }
  const Value& at(std::size_t i) const;  // null sentinel when out of range
  void push(Value v) {
    type_ = Type::array;
    items_.push_back(std::move(v));
  }
  const std::vector<Value>& items() const { return items_; }

  // --- object ------------------------------------------------------------
  // Null when the key is absent or this is not an object.
  const Value* find(const std::string& key) const;
  // Insert-or-assign, preserving first-insertion order.
  Value& set(std::string key, Value v);
  const std::vector<Member>& members() const { return members_; }

  // Typed lookups with fallbacks — the idiom for optional spec fields.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string get_string(const std::string& key, std::string fallback) const;

  std::string dump() const;
  void dump_to(std::string& out) const;

 private:
  Type type_ = Type::null;
  bool bool_ = false;
  bool is_int_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  std::string str_;
  std::vector<Value> items_;
  std::vector<Member> members_;
};

inline constexpr std::size_t kMaxDepth = 96;

// Escape `raw` for embedding inside a JSON string literal; quotes are NOT
// added. This is the single escaping implementation shared by every JSON
// emitter in the tree (obs snapshot/trace/flight included).
std::string escape(std::string_view raw);

// Shortest decimal form of `v` that parses back bit-identically ("1.5", not
// "1.5000000000000000"); non-finite values render as "null".
std::string dump_double(double v);

// Parse one complete JSON document; trailing non-whitespace is an error.
Expected<Value> parse(std::string_view text);

}  // namespace mm::json
