#include "stats/corr_engine.hpp"

#include <cstring>

#include "obs/trace.hpp"
#include "stats/psd.hpp"

namespace mm::stats {
namespace {

// Warm-start state is only materialized for the robust measures.
std::size_t warm_slots(const CorrEngineConfig& config, std::size_t symbols) {
  if (!config.warm_start || config.type == Ctype::pearson) return 0;
  return symbols * (symbols - 1) / 2;
}

// The unwrap arena serves the Maronna/Combined per-pair kernels; pure
// Pearson engines never read it.
std::size_t arena_size(const CorrEngineConfig& config, std::size_t symbols) {
  return config.type == Ctype::pearson ? 0 : symbols * config.window;
}

// Tag for the shard point-to-point exchange on the engine's private
// duplicated communicator (no other traffic shares that namespace).
constexpr int kShardTag = 0;

void pack_doubles(std::vector<std::uint8_t>& buf, const double* vals,
                  std::size_t count) {
  buf.resize(count * sizeof(double));
  std::memcpy(buf.data(), vals, buf.size());
}

}  // namespace

CorrelationCalculator::CorrelationCalculator(const CorrEngineConfig& config,
                                             std::size_t symbols)
    : config_(config),
      // Cross sums are only needed for Pearson (and Combined's Pearson half).
      windows_(symbols, config.window, config.type != Ctype::maronna),
      unwrap_(arena_size(config, symbols)),
      warm_(warm_slots(config, symbols), config.maronna,
            config.warm_restart_interval) {}

void CorrelationCalculator::push(const std::vector<double>& returns) {
  windows_.push(returns);
  warm_.advance();
}

void CorrelationCalculator::ensure_unwrapped() const {
  if (unwrap_step_ == windows_.steps() && unwrap_step_ > 0) return;
  windows_.unwrap_all(unwrap_.data());
  if (config_.warm_start) {
    // Per-symbol MAD-degeneracy flags, computed once per step so the warm
    // estimator doesn't rescan the windows for every pair (n scans vs n²/2).
    mad_zero_.resize(windows_.symbols());
    for (std::size_t s = 0; s < windows_.symbols(); ++s)
      mad_zero_[s] = mad_is_zero(window_view(s), windows_.window()) ? 1 : 0;
  }
  unwrap_step_ = windows_.steps();
}

double CorrelationCalculator::pair(std::size_t i, std::size_t j) const {
  MM_ASSERT_MSG(ready(), "correlation requested before window is full");
  if (config_.type == Ctype::pearson) return windows_.pearson(i, j);

  ensure_unwrapped();
  const double* x = window_view(i);
  const double* y = window_view(j);
  const std::size_t m = windows_.window();

  double robust;
  if (config_.warm_start) {
    const bool degenerate = mad_zero_[i] != 0 || mad_zero_[j] != 0;
    robust = warm_.estimate(pair_slot(symbols(), i, j), x, y, m, degenerate);
  } else {
    robust = maronna_estimate(x, y, m, config_.maronna, maronna_scratch_)
                 .correlation;
  }

  if (config_.type == Ctype::maronna) return robust;
  return combine(windows_.pearson(i, j), robust);
}

void CorrelationCalculator::matrix_into(SymMatrix& out) const {
  const std::size_t n = symbols();
  if (out.size() != n) out = SymMatrix(n, 0.0);
  if (config_.type == Ctype::pearson) {
    windows_.pearson_matrix(out);
  } else {
    out.fill_diagonal(1.0);
    // Tile-major sweep (same order the parallel engine shards): each tile
    // touches at most ~2·tile window rows, keeping the unwrap arena reads
    // cache-resident at large n.
    const std::size_t tile =
        config_.pair_tile == 0 ? n : std::min(config_.pair_tile, n);
    for (std::size_t bi = 0; bi < n; bi += tile) {
      const std::size_t iend = std::min(bi + tile, n);
      for (std::size_t bj = bi; bj < n; bj += tile) {
        const std::size_t jend = std::min(bj + tile, n);
        for (std::size_t i = bi; i < iend; ++i)
          for (std::size_t j = std::max(i + 1, bj); j < jend; ++j)
            out.set(i, j, pair(i, j));
      }
    }
  }
  // Opt-in O(n³) repair; allocates inside the eigensolver by design.
  if (config_.repair_psd && !is_psd(out)) out = nearest_psd_correlation(out);
}

SymMatrix CorrelationCalculator::matrix() const {
  SymMatrix m;
  matrix_into(m);
  return m;
}

ParallelCorrelationEngine::ParallelCorrelationEngine(mpi::Comm& comm,
                                                     const CorrEngineConfig& config,
                                                     std::size_t symbols,
                                                     obs::Registry* registry)
    : comm_(comm),
      dup_(comm.duplicate()),
      calc_(config, symbols),
      pairs_(tiled_pairs(symbols, config.pair_tile)) {
  obs::Registry& reg = registry != nullptr ? *registry : obs::Registry::global();
  h_broadcast_ = &reg.histogram("corr.step.broadcast_ns");
  h_compute_ = &reg.histogram("corr.step.compute_ns");
  h_exchange_ = &reg.histogram("corr.step.exchange_ns");
  h_assemble_ = &reg.histogram("corr.step.assemble_ns");
  // Contiguous block shards, balanced to within one pair: the first `rem`
  // ranks take one extra.
  const auto world = static_cast<std::size_t>(comm.size());
  const std::size_t base = pairs_.size() / world;
  const std::size_t rem = pairs_.size() % world;
  offsets_.resize(world + 1);
  offsets_[0] = 0;
  for (std::size_t r = 0; r < world; ++r)
    offsets_[r + 1] = offsets_[r] + base + (r < rem ? 1 : 0);
  mine_.reserve(local_pair_count());
  returns_.resize(symbols);
}

const SymMatrix& ParallelCorrelationEngine::step(const std::vector<double>& returns) {
  const std::size_t n = calc_.symbols();

  // Serial fast path: no transport, no staging — push and fill the member
  // matrix in place. Allocation-free in steady state (test_corr_alloc.cpp).
  if (comm_.size() == 1) {
    calc_.push(returns);
    if (!calc_.ready()) return matrix_;
    obs::ObsSpan span(nullptr, "corr.compute", h_compute_);
    calc_.matrix_into(matrix_);
    return matrix_;
  }

  // Rank 0's return vector is authoritative; everyone mirrors the windows so
  // no window state ever needs to move.
  {
    obs::ObsSpan span(nullptr, "corr.broadcast", h_broadcast_);
    if (comm_.rank() == 0) pack_doubles(bcast_buf_, returns.data(), n);
    dup_.bcast_bytes(bcast_buf_, 0);
    MM_ASSERT_MSG(bcast_buf_.size() == n * sizeof(double),
                  "return broadcast size mismatch");
    std::memcpy(returns_.data(), bcast_buf_.data(), bcast_buf_.size());
    calc_.push(returns_);
  }

  if (!calc_.ready()) return matrix_;

  // Compute my block of the tile-major pair order.
  {
    obs::ObsSpan span(nullptr, "corr.compute", h_compute_);
    const auto rank = static_cast<std::size_t>(comm_.rank());
    mine_.clear();
    for (std::size_t k = offsets_[rank]; k < offsets_[rank + 1]; ++k)
      mine_.push_back(calc_.pair(pairs_[k].i, pairs_[k].j));
  }

  // Ship shards to the root, which scatters them into its member matrix.
  {
    obs::ObsSpan span(nullptr, "corr.exchange", h_exchange_);
    if (comm_.rank() != 0) {
      pack_doubles(shard_buf_, mine_.data(), mine_.size());
      dup_.send(0, kShardTag, shard_buf_);
    } else {
      if (matrix_.size() != n) matrix_ = SymMatrix(n, 0.0);
      matrix_.fill_diagonal(1.0);
      for (std::size_t k = offsets_[0]; k < offsets_[1]; ++k)
        matrix_.set(pairs_[k].i, pairs_[k].j, mine_[k - offsets_[0]]);
      const auto world = static_cast<std::size_t>(comm_.size());
      for (std::size_t got = 1; got < world; ++got) {
        mpi::RecvStatus status;
        const auto payload = dup_.recv(mpi::any_source, kShardTag, &status);
        const auto owner = static_cast<std::size_t>(status.source);
        const std::size_t begin = offsets_[owner];
        const std::size_t count = offsets_[owner + 1] - begin;
        MM_ASSERT_MSG(payload.size() == count * sizeof(double),
                      "shard size mismatch");
        shard_vals_.resize(count);
        std::memcpy(shard_vals_.data(), payload.data(), payload.size());
        for (std::size_t k = 0; k < count; ++k)
          matrix_.set(pairs_[begin + k].i, pairs_[begin + k].j, shard_vals_[k]);
      }
    }
  }

  // Root repairs once (all ranks would compute the identical repair, so do
  // it before the broadcast) and ships the packed triangle; non-roots copy
  // it straight into their member matrix.
  {
    obs::ObsSpan span(nullptr, "corr.assemble", h_assemble_);
    if (comm_.rank() == 0) {
      if (calc_.config().repair_psd && !is_psd(matrix_))
        matrix_ = nearest_psd_correlation(matrix_);
      pack_doubles(mat_buf_, matrix_.packed().data(), matrix_.packed_size());
      dup_.bcast_bytes(mat_buf_, 0);
    } else {
      dup_.bcast_bytes(mat_buf_, 0);
      if (matrix_.size() != n) matrix_ = SymMatrix(n, 0.0);
      MM_ASSERT_MSG(mat_buf_.size() == matrix_.packed_size() * sizeof(double),
                    "matrix broadcast size mismatch");
      std::memcpy(matrix_.packed().data(), mat_buf_.data(), mat_buf_.size());
    }
  }
  return matrix_;
}

}  // namespace mm::stats
