// Wire records exchanged between the Fig. 1 pipeline components.
//
// Every payload starts with a one-byte record type so a port can carry more
// than one record kind (e.g. strategy -> master carries both orders and the
// end-of-day summary).
#pragma once

#include <cstdint>
#include <vector>

#include "marketdata/types.hpp"
#include "mpmini/serde.hpp"

namespace mm::engine {

enum class RecordType : std::uint8_t {
  quote_batch = 1,
  snapshot = 2,
  corr_frame = 3,
  order = 4,
  strategy_summary = 5,
  cluster_snapshot = 6,
};

// Periodic co-movement grouping from the clustering stage ([12]).
struct ClusterSnapshot {
  std::int64_t interval = 0;
  std::int32_t cluster_count = 0;
  std::vector<std::int32_t> assignment;  // cluster id per symbol

  std::vector<std::uint8_t> pack() const {
    mpi::Packer p;
    p.put<std::uint8_t>(static_cast<std::uint8_t>(RecordType::cluster_snapshot));
    p.put<std::int64_t>(interval);
    p.put<std::int32_t>(cluster_count);
    p.put_vector(assignment);
    return p.take();
  }
  static ClusterSnapshot unpack(mpi::Unpacker& u) {
    ClusterSnapshot s;
    s.interval = u.get<std::int64_t>();
    s.cluster_count = u.get<std::int32_t>();
    s.assignment = u.get_vector<std::int32_t>();
    return s;
  }
};

// A batch of raw or cleaned quotes moving down the collector/cleaner stages.
struct QuoteBatch {
  std::vector<md::Quote> quotes;

  std::vector<std::uint8_t> pack() const {
    mpi::Packer p;
    p.put<std::uint8_t>(static_cast<std::uint8_t>(RecordType::quote_batch));
    p.put_vector(quotes);
    return p.take();
  }
  static QuoteBatch unpack(mpi::Unpacker& u) {
    QuoteBatch b;
    b.quotes = u.get_vector<md::Quote>();
    return b;
  }
};

// End-of-interval market snapshot from the bar/technical-analysis stage:
// BAM price and one-interval log-return per symbol.
struct Snapshot {
  std::int64_t interval = 0;
  std::vector<double> prices;
  std::vector<double> returns;  // empty at interval 0

  std::vector<std::uint8_t> pack() const {
    mpi::Packer p;
    p.put<std::uint8_t>(static_cast<std::uint8_t>(RecordType::snapshot));
    p.put<std::int64_t>(interval);
    p.put_vector(prices);
    p.put_vector(returns);
    return p.take();
  }
  static Snapshot unpack(mpi::Unpacker& u) {
    Snapshot s;
    s.interval = u.get<std::int64_t>();
    s.prices = u.get_vector<double>();
    s.returns = u.get_vector<double>();
    return s;
  }
};

// Correlation engine output: prices plus the pairwise coefficients (canonical
// i<j order) for the measures the strategies downstream need.
struct CorrFrame {
  std::int64_t interval = 0;
  bool valid = false;  // false until the M-window has filled
  std::vector<double> prices;
  std::vector<double> pearson;
  std::vector<double> maronna;  // empty when no robust consumer exists

  std::vector<std::uint8_t> pack() const {
    mpi::Packer p;
    p.put<std::uint8_t>(static_cast<std::uint8_t>(RecordType::corr_frame));
    p.put<std::int64_t>(interval);
    p.put<std::uint8_t>(valid ? 1 : 0);
    p.put_vector(prices);
    p.put_vector(pearson);
    p.put_vector(maronna);
    return p.take();
  }
  static CorrFrame unpack(mpi::Unpacker& u) {
    CorrFrame f;
    f.interval = u.get<std::int64_t>();
    f.valid = u.get<std::uint8_t>() != 0;
    f.prices = u.get_vector<double>();
    f.pearson = u.get_vector<double>();
    f.maronna = u.get_vector<double>();
    return f;
  }
};

// One order request flowing to the master (Fig. 1's right edge).
struct Order {
  std::int64_t interval = 0;
  std::int32_t strategy_id = 0;
  std::uint32_t symbol_i = 0;
  std::uint32_t symbol_j = 0;
  double shares_i = 0.0;  // signed deltas to apply (entry: open, exit: unwind)
  double shares_j = 0.0;
  double price_i = 0.0;
  double price_j = 0.0;
  std::uint8_t is_entry = 0;

  std::vector<std::uint8_t> pack() const {
    mpi::Packer p;
    p.put<std::uint8_t>(static_cast<std::uint8_t>(RecordType::order));
    p.put(*this);
    return p.take();
  }
  static Order unpack(mpi::Unpacker& u) { return u.get<Order>(); }
};

// End-of-day totals from one strategy node.
struct StrategySummary {
  std::int32_t strategy_id = 0;
  std::uint64_t trades = 0;
  double total_pnl = 0.0;
  std::vector<double> trade_returns;

  std::vector<std::uint8_t> pack() const {
    mpi::Packer p;
    p.put<std::uint8_t>(static_cast<std::uint8_t>(RecordType::strategy_summary));
    p.put<std::int32_t>(strategy_id);
    p.put<std::uint64_t>(trades);
    p.put<double>(total_pnl);
    p.put_vector(trade_returns);
    return p.take();
  }
  static StrategySummary unpack(mpi::Unpacker& u) {
    StrategySummary s;
    s.strategy_id = u.get<std::int32_t>();
    s.trades = u.get<std::uint64_t>();
    s.total_pnl = u.get<double>();
    s.trade_returns = u.get_vector<double>();
    return s;
  }
};

inline RecordType peek_type(const std::vector<std::uint8_t>& bytes) {
  mpi::Unpacker u(bytes);
  return static_cast<RecordType>(u.get<std::uint8_t>());
}

}  // namespace mm::engine
