# Empty dependencies file for test_psd.
# This may be replaced when dependencies are built.
