// Bootstrap resampling — nonparametric confidence intervals for the
// treatment comparisons (§V's "more rigorous standard of statistical
// significance" without distributional assumptions; the cross-pair samples
// are heavy-tailed, so percentile intervals complement the t-test).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace mm::stats {

struct BootstrapInterval {
  double estimate = 0.0;  // statistic on the original sample
  double lo = 0.0;        // percentile CI bounds
  double hi = 0.0;
  double confidence = 0.95;
  int resamples = 0;

  // A difference is "significant" at this confidence when 0 lies outside.
  bool excludes_zero() const { return lo > 0.0 || hi < 0.0; }
};

// Percentile bootstrap of `statistic` over iid resamples of `sample`.
// Deterministic in `seed`.
BootstrapInterval bootstrap_ci(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    int resamples = 2000, double confidence = 0.95, std::uint64_t seed = 1);

// Convenience: CI for the mean of paired differences x - y (the effect the
// significance report cares about). Resamples pairs jointly.
BootstrapInterval bootstrap_mean_diff_ci(const std::vector<double>& x,
                                         const std::vector<double>& y,
                                         int resamples = 2000,
                                         double confidence = 0.95,
                                         std::uint64_t seed = 1);

}  // namespace mm::stats
