
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpmini/comm.cpp" "src/mpmini/CMakeFiles/mm_mpmini.dir/comm.cpp.o" "gcc" "src/mpmini/CMakeFiles/mm_mpmini.dir/comm.cpp.o.d"
  "/root/repo/src/mpmini/environment.cpp" "src/mpmini/CMakeFiles/mm_mpmini.dir/environment.cpp.o" "gcc" "src/mpmini/CMakeFiles/mm_mpmini.dir/environment.cpp.o.d"
  "/root/repo/src/mpmini/mailbox.cpp" "src/mpmini/CMakeFiles/mm_mpmini.dir/mailbox.cpp.o" "gcc" "src/mpmini/CMakeFiles/mm_mpmini.dir/mailbox.cpp.o.d"
  "/root/repo/src/mpmini/request.cpp" "src/mpmini/CMakeFiles/mm_mpmini.dir/request.cpp.o" "gcc" "src/mpmini/CMakeFiles/mm_mpmini.dir/request.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
