// Multi-process socket transport: MPI semantics across real process
// boundaries, bit-identical pipeline results vs the in-process run, trace
// stitching over the wire, and the env-knob validation that guards the
// transport selection.
//
// The fork harness binds the rendezvous listener BEFORE forking and hands the
// fd to the rank-0 child (Rendezvous::listen_fd), so there is no port race;
// children run their rank under the socket transport and _exit so gtest's
// machinery never runs twice.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "engine/pipeline.hpp"
#include "marketdata/generator.hpp"
#include "marketdata/symbols.hpp"
#include "mpmini/environment.hpp"
#include "mpmini/socket_transport.hpp"
#include "mpmini/wait.hpp"
#include "obs/trace.hpp"
#include "wire/socket.hpp"

namespace mm::mpi {
namespace {

// In-child assertion: gtest failures cannot propagate across _exit, so a
// failed check aborts the child with a nonzero status the parent's EXPECT
// sees.
#define CHILD_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHILD_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                        \
      _exit(2);                                                             \
    }                                                                       \
  } while (0)

// Fork one process per rank; each child runs `child(rz)` — typically
// Environment::run_rendezvous or run_pipeline with the rendezvous set — and
// the string returned by rank `report_rank` is streamed up a pipe into
// `report`. Returns false when any child exited abnormally.
bool fork_ranks(int world_size, int report_rank,
                const std::function<std::string(const Rendezvous&)>& child,
                std::string* report = nullptr) {
  std::uint16_t port = 0;
  auto listener = wire::tcp_listen("127.0.0.1", 0, &port);
  if (!listener.has_value()) {
    ADD_FAILURE() << "rendezvous bind failed: " << listener.error().to_string();
    return false;
  }

  int pipe_fds[2] = {-1, -1};
  if (pipe(pipe_fds) != 0) {
    ADD_FAILURE() << "pipe failed";
    return false;
  }

  std::vector<pid_t> children;
  for (int rank = 0; rank < world_size; ++rank) {
    const pid_t pid = fork();
    if (pid < 0) {
      ADD_FAILURE() << "fork failed";
      for (const pid_t c : children) kill(c, SIGKILL);
      return false;
    }
    if (pid == 0) {
      ::close(pipe_fds[0]);
      Rendezvous rz;
      rz.rank = rank;
      rz.port = port;
      if (rank == 0) rz.listen_fd = listener.value().release();
      int code = 0;
      try {
        const std::string out = child(rz);
        if (rank == report_rank) {
          std::size_t at = 0;
          while (at < out.size()) {
            const ssize_t n =
                write(pipe_fds[1], out.data() + at, out.size() - at);
            if (n <= 0) break;
            at += static_cast<std::size_t>(n);
          }
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "rank %d died: %s\n", rank, e.what());
        code = 1;
      } catch (...) {
        code = 1;
      }
      ::close(pipe_fds[1]);
      _exit(code);
    }
    children.push_back(pid);
  }

  listener.value().close();
  ::close(pipe_fds[1]);
  std::string collected;
  char buf[4096];
  ssize_t n = 0;
  while ((n = read(pipe_fds[0], buf, sizeof(buf))) > 0)
    collected.append(buf, static_cast<std::size_t>(n));
  ::close(pipe_fds[0]);
  if (report != nullptr) *report = std::move(collected);

  bool all_ok = true;
  for (std::size_t i = 0; i < children.size(); ++i) {
    int status = 0;
    waitpid(children[i], &status, 0);
    const bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    EXPECT_TRUE(ok) << "rank " << i << " exited abnormally (status " << status
                    << ")";
    all_ok = all_ok && ok;
  }
  return all_ok;
}

// Convenience wrapper for tests whose children just run a rank main.
bool fork_world(int world_size, const std::function<void(Comm&)>& rank_main) {
  return fork_ranks(world_size, 0, [&](const Rendezvous& rz) {
    Environment::run_rendezvous(rz, world_size, rank_main);
    return std::string{};
  });
}

// --- point-to-point semantics across processes ---------------------------

TEST(SocketTransport, PointToPointSemanticsSurviveTheWire) {
  const bool ok = fork_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      // Tagged sends out of order; FIFO within a (source, tag) stream.
      comm.send(1, 7, {1});
      comm.send(1, 9, {2, 2});
      comm.send(1, 7, {3});
      comm.send_value<std::uint64_t>(1, 11, 0xDEADBEEFCAFEF00Dull);
      // Reply path.
      const auto echo = comm.recv(1, 21);
      CHILD_CHECK(echo.size() == 2 && echo[0] == 2 && echo[1] == 2);
    } else {
      // Tag selectivity: drain tag 9 first even though 7 arrived first.
      auto b = comm.recv(0, 9);
      CHILD_CHECK(b.size() == 2);
      // Probe reports the tag-7 stream head without consuming it.
      const RecvStatus head = comm.probe(0, 7);
      CHILD_CHECK(head.byte_count == 1);
      const auto first = comm.recv(head.source, head.tag);
      CHILD_CHECK(first.size() == 1 && first[0] == 1);
      const auto second = comm.recv(0, 7);
      CHILD_CHECK(second.size() == 1 && second[0] == 3);
      const auto v = comm.recv_value<std::uint64_t>(0, 11);
      CHILD_CHECK(v == 0xDEADBEEFCAFEF00Dull);
      // Deadline variant: nothing else is coming on tag 99.
      const auto none = comm.recv_for(std::chrono::milliseconds{30}, 0, 99);
      CHILD_CHECK(!none.has_value());
      CHILD_CHECK(none.error().code == Errc::timeout);
      comm.send(0, 21, std::move(b));
    }
  });
  EXPECT_TRUE(ok);
}

TEST(SocketTransport, CollectivesAgreeAcrossProcesses) {
  const bool ok = fork_world(3, [](Comm& comm) {
    comm.barrier();

    // bcast: root 1's bytes arrive everywhere.
    std::vector<std::uint8_t> buf;
    if (comm.rank() == 1) buf = {42, 43, 44};
    comm.bcast_bytes(buf, 1);
    CHILD_CHECK(buf.size() == 3 && buf[0] == 42 && buf[2] == 44);

    // gather at root 0 in rank order.
    const auto mine = std::vector<std::uint8_t>{
        static_cast<std::uint8_t>(10 + comm.rank())};
    const auto rows = comm.gather_bytes(mine, 0);
    if (comm.rank() == 0) {
      CHILD_CHECK(rows.size() == 3);
      for (int r = 0; r < 3; ++r)
        CHILD_CHECK(rows[static_cast<std::size_t>(r)][0] == 10 + r);
    } else {
      CHILD_CHECK(rows.empty());
    }

    // allgather: everyone sees everyone.
    const auto all = comm.allgather_bytes(mine);
    CHILD_CHECK(all.size() == 3);
    for (int r = 0; r < 3; ++r)
      CHILD_CHECK(all[static_cast<std::size_t>(r)][0] == 10 + r);

    // split: {0,2} vs {1}; comm ids agree across processes because
    // collectives allocate at rank 0 and broadcast.
    Comm half = comm.split(comm.rank() % 2, comm.rank());
    CHILD_CHECK(half.size() == (comm.rank() % 2 == 0 ? 2 : 1));
    if (comm.rank() % 2 == 0) {
      std::vector<std::uint8_t> probe{static_cast<std::uint8_t>(comm.rank())};
      half.bcast_bytes(probe, 0);
      CHILD_CHECK(probe[0] == 0);  // world rank 0 is color-0's root
    }
    comm.barrier();
  });
  EXPECT_TRUE(ok);
}

// --- trace-context stitching across processes ----------------------------

TEST(SocketTransport, EnvelopeTraceHeaderSurvivesTheWire) {
  constexpr std::uint64_t kRootTrace = 0x5157495245ull;  // arbitrary nonzero
  constexpr int kSends = 4;
  const bool ok = fork_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      obs::TraceSink sink(256);
      obs::TraceRing& ring = sink.ring(0, "rank0");
      obs::TraceRingScope ring_scope(&ring);
      obs::TraceContextScope context(obs::make_trace_context(kRootTrace));
      for (int i = 0; i < kSends; ++i)
        comm.send(1, 5, {static_cast<std::uint8_t>(i)});
#if MM_OBS_ENABLED
      // One flow start per logical send on the sender's side.
      CHILD_CHECK(sink.total_flow_starts() ==
                  static_cast<std::uint64_t>(kSends));
#endif
    } else {
      obs::TraceSink sink(256);
      obs::TraceRing& ring = sink.ring(1, "rank1");
      obs::TraceRingScope ring_scope(&ring);
      std::uint32_t last_flow = 0;
      for (int i = 0; i < kSends; ++i) {
        RecvStatus status;
        const auto payload = comm.recv(0, 5, &status);
        CHILD_CHECK(payload.size() == 1 &&
                    payload[0] == static_cast<std::uint8_t>(i));
#if MM_OBS_ENABLED
        // The envelope header crossed the process boundary intact: the
        // sender's trace id, and a fresh flow id per send.
        CHILD_CHECK(status.trace_id == kRootTrace);
        CHILD_CHECK(status.flow != 0);
        CHILD_CHECK(status.flow != last_flow);
        last_flow = status.flow;
#endif
      }
#if MM_OBS_ENABLED
      // Exactly one flow finish per logical send on the receiver's side.
      CHILD_CHECK(sink.total_flow_finishes() ==
                  static_cast<std::uint64_t>(kSends));
#endif
      (void)last_flow;
    }
  });
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace mm::mpi

// --- multi-process pipeline vs in-process run ------------------------------

namespace mm::engine {
namespace {

core::StrategyParams demo_params() {
  core::StrategyParams p = core::ParamGrid::base();
  p.divergence = 0.0005;
  return p;
}

// Canonical, bit-exact textual image of the parts of a PipelineResult the
// master rank owns. Doubles print as hex floats: equality means the BITS
// match, not just a rounding neighborhood.
std::string summarize(const PipelineResult& r) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "orders=%llu trades=%llu pnl=%a\n",
                static_cast<unsigned long long>(r.master.orders),
                static_cast<unsigned long long>(r.master.trades),
                r.master.total_pnl);
  out += line;
  for (const auto& s : r.master.strategy_summaries) {
    std::snprintf(line, sizeof(line), "strategy=%d trades=%llu pnl=%a\n",
                  s.strategy_id, static_cast<unsigned long long>(s.trades),
                  s.total_pnl);
    out += line;
  }
  std::snprintf(line, sizeof(line), "degraded=%d\n", r.degraded ? 1 : 0);
  out += line;
  return out;
}

TEST(SocketTransportPipeline, MultiProcessRunIsBitIdenticalToInProcess) {
  constexpr std::size_t kSymbols = 5;
  const md::Universe universe = md::make_universe(kSymbols);
  md::GeneratorConfig generator;
  generator.quote_rate = 0.15;

  PipelineConfig config;
  config.symbols = kSymbols;
  config.strategies = {demo_params()};
  // collector, cleaner, snapshot, correlation, strategy-0, master
  constexpr int kRanks = 6;
  constexpr int kMasterRank = kRanks - 1;

  // Reference: the classic thread-per-rank run.
  const md::SyntheticDay day(universe, generator, 0);
  const PipelineResult reference =
      run_pipeline(config, universe, day.quotes());
  const std::string expect = summarize(reference);
  ASSERT_GT(reference.master.orders, 0u);

  // Same graph, one process per rank. Every child regenerates the identical
  // day (deterministic generator) and runs its slice; the master-rank child
  // reports the canonical summary up the pipe.
  std::string got;
  const bool ok = mpi::fork_ranks(
      kRanks, kMasterRank,
      [&](const mpi::Rendezvous& rz) {
        PipelineConfig local = config;
        local.rendezvous = &rz;
        const md::SyntheticDay local_day(universe, generator, 0);
        const PipelineResult result =
            run_pipeline(local, universe, local_day.quotes());
        return summarize(result);
      },
      &got);
  ASSERT_TRUE(ok);
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace mm::engine

// --- env-knob validation ----------------------------------------------------

namespace mm::mpi {
namespace {

TEST(TransportEnv, DefaultsWhenUnset) {
  const TransportEnv env =
      parse_transport_env(nullptr, nullptr, nullptr, nullptr, 8);
  EXPECT_EQ(env.transport, TransportMode::ring);
  EXPECT_EQ(env.spin.iterations, 512u);
  EXPECT_EQ(env.ring_capacity, 256u);
  EXPECT_FALSE(env.pin);
  EXPECT_TRUE(env.warnings.empty());
}

TEST(TransportEnv, ValidValuesParse) {
  const TransportEnv env = parse_transport_env("socket", "1024", "64", "1", 8);
  EXPECT_EQ(env.transport, TransportMode::socket);
  EXPECT_EQ(env.spin.iterations, 1024u);
  EXPECT_EQ(env.ring_capacity, 64u);
  EXPECT_TRUE(env.pin);
  EXPECT_TRUE(env.warnings.empty());
}

TEST(TransportEnv, GarbageTransportWarnsAndFallsBackToRing) {
  const TransportEnv env =
      parse_transport_env("shared-memory", nullptr, nullptr, nullptr, 8);
  EXPECT_EQ(env.transport, TransportMode::ring);
  ASSERT_EQ(env.warnings.size(), 1u);
  EXPECT_NE(env.warnings[0].find("MM_MPMINI_TRANSPORT"), std::string::npos);
}

TEST(TransportEnv, GarbageSpinWarnsAndKeepsDefault) {
  for (const char* bad : {"fast", "-1", "512k", "4294967296000"}) {
    const TransportEnv env =
        parse_transport_env(nullptr, bad, nullptr, nullptr, 8);
    EXPECT_EQ(env.spin.iterations, 512u) << bad;
    ASSERT_EQ(env.warnings.size(), 1u) << bad;
    EXPECT_NE(env.warnings[0].find("MM_MPMINI_SPIN"), std::string::npos) << bad;
  }
  // Zero is a legal value (park immediately), not garbage.
  const TransportEnv zero =
      parse_transport_env(nullptr, "0", nullptr, nullptr, 8);
  EXPECT_EQ(zero.spin.iterations, 0u);
  EXPECT_TRUE(zero.warnings.empty());
}

TEST(TransportEnv, RingCapGarbageAndClamping) {
  const TransportEnv garbage =
      parse_transport_env(nullptr, nullptr, "lots", nullptr, 8);
  EXPECT_EQ(garbage.ring_capacity, 256u);
  ASSERT_EQ(garbage.warnings.size(), 1u);

  const TransportEnv low =
      parse_transport_env(nullptr, nullptr, "1", nullptr, 8);
  EXPECT_EQ(low.ring_capacity, 2u);
  EXPECT_EQ(low.warnings.size(), 1u);

  const TransportEnv high =
      parse_transport_env(nullptr, nullptr, "99999999999", nullptr, 8);
  EXPECT_EQ(high.ring_capacity, std::uint64_t{1} << 20);
  EXPECT_EQ(high.warnings.size(), 1u);

  const TransportEnv fine =
      parse_transport_env(nullptr, nullptr, "1024", nullptr, 8);
  EXPECT_EQ(fine.ring_capacity, 1024u);
  EXPECT_TRUE(fine.warnings.empty());
}

TEST(TransportEnv, BadPinWarnsAndStaysOff) {
  const TransportEnv env =
      parse_transport_env(nullptr, nullptr, nullptr, "yes", 8);
  EXPECT_FALSE(env.pin);
  ASSERT_EQ(env.warnings.size(), 1u);
  EXPECT_NE(env.warnings[0].find("MM_MPMINI_PIN"), std::string::npos);
}

TEST(TransportEnv, SingleCoreHostGetsShortYieldOnlySpin) {
  const TransportEnv env =
      parse_transport_env(nullptr, nullptr, nullptr, nullptr, 1);
  EXPECT_EQ(env.spin.iterations, 16u);
  EXPECT_EQ(env.spin.pause_share, 0u);
}

TEST(TransportEnv, MultipleBadKnobsAccumulateWarnings) {
  const TransportEnv env = parse_transport_env("tcp", "soon", "zero", "y", 8);
  EXPECT_EQ(env.warnings.size(), 4u);
  EXPECT_EQ(env.transport, TransportMode::ring);
  EXPECT_EQ(env.spin.iterations, 512u);
  EXPECT_EQ(env.ring_capacity, 256u);
  EXPECT_FALSE(env.pin);
}

TEST(RendezvousEnv, ParsesAndRejects) {
  setenv("MM_MPMINI_RANK", "2", 1);
  setenv("MM_MPMINI_RENDEZVOUS", "10.0.0.5:9400", 1);
  auto rz = rendezvous_from_env();
  ASSERT_TRUE(rz.has_value()) << rz.error().to_string();
  EXPECT_EQ(rz.value().rank, 2);
  EXPECT_EQ(rz.value().host, "10.0.0.5");
  EXPECT_EQ(rz.value().port, 9400);

  setenv("MM_MPMINI_RENDEZVOUS", "no-port-here", 1);
  EXPECT_FALSE(rendezvous_from_env().has_value());
  setenv("MM_MPMINI_RENDEZVOUS", "host:0", 1);
  EXPECT_FALSE(rendezvous_from_env().has_value());
  setenv("MM_MPMINI_RENDEZVOUS", "host:9400", 1);
  setenv("MM_MPMINI_RANK", "minus-one", 1);
  EXPECT_FALSE(rendezvous_from_env().has_value());
  unsetenv("MM_MPMINI_RANK");
  EXPECT_FALSE(rendezvous_from_env().has_value());
  unsetenv("MM_MPMINI_RENDEZVOUS");
}

}  // namespace
}  // namespace mm::mpi
