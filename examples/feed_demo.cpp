// Wire-format feed demo: one synthetic trading day, served both ways.
//
// TCP (reliable): a TcpFeedServer resolves day keys to quotes; a
// WireQuoteSource connects, subscribes with a hello, and drains the framed
// stream through the zero-copy parser. The demo asserts the received day is
// quote-for-quote identical to the served one.
//
// UDP (lossy): a UdpPublisher blasts the same day as sequenced datagrams to a
// UdpReceiver on loopback, which dedups/reorders and reports damage. On
// loopback nothing is lost, so the demo asserts a byte-perfect day here too.
//
// Prints FEED_DEMO_OK and exits 0 when both paths delivered the day intact;
// exits 1 otherwise. CI runs this as part of the transport-smoke job.
#include <cstdio>
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "marketdata/generator.hpp"
#include "marketdata/symbols.hpp"
#include "wire/feed.hpp"
#include "wire/quote_source.hpp"

namespace {

using namespace mm;

// Field-wise compare: md::Quote has padding, so memcmp would read junk.
bool same_day(const std::vector<md::Quote>& a, const std::vector<md::Quote>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const md::Quote& x = a[i];
    const md::Quote& y = b[i];
    if (x.ts_ms != y.ts_ms || x.symbol != y.symbol || x.bid != y.bid ||
        x.ask != y.ask || x.bid_size != y.bid_size || x.ask_size != y.ask_size)
      return false;
  }
  return true;
}

}  // namespace

int main() {
  // One deterministic synthetic day, same generator the pipeline uses.
  const md::Universe universe = md::make_universe(8);
  md::GeneratorConfig generator;
  generator.seed = 7;
  generator.quote_rate = 0.15;
  const md::SyntheticDay synthetic(universe, generator, 0);
  const std::vector<md::Quote> day = synthetic.quotes();
  std::printf("serving %zu quotes across %zu symbols\n", day.size(),
              universe.sector.size());

  // --- TCP: subscribe by key, stream, end_of_day ---------------------------
  wire::TcpFeedServer server(
      [&](const std::string& key) -> Expected<std::vector<md::Quote>> {
        if (key != "demo/day0")
          return Error(Errc::not_found, "unknown key " + key);
        return day;
      });
  if (auto started = server.start(); !started.has_value()) {
    std::fprintf(stderr, "tcp server start failed: %s\n",
                 started.error().message.c_str());
    return 1;
  }
  auto source = wire::WireQuoteSource::connect("127.0.0.1", server.port(),
                                               "demo/day0");
  if (!source.has_value()) {
    std::fprintf(stderr, "tcp connect failed: %s\n",
                 source.error().message.c_str());
    return 1;
  }
  std::vector<md::Quote> via_tcp;
  via_tcp.reserve(day.size());
  while (const auto q = source.value()->next()) via_tcp.push_back(*q);
  if (source.value()->failed() || !same_day(day, via_tcp)) {
    std::fprintf(stderr, "tcp stream mismatch: %s\n",
                 source.value()->error().c_str());
    return 1;
  }
  const auto& tcp_stats = source.value()->stats();
  std::printf("tcp: %llu quotes, %llu heartbeats, session %llu\n",
              static_cast<unsigned long long>(tcp_stats.quotes),
              static_cast<unsigned long long>(tcp_stats.heartbeats),
              static_cast<unsigned long long>(source.value()->session()));
  server.stop();

  // --- UDP: sequenced datagrams on loopback --------------------------------
  // UDP is the lossy path: a full day blasted at memory speed overflows the
  // kernel socket buffer and the gaps are counted, not repaired. The demo
  // publishes a slice that fits the default buffer so loopback delivery is
  // complete and the intactness assertion is meaningful.
  const std::vector<md::Quote> slice(day.begin(),
                                     day.begin() + std::min<std::size_t>(
                                                       day.size(), 2048));
  wire::UdpReceiver receiver;
  if (auto bound = receiver.bind(); !bound.has_value()) {
    std::fprintf(stderr, "udp bind failed: %s\n", bound.error().message.c_str());
    return 1;
  }
  wire::UdpPublisher publisher("127.0.0.1", receiver.port());
  // Publish from a second thread so the receiver drains while datagrams are
  // still in flight.
  std::thread sender([&] { (void)publisher.publish_day(1, slice); });
  auto via_udp = receiver.receive_day();
  sender.join();
  if (!via_udp.has_value()) {
    std::fprintf(stderr, "udp receive failed: %s\n",
                 via_udp.error().message.c_str());
    return 1;
  }
  const auto& udp_stats = receiver.stats();
  std::printf("udp: %llu datagrams, %llu quotes, %llu gaps\n",
              static_cast<unsigned long long>(udp_stats.datagrams),
              static_cast<unsigned long long>(udp_stats.quotes),
              static_cast<unsigned long long>(udp_stats.gaps));
  if (!same_day(slice, via_udp.value())) {
    std::fprintf(stderr, "udp day mismatch (%zu of %zu quotes, %llu gaps)\n",
                 via_udp.value().size(), slice.size(),
                 static_cast<unsigned long long>(udp_stats.gaps));
    return 1;
  }

  std::printf("FEED_DEMO_OK\n");
  return 0;
}
