#include "core/portfolio.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace mm::core {

Portfolio::Portfolio(double initial_cash) : cash_(initial_cash) {}

void Portfolio::apply_fill(std::uint32_t symbol, double shares, double price) {
  MM_ASSERT_MSG(price > 0.0, "fill price must be positive");
  cash_ -= shares * price;
  positions_[symbol] += shares;
  marks_[symbol] = price;
  // Clean up fully closed positions so flat() is exact.
  if (std::abs(positions_[symbol]) < 1e-12) positions_.erase(symbol);
}

void Portfolio::mark(std::uint32_t symbol, double price) {
  MM_ASSERT_MSG(price > 0.0, "mark price must be positive");
  marks_[symbol] = price;
}

double Portfolio::position(std::uint32_t symbol) const {
  const auto it = positions_.find(symbol);
  return it == positions_.end() ? 0.0 : it->second;
}

double Portfolio::last_price(std::uint32_t symbol) const {
  const auto it = marks_.find(symbol);
  return it == marks_.end() ? 0.0 : it->second;
}

double Portfolio::equity() const {
  double total = cash_;
  for (const auto& [symbol, shares] : positions_) {
    const auto it = marks_.find(symbol);
    MM_ASSERT_MSG(it != marks_.end(), "position without a mark");
    total += shares * it->second;
  }
  return total;
}

double Portfolio::gross_exposure() const {
  double total = 0.0;
  for (const auto& [symbol, shares] : positions_) {
    const auto it = marks_.find(symbol);
    total += std::abs(shares) * it->second;
  }
  return total;
}

double Portfolio::net_exposure() const {
  double total = 0.0;
  for (const auto& [symbol, shares] : positions_) {
    const auto it = marks_.find(symbol);
    total += shares * it->second;
  }
  return total;
}

bool Portfolio::flat() const { return positions_.empty(); }

std::vector<EquityPoint> simulate_portfolio(
    const std::vector<TaggedTrade>& trades,
    const std::vector<std::vector<double>>& bam, double initial_cash) {
  MM_ASSERT_MSG(!bam.empty(), "simulate_portfolio needs price series");
  const auto smax = static_cast<std::int64_t>(bam[0].size());
  const std::size_t symbols = bam.size();

  // Fill events, sorted by interval.
  struct Fill {
    std::int64_t interval;
    std::uint32_t symbol;
    double shares;
    double price;
  };
  std::vector<Fill> fills;
  fills.reserve(trades.size() * 4);
  for (const auto& tagged : trades) {
    const Trade& t = tagged.trade;
    fills.push_back({t.entry_interval, tagged.pair.i, t.shares_i, t.entry_price_i});
    fills.push_back({t.entry_interval, tagged.pair.j, t.shares_j, t.entry_price_j});
    fills.push_back({t.exit_interval, tagged.pair.i, -t.shares_i, t.exit_price_i});
    fills.push_back({t.exit_interval, tagged.pair.j, -t.shares_j, t.exit_price_j});
  }
  std::stable_sort(fills.begin(), fills.end(),
                   [](const Fill& a, const Fill& b) { return a.interval < b.interval; });

  Portfolio book(initial_cash);
  std::vector<EquityPoint> curve;
  curve.reserve(static_cast<std::size_t>(smax));
  std::size_t next_fill = 0;
  for (std::int64_t s = 0; s < smax; ++s) {
    for (; next_fill < fills.size() && fills[next_fill].interval == s; ++next_fill) {
      const Fill& f = fills[next_fill];
      book.apply_fill(f.symbol, f.shares, f.price);
    }
    for (std::uint32_t i = 0; i < symbols; ++i)
      book.mark(i, bam[i][static_cast<std::size_t>(s)]);
    curve.push_back({s, book.equity(), book.gross_exposure()});
  }
  MM_ASSERT_MSG(book.flat(), "every trade closes, so the final book is flat");
  return curve;
}

std::string render_equity_curve(const std::vector<EquityPoint>& curve,
                                std::size_t width, std::size_t rows) {
  MM_ASSERT(!curve.empty());
  MM_ASSERT(width >= 10 && rows >= 4);

  double lo = curve[0].equity, hi = curve[0].equity;
  for (const auto& p : curve) {
    lo = std::min(lo, p.equity);
    hi = std::max(hi, p.equity);
  }
  if (hi - lo < 1e-9) hi = lo + 1.0;

  // Downsample to `width` columns (last value in each bucket).
  std::vector<double> cols(width, lo);
  for (std::size_t c = 0; c < width; ++c) {
    const std::size_t index =
        std::min(curve.size() - 1, c * curve.size() / width + curve.size() / width / 2);
    cols[c] = curve[index].equity;
  }

  std::string out;
  for (std::size_t r = 0; r < rows; ++r) {
    const double level = hi - (hi - lo) * static_cast<double>(r) /
                                  static_cast<double>(rows - 1);
    out += format("%12.2f |", level);
    for (std::size_t c = 0; c < width; ++c) {
      const double cell_hi = hi - (hi - lo) * (static_cast<double>(r) - 0.5) /
                                      static_cast<double>(rows - 1);
      const double cell_lo = hi - (hi - lo) * (static_cast<double>(r) + 0.5) /
                                      static_cast<double>(rows - 1);
      out += (cols[c] <= cell_hi && cols[c] > cell_lo) ? '*' : ' ';
    }
    out += '\n';
  }
  out += format("%12s +%s\n", "", std::string(width, '-').c_str());
  return out;
}

}  // namespace mm::core
