file(REMOVE_RECURSE
  "CMakeFiles/repro_table5.dir/repro_table5.cpp.o"
  "CMakeFiles/repro_table5.dir/repro_table5.cpp.o.d"
  "repro_table5"
  "repro_table5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_table5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
