#include "core/optimizer.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "stats/descriptive.hpp"

namespace mm::core {

const char* to_string(Objective objective) {
  switch (objective) {
    case Objective::mean_return: return "mean_return";
    case Objective::sharpe: return "sharpe";
    case Objective::drawdown: return "drawdown";
    case Objective::win_loss: return "win_loss";
  }
  return "?";
}

Expected<Objective> parse_objective(const std::string& name) {
  if (name == "mean_return") return Objective::mean_return;
  if (name == "sharpe") return Objective::sharpe;
  if (name == "drawdown") return Objective::drawdown;
  if (name == "win_loss") return Objective::win_loss;
  return Error(Errc::invalid_argument, "unknown objective: " + name);
}

OptimizerResult rank_levels(const ExperimentResult& result, const ParamGrid& grid,
                            Objective objective) {
  const auto& levels = grid.levels();
  MM_ASSERT_MSG(!result.level_monthly_return_plus1[0].empty(),
                "rank_levels needs keep_level_detail = true");
  MM_ASSERT(result.level_monthly_return_plus1[0].size() == levels.size());

  OptimizerResult out;
  out.objective = objective;
  for (std::size_t c = 0; c < 3; ++c) {
    auto& ranked = out.ranked[c];
    ranked.reserve(levels.size());
    for (std::size_t l = 0; l < levels.size(); ++l) {
      const auto& returns = result.level_monthly_return_plus1[c][l];
      const auto& drawdowns = result.level_max_daily_drawdown[c][l];
      const auto& win_losses = result.level_win_loss[c][l];

      LevelScore score;
      score.level_index = l;
      score.params = levels[l];
      score.params.ctype = stats::all_ctypes[c];
      score.mean_return_plus1 = stats::mean(returns);
      score.return_stddev = returns.size() >= 2 ? stats::stddev(returns) : 0.0;
      score.sharpe = score.return_stddev > 0.0
                         ? score.mean_return_plus1 / score.return_stddev
                         : 0.0;
      score.mean_drawdown = stats::mean(drawdowns);
      score.mean_win_loss = stats::mean(win_losses);

      switch (objective) {
        case Objective::mean_return:
          score.score = score.mean_return_plus1;
          break;
        case Objective::sharpe:
          score.score = score.sharpe;
          break;
        case Objective::drawdown:
          score.score = -score.mean_drawdown;  // lower is better
          break;
        case Objective::win_loss:
          score.score = score.mean_win_loss;
          break;
      }
      ranked.push_back(score);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const LevelScore& a, const LevelScore& b) {
                       return a.score > b.score;
                     });
  }
  return out;
}

std::string render_optimizer_report(const OptimizerResult& result, std::size_t top_n) {
  std::string out =
      format("parameter-set ranking by objective '%s'\n", to_string(result.objective));
  for (std::size_t c = 0; c < 3; ++c) {
    out += format("\n%s:\n", stats::to_string(stats::all_ctypes[c]));
    out += format("  %4s %10s %9s %8s %8s %7s  %s\n", "rank", "ret(+1)", "sharpe",
                  "mdd", "W/L", "score", "level");
    const auto& ranked = result.ranked[c];
    for (std::size_t r = 0; r < ranked.size() && r < top_n; ++r) {
      const auto& s = ranked[r];
      out += format("  %4zu %10.4f %9.2f %7.3f%% %8.3f %7.3f  k'%zu %s\n", r + 1,
                    s.mean_return_plus1, s.sharpe, s.mean_drawdown * 100.0,
                    s.mean_win_loss, s.score, s.level_index + 1,
                    s.params.describe().c_str());
    }
  }
  return out;
}

}  // namespace mm::core
