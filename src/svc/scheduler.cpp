#include "svc/scheduler.hpp"

#include "common/error.hpp"

namespace mm::svc {

Scheduler::Scheduler(JobQueue* queue, RunFn run, int workers)
    : queue_(queue), run_(std::move(run)), workers_(workers) {
  MM_ASSERT_MSG(queue_ != nullptr && run_ != nullptr && workers_ >= 1,
                "scheduler needs a queue, a runner and >= 1 worker");
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::start() {
  MM_ASSERT_MSG(!started_, "scheduler started twice");
  started_ = true;
  current_.resize(static_cast<std::size_t>(workers_));
  threads_.reserve(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w)
    threads_.emplace_back([this, w] { worker_loop(static_cast<std::size_t>(w)); });
}

void Scheduler::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;

  // Close the queue first so no worker picks up new work, then flag every
  // in-flight job; runners observe the bit at their next unit boundary.
  queue_->shutdown();
  {
    std::lock_guard<std::mutex> lock(current_mutex_);
    for (const auto& job : current_)
      if (job != nullptr) job->cancel.store(true, std::memory_order_release);
  }
  for (auto& t : threads_) t.join();
  threads_.clear();

  // Everything still queued never ran; mark it terminal so waiters and the
  // REST surface see a consistent story after shutdown.
  for (const auto& job : queue_->drain())
    job->state.store(JobState::cancelled, std::memory_order_release);
}

void Scheduler::worker_loop(std::size_t slot) {
  for (;;) {
    std::shared_ptr<Job> job = queue_->take();
    if (job == nullptr) return;  // shutdown
    {
      std::lock_guard<std::mutex> lock(current_mutex_);
      current_[slot] = job;
    }
    run_(job);
    {
      std::lock_guard<std::mutex> lock(current_mutex_);
      current_[slot] = nullptr;
    }
    queue_->finished(job->spec.tenant);
  }
}

}  // namespace mm::svc
