// Error handling primitives shared by every MarketMiner module.
//
// The library reports recoverable failures through mm::Expected<T> (a minimal
// expected/err-or-value type; we target C++20 so std::expected is not yet
// available) and programming errors through MM_ASSERT, which is active in all
// build types — a silent invariant violation in a trading system is far worse
// than an abort.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace mm {

// Category of a recoverable error. Kept deliberately coarse: callers branch on
// "can I retry / is the input bad / is the system broken", not on minutiae.
enum class Errc {
  invalid_argument,
  out_of_range,
  parse_error,
  io_error,
  not_found,
  already_exists,
  capacity,
  shutdown,
  timeout,
  numeric,
  internal,
};

inline const char* to_string(Errc c) {
  switch (c) {
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::out_of_range: return "out_of_range";
    case Errc::parse_error: return "parse_error";
    case Errc::io_error: return "io_error";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::capacity: return "capacity";
    case Errc::shutdown: return "shutdown";
    case Errc::timeout: return "timeout";
    case Errc::numeric: return "numeric";
    case Errc::internal: return "internal";
  }
  return "unknown";
}

// A recoverable error: category plus human-readable context.
struct Error {
  Errc code = Errc::internal;
  std::string message;

  Error() = default;
  Error(Errc c, std::string msg) : code(c), message(std::move(msg)) {}

  std::string to_string() const {
    return std::string(mm::to_string(code)) + ": " + message;
  }
};

// Minimal expected<T, Error>. Intentionally tiny: value(), error(), has_value,
// explicit bool, and value_or. Enough for the library's needs without pulling
// in a third-party dependency.
template <typename T>
class Expected {
 public:
  Expected(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Error err) : storage_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  bool has_value() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return has_value(); }

  T& value() & {
    if (!has_value()) throw std::runtime_error("Expected: no value: " + error().to_string());
    return std::get<T>(storage_);
  }
  const T& value() const& {
    if (!has_value()) throw std::runtime_error("Expected: no value: " + error().to_string());
    return std::get<T>(storage_);
  }
  T&& value() && {
    if (!has_value()) throw std::runtime_error("Expected: no value: " + error().to_string());
    return std::get<T>(std::move(storage_));
  }

  const Error& error() const {
    if (has_value()) throw std::runtime_error("Expected: holds a value, not an error");
    return std::get<Error>(storage_);
  }

  T value_or(T fallback) const {
    return has_value() ? std::get<T>(storage_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Error> storage_;
};

// Expected<void> specialization: success or an Error.
template <>
class Expected<void> {
 public:
  Expected() = default;
  Expected(Error err) : err_(std::move(err)), has_err_(true) {}  // NOLINT

  bool has_value() const { return !has_err_; }
  explicit operator bool() const { return has_value(); }
  const Error& error() const {
    if (!has_err_) throw std::runtime_error("Expected<void>: holds success");
    return err_;
  }

 private:
  Error err_;
  bool has_err_ = false;
};

using Status = Expected<void>;

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "MM_ASSERT failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace mm

// Always-on assertion for invariants. Use for conditions that indicate a bug
// in this library, never for bad user input (return mm::Error for that).
#define MM_ASSERT(cond)                                              \
  do {                                                               \
    if (!(cond)) ::mm::assert_fail(#cond, __FILE__, __LINE__, "");   \
  } while (0)

#define MM_ASSERT_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) ::mm::assert_fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
