# Empty compiler generated dependencies file for mm_common.
# This may be replaced when dependencies are built.
