// Tests for the dagflow DAG stream-processing engine: validation, delivery,
// fan-in/fan-out, EOS propagation and bounded-channel backpressure.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "dagflow/context.hpp"
#include "dagflow/graph.hpp"
#include "mpmini/collectives.hpp"
#include "mpmini/serde.hpp"

namespace mm::dag {
namespace {

std::vector<std::uint8_t> pack_int(int v) {
  mpi::Packer p;
  p.put<int>(v);
  return p.take();
}

int unpack_int(const std::vector<std::uint8_t>& bytes) {
  mpi::Unpacker u(bytes);
  return u.get<int>();
}

TEST(GraphValidate, RejectsEmptyGraph) {
  Graph g;
  EXPECT_FALSE(g.validate().has_value());
}

TEST(GraphValidate, RejectsSelfLoop) {
  Graph g;
  const int a = g.add_node("a", [](Context&) {});
  g.connect(a, 0, a, 0);
  EXPECT_FALSE(g.validate().has_value());
}

TEST(GraphValidate, RejectsCycle) {
  Graph g;
  const int a = g.add_node("a", [](Context&) {});
  const int b = g.add_node("b", [](Context&) {});
  const int c = g.add_node("c", [](Context&) {});
  g.connect(a, 0, b, 0);
  g.connect(b, 0, c, 0);
  g.connect(c, 0, a, 0);
  EXPECT_FALSE(g.validate().has_value());
}

TEST(GraphValidate, RejectsDuplicatePorts) {
  Graph g;
  const int a = g.add_node("a", [](Context&) {});
  const int b = g.add_node("b", [](Context&) {});
  const int c = g.add_node("c", [](Context&) {});
  g.connect(a, 0, c, 0);
  g.connect(b, 0, c, 0);  // duplicate input port 0 on c
  EXPECT_FALSE(g.validate().has_value());
}

TEST(GraphValidate, RejectsBadCapacity) {
  Graph g;
  const int a = g.add_node("a", [](Context&) {});
  const int b = g.add_node("b", [](Context&) {});
  g.connect(a, 0, b, 0, 0);
  EXPECT_FALSE(g.validate().has_value());
}

TEST(GraphValidate, AcceptsDiamond) {
  Graph g;
  const int src = g.add_node("src", [](Context&) {});
  const int l = g.add_node("l", [](Context&) {});
  const int r = g.add_node("r", [](Context&) {});
  const int sink = g.add_node("sink", [](Context&) {});
  g.connect(src, 0, l, 0);
  g.connect(src, 1, r, 0);
  g.connect(l, 0, sink, 0);
  g.connect(r, 0, sink, 1);
  EXPECT_TRUE(g.validate().has_value());
}

TEST(GraphRun, LinearPipelineDeliversInOrder) {
  constexpr int n = 200;
  std::vector<int> received;
  Graph g;
  const int src = g.add_node("src", [](Context& ctx) {
    for (int i = 0; i < n; ++i) ctx.emit(0, pack_int(i));
  });
  const int mid = g.add_node("mid", [](Context& ctx) {
    while (auto msg = ctx.recv()) ctx.emit(0, pack_int(unpack_int(msg->bytes) * 2));
  });
  const int sink = g.add_node("sink", [&](Context& ctx) {
    while (auto msg = ctx.recv()) received.push_back(unpack_int(msg->bytes));
  });
  g.connect(src, 0, mid, 0);
  g.connect(mid, 0, sink, 0);
  g.run();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i * 2);
}

TEST(GraphRun, FanOutFanIn) {
  constexpr int n = 100;
  std::atomic<long> total{0};
  Graph g;
  const int src = g.add_node("src", [](Context& ctx) {
    for (int i = 0; i < n; ++i) {
      ctx.emit(i % 2, pack_int(i));  // alternate between two workers
    }
  });
  const auto worker = [](Context& ctx) {
    while (auto msg = ctx.recv()) ctx.emit(0, msg->bytes);
  };
  const int w0 = g.add_node("w0", worker);
  const int w1 = g.add_node("w1", worker);
  const int sink = g.add_node("sink", [&](Context& ctx) {
    while (auto msg = ctx.recv()) total += unpack_int(msg->bytes);
  });
  g.connect(src, 0, w0, 0);
  g.connect(src, 1, w1, 0);
  g.connect(w0, 0, sink, 0);
  g.connect(w1, 0, sink, 1);
  g.run();
  EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

TEST(GraphRun, RecvReportsCorrectPort) {
  std::vector<int> ports;
  Graph g;
  const int a = g.add_node("a", [](Context& ctx) { ctx.emit(0, pack_int(1)); });
  const int b = g.add_node("b", [](Context& ctx) { ctx.emit(0, pack_int(2)); });
  const int sink = g.add_node("sink", [&](Context& ctx) {
    while (auto msg = ctx.recv()) {
      if (msg->port == 3) {
        EXPECT_EQ(unpack_int(msg->bytes), 1);
      }
      if (msg->port == 9) {
        EXPECT_EQ(unpack_int(msg->bytes), 2);
      }
      ports.push_back(msg->port);
    }
  });
  g.connect(a, 0, sink, 3);
  g.connect(b, 0, sink, 9);
  g.run();
  ASSERT_EQ(ports.size(), 2u);
}

TEST(GraphRun, BackpressureBoundsInFlightMessages) {
  // A fast producer into a slow consumer over a capacity-4 edge: the producer
  // can never be more than capacity + 1 messages ahead of the consumer.
  constexpr int n = 300;
  constexpr int capacity = 4;
  std::atomic<int> produced{0};
  std::atomic<int> consumed{0};
  std::atomic<int> worst_lead{0};

  Graph g;
  const int src = g.add_node("src", [&](Context& ctx) {
    for (int i = 0; i < n; ++i) {
      ctx.emit(0, pack_int(i));
      const int lead = ++produced - consumed.load();
      int expected = worst_lead.load();
      while (lead > expected && !worst_lead.compare_exchange_weak(expected, lead)) {
      }
    }
  });
  const int sink = g.add_node("sink", [&](Context& ctx) {
    while (auto msg = ctx.recv()) ++consumed;
  });
  g.connect(src, 0, sink, 0, capacity);
  g.run();

  EXPECT_EQ(consumed.load(), n);
  // Allow one in-flight beyond capacity (the message being emitted).
  EXPECT_LE(worst_lead.load(), capacity + 1);
}

TEST(GraphRun, SinkThatStopsEarlyDoesNotDeadlock) {
  // The harness drains remaining input after the node function returns, so a
  // producer blocked on credits always finishes.
  Graph g;
  const int src = g.add_node("src", [](Context& ctx) {
    for (int i = 0; i < 500; ++i) ctx.emit(0, pack_int(i));
  });
  const int sink = g.add_node("sink", [](Context& ctx) {
    // Consume only 3 messages, then return.
    for (int i = 0; i < 3; ++i) (void)ctx.recv();
  });
  g.connect(src, 0, sink, 0, 2);
  g.run();  // must terminate
  SUCCEED();
}

TEST(GraphRun, MessageCountersTrackTraffic) {
  std::uint64_t src_out = 0, sink_in = 0;
  Graph g;
  const int src = g.add_node("src", [&](Context& ctx) {
    for (int i = 0; i < 17; ++i) ctx.emit(0, pack_int(i));
    src_out = ctx.messages_out();
  });
  const int sink = g.add_node("sink", [&](Context& ctx) {
    while (ctx.recv()) {
    }
    sink_in = ctx.messages_in();
  });
  g.connect(src, 0, sink, 0);
  g.run();
  EXPECT_EQ(src_out, 17u);
  EXPECT_EQ(sink_in, 17u);
}

TEST(GroupNode, LeaderOwnsEdgesMembersCompute) {
  // A 3-replica group node: the leader receives ints, broadcasts them to the
  // group, every member contributes rank+value, and the allreduced sum is
  // emitted. Verifies group collectives and edge ownership coexist.
  constexpr int replicas = 3;
  std::vector<int> received;
  Graph g;
  const int src = g.add_node("src", [](Context& ctx) {
    for (int i = 0; i < 20; ++i) ctx.emit(0, pack_int(i));
  });
  const int grp = g.add_group_node(
      "group",
      [](Context* ctx, mpi::Comm& group) {
        while (true) {
          int value = -1;
          if (group.rank() == 0) {
            auto msg = ctx->recv();
            value = msg ? unpack_int(msg->bytes) : -1;
          }
          value = mpi::bcast_value(group, value, 0);
          if (value < 0) return;
          const int sum =
              mpi::allreduce_value(group, value + group.rank(), mpi::Sum{});
          if (group.rank() == 0) ctx->emit(0, pack_int(sum));
        }
      },
      replicas);
  const int sink = g.add_node("sink", [&](Context& ctx) {
    while (auto msg = ctx.recv()) received.push_back(unpack_int(msg->bytes));
  });
  g.connect(src, 0, grp, 0);
  g.connect(grp, 0, sink, 0);
  EXPECT_EQ(g.rank_count(), 5);
  g.run();

  ASSERT_EQ(received.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    // sum over ranks r of (i + r) = 3i + 0 + 1 + 2.
    EXPECT_EQ(received[static_cast<std::size_t>(i)], 3 * i + 3);
  }
}

TEST(GroupNode, SingleReplicaEquivalentToPlainNode) {
  std::vector<int> received;
  Graph g;
  const int src = g.add_node("src", [](Context& ctx) {
    for (int i = 0; i < 5; ++i) ctx.emit(0, pack_int(i * 7));
  });
  const int grp = g.add_group_node(
      "solo",
      [](Context* ctx, mpi::Comm& group) {
        EXPECT_EQ(group.size(), 1);
        while (auto msg = ctx->recv()) ctx->emit(0, std::move(msg->bytes));
      },
      1);
  const int sink = g.add_node("sink", [&](Context& ctx) {
    while (auto msg = ctx.recv()) received.push_back(unpack_int(msg->bytes));
  });
  g.connect(src, 0, grp, 0);
  g.connect(grp, 0, sink, 0);
  g.run();
  ASSERT_EQ(received.size(), 5u);
  EXPECT_EQ(received[4], 28);
}

TEST(GraphDot, RendersNodesAndEdges) {
  Graph g;
  const int a = g.add_node("source", [](Context&) {});
  const int b = g.add_node("sink", [](Context&) {});
  g.connect(a, 0, b, 2, 17);
  const auto dot = g.to_dot();
  EXPECT_NE(dot.find("digraph dagflow"), std::string::npos);
  EXPECT_NE(dot.find("source"), std::string::npos);
  EXPECT_NE(dot.find("sink"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("cap=17"), std::string::npos);
}

TEST(GraphRun, RandomLayeredTopologiesConserveTokens) {
  // Property test: random layered DAGs (sources -> relays -> sinks) must
  // deliver every emitted token exactly once, whatever the topology.
  std::uint64_t rng_state = 12345;
  const auto next = [&rng_state](std::uint64_t bound) {
    rng_state = rng_state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (rng_state >> 33) % bound;
  };

  for (int trial = 0; trial < 6; ++trial) {
    const int sources = 1 + static_cast<int>(next(3));
    const int relays = 1 + static_cast<int>(next(4));
    const int tokens_per_source = 30 + static_cast<int>(next(50));

    std::atomic<long> emitted{0};
    std::atomic<long> received{0};

    Graph g;
    std::vector<int> source_ids, relay_ids;
    for (int s = 0; s < sources; ++s) {
      source_ids.push_back(g.add_node("src", [&, tokens_per_source](Context& ctx) {
        // Spray tokens round-robin over however many outputs this source has.
        const auto outs = ctx.output_count();
        for (int i = 0; i < tokens_per_source; ++i) {
          ctx.emit(static_cast<int>(static_cast<std::size_t>(i) % outs),
                   pack_int(i));
          ++emitted;
        }
      }));
    }
    for (int r = 0; r < relays; ++r) {
      relay_ids.push_back(g.add_node("relay", [](Context& ctx) {
        while (auto msg = ctx.recv()) ctx.emit(0, std::move(msg->bytes));
      }));
    }
    const int sink = g.add_node("sink", [&](Context& ctx) {
      while (ctx.recv()) ++received;
    });

    // Each source feeds every relay (one port per edge); relays feed the sink.
    for (int s = 0; s < sources; ++s)
      for (int r = 0; r < relays; ++r)
        g.connect(source_ids[static_cast<std::size_t>(s)], r,
                  relay_ids[static_cast<std::size_t>(r)], s,
                  1 + static_cast<int>(next(8)));
    for (int r = 0; r < relays; ++r)
      g.connect(relay_ids[static_cast<std::size_t>(r)], 0, sink, r);

    ASSERT_TRUE(g.validate().has_value()) << "trial " << trial;
    g.run();
    EXPECT_EQ(received.load(), emitted.load()) << "trial " << trial;
    EXPECT_EQ(emitted.load(), static_cast<long>(sources) * tokens_per_source);

    emitted = 0;
    received = 0;
  }
}

TEST(GraphRun, InvalidGraphThrows) {
  Graph g;
  const int a = g.add_node("a", [](Context&) {});
  g.connect(a, 0, a, 0);
  EXPECT_THROW(g.run(), std::runtime_error);
}

// --- failure containment ----------------------------------------------------

TEST(Containment, NodeExceptionIsReportedNotFatal) {
  // Regression: an exception escaping a node function used to unwind through
  // the rank thread and tear the whole process down. It must be contained
  // and reported per node instead.
  Graph g;
  const int src = g.add_node("src", [](Context& ctx) {
    for (int i = 0; i < 10; ++i) ctx.emit(0, pack_int(i));
  });
  const int bad = g.add_node("bad", [](Context& ctx) {
    (void)ctx.recv();
    throw std::runtime_error("boom at message 1");
  });
  g.connect(src, 0, bad, 0);

  const RunResult result = g.run();
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.nodes[static_cast<std::size_t>(src)].failed);
  EXPECT_TRUE(result.nodes[static_cast<std::size_t>(bad)].failed);
  EXPECT_NE(result.nodes[static_cast<std::size_t>(bad)].error.find("boom"),
            std::string::npos);
  EXPECT_EQ(result.nodes[static_cast<std::size_t>(bad)].name, "bad");
}

TEST(Containment, FailureMarkerPoisonsTheDownstreamLineage) {
  // src -> mid -> sink. mid dies after forwarding 5 messages; the sink must
  // see those 5, then a closed-and-poisoned input — and the healthy relay in
  // between must re-propagate the marker, not launder it into a clean EOS.
  std::vector<int> sink_got;
  bool sink_saw_failure = false;
  std::vector<int> sink_failed_ports;

  Graph g;
  const int src = g.add_node("src", [](Context& ctx) {
    for (int i = 0; i < 20; ++i) ctx.emit(0, pack_int(i));
  });
  const int mid = g.add_node("mid", [](Context& ctx) {
    int forwarded = 0;
    while (auto msg = ctx.recv()) {
      ctx.emit(0, std::move(msg->bytes));
      if (++forwarded == 5) throw std::runtime_error("mid died");
    }
  });
  const int relay = g.add_node("relay", [](Context& ctx) {
    while (auto msg = ctx.recv()) ctx.emit(0, std::move(msg->bytes));
  });
  const int sink = g.add_node("sink", [&](Context& ctx) {
    while (auto msg = ctx.recv()) sink_got.push_back(unpack_int(msg->bytes));
    sink_saw_failure = ctx.upstream_failed();
    sink_failed_ports = ctx.failed_input_ports();
  });
  g.connect(src, 0, mid, 0);
  g.connect(mid, 0, relay, 0);
  g.connect(relay, 0, sink, 0);

  const RunResult result = g.run();
  EXPECT_EQ(sink_got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(sink_saw_failure);
  EXPECT_EQ(sink_failed_ports, std::vector<int>{0});
  EXPECT_TRUE(result.nodes[static_cast<std::size_t>(mid)].failed);
  EXPECT_FALSE(result.nodes[static_cast<std::size_t>(relay)].failed);
  EXPECT_TRUE(result.nodes[static_cast<std::size_t>(relay)].upstream_failed);
  EXPECT_TRUE(result.nodes[static_cast<std::size_t>(sink)].upstream_failed);
  EXPECT_FALSE(result.nodes[static_cast<std::size_t>(src)].failed);
}

TEST(Containment, HealthySiblingsCompleteWhenOneBranchFails) {
  // Fan-out: one consumer dies immediately, the other must still receive the
  // full stream (the producer keeps emitting; the dead branch just degrades).
  std::atomic<int> healthy_count{0};
  Graph g;
  const int src = g.add_node("src", [](Context& ctx) {
    for (int i = 0; i < 50; ++i) {
      ctx.emit(0, pack_int(i));
      ctx.emit(1, pack_int(i));
    }
  });
  const int bad = g.add_node("bad", [](Context&) -> void {
    throw std::runtime_error("instant death");
  });
  const int good = g.add_node("good", [&](Context& ctx) {
    while (ctx.recv()) ++healthy_count;
  });
  g.connect(src, 0, bad, 0);
  g.connect(src, 1, good, 0);

  const RunResult result = g.run();
  EXPECT_EQ(healthy_count.load(), 50);
  EXPECT_TRUE(result.nodes[static_cast<std::size_t>(bad)].failed);
  EXPECT_FALSE(result.nodes[static_cast<std::size_t>(good)].failed);
  EXPECT_FALSE(result.nodes[static_cast<std::size_t>(good)].upstream_failed);
  EXPECT_FALSE(result.nodes[static_cast<std::size_t>(src)].failed);
}

TEST(Containment, KilledRankDetectedViaPumpDeadline) {
  // The fault plan kills the source mid-stream WITHOUT a dying breath: no
  // EOS, no failure marker, just silence. Only the pump deadline lets the
  // sink (and the graph) finish — and the silence is reported as a fault.
  std::atomic<int> sink_count{0};
  Graph g;
  const int src = g.add_node("src", [](Context& ctx) {
    for (int i = 0; i < 500; ++i) ctx.emit(0, pack_int(i));
  });
  const int sink = g.add_node("sink", [&](Context& ctx) {
    while (ctx.recv()) ++sink_count;
  });
  g.connect(src, 0, sink, 0, /*capacity=*/8);

  RunOptions options;
  options.fault.kill_rank = 0;
  options.fault.kill_at_op = 60;  // well past comm setup, well before 500 sends
  options.pump_timeout = std::chrono::milliseconds{1000};

  const RunResult result = g.run(options);
  EXPECT_TRUE(result.nodes[static_cast<std::size_t>(src)].failed);
  EXPECT_TRUE(result.nodes[static_cast<std::size_t>(sink)].upstream_failed);
  EXPECT_TRUE(result.nodes[static_cast<std::size_t>(sink)].timed_out);
  EXPECT_FALSE(result.nodes[static_cast<std::size_t>(sink)].failed);
  // Messages sent before the kill were delivered.
  EXPECT_GT(sink_count.load(), 0);
  EXPECT_LT(sink_count.load(), 500);
}

TEST(Containment, DeadConsumerDoesNotWedgeTheProducer) {
  // The consumer is killed by the fault plan; with a bounded pump the
  // producer's emit() declares the edge dead once credits stop coming back
  // and the graph still completes.
  Graph g;
  const int src = g.add_node("src", [](Context& ctx) {
    for (int i = 0; i < 500; ++i) ctx.emit(0, pack_int(i));
  });
  const int sink = g.add_node("sink", [&](Context& ctx) {
    while (ctx.recv()) {
    }
  });
  g.connect(src, 0, sink, 0, /*capacity=*/4);

  RunOptions options;
  options.fault.kill_rank = 1;
  options.fault.kill_at_op = 60;
  options.pump_timeout = std::chrono::milliseconds{1000};

  const RunResult result = g.run(options);
  EXPECT_TRUE(result.nodes[static_cast<std::size_t>(sink)].failed);
  EXPECT_FALSE(result.nodes[static_cast<std::size_t>(src)].failed);
  EXPECT_TRUE(result.nodes[static_cast<std::size_t>(src)].timed_out);
}

}  // namespace
}  // namespace mm::dag
