#!/usr/bin/env bash
# Transport smoke: the two wire-subsystem end-to-end demos CI runs.
#
#   pipeline_2proc — the full pair-trading graph with one OS process per rank
#                    over the TCP socket transport; asserts the master report
#                    is bit-identical to the in-process run.
#   feed_demo      — a synthetic day streamed over the mmq wire format, TCP
#                    (subscribe/stream/end_of_day) and UDP (sequenced
#                    datagrams, loopback-intact) both verified quote-for-quote.
#
# Usage: scripts/transport_smoke.sh [build-dir] (default: build).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j --target pipeline_2proc feed_demo

"$build_dir/examples/pipeline_2proc" | tee /dev/stderr | grep -q PIPELINE_2PROC_OK
"$build_dir/examples/feed_demo" | tee /dev/stderr | grep -q FEED_DEMO_OK
echo "transport smoke OK"
