// Fig. 1 pipeline components as dagflow node factories.
//
// Each factory returns a NodeFn that runs on its own rank. The wiring (who
// feeds whom) lives in pipeline.hpp; this header is the component library:
//
//   collectors  — File Collector (in-memory day or TAQ CSV), DB Collector
//                 (tickdb), each emitting QuoteBatch records;
//   cleaner     — structural checks + the TCP-like band filter;
//   snapshot    — OHLC-bar / technical-analysis stage: turns the quote stream
//                 into one end-of-interval Snapshot (BAM prices + log
//                 returns) per ∆s;
//   correlation — the (single-rank) correlation engine: incremental Pearson
//                 plus optional per-pair Maronna over the sliding M-window,
//                 fanned out to every strategy node;
//   strategy    — one parameter set across a set of pairs, emitting Order
//                 records and an end-of-day StrategySummary;
//   master      — order aggregation (netting into baskets), risk accounting,
//                 and the run report.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "dagflow/graph.hpp"
#include "engine/messages.hpp"
#include "marketdata/calendar.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/symbols.hpp"
#include "marketdata/types.hpp"
#include "stats/corr_store.hpp"
#include "stats/sym_matrix.hpp"

namespace mm::engine {

// Shared (in-process) counters a component fills in as it runs; the pipeline
// report reads them after Graph::run returns. This is a harness-side shortcut
// available because mpmini ranks share an address space — a cluster build
// would ship these in messages instead.
struct StageStats {
  std::atomic<std::uint64_t> records_in{0};
  std::atomic<std::uint64_t> records_out{0};
  std::atomic<std::uint64_t> items_in{0};   // e.g. quotes, intervals
  std::atomic<std::uint64_t> items_out{0};
  // Fault events the stage absorbed (e.g. a correlation replica resharded
  // away after missing its deadline).
  std::atomic<std::uint64_t> faults{0};
};

// Risk limits enforced (observationally) by the master: Fig. 1's master
// performs "additional tasks such as risk management and liquidity
// provisioning". Limits of 0 disable the corresponding check.
struct RiskConfig {
  // Maximum absolute net shares held per symbol across all strategies.
  double max_symbol_shares = 0.0;
  // Maximum gross notional (sum over symbols of |position| x last price).
  double max_gross_notional = 0.0;
};

// End-of-run report assembled by the master node.
struct MasterReport {
  std::uint64_t orders = 0;
  std::uint64_t entries = 0;
  std::uint64_t exits = 0;
  std::uint64_t trades = 0;
  double total_pnl = 0.0;
  std::vector<double> trade_returns;
  // Net signed shares per symbol after all orders (≈0 everywhere if every
  // position was flattened by end of day).
  std::map<std::uint32_t, double> net_shares;
  // Baskets: number of distinct intervals in which orders were aggregated.
  std::uint64_t basket_count = 0;

  // Risk accounting.
  std::uint64_t symbol_limit_breaches = 0;  // orders that pushed a symbol past
                                            // its per-symbol share limit
  std::uint64_t gross_limit_breaches = 0;
  double peak_gross_notional = 0.0;

  // Every order, in arrival order (feeds the execution simulator).
  std::vector<Order> order_log;

  // Basket netting: total |shares| across raw orders vs after netting
  // opposite-side orders within each (interval, symbol) basket — the saving a
  // list-based execution algorithm would capture.
  double raw_order_shares = 0.0;
  double netted_order_shares = 0.0;
  double netting_savings_fraction() const {
    return raw_order_shares > 0.0
               ? 1.0 - netted_order_shares / raw_order_shares
               : 0.0;
  }

  // Degradation section: true when at least one of the master's input
  // streams closed with a failure marker (or went silent past the deadline)
  // instead of a clean end-of-day. The report then covers only the healthy
  // strategies.
  bool degraded = false;
  // Master input ports (== strategy worker indices) whose stream failed.
  std::vector<int> failed_strategies;

  // Per-strategy end-of-day summaries, sorted by strategy_id — the grouped
  // runs the backtest service fires (K paramsets through one pipeline) need
  // per-paramset attribution, not just the aggregate above.
  std::vector<StrategySummary> strategy_summaries;
};

// --- collectors ---------------------------------------------------------
// replay_speedup > 0 paces emission by quote timestamps: the day is replayed
// at `replay_speedup` x real time (e.g. 600 compresses 10 market minutes into
// one wall second), so the pipeline runs long enough to be watched live on
// /metrics. Pacing sleeps are chunked to the heartbeat interval with a beat
// between chunks — a pacing collector is idle-but-alive, never suspect.
// 0 (the default) emits as fast as downstream credits allow.
dag::NodeFn make_file_collector(std::vector<md::Quote> quotes, std::size_t batch_size,
                                StageStats* stats = nullptr,
                                double replay_speedup = 0.0);
dag::NodeFn make_db_collector(std::string tickdb_root, md::Date date,
                              std::size_t batch_size, StageStats* stats = nullptr,
                              double replay_speedup = 0.0);
// Shared-day variant: streams a day owned elsewhere (the service's DayCache)
// without copying it per run — N concurrent backtests of one day share one
// quote vector.
dag::NodeFn make_shared_collector(std::shared_ptr<const std::vector<md::Quote>> day,
                                  std::size_t batch_size,
                                  StageStats* stats = nullptr,
                                  double replay_speedup = 0.0);

// --- cleaning ------------------------------------------------------------
dag::NodeFn make_cleaner(std::size_t symbols, md::CleanerConfig config,
                         StageStats* stats = nullptr);

// --- bars / technical analysis -------------------------------------------
// `seed_prices` provides a pre-open price per symbol so early intervals have
// a defined BAM before a symbol's first quote.
dag::NodeFn make_snapshot_stage(std::size_t symbols, md::Session session,
                                std::int64_t delta_s, std::vector<double> seed_prices,
                                StageStats* stats = nullptr);

// --- correlation engine ----------------------------------------------------
// Emits one CorrFrame per Snapshot on every output port [0, fan_out).
//
// With a CorrStore attached the stage memoizes whole days of packed frames
// under `store_key`: a hit replays the stored buffers verbatim (bit-identical
// output, no estimation work); a miss computes normally while recording, and
// publishes only a COMPLETE day (`expected_frames` received) so a
// fault-aborted run never poisons the cache. The store path requires the
// single-rank stage (correlation_replicas == 1).
dag::NodeFn make_correlation_stage(std::size_t symbols, std::int64_t corr_window,
                                   bool need_maronna,
                                   stats::MaronnaConfig maronna_config, int fan_out,
                                   StageStats* stats = nullptr,
                                   stats::CorrStore* store = nullptr,
                                   stats::CorrKey store_key = {},
                                   std::int64_t expected_frames = 0);

// Multi-rank variant: Fig. 1's "Parallel Correlation Engine" as a dagflow
// group node. The leader receives snapshots and sends the return vector to
// every live replica; every member mirrors the sliding windows and estimates
// its shard of the n(n-1)/2 pairs; shards come back to the leader, which
// emits frames identical to the single-rank stage.
//
// With replica_deadline > 0 the gather is bounded: a replica that misses the
// deadline is removed from the shard rotation (pairs reshard onto the
// survivors from the next round on) and its shard for the current round is
// recomputed by the leader, which mirrors every window — so the emitted
// frames stay bit-identical to the healthy run. Each resharding event bumps
// StageStats::faults. With replica_deadline == 0 every wait blocks forever.
dag::GroupNodeFn make_parallel_correlation_stage(
    std::size_t symbols, std::int64_t corr_window, bool need_maronna,
    stats::MaronnaConfig maronna_config, int fan_out, StageStats* stats = nullptr,
    std::chrono::milliseconds replica_deadline = std::chrono::milliseconds{0});

// --- clustering --------------------------------------------------------------
// The [12] companion workload: consume CorrFrames and, every
// `cadence` intervals, emit a ClusterSnapshot of the market's co-movement
// groups (single-linkage to `target_clusters`). Plugs in as an extra consumer
// of the correlation engine's fan-out.
dag::NodeFn make_cluster_stage(std::size_t symbols, int target_clusters,
                               std::int64_t cadence, StageStats* stats = nullptr);
dag::NodeFn make_strategy_stage(core::StrategyParams params,
                                std::vector<stats::PairIndex> pairs,
                                std::int32_t strategy_id, std::int64_t smax,
                                StageStats* stats = nullptr);

// --- master ------------------------------------------------------------------
dag::NodeFn make_master(MasterReport* report, RiskConfig risk = {},
                        StageStats* stats = nullptr);

}  // namespace mm::engine
