// Tests for the backtesting engines: per-pair correlation series, the
// market-wide shared-series computation, and their agreement ("Approach 2"
// and "Approach 3" must produce identical trades on identical data).
#include <gtest/gtest.h>

#include "core/backtester.hpp"
#include "marketdata/bars.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"

namespace mm::core {
namespace {

std::vector<std::vector<double>> make_bam(std::size_t symbols, int day) {
  const auto universe = md::make_universe(symbols);
  md::GeneratorConfig cfg;
  cfg.quote_rate = 0.25;
  const md::SyntheticDay synth(universe, cfg, day);
  md::QuoteCleaner cleaner(symbols, md::CleanerConfig{});
  const auto cleaned = cleaner.clean(synth.quotes());
  return md::sample_bam_series(cleaned, symbols, cfg.session, 30);
}

TEST(CorrSeries, FirstValidAtWindow) {
  const auto bam = make_bam(3, 0);
  const auto series =
      compute_pair_corr_series(bam[0], bam[1], stats::Ctype::pearson, 50);
  EXPECT_EQ(series.first_valid, 50);
  EXPECT_EQ(series.values.size(), bam[0].size());
  EXPECT_FALSE(series.valid_at(49));
  EXPECT_TRUE(series.valid_at(50));
  EXPECT_FALSE(series.valid_at(static_cast<std::int64_t>(series.values.size())));
  EXPECT_DOUBLE_EQ(series.values[0], 0.0);  // pre-warmup entries zeroed
}

TEST(CorrSeries, ValuesBounded) {
  const auto bam = make_bam(3, 0);
  for (const auto ctype : stats::all_ctypes) {
    const auto series = compute_pair_corr_series(bam[0], bam[2], ctype, 60);
    for (std::int64_t s = series.first_valid;
         s < static_cast<std::int64_t>(series.values.size()); ++s) {
      const double c = series.values[static_cast<std::size_t>(s)];
      EXPECT_GE(c, -1.0);
      EXPECT_LE(c, 1.0);
    }
  }
}

TEST(MarketCorrSeries, MatchesPerPairRecomputation) {
  // The heart of "Approach 3": the shared incremental computation must agree
  // with the naive per-pair batch recomputation for every pair, measure and
  // interval.
  const auto bam = make_bam(4, 1);
  const std::int64_t m = 40;
  const auto market = compute_market_corr_series(bam, m, /*need_maronna=*/true);
  const auto pairs = stats::all_pairs(4);
  ASSERT_EQ(market.pearson.size(), pairs.size());

  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const auto scalar_p = compute_pair_corr_series(bam[pairs[k].i], bam[pairs[k].j],
                                                   stats::Ctype::pearson, m);
    const auto scalar_m = compute_pair_corr_series(bam[pairs[k].i], bam[pairs[k].j],
                                                   stats::Ctype::maronna, m);
    for (std::int64_t s = m; s < static_cast<std::int64_t>(bam[0].size()); s += 7) {
      const auto si = static_cast<std::size_t>(s);
      ASSERT_NEAR(market.pearson[k][si], scalar_p.values[si], 1e-9)
          << "pair " << k << " s " << s;
      ASSERT_NEAR(market.maronna[k][si], scalar_m.values[si], 1e-9)
          << "pair " << k << " s " << s;
    }
  }
}

TEST(MarketCorrSeries, CombinedDerivesFromBoth) {
  const auto bam = make_bam(3, 2);
  const auto market = compute_market_corr_series(bam, 50, true);
  for (std::int64_t s = 50; s < 200; s += 13) {
    const auto si = static_cast<std::size_t>(s);
    const double expected =
        stats::combine(market.pearson[0][si], market.maronna[0][si]);
    EXPECT_DOUBLE_EQ(market.at(stats::Ctype::combined, 0, s), expected);
  }
}

TEST(MarketCorrSeries, ShardSubsetMatchesFull) {
  const auto bam = make_bam(5, 3);
  const auto pairs = stats::all_pairs(5);
  const std::vector<stats::PairIndex> shard = {pairs[1], pairs[4], pairs[8]};
  const auto full = compute_market_corr_series(bam, 30, true);
  const auto sub = compute_market_corr_series(bam, 30, true, {}, shard);
  ASSERT_EQ(sub.pearson.size(), 3u);
  for (std::size_t k = 0; k < shard.size(); ++k) {
    const std::size_t full_k = k == 0 ? 1 : (k == 1 ? 4 : 8);
    for (std::int64_t s = 30; s < 200; s += 11) {
      const auto si = static_cast<std::size_t>(s);
      EXPECT_DOUBLE_EQ(sub.pearson[k][si], full.pearson[full_k][si]);
      EXPECT_DOUBLE_EQ(sub.maronna[k][si], full.maronna[full_k][si]);
    }
  }
}

TEST(RunPairDay, ApproachesProduceIdenticalTrades) {
  // Same data, same parameters: the scalar path and the market path must
  // produce the same trade list (entry/exit intervals, prices, pnl).
  const auto bam = make_bam(6, 4);
  StrategyParams params = ParamGrid::base();
  params.divergence = 0.0005;  // trade a bit more in this short test
  const auto pairs = stats::all_pairs(6);
  const auto market = compute_market_corr_series(bam, params.corr_window, true);

  std::size_t total_trades = 0;
  for (const auto ctype : stats::all_ctypes) {
    params.ctype = ctype;
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      const auto scalar_series = compute_pair_corr_series(
          bam[pairs[k].i], bam[pairs[k].j], ctype, params.corr_window);
      const auto a = run_pair_day(params, bam[pairs[k].i], bam[pairs[k].j],
                                  scalar_series);
      const auto b = run_pair_day(params, bam[pairs[k].i], bam[pairs[k].j], market, k);
      ASSERT_EQ(a.size(), b.size()) << "pair " << k;
      for (std::size_t t = 0; t < a.size(); ++t) {
        EXPECT_EQ(a[t].entry_interval, b[t].entry_interval);
        EXPECT_EQ(a[t].exit_interval, b[t].exit_interval);
        EXPECT_DOUBLE_EQ(a[t].pnl, b[t].pnl);
        EXPECT_EQ(a[t].exit_reason, b[t].exit_reason);
      }
      total_trades += a.size();
    }
  }
  // The scenario must actually exercise trading.
  EXPECT_GT(total_trades, 0u);
}

TEST(RunPairDay, TradesRespectSessionStructure) {
  const auto bam = make_bam(4, 5);
  StrategyParams params = ParamGrid::base();
  params.divergence = 0.0005;
  const auto smax = static_cast<std::int64_t>(bam[0].size());
  const auto series =
      compute_pair_corr_series(bam[0], bam[1], stats::Ctype::pearson,
                               params.corr_window);
  const auto trades = run_pair_day(params, bam[0], bam[1], series);
  for (const auto& t : trades) {
    EXPECT_GE(t.entry_interval, params.corr_window);  // no trades pre-warmup
    EXPECT_LT(t.entry_interval, smax - params.no_entry_before_close);
    EXPECT_GE(t.exit_interval, t.entry_interval);
    EXPECT_LT(t.exit_interval, smax);
    EXPECT_GT(t.gross_basis, 0.0);
    // Exactly one long and one short leg.
    EXPECT_LT(t.shares_i * t.shares_j, 0.0);
  }
}

TEST(RunPairDay, DeterministicAcrossRuns) {
  const auto bam = make_bam(3, 6);
  StrategyParams params = ParamGrid::base();
  params.ctype = stats::Ctype::maronna;
  const auto series = compute_pair_corr_series(bam[0], bam[1], params.ctype,
                                               params.corr_window);
  const auto a = run_pair_day(params, bam[0], bam[1], series);
  const auto b = run_pair_day(params, bam[0], bam[1], series);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t)
    EXPECT_DOUBLE_EQ(a[t].trade_return, b[t].trade_return);
}

}  // namespace
}  // namespace mm::core
