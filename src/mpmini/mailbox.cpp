#include "mpmini/mailbox.hpp"

#include "common/error.hpp"

namespace mm::mpi {

void Mailbox::deliver(Message msg) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Earliest-posted matching receive wins.
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (!(*it)->done && matches(**it, msg)) {
      (*it)->message = std::move(msg);
      (*it)->done = true;
      pending_.erase(it);
      lock.unlock();
      cv_.notify_all();
      return;
    }
  }
  queue_.push_back(std::move(msg));
  lock.unlock();
  cv_.notify_all();  // wake probers
}

std::shared_ptr<RecvTicket> Mailbox::post_recv(std::uint64_t comm_id, int source,
                                               int tag) {
  auto ticket = std::make_shared<RecvTicket>();
  ticket->comm_id = comm_id;
  ticket->source = source;
  ticket->tag = tag;

  std::lock_guard<std::mutex> lock(mutex_);
  // Earliest-arrived matching message wins.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*ticket, *it)) {
      ticket->message = std::move(*it);
      ticket->done = true;
      queue_.erase(it);
      return ticket;
    }
  }
  pending_.push_back(ticket);
  return ticket;
}

Message Mailbox::wait(const std::shared_ptr<RecvTicket>& ticket) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return ticket->done; });
  return std::move(ticket->message);
}

bool Mailbox::test(const std::shared_ptr<RecvTicket>& ticket) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ticket->done;
}

bool Mailbox::iprobe(std::uint64_t comm_id, int source, int tag, RecvStatus* status) {
  RecvTicket probe_ticket;
  probe_ticket.comm_id = comm_id;
  probe_ticket.source = source;
  probe_ticket.tag = tag;

  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& msg : queue_) {
    if (matches(probe_ticket, msg)) {
      if (status != nullptr) {
        status->source = msg.source;
        status->tag = msg.tag;
        status->byte_count = msg.payload.size();
      }
      return true;
    }
  }
  return false;
}

RecvStatus Mailbox::probe(std::uint64_t comm_id, int source, int tag) {
  RecvTicket probe_ticket;
  probe_ticket.comm_id = comm_id;
  probe_ticket.source = source;
  probe_ticket.tag = tag;

  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    for (const auto& msg : queue_) {
      if (matches(probe_ticket, msg)) {
        RecvStatus status;
        status.source = msg.source;
        status.tag = msg.tag;
        status.byte_count = msg.payload.size();
        return status;
      }
    }
    cv_.wait(lock);
  }
}

std::size_t Mailbox::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace mm::mpi
