# Empty compiler generated dependencies file for repro_future_params.
# This may be replaced when dependencies are built.
