# Empty dependencies file for mm_mpmini.
# This may be replaced when dependencies are built.
