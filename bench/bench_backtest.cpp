// Microbenchmarks for the backtesting path: strategy stepping, per-pair
// correlation-series recomputation (Approach 2's unit cost) and the shared
// market-wide computation (Approach 3's unit cost).
#include <benchmark/benchmark.h>

#include "core/backtester.hpp"
#include "core/experiment.hpp"
#include "marketdata/bars.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"

namespace {

using namespace mm;

struct DayFixture {
  std::vector<std::vector<double>> bam;

  explicit DayFixture(std::size_t symbols) {
    const auto universe = md::make_universe(symbols);
    md::GeneratorConfig gen;
    gen.quote_rate = 0.2;
    const md::SyntheticDay day(universe, gen, 0);
    md::QuoteCleaner cleaner(symbols, md::CleanerConfig{});
    bam = md::sample_bam_series(cleaner.clean(day.quotes()), symbols, gen.session, 30);
  }
};

void BM_StrategyDayRun(benchmark::State& state) {
  static const DayFixture fixture(4);
  core::StrategyParams params = core::ParamGrid::base();
  params.divergence = 0.0005;
  const auto series = core::compute_pair_corr_series(
      fixture.bam[0], fixture.bam[1], stats::Ctype::pearson, params.corr_window);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_pair_day(params, fixture.bam[0], fixture.bam[1], series));
  }
  // 780 intervals per run.
  state.SetItemsProcessed(state.iterations() * 780);
}
BENCHMARK(BM_StrategyDayRun);

void BM_PairSeriesPearson(benchmark::State& state) {
  static const DayFixture fixture(4);
  const auto m = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_pair_corr_series(
        fixture.bam[0], fixture.bam[1], stats::Ctype::pearson, m));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PairSeriesPearson)->Arg(50)->Arg(100)->Arg(200);

void BM_PairSeriesMaronna(benchmark::State& state) {
  static const DayFixture fixture(4);
  const auto m = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_pair_corr_series(
        fixture.bam[0], fixture.bam[1], stats::Ctype::maronna, m));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PairSeriesMaronna)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_MarketSeriesShared(benchmark::State& state) {
  // Approach 3's amortized unit: ALL pairs in one pass (Pearson only, the
  // common case for the fast path).
  const auto symbols = static_cast<std::size_t>(state.range(0));
  const DayFixture fixture(symbols);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::compute_market_corr_series(fixture.bam, 100, /*need_maronna=*/false));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(symbols * (symbols - 1) / 2));
}
BENCHMARK(BM_MarketSeriesShared)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_TinyExperimentEndToEnd(benchmark::State& state) {
  core::ExperimentConfig cfg;
  cfg.symbols = 4;
  cfg.days = 1;
  cfg.generator.quote_rate = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_experiment(cfg));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TinyExperimentEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace
