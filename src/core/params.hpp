// Strategy parameters — the paper's Table I.
//
// Every unique combination of these values defines one pair trading strategy
// (§III). Time-based parameters are measured in ∆s intervals. The paper's
// experiment uses 42 parameter sets: 14 "levels" of the non-treatment factors
// crossed with the 3 correlation types (§V); ParamGrid reproduces that
// design.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "stats/correlation.hpp"

namespace mm::core {

struct StrategyParams {
  // ∆s — width of one time interval, seconds.
  std::int64_t delta_s = 30;
  // Ctype — correlation measure (the experiment's treatment).
  stats::Ctype ctype = stats::Ctype::pearson;
  // A — minimum average correlation required to trade the pair.
  double min_correlation = 0.1;
  // M — window length (in intervals) for each correlation calculation.
  std::int64_t corr_window = 100;
  // W — window (in intervals) for the average correlation C̄.
  std::int64_t avg_window = 60;
  // Y — window (in intervals) within which a fresh divergence must have begun.
  std::int64_t divergence_window = 10;
  // d — divergence from C̄ (as a fraction, e.g. 0.0002 = 0.02%) that triggers
  // a trade.
  double divergence = 0.0002;
  // ℓ — retracement level parameter in (0, 1).
  double retracement = 2.0 / 3.0;
  // RT — window (in intervals) for measuring spread high/low/average.
  std::int64_t spread_window = 60;
  // HP — maximum holding period in intervals.
  std::int64_t max_holding = 30;
  // ST — minimum intervals before the close during which no new position may
  // be opened.
  std::int64_t no_entry_before_close = 20;

  // --- extensions (§III step 5 mentions, §VI future work) ---------------
  // Absolute stop-loss on the trade return (0 disables), e.g. 0.01 = exit
  // when the open trade is down 1%.
  double stop_loss = 0.0;
  // Exit when the correlation reverts into [C̄(1-d), C̄] (off by default,
  // matching the paper's evaluated strategy).
  bool correlation_reversion_exit = false;
  // Transaction cost per share, dollars (future-work "implementation
  // shortfall"; 0 matches the paper's frictionless evaluation).
  double cost_per_share = 0.0;
  // Share multiplier applied to the 1:x ratio (e.g. 100 trades round lots).
  // Returns are scale-invariant; exposures and dollar P&L scale linearly.
  double lot_size = 1.0;
  // Slippage in fractions of price paid on each leg at entry and exit.
  double slippage_frac = 0.0;

  // Validation of ranges and cross-field constraints.
  Status validate() const;

  // Compact human-readable form, e.g. for report rows.
  std::string describe() const;
};

// One of the paper's 14 non-treatment factor levels: everything except Ctype.
using FactorLevel = StrategyParams;  // ctype field ignored at the level stage

// The experiment grid of §V: 14 factor levels x 3 correlation types = 42
// parameter sets, built from the Table I values (a one-factor-at-a-time
// design around a base configuration, plus two interaction levels).
class ParamGrid {
 public:
  ParamGrid();

  const std::vector<StrategyParams>& levels() const { return levels_; }

  // All 42 strategies: level k with each Ctype.
  std::vector<StrategyParams> all() const;

  // The distinct correlation windows M appearing in the grid — the engine
  // computes one correlation time series per (Ctype, M), shared by every
  // strategy that uses it (the heart of the integrated "Approach 3").
  std::vector<std::int64_t> distinct_corr_windows() const;

  static StrategyParams base();

 private:
  std::vector<StrategyParams> levels_;
};

}  // namespace mm::core
