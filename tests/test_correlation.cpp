// Tests for the Ctype dispatcher and the Combined measure.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/correlation.hpp"

namespace mm::stats {
namespace {

TEST(Ctype, Names) {
  EXPECT_STREQ(to_string(Ctype::pearson), "Pearson");
  EXPECT_STREQ(to_string(Ctype::maronna), "Maronna");
  EXPECT_STREQ(to_string(Ctype::combined), "Combined");
}

TEST(Ctype, ParseBothCases) {
  EXPECT_EQ(*parse_ctype("pearson"), Ctype::pearson);
  EXPECT_EQ(*parse_ctype("Maronna"), Ctype::maronna);
  EXPECT_EQ(*parse_ctype("combined"), Ctype::combined);
  EXPECT_FALSE(parse_ctype("spearman").has_value());
}

TEST(Combine, SignAgreementTakesSmallerMagnitude) {
  EXPECT_DOUBLE_EQ(combine(0.8, 0.6), 0.6);
  EXPECT_DOUBLE_EQ(combine(0.5, 0.9), 0.5);
  EXPECT_DOUBLE_EQ(combine(-0.8, -0.6), -0.6);
}

TEST(Combine, SignDisagreementIsZero) {
  EXPECT_DOUBLE_EQ(combine(0.5, -0.5), 0.0);
  EXPECT_DOUBLE_EQ(combine(-0.1, 0.9), 0.0);
}

TEST(Combine, ZeroInputIsZero) {
  EXPECT_DOUBLE_EQ(combine(0.0, 0.9), 0.0);
  EXPECT_DOUBLE_EQ(combine(0.9, 0.0), 0.0);
}

TEST(Combine, NeverExceedsEitherInput) {
  mm::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double p = rng.uniform(-1.0, 1.0);
    const double m = rng.uniform(-1.0, 1.0);
    const double c = combine(p, m);
    EXPECT_LE(std::abs(c), std::abs(p));
    EXPECT_LE(std::abs(c), std::abs(m));
  }
}

TEST(CorrelationDispatch, AllTypesOnCleanData) {
  mm::Rng rng(2);
  std::vector<double> x(300), y(300);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double f = rng.normal();
    x[i] = 2.0 * f + rng.normal();
    y[i] = 2.0 * f + rng.normal();
  }
  const double p = correlation(Ctype::pearson, x.data(), y.data(), x.size());
  const double m = correlation(Ctype::maronna, x.data(), y.data(), x.size());
  const double c = correlation(Ctype::combined, x.data(), y.data(), x.size());
  EXPECT_GT(p, 0.6);
  EXPECT_GT(m, 0.6);
  EXPECT_NEAR(c, std::min(std::abs(p), std::abs(m)), 1e-12);
}

TEST(CorrelationDispatch, CombinedIsConservativeUnderContamination) {
  // The defining behaviour of the Combined treatment: when outliers make
  // Pearson and Maronna disagree wildly, Combined backs off toward the
  // smaller signal, trading opportunities for safety (§V's observation that
  // Combined is "more conservative but generates lower returns").
  mm::Rng rng(3);
  std::vector<double> x(100), y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    const double f = rng.normal();
    x[i] = 2.0 * f + rng.normal();
    y[i] = 2.0 * f + rng.normal();
  }
  x[10] = 80.0;
  y[10] = -80.0;
  const double p = correlation(Ctype::pearson, x.data(), y.data(), x.size());
  const double c = correlation(Ctype::combined, x.data(), y.data(), x.size());
  EXPECT_LE(std::abs(c), std::abs(p) + 1e-12);
}

TEST(AllCtypes, ExactlyThreeTreatments) {
  EXPECT_EQ(std::size(all_ctypes), 3u);
}

}  // namespace
}  // namespace mm::stats
