file(REMOVE_RECURSE
  "CMakeFiles/mm_common.dir/cli.cpp.o"
  "CMakeFiles/mm_common.dir/cli.cpp.o.d"
  "CMakeFiles/mm_common.dir/log.cpp.o"
  "CMakeFiles/mm_common.dir/log.cpp.o.d"
  "CMakeFiles/mm_common.dir/strings.cpp.o"
  "CMakeFiles/mm_common.dir/strings.cpp.o.d"
  "libmm_common.a"
  "libmm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
