// tickdb: an embedded, file-backed historical tick store.
//
// Stands in for the paper's MySQL historical database (Fig. 1's "DB
// Collector" input). Layout on disk:
//
//   <root>/symbols.txt            one ticker per line, line number = SymbolId
//   <root>/<DATE>/quotes.bin      all quotes of that trading day, time-sorted,
//                                 in the binary block format from taq.hpp
//
// The store supports whole-day writes and filtered range reads (by symbol set
// and time window), which is all the backtesting collectors need.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "marketdata/calendar.hpp"
#include "marketdata/symbols.hpp"
#include "marketdata/types.hpp"

namespace mm::md {

class TickDb {
 public:
  // Opens (creating the directory if needed) a store at `root`.
  static Expected<TickDb> open(const std::string& root);

  // Persist the symbol table (call once after interning the universe, before
  // the first write_day).
  Status put_symbols(const SymbolTable& symbols);
  Expected<SymbolTable> get_symbols() const;

  // Write a full day of quotes (must be time-sorted).
  Status write_day(const Date& date, const std::vector<Quote>& quotes);

  // Read a full day.
  Expected<std::vector<Quote>> read_day(const Date& date) const;

  // Trade prints for a day (optional per day; stored as trades.bin).
  Status write_trades(const Date& date, const std::vector<Trade>& trades);
  Expected<std::vector<Trade>> read_trades(const Date& date) const;
  bool has_trades(const Date& date) const;

  // Read a day filtered to a symbol subset and/or a [from, to) time window.
  // Empty `symbols` means all symbols.
  Expected<std::vector<Quote>> read_range(const Date& date,
                                          const std::vector<SymbolId>& symbols,
                                          std::optional<TimeMs> from,
                                          std::optional<TimeMs> to) const;

  // Days present in the store, sorted ascending.
  std::vector<Date> days() const;

  // True if the day has a time index (written alongside quotes.bin; lets
  // read_range seek instead of scanning from the start of the day).
  bool has_index(const Date& date) const;

  bool has_day(const Date& date) const;

  const std::string& root() const { return root_; }

 private:
  explicit TickDb(std::string root) : root_(std::move(root)) {}
  std::string day_dir(const Date& date) const;

  std::string root_;
};

}  // namespace mm::md
