// Deterministic fault injection for the mpmini runtime.
//
// A FaultPlan describes message-level faults (drop / duplicate / delay) and a
// rank kill, and is installed on a World before any rank starts. Every
// per-message decision is a pure hash of (seed, envelope), NOT a draw from a
// shared generator, so the injected fault set is identical run-to-run
// regardless of thread interleaving — the property the fault-matrix tests
// rely on to assert exact degraded-mode results.
//
// Faults target the data plane only: messages carrying a reserved (collective)
// tag are never dropped, duplicated or delayed. Collective control traffic is
// modeled as reliable; killing a rank is the way to break a collective group.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "mpmini/message.hpp"

namespace mm::mpi {

// Thrown by any mpmini operation attempted on a rank the FaultPlan has
// killed. Once a rank's operation counter reaches the kill step, every
// subsequent operation throws too: a dead rank stays dead and cannot even
// send a dying-breath message.
class RankKilled : public std::runtime_error {
 public:
  explicit RankKilled(int world_rank)
      : std::runtime_error("rank " + std::to_string(world_rank) +
                           " killed by fault plan"),
        rank_(world_rank) {}
  int rank() const { return rank_; }

 private:
  int rank_;
};

// What to do with one message in flight.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  std::chrono::microseconds delay{0};
};

struct FaultPlan {
  std::uint64_t seed = 0;

  // Per-message probabilities, decided independently per envelope.
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double delay_prob = 0.0;
  std::chrono::microseconds delay{0};  // applied when the delay draw fires

  // Kill `kill_rank` (world rank, -1 = nobody) when it starts its
  // `kill_at_op`-th mpmini operation (sends and receive initiations both
  // count, 1-based). Choose a step past communicator setup to model a
  // mid-day death.
  int kill_rank = -1;
  std::uint64_t kill_at_op = 0;

  bool active() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 || delay_prob > 0.0 ||
           kill_rank >= 0;
  }

  // Deterministic per-message decision. `dest_world_rank` disambiguates
  // duplicate (comm, source, sequence) envelopes across destinations.
  FaultDecision decide(const Message& msg, int dest_world_rank) const;
};

}  // namespace mm::mpi
