// Tests for the Gatev-style distance-method baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "core/distance.hpp"
#include "marketdata/bars.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"

namespace mm::core {
namespace {

TEST(DistanceParams, Validation) {
  DistanceParams p;
  EXPECT_TRUE(p.validate().has_value());
  p.open_threshold = 0.0;
  EXPECT_FALSE(p.validate().has_value());
  p = DistanceParams{};
  p.close_threshold = 3.0;  // >= open
  EXPECT_FALSE(p.validate().has_value());
  p = DistanceParams{};
  p.formation_intervals = 1;
  EXPECT_FALSE(p.validate().has_value());
}

TEST(DistanceFormation, SelectsTwinPaths) {
  // Symbols 0 and 1 move in lockstep (scaled); symbol 2 is independent noise.
  constexpr std::size_t steps = 400;
  std::vector<std::vector<double>> bam(3, std::vector<double>(steps));
  mm::Rng rng(1);
  double base = 100.0;
  for (std::size_t t = 0; t < steps; ++t) {
    base *= 1.0 + 1e-4 * rng.normal();
    bam[0][t] = base;
    bam[1][t] = 0.5 * base * (1.0 + 1e-5 * rng.normal());
    bam[2][t] = 50.0 * (1.0 + 0.01 * rng.normal());
  }

  DistanceParams params;
  params.formation_intervals = 300;
  params.top_pairs = 1;
  const auto formation = distance_formation(bam, params);
  ASSERT_EQ(formation.selected.size(), 1u);
  EXPECT_EQ(formation.selected[0].pair.i, 0u);
  EXPECT_EQ(formation.selected[0].pair.j, 1u);
  EXPECT_GT(formation.selected[0].spread_std, 0.0);
}

TEST(DistanceFormation, SsdOrderedAscending) {
  const auto universe = md::make_universe(8);
  md::GeneratorConfig cfg;
  cfg.quote_rate = 0.2;
  const md::SyntheticDay day(universe, cfg, 0);
  md::QuoteCleaner cleaner(8, md::CleanerConfig{});
  const auto bam = md::sample_bam_series(cleaner.clean(day.quotes()), 8, cfg.session, 30);

  DistanceParams params;
  params.top_pairs = 10;
  const auto formation = distance_formation(bam, params);
  ASSERT_GE(formation.selected.size(), 2u);
  for (std::size_t k = 1; k < formation.selected.size(); ++k)
    EXPECT_GE(formation.selected[k].ssd, formation.selected[k - 1].ssd);
}

TEST(DistanceFormation, DropsDegeneratePairs) {
  // Two exactly proportional constant series: spread variance zero.
  std::vector<std::vector<double>> bam(2, std::vector<double>(100, 0.0));
  for (std::size_t t = 0; t < 100; ++t) {
    bam[0][t] = 10.0;
    bam[1][t] = 20.0;
  }
  DistanceParams params;
  params.formation_intervals = 50;
  const auto formation = distance_formation(bam, params);
  EXPECT_TRUE(formation.selected.empty());
}

TEST(DistanceTrading, OpensOnDivergenceClosesOnConvergence) {
  // Hand-built scenario: formation spread ~ N(0, small); then leg i spikes
  // rich, then reverts.
  constexpr std::size_t steps = 200;
  std::vector<double> pi(steps, 100.0), pj(steps, 100.0);
  mm::Rng rng(2);
  for (std::size_t t = 0; t < 100; ++t) {
    pi[t] = 100.0 + 0.05 * rng.normal();
    pj[t] = 100.0 + 0.05 * rng.normal();
  }
  for (std::size_t t = 100; t < 140; ++t) pi[t] = 101.0;  // rich by ~1%
  for (std::size_t t = 140; t < steps; ++t) pi[t] = 100.0;

  DistanceParams params;
  params.formation_intervals = 100;
  params.no_entry_before_close = 5;
  // Allow convergence to be declared within half a sigma of the mean (the
  // post-reversion spread sits a fraction of a sigma off due to noise).
  params.close_threshold = 0.5;
  PairProfile profile;
  profile.pair = {0, 1};
  {
    std::vector<std::vector<double>> bam = {pi, pj};
    params.top_pairs = 1;
    const auto formation = distance_formation(bam, params);
    ASSERT_EQ(formation.selected.size(), 1u);
    profile = formation.selected[0];
  }

  const auto trades =
      run_distance_pair_day(params, profile, pi, pj, pi[0], pj[0]);
  ASSERT_EQ(trades.size(), 1u);
  const Trade& t = trades[0];
  EXPECT_EQ(t.entry_interval, 100);
  EXPECT_LT(t.shares_i, 0.0);  // short the rich leg
  EXPECT_GT(t.shares_j, 0.0);
  EXPECT_GE(t.exit_interval, 140);  // converged after the spike ends
  EXPECT_EQ(t.exit_reason, ExitReason::retracement);
  EXPECT_GT(t.pnl, 0.0);  // captured the reversion
}

TEST(DistanceTrading, MaxHoldingCapsDuration) {
  constexpr std::size_t steps = 200;
  std::vector<double> pi(steps), pj(steps, 100.0);
  mm::Rng rng(3);
  for (std::size_t t = 0; t < 100; ++t) pi[t] = 100.0 + 0.05 * rng.normal();
  for (std::size_t t = 100; t < steps; ++t) pi[t] = 102.0;  // diverges, never reverts

  DistanceParams params;
  params.formation_intervals = 100;
  params.max_holding = 10;
  params.top_pairs = 1;
  std::vector<std::vector<double>> bam = {pi, pj};
  const auto formation = distance_formation(bam, params);
  ASSERT_FALSE(formation.selected.empty());

  const auto trades =
      run_distance_pair_day(params, formation.selected[0], pi, pj, pi[0], pj[0]);
  ASSERT_FALSE(trades.empty());
  EXPECT_EQ(trades[0].exit_reason, ExitReason::max_holding);
  EXPECT_LE(trades[0].exit_interval - trades[0].entry_interval, 10);
}

TEST(DistanceTrading, EndOfDayFlattens) {
  constexpr std::size_t steps = 150;
  std::vector<double> pi(steps), pj(steps, 100.0);
  mm::Rng rng(4);
  for (std::size_t t = 0; t < 100; ++t) pi[t] = 100.0 + 0.05 * rng.normal();
  for (std::size_t t = 100; t < steps; ++t) pi[t] = 102.0;

  DistanceParams params;
  params.formation_intervals = 100;
  params.no_entry_before_close = 5;
  params.top_pairs = 1;
  std::vector<std::vector<double>> bam = {pi, pj};
  const auto formation = distance_formation(bam, params);
  ASSERT_FALSE(formation.selected.empty());
  const auto trades =
      run_distance_pair_day(params, formation.selected[0], pi, pj, pi[0], pj[0]);
  ASSERT_EQ(trades.size(), 1u);
  EXPECT_EQ(trades[0].exit_reason, ExitReason::end_of_day);
  EXPECT_EQ(trades[0].exit_interval, static_cast<std::int64_t>(steps) - 1);
}

TEST(DistanceTrading, RespectsEntryCutoff) {
  constexpr std::size_t steps = 150;
  std::vector<double> pi(steps), pj(steps, 100.0);
  mm::Rng rng(5);
  for (std::size_t t = 0; t < 100; ++t) pi[t] = 100.0 + 0.05 * rng.normal();
  for (std::size_t t = 100; t < steps; ++t) pi[t] = 100.0;
  pi[148] = 103.0;  // diverges only inside the cutoff window

  DistanceParams params;
  params.formation_intervals = 100;
  params.no_entry_before_close = 10;
  params.top_pairs = 1;
  std::vector<std::vector<double>> bam = {pi, pj};
  const auto formation = distance_formation(bam, params);
  ASSERT_FALSE(formation.selected.empty());
  const auto trades =
      run_distance_pair_day(params, formation.selected[0], pi, pj, pi[0], pj[0]);
  EXPECT_TRUE(trades.empty());
}

}  // namespace
}  // namespace mm::core
