// Tests for correlation clustering, including recovery of the generator's
// planted sector structure — the [12] workload on our synthetic market.
#include <gtest/gtest.h>

#include "marketdata/bars.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"
#include "stats/cluster.hpp"
#include "stats/corr_engine.hpp"

namespace mm::stats {
namespace {

SymMatrix block_matrix() {
  // Two tight blocks {0,1,2} and {3,4} with weak cross-links.
  SymMatrix m(5, 0.0);
  m.fill_diagonal(1.0);
  const auto set_block = [&](std::initializer_list<std::size_t> ids, double c) {
    for (auto i : ids)
      for (auto j : ids)
        if (i < j) m.set(i, j, c);
  };
  set_block({0, 1, 2}, 0.8);
  set_block({3, 4}, 0.75);
  for (std::size_t i : {0u, 1u, 2u})
    for (std::size_t j : {3u, 4u}) m.set(i, j, 0.1);
  return m;
}

TEST(ThresholdClusters, SplitsBlocks) {
  const auto clusters = threshold_clusters(block_matrix(), 0.5);
  EXPECT_EQ(clusters.cluster_count, 2);
  EXPECT_EQ(clusters.assignment[0], clusters.assignment[1]);
  EXPECT_EQ(clusters.assignment[0], clusters.assignment[2]);
  EXPECT_EQ(clusters.assignment[3], clusters.assignment[4]);
  EXPECT_NE(clusters.assignment[0], clusters.assignment[3]);
}

TEST(ThresholdClusters, ExtremeThresholds) {
  const auto all_one = threshold_clusters(block_matrix(), 0.05);
  EXPECT_EQ(all_one.cluster_count, 1);
  const auto singletons = threshold_clusters(block_matrix(), 0.99);
  EXPECT_EQ(singletons.cluster_count, 5);
}

TEST(ThresholdClusters, GroupsPartitionSymbols) {
  const auto clusters = threshold_clusters(block_matrix(), 0.5);
  const auto groups = clusters.groups();
  std::size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, 5u);
}

TEST(SingleLinkage, ReachesExactTargetCount) {
  const auto m = block_matrix();
  for (int k = 1; k <= 5; ++k)
    EXPECT_EQ(single_linkage_clusters(m, k).cluster_count, k);
}

TEST(SingleLinkage, TwoClustersMatchBlocks) {
  const auto clusters = single_linkage_clusters(block_matrix(), 2);
  EXPECT_EQ(clusters.assignment[0], clusters.assignment[2]);
  EXPECT_EQ(clusters.assignment[3], clusters.assignment[4]);
  EXPECT_NE(clusters.assignment[0], clusters.assignment[3]);
}

TEST(RandIndex, IdenticalAndOrthogonal) {
  EXPECT_DOUBLE_EQ(rand_index({0, 0, 1, 1}, {1, 1, 0, 0}), 1.0);  // relabeled
  EXPECT_DOUBLE_EQ(rand_index({0, 0, 0, 0}, {0, 0, 0, 0}), 1.0);
  // {0,0,1,1} vs {0,1,0,1}: pairs (0,1),(2,3) same in a, split in b; pairs
  // (0,2),(1,3) split in a, same in b; (0,3),(1,2) split in both -> 2/6.
  EXPECT_NEAR(rand_index({0, 0, 1, 1}, {0, 1, 0, 1}), 2.0 / 6.0, 1e-12);
}

TEST(Clustering, RecoversGeneratorSectors) {
  // End-to-end [12]: compute the market-wide correlation matrix from a
  // synthetic day and check that single-linkage clustering recovers the
  // planted sector structure far better than chance.
  constexpr std::size_t n = 22;  // 12 tech, 10 financial
  const auto universe = md::make_universe(n);
  md::GeneratorConfig cfg;
  cfg.quote_rate = 0.3;
  cfg.episodes_per_day = 0.0;  // pure factor structure for this test
  cfg.sector_vol = 1.2e-4;     // strengthen the sector signal vs noise
  const md::SyntheticDay day(universe, cfg, 0);
  md::QuoteCleaner cleaner(n, md::CleanerConfig{});
  const auto bam = md::sample_bam_series(cleaner.clean(day.quotes()), n, cfg.session, 30);

  CorrEngineConfig engine_cfg;
  engine_cfg.type = Ctype::pearson;
  engine_cfg.window = 300;
  CorrelationCalculator calc(engine_cfg, n);
  std::vector<double> step(n);
  for (std::size_t s = 1; s < bam[0].size(); ++s) {
    for (std::size_t i = 0; i < n; ++i)
      step[i] = std::log(bam[i][s] / bam[i][s - 1]);
    calc.push(step);
  }
  const auto matrix = calc.matrix();

  const auto clusters =
      single_linkage_clusters(matrix, static_cast<int>(universe.sector_names.size()));
  const double score = rand_index(clusters.assignment, universe.sector);
  EXPECT_GT(score, 0.75) << "sector recovery too weak";
}

}  // namespace
}  // namespace mm::stats
