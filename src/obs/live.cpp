#include "obs/live.hpp"

#include <algorithm>
#include <cstdio>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "obs/prometheus.hpp"

namespace mm::obs {

#if MM_OBS_ENABLED

LivePlane::LivePlane(LiveConfig config, Registry& registry,
                     const TraceSink* trace)
    : config_(std::move(config)), registry_(registry), trace_(trace) {}

LivePlane::~LivePlane() {
  if (active_) end_run({});
}

void LivePlane::begin_run(int ranks, std::vector<std::string> rank_names) {
  if (!config_.enabled || ranks <= 0 || active_) return;
  rank_nodes_ = std::move(rank_names);

  board_ = std::make_unique<HeartbeatBoard>(ranks);
  HeartbeatMonitor::Config mc;
  mc.interval = config_.heartbeat_interval;
  mc.suspect_after = config_.suspect_after;
  mc.dead_after = config_.dead_after;
  monitor_ = std::make_unique<HeartbeatMonitor>(*board_, mc);
  monitor_->start();

  SnapshotScheduler::Config sc;
  sc.period = config_.snapshot_period;
  sc.ring_capacity = std::max<std::size_t>(config_.snapshot_ring, 2);
  sc.step_histogram = config_.step_histogram;
  scheduler_ = std::make_unique<SnapshotScheduler>(registry_, sc);
  scheduler_->start();

  if (config_.http_port >= 0 && config_.http_port <= 65535) {
    server_ = std::make_unique<MetricsServer>();
    server_->route("/metrics", [this] {
      return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                          render_metrics()};
    });
    server_->route("/healthz", [this] { return healthz(); });
    if (Status s = server_->start(static_cast<std::uint16_t>(config_.http_port));
        !s) {
      MM_LOG_WARN("obs: metrics listener disabled: " << s.error().to_string());
      server_.reset();
    } else {
      MM_LOG_INFO("obs: serving /metrics on 127.0.0.1:" << server_->port());
      if (config_.port_out != nullptr)
        config_.port_out->store(server_->port(), std::memory_order_release);
    }
  }
  active_ = true;
}

LiveReport LivePlane::end_run(std::vector<CrashEntry> caller_crashes) {
  LiveReport report;
  if (!active_) return report;
  active_ = false;
  report.enabled = true;
  report.rank_nodes = rank_nodes_;

  // Listener first: handlers must not observe half-torn-down internals.
  if (server_) {
    report.http_port = server_->port();
    server_->stop();
  }
  scheduler_->tick();  // final frame so the bundle sees the run's last state
  scheduler_->stop();
  // Rank threads have exited, beats have stopped: every rank converges to
  // done (retired) or down (silent) within dead_after x interval.
  monitor_->settle();
  monitor_->stop();
  report.health = monitor_->all();

  const auto node_name = [this](int rank) {
    return rank >= 0 && rank < static_cast<int>(rank_nodes_.size())
               ? rank_nodes_[static_cast<std::size_t>(rank)]
               : std::string{};
  };
  report.crashes = std::move(caller_crashes);
  for (CrashEntry& c : report.crashes) {
    if (c.node.empty()) c.node = node_name(c.rank);
    if (c.rank >= 0 && c.rank < static_cast<int>(report.health.size()))
      c.health = report.health[static_cast<std::size_t>(c.rank)];
  }
  for (const int rank : monitor_->dead_ranks()) {
    const bool reported =
        std::any_of(report.crashes.begin(), report.crashes.end(),
                    [rank](const CrashEntry& c) { return c.rank == rank; });
    if (reported) continue;
    CrashEntry entry;
    entry.rank = rank;
    entry.node = node_name(rank);
    entry.reason = "heartbeat";
    entry.error = "rank went silent past the dead threshold";
    entry.health = report.health[static_cast<std::size_t>(rank)];
    report.crashes.push_back(std::move(entry));
  }

  const Snapshot final_snap = registry_.snapshot();
  if (!config_.metrics_dump_path.empty()) {
    std::string page = prom_render(final_snap);
    page += prom_render_health(report.health, rank_nodes_, now_ns());
    std::FILE* f = std::fopen(config_.metrics_dump_path.c_str(), "wb");
    if (f != nullptr) {
      std::fwrite(page.data(), 1, page.size(), f);
      std::fclose(f);
    } else {
      MM_LOG_WARN("obs: cannot write metrics dump " << config_.metrics_dump_path);
    }
  }

  if (!report.crashes.empty()) {
    FlightRecorder recorder(
        FlightRecorder::Config{config_.flight_dir, config_.flight_frames});
    auto bundle = recorder.dump(report.crashes, report.health, rank_nodes_,
                                trace_, scheduler_->frames(), final_snap);
    if (bundle) {
      report.flight_bundle = *bundle;
      MM_LOG_WARN("obs: flight bundle written to " << report.flight_bundle);
    } else {
      MM_LOG_WARN("obs: flight dump failed: " << bundle.error().to_string());
    }
  }
  return report;
}

std::string LivePlane::render_metrics() const {
  std::string out = prom_render(registry_.snapshot());
  if (monitor_) out += prom_render_health(monitor_->all(), rank_nodes_, now_ns());
  if (scheduler_) out += prom_render_rates(scheduler_->rates(), now_ns());
  return out;
}

HttpResponse LivePlane::healthz() const {
  if (!monitor_) return {200, "text/plain; charset=utf-8", "ok\n"};
  std::string down;
  for (const int rank : monitor_->dead_ranks()) {
    if (!down.empty()) down += ", ";
    down += format("rank %d", rank);
    if (rank < static_cast<int>(rank_nodes_.size()) &&
        !rank_nodes_[static_cast<std::size_t>(rank)].empty())
      down += " (" + rank_nodes_[static_cast<std::size_t>(rank)] + ")";
  }
  if (down.empty()) return {200, "text/plain; charset=utf-8", "ok\n"};
  return {503, "text/plain; charset=utf-8", "down: " + down + "\n"};
}

#endif  // MM_OBS_ENABLED

}  // namespace mm::obs
