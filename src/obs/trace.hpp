// mm::obs tracing — per-rank rings of compact events drained to Chrome JSON.
//
// A TraceRing is a fixed-capacity, single-writer ring of 64-byte events owned
// by one rank thread: recording a span is two steady_clock reads plus one
// bounded memcpy, no locks and no allocation; when the ring is full the
// newest events are dropped and counted. A TraceSink owns one ring per rank
// ("process" in the viewer) and serializes them into the chrome://tracing /
// Perfetto JSON format after the run — one process per rank, one named thread
// per dagflow node.
//
// Recording is RAII: ObsSpan emits a complete ("X") event covering its own
// lifetime and can simultaneously record the duration into a Histogram, which
// is how dagflow keeps one timing mechanism for traces and metrics.
//
// With MM_OBS_ENABLED=0 every type here is a field-free no-op (ObsSpan does
// not even read the clock) and chrome_json() returns an empty trace.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "obs/registry.hpp"

#if MM_OBS_ENABLED
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <vector>
#endif

namespace mm::obs {

#if MM_OBS_ENABLED

// Absolute steady-clock nanoseconds (the time base for every trace event).
inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TraceEvent {
  char name[39];        // truncated copy; self-contained, no interning
  std::uint8_t instant; // 1 = instant event, 0 = complete span
  std::int64_t ts_ns;   // relative to the sink epoch
  std::int64_t dur_ns;
  std::int32_t tid;
};
static_assert(sizeof(TraceEvent) == 64, "one event per cache line");

class TraceRing {
 public:
  TraceRing(std::int32_t pid, std::int64_t epoch_ns, std::size_t capacity);

  // The thread row subsequent events belong to (a dagflow node id).
  void set_tid(std::int32_t tid) { tid_ = tid; }
  std::int32_t pid() const { return pid_; }

  // Record a complete span [start_ns, start_ns + dur_ns) (absolute ns).
  void complete(const char* name, std::int64_t start_ns, std::int64_t dur_ns) {
    push(name, start_ns, dur_ns, /*instant=*/false);
  }

  // Record a zero-duration instant event at now.
  void instant(const char* name) { push(name, now_ns(), 0, /*instant=*/true); }

  std::size_t size() const { return size_; }
  std::uint64_t dropped() const { return dropped_; }
  const TraceEvent& event(std::size_t i) const { return events_[i]; }

 private:
  void push(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
            bool instant);

  std::int32_t pid_;
  std::int32_t tid_ = 0;
  std::int64_t epoch_ns_;
  std::vector<TraceEvent> events_;  // filled [0, size_)
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

class TraceSink {
 public:
  explicit TraceSink(std::size_t ring_capacity = 1u << 16);

  // The ring for rank `pid`, created (and its process named) on first use.
  // Creation is mutex-guarded; the returned ring must only be written by the
  // rank's own thread.
  TraceRing& ring(std::int32_t pid, const std::string& process_name);

  // Name the (pid, tid) row — e.g. the dagflow node running on that rank.
  void set_thread_name(std::int32_t pid, std::int32_t tid, const std::string& name);

  std::int64_t epoch_ns() const { return epoch_ns_; }

  // Serialize all rings. Call after every writer thread has finished (the
  // reader takes the registration mutex but events themselves are unsynchronized
  // by design).
  std::string chrome_json() const;
  Status write_file(const std::string& path) const;

  std::uint64_t total_events() const;
  std::uint64_t total_dropped() const;

 private:
  std::int64_t epoch_ns_;
  std::size_t ring_capacity_;
  mutable std::mutex mutex_;
  std::map<std::int32_t, std::unique_ptr<TraceRing>> rings_;
  std::map<std::int32_t, std::string> process_names_;
  std::map<std::pair<std::int32_t, std::int32_t>, std::string> thread_names_;
};

// RAII span: records its constructor→destructor lifetime as a trace event
// on `ring` and/or a sample in `hist`. Null arguments are skipped; with both
// null the span is free (no clock reads). `name` must outlive the span.
class ObsSpan {
 public:
  ObsSpan(TraceRing* ring, const char* name, Histogram* hist = nullptr)
      : ring_(ring), hist_(hist), name_(name) {
    if (ring_ != nullptr || hist_ != nullptr) start_ns_ = now_ns();
  }

  // End the span now instead of at destruction (idempotent).
  void close() {
    if (ring_ == nullptr && hist_ == nullptr) return;
    const std::int64_t dur = now_ns() - start_ns_;
    if (ring_ != nullptr) ring_->complete(name_, start_ns_, dur);
    if (hist_ != nullptr) hist_->record(dur);
    ring_ = nullptr;
    hist_ = nullptr;
  }

  ~ObsSpan() { close(); }

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  TraceRing* ring_;
  Histogram* hist_;
  const char* name_;
  std::int64_t start_ns_ = 0;
};

#else  // !MM_OBS_ENABLED

inline std::int64_t now_ns() noexcept { return 0; }

class TraceRing {
 public:
  void set_tid(std::int32_t) {}
  std::int32_t pid() const { return 0; }
  void complete(const char*, std::int64_t, std::int64_t) {}
  void instant(const char*) {}
  std::size_t size() const { return 0; }
  std::uint64_t dropped() const { return 0; }
};

class TraceSink {
 public:
  explicit TraceSink(std::size_t = 0) {}
  TraceRing& ring(std::int32_t, const std::string&) { return ring_; }
  void set_thread_name(std::int32_t, std::int32_t, const std::string&) {}
  std::int64_t epoch_ns() const { return 0; }
  std::string chrome_json() const { return "{\"traceEvents\":[]}"; }
  Status write_file(const std::string& path) const;
  std::uint64_t total_events() const { return 0; }
  std::uint64_t total_dropped() const { return 0; }

 private:
  TraceRing ring_;
};

class ObsSpan {
 public:
  ObsSpan(TraceRing*, const char*, Histogram* = nullptr) {}
  void close() {}
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;
};

#endif  // MM_OBS_ENABLED

}  // namespace mm::obs
