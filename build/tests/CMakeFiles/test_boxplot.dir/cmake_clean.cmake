file(REMOVE_RECURSE
  "CMakeFiles/test_boxplot.dir/test_boxplot.cpp.o"
  "CMakeFiles/test_boxplot.dir/test_boxplot.cpp.o.d"
  "test_boxplot"
  "test_boxplot.pdb"
  "test_boxplot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boxplot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
