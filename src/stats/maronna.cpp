#include "stats/maronna.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace mm::stats {
namespace {

double median_of(std::vector<double> v) {
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

// Median absolute deviation scaled to be consistent for the normal.
double mad(const std::vector<double>& v, double center) {
  std::vector<double> dev;
  dev.reserve(v.size());
  for (double x : v) dev.push_back(std::abs(x - center));
  return 1.4826 * median_of(std::move(dev));
}

// Huber weight on squared Mahalanobis distance: 1 inside the k² ball,
// k²/d² outside — bounded influence.
double weight(double d2, double k2) { return d2 <= k2 ? 1.0 : k2 / d2; }

}  // namespace

MaronnaResult maronna_estimate(const double* x, const double* y, std::size_t n,
                               const MaronnaConfig& config) {
  MM_ASSERT_MSG(n >= 2, "maronna needs n >= 2");
  MaronnaResult out;

  // Robust initialization: coordinatewise medians and MADs, zero covariance.
  std::vector<double> xs(x, x + n), ys(y, y + n);
  double mx = median_of(xs);
  double my = median_of(ys);
  double sx = mad(xs, mx);
  double sy = mad(ys, my);

  // Degenerate dispersion (e.g. a constant return window): fall back to a
  // tiny floor so the iteration is defined; if both are flat, report 0.
  if (sx <= 0.0 && sy <= 0.0) {
    out.location_x = mx;
    out.location_y = my;
    return out;
  }
  const double floor_x = sx > 0.0 ? 0.0 : 1e-12;
  const double floor_y = sy > 0.0 ? 0.0 : 1e-12;
  double vxx = sx * sx + floor_x;
  double vyy = sy * sy + floor_y;
  double vxy = 0.0;

  const auto nd = static_cast<double>(n);
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    // Invert the 2x2 scatter.
    const double det = vxx * vyy - vxy * vxy;
    if (det <= 0.0 || !std::isfinite(det)) break;
    const double ixx = vyy / det;
    const double iyy = vxx / det;
    const double ixy = -vxy / det;

    double sw = 0.0, swx = 0.0, swy = 0.0;
    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = x[i] - mx;
      const double dy = y[i] - my;
      const double d2 = dx * dx * ixx + 2.0 * dx * dy * ixy + dy * dy * iyy;
      const double w = weight(d2, config.huber_k2);
      sw += w;
      swx += w * x[i];
      swy += w * y[i];
      sxx += w * dx * dx;
      sxy += w * dx * dy;
      syy += w * dy * dy;
    }
    if (sw <= 0.0) break;

    const double new_mx = swx / sw;
    const double new_my = swy / sw;
    // Scatter normalized by n (Maronna's fixed-point with Huber rho keeps the
    // estimate consistent up to a scale factor that cancels in correlation).
    const double new_vxx = sxx / nd + floor_x;
    const double new_vyy = syy / nd + floor_y;
    const double new_vxy = sxy / nd;

    const double scale = std::max({std::abs(vxx), std::abs(vyy), 1e-300});
    const double delta = std::max({std::abs(new_vxx - vxx), std::abs(new_vyy - vyy),
                                   std::abs(new_vxy - vxy)}) /
                         scale;
    mx = new_mx;
    my = new_my;
    vxx = new_vxx;
    vyy = new_vyy;
    vxy = new_vxy;
    out.iterations = iter + 1;
    if (delta < config.tolerance) {
      out.converged = true;
      break;
    }
  }

  out.location_x = mx;
  out.location_y = my;
  out.scatter_xx = vxx;
  out.scatter_xy = vxy;
  out.scatter_yy = vyy;

  const double denom = std::sqrt(vxx * vyy);
  if (denom <= 0.0 || !std::isfinite(denom)) {
    out.correlation = 0.0;
  } else {
    out.correlation = std::clamp(vxy / denom, -1.0, 1.0);
  }
  return out;
}

double maronna(const double* x, const double* y, std::size_t n,
               const MaronnaConfig& config) {
  return maronna_estimate(x, y, n, config).correlation;
}

double maronna(const std::vector<double>& x, const std::vector<double>& y,
               const MaronnaConfig& config) {
  MM_ASSERT_MSG(x.size() == y.size(), "maronna: length mismatch");
  return maronna(x.data(), y.data(), x.size(), config);
}

}  // namespace mm::stats
