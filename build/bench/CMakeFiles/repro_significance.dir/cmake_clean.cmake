file(REMOVE_RECURSE
  "CMakeFiles/repro_significance.dir/repro_significance.cpp.o"
  "CMakeFiles/repro_significance.dir/repro_significance.cpp.o.d"
  "repro_significance"
  "repro_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
