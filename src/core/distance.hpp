// The classical distance-method pairs strategy — Gatev, Goetzmann &
// Rouwenhorst, the paper's reference [1] and the baseline against which the
// correlation-divergence approach positions itself.
//
// Formation: over a formation window, normalize each price series to its
// starting value and compute, per pair, the sum of squared differences (SSD)
// of the normalized paths. The `top_pairs` smallest-SSD pairs are selected,
// and each records the mean and standard deviation of its normalized spread.
//
// Trading: a selected pair opens when its normalized spread diverges more
// than `open_threshold` standard deviations from the formation mean (short
// the rich leg, long the cheap leg, the same cash-neutral sizing as the
// canonical strategy) and closes when the spread reverts through the mean
// (or on the optional holding cap / end of day).
//
// The paper's strategy trades *correlation* divergence over sliding windows;
// this baseline trades *price-path* divergence against a frozen formation
// profile — implementing it lets the benches compare the two philosophies on
// identical data.
#pragma once

#include <cstdint>
#include <vector>

#include "core/strategy.hpp"
#include "stats/sym_matrix.hpp"

namespace mm::core {

struct DistanceParams {
  // Intervals used for formation (the rest of the day trades).
  std::int64_t formation_intervals = 390;
  // Open when |spread - mean| > open_threshold * sigma.
  double open_threshold = 2.0;
  // Close when the spread is within close_threshold * sigma of the mean.
  double close_threshold = 0.0;
  // Pairs selected by smallest SSD.
  std::size_t top_pairs = 20;
  // 0 = hold until convergence or end of day.
  std::int64_t max_holding = 0;
  std::int64_t no_entry_before_close = 20;

  Status validate() const;
};

struct PairProfile {
  stats::PairIndex pair{};
  double ssd = 0.0;          // formation distance
  double spread_mean = 0.0;  // normalized-spread stats over formation
  double spread_std = 0.0;
};

struct FormationResult {
  // Selected pairs, ascending SSD.
  std::vector<PairProfile> selected;
  // Normalization anchors: price at interval 0 per symbol.
  std::vector<double> anchors;
};

// Rank all pairs of `bam` by formation-window SSD and keep the best.
FormationResult distance_formation(const std::vector<std::vector<double>>& bam,
                                   const DistanceParams& params);

// Trade one selected pair across the post-formation part of the day.
std::vector<Trade> run_distance_pair_day(const DistanceParams& params,
                                         const PairProfile& profile,
                                         const std::vector<double>& prices_i,
                                         const std::vector<double>& prices_j,
                                         double anchor_i, double anchor_j);

}  // namespace mm::core
