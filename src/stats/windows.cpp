#include "stats/windows.hpp"

#include <algorithm>
#include <cmath>

#include "stats/simd.hpp"

namespace mm::stats {

ReturnWindows::ReturnWindows(std::size_t symbols, std::size_t window,
                             bool track_cross_sums)
    : symbols_(symbols),
      window_(window),
      data_(symbols * window, 0.0),
      sum_(symbols, 0.0),
      sum_sq_(symbols, 0.0),
      last_value_(symbols, 0.0),
      run_length_(symbols, 0),
      evict_scratch_(symbols, 0.0) {
  MM_ASSERT_MSG(symbols >= 1, "ReturnWindows needs at least one symbol");
  MM_ASSERT_MSG(window >= 2, "ReturnWindows window must be >= 2");
  if (track_cross_sums) cross_ = SymMatrix(symbols, 0.0);
}

void ReturnWindows::push(const std::vector<double>& returns) {
  MM_ASSERT_MSG(returns.size() == symbols_, "push: one return per symbol required");

  const bool evicting = count_ >= window_;
  const bool cross = tracks_cross_sums();

  if (evicting) {
    // Stage the oldest column (the slot we are about to overwrite) so the
    // cross-sum update below can fuse eviction and insertion into a single
    // pass over the packed triangle.
    for (std::size_t i = 0; i < symbols_; ++i) {
      const double old = data_[i * window_ + head_];
      evict_scratch_[i] = old;
      sum_[i] -= old;
      sum_sq_[i] -= old * old;
    }
  }

  for (std::size_t i = 0; i < symbols_; ++i) {
    const double x = returns[i];
    data_[i * window_ + head_] = x;
    sum_[i] += x;
    sum_sq_[i] += x * x;
    if (count_ > 0 && x == last_value_[i]) {
      ++run_length_[i];
    } else {
      last_value_[i] = x;
      run_length_[i] = 1;
    }
  }

  if (cross) {
    // One linear walk over the packed upper triangle (row i's off-diagonal
    // segment is contiguous), streaming the new and evicted columns from two
    // n-sized arrays that stay cache-resident. Fusing evict+insert halves
    // the O(n²) triangle traffic versus separate passes.
    const auto& kern = simd::kernels();
    double* cp = cross_.packed().data();
    const double* r = returns.data();
    const double* old = evict_scratch_.data();
    std::size_t base = 0;
    if (evicting) {
      for (std::size_t i = 0; i < symbols_; ++i) {
        double* row = cp + base;  // row[k] == Σ x_i x_{i+k}
        kern.cross_evict_insert(row + 1, r + i + 1, old + i + 1, r[i], old[i],
                                symbols_ - i - 1);
        base += symbols_ - i;
      }
    } else {
      for (std::size_t i = 0; i < symbols_; ++i) {
        double* row = cp + base;
        kern.cross_insert(row + 1, r + i + 1, r[i], symbols_ - i - 1);
        base += symbols_ - i;
      }
    }
  }

  head_ = (head_ + 1) % window_;
  ++count_;

  // Bound floating-point drift in the running sums.
  if (count_ % kRebuildInterval == 0) rebuild_sums();
}

void ReturnWindows::rebuild_sums() {
  std::fill(sum_.begin(), sum_.end(), 0.0);
  std::fill(sum_sq_.begin(), sum_sq_.end(), 0.0);
  const std::size_t filled = std::min(count_, window_);
  for (std::size_t i = 0; i < symbols_; ++i) {
    for (std::size_t t = 0; t < filled; ++t) {
      const double x = data_[i * window_ + t];
      sum_[i] += x;
      sum_sq_[i] += x * x;
    }
  }
  if (tracks_cross_sums()) {
    // The two rows align slot-for-slot (all rings share one head), so the
    // exact cross sum is a straight dot product over the filled slots.
    const auto& kern = simd::kernels();
    for (std::size_t i = 0; i < symbols_; ++i) {
      const double* xi = data_.data() + i * window_;
      for (std::size_t j = i + 1; j < symbols_; ++j)
        cross_.set(i, j, kern.dot(xi, data_.data() + j * window_, filled));
    }
  }
}

void ReturnWindows::copy_window(std::size_t symbol, double* out) const {
  MM_ASSERT(symbol < symbols_);
  MM_ASSERT_MSG(ready(), "copy_window before the window is full");
  // Oldest element is at head_ (the next overwrite target) once full: the
  // ring unwraps as two contiguous segments.
  const double* row = data_.data() + symbol * window_;
  const std::size_t tail = window_ - head_;
  std::copy(row + head_, row + window_, out);
  std::copy(row, row + head_, out + tail);
}

void ReturnWindows::unwrap_all(double* arena) const {
  MM_ASSERT_MSG(ready(), "unwrap_all before the window is full");
  const std::size_t tail = window_ - head_;
  for (std::size_t i = 0; i < symbols_; ++i) {
    const double* row = data_.data() + i * window_;
    double* out = arena + i * window_;
    std::copy(row + head_, row + window_, out);
    std::copy(row, row + head_, out + tail);
  }
}

double ReturnWindows::cross_sum(std::size_t i, std::size_t j) const {
  MM_ASSERT_MSG(tracks_cross_sums(), "cross sums not tracked");
  if (i == j) return sum_sq_[i];
  return cross_(i, j);
}

double ReturnWindows::pearson(std::size_t i, std::size_t j) const {
  MM_ASSERT_MSG(ready(), "pearson before the window is full");
  // An exactly constant window has zero variance: no signal. (The batch
  // estimator sees dx == 0 exactly; the running sums only see their own
  // roundoff residue, so detect the case via value run lengths.)
  if (run_length_[i] >= window_ || run_length_[j] >= window_) return 0.0;
  const auto n = static_cast<double>(window_);
  const double cov = cross_sum(i, j) - sum_[i] * sum_[j] / n;
  const double vi = sum_sq_[i] - sum_[i] * sum_[i] / n;
  const double vj = sum_sq_[j] - sum_[j] * sum_[j] / n;
  // A variance that is a ~1e-12 sliver of the raw sum of squares is pure
  // cancellation residue from a (numerically) constant window: report "no
  // dispersion" -> 0, exactly as the batch estimator does when dx == 0.
  if (vi <= 1e-12 * sum_sq_[i] || vj <= 1e-12 * sum_sq_[j]) return 0.0;
  const double denom = std::sqrt(vi * vj);
  if (denom <= 0.0 || !std::isfinite(denom)) return 0.0;
  return std::clamp(cov / denom, -1.0, 1.0);
}

void ReturnWindows::pearson_matrix(SymMatrix& out) const {
  MM_ASSERT_MSG(ready(), "pearson_matrix before the window is full");
  MM_ASSERT_MSG(tracks_cross_sums(), "cross sums not tracked");
  if (out.size() != symbols_) out = SymMatrix(symbols_, 0.0);

  // Per-symbol variance and degeneracy, hoisted out of the O(n²) loop. The
  // expressions match pearson() exactly so every entry is bit-identical.
  const auto n = static_cast<double>(window_);
  variance_scratch_.resize(symbols_);
  degenerate_scratch_.resize(symbols_);
  for (std::size_t i = 0; i < symbols_; ++i) {
    const double vi = sum_sq_[i] - sum_[i] * sum_[i] / n;
    variance_scratch_[i] = vi;
    degenerate_scratch_[i] =
        (run_length_[i] >= window_ || vi <= 1e-12 * sum_sq_[i]) ? 1.0 : 0.0;
  }

  // Both packed triangles share one layout, so the kernel is a single linear
  // walk over each with contiguous row segments.
  const auto& kern = simd::kernels();
  const double* cp = cross_.packed().data();
  double* op = out.packed().data();
  std::size_t base = 0;
  for (std::size_t i = 0; i < symbols_; ++i) {
    const double* crow = cp + base;
    double* orow = op + base;
    orow[0] = 1.0;
    const std::size_t len = symbols_ - i - 1;
    if (degenerate_scratch_[i] != 0.0) {
      std::fill(orow + 1, orow + 1 + len, 0.0);
    } else {
      kern.pearson_row(orow + 1, crow + 1, sum_.data() + i + 1,
                       variance_scratch_.data() + i + 1,
                       degenerate_scratch_.data() + i + 1, sum_[i],
                       variance_scratch_[i], n, len);
    }
    base += symbols_ - i;
  }
}

}  // namespace mm::stats
