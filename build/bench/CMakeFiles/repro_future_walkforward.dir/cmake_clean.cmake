file(REMOVE_RECURSE
  "CMakeFiles/repro_future_walkforward.dir/repro_future_walkforward.cpp.o"
  "CMakeFiles/repro_future_walkforward.dir/repro_future_walkforward.cpp.o.d"
  "repro_future_walkforward"
  "repro_future_walkforward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_future_walkforward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
