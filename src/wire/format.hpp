// Versioned little-endian binary quote wire format (the "mmq" protocol).
//
// The format is ITCH-style: a stream of length-prefixed frames, each carrying
// one message. All integers are little-endian regardless of host order, and
// doubles travel as the LE bytes of their IEEE-754 bit pattern, so the
// encoding is byte-stable across machines (asserted by a golden test).
//
//   frame   := u16 length | u8 type | body[length - 1]
//              (`length` counts the type byte plus the body, never the
//               length field itself — an empty body means length == 1)
//
//   hello      (type 1): u32 magic | u16 version | u16 flags | u64 session
//                        | u16 key_len | key bytes        — opens a session;
//                        over TCP the key names the day the client subscribes
//                        to (a md::DayCache key), and the server streams that
//                        day back.
//   quote      (type 2): i64 ts_ms | u32 symbol | f64 bid | f64 ask
//                        | i32 bid_size | i32 ask_size    — 36-byte body, a
//                        bitwise image of md::Quote's fields.
//   heartbeat  (type 3): u64 counter                      — keep-alive.
//   end_of_day (type 4): u64 quote_count                  — closes the day;
//                        the count lets receivers detect loss on UDP.
//
// UDP transport prepends a 24-byte datagram header so receivers can dedup
// and reorder at datagram granularity:
//
//   datagram := u32 magic | u16 version | u16 msg_count | u64 session
//               | u64 first_seq | msg_count frames
//
// `first_seq` is the stream-wide sequence number of the first message in the
// datagram; consecutive datagrams cover consecutive sequence ranges, so a
// receiver tracks one expected-next counter (see SequenceTracker in
// parser.hpp).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "marketdata/types.hpp"

namespace mm::wire {

// "MMQ1" when read as ASCII bytes on the wire (stored little-endian).
inline constexpr std::uint32_t magic = 0x31514D4Du;
inline constexpr std::uint16_t version = 1;

enum class MsgType : std::uint8_t {
  hello = 1,
  quote = 2,
  heartbeat = 3,
  end_of_day = 4,
};

inline constexpr std::size_t frame_header_bytes = 3;  // u16 length + u8 type
inline constexpr std::size_t quote_body_bytes = 36;
inline constexpr std::size_t datagram_header_bytes = 24;
// Largest body a conforming sender may emit (hello keys are the only
// variable-length payload); parsers reject anything bigger as corruption.
inline constexpr std::size_t max_body_bytes = 1024;
// Hello fixed fields are 18 bytes (magic 4, version 2, flags 2, session 8,
// key_len 2); the key fills the rest of the largest legal body.
inline constexpr std::size_t max_key_bytes = max_body_bytes - 18;

// --- little-endian primitive access -------------------------------------
// Byte-by-byte stores/loads: endian-correct everywhere, and compilers fold
// them into single moves on little-endian hosts.

inline void store_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void store_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline void store_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint16_t load_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

inline std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

inline std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

inline void store_f64(std::uint8_t* p, double v) {
  store_u64(p, std::bit_cast<std::uint64_t>(v));
}

inline double load_f64(const std::uint8_t* p) {
  return std::bit_cast<double>(load_u64(p));
}

// --- encoding ------------------------------------------------------------

// Appends frames to an owned buffer. One writer instance is reused per
// connection/day: `clear()` keeps the capacity, so steady-state encoding
// allocates nothing.
class FrameWriter {
 public:
  void hello(std::uint64_t session, std::string_view key, std::uint16_t flags = 0) {
    MM_ASSERT_MSG(key.size() <= max_key_bytes, "wire: hello key too long");
    std::uint8_t* p = begin_frame(MsgType::hello, 18 + key.size());
    store_u32(p, magic);
    store_u16(p + 4, version);
    store_u16(p + 6, flags);
    store_u64(p + 8, session);
    store_u16(p + 16, static_cast<std::uint16_t>(key.size()));
    std::memcpy(p + 18, key.data(), key.size());
  }

  void quote(const md::Quote& q) {
    std::uint8_t* p = begin_frame(MsgType::quote, quote_body_bytes);
    store_u64(p, static_cast<std::uint64_t>(q.ts_ms));
    store_u32(p + 8, q.symbol);
    store_f64(p + 12, q.bid);
    store_f64(p + 20, q.ask);
    store_u32(p + 28, static_cast<std::uint32_t>(q.bid_size));
    store_u32(p + 32, static_cast<std::uint32_t>(q.ask_size));
  }

  void heartbeat(std::uint64_t counter) {
    std::uint8_t* p = begin_frame(MsgType::heartbeat, 8);
    store_u64(p, counter);
  }

  void end_of_day(std::uint64_t quote_count) {
    std::uint8_t* p = begin_frame(MsgType::end_of_day, 8);
    store_u64(p, quote_count);
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }
  void clear() { buf_.clear(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::uint8_t* begin_frame(MsgType type, std::size_t body) {
    const std::size_t at = buf_.size();
    buf_.resize(at + frame_header_bytes + body);
    std::uint8_t* p = buf_.data() + at;
    store_u16(p, static_cast<std::uint16_t>(1 + body));
    p[2] = static_cast<std::uint8_t>(type);
    return p + frame_header_bytes;
  }

  std::vector<std::uint8_t> buf_;
};

// UDP datagram header helpers. `start_datagram` writes a header with a
// placeholder count; `finish_datagram` patches the real frame count in.
inline void start_datagram(std::vector<std::uint8_t>& buf, std::uint64_t session,
                           std::uint64_t first_seq) {
  buf.resize(datagram_header_bytes);
  std::uint8_t* p = buf.data();
  store_u32(p, magic);
  store_u16(p + 4, version);
  store_u16(p + 6, 0);  // msg_count, patched by finish_datagram
  store_u64(p + 8, session);
  store_u64(p + 16, first_seq);
}

inline void finish_datagram(std::vector<std::uint8_t>& buf, std::uint16_t msg_count) {
  MM_ASSERT(buf.size() >= datagram_header_bytes);
  store_u16(buf.data() + 6, msg_count);
}

struct DatagramHeader {
  std::uint16_t msg_count = 0;
  std::uint64_t session = 0;
  std::uint64_t first_seq = 0;
};

}  // namespace mm::wire
