#include "obs/trace.hpp"

#include <cstdio>
#include <cstring>

#include "common/json.hpp"
#include "common/strings.hpp"

namespace mm::obs {
namespace {

// Event/process names are plain identifiers in practice, but a stray quote
// must not corrupt the trace; use the tree-wide shared JSON escaper.
std::string escape(const std::string& s) { return json::escape(s); }

Status write_string(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return Error(Errc::io_error, "trace: cannot open " + path + " for writing");
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size())
    return Error(Errc::io_error, "trace: short write to " + path);
  return {};
}

}  // namespace

#if MM_OBS_ENABLED

TraceRing::TraceRing(std::int32_t pid, std::int64_t epoch_ns, std::size_t capacity)
    : pid_(pid), epoch_ns_(epoch_ns) {
  events_.resize(capacity);
}

void TraceRing::push(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
                     bool instant) {
  if (size_ == events_.size()) {
    // Full: drop the newest rather than overwrite — the run's opening events
    // (graph setup, first frames) are the ones post-mortems need intact.
    ++dropped_;
    return;
  }
  TraceEvent& e = events_[size_++];
  std::snprintf(e.name, sizeof(e.name), "%s", name == nullptr ? "" : name);
  e.instant = instant ? 1 : 0;
  e.ts_ns = start_ns - epoch_ns_;
  e.dur_ns = dur_ns;
  e.tid = tid_;
}

TraceSink::TraceSink(std::size_t ring_capacity)
    : epoch_ns_(now_ns()), ring_capacity_(ring_capacity) {}

TraceRing& TraceSink::ring(std::int32_t pid, const std::string& process_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = rings_[pid];
  if (!slot) {
    slot = std::make_unique<TraceRing>(pid, epoch_ns_, ring_capacity_);
    process_names_[pid] = process_name;
  }
  return *slot;
}

void TraceSink::set_thread_name(std::int32_t pid, std::int32_t tid,
                                const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  thread_names_[{pid, tid}] = name;
}

std::string TraceSink::chrome_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto append = [&](const std::string& event) {
    if (!first) out += ",";
    first = false;
    out += event;
  };
  for (const auto& [pid, name] : process_names_)
    append(format("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                  "\"args\":{\"name\":\"%s\"}}",
                  pid, escape(name).c_str()));
  for (const auto& [key, name] : thread_names_)
    append(format("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                  "\"args\":{\"name\":\"%s\"}}",
                  key.first, key.second, escape(name).c_str()));
  for (const auto& [pid, ring] : rings_) {
    for (std::size_t i = 0; i < ring->size(); ++i) {
      const TraceEvent& e = ring->event(i);
      // chrome://tracing timestamps are microseconds (fractional allowed).
      if (e.instant != 0) {
        append(format("{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
                      "\"pid\":%d,\"tid\":%d}",
                      escape(e.name).c_str(), static_cast<double>(e.ts_ns) / 1e3, pid,
                      e.tid));
      } else {
        append(format("{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                      "\"pid\":%d,\"tid\":%d}",
                      escape(e.name).c_str(), static_cast<double>(e.ts_ns) / 1e3,
                      static_cast<double>(e.dur_ns) / 1e3, pid, e.tid));
      }
    }
  }
  out += "]}";
  return out;
}

Status TraceSink::write_file(const std::string& path) const {
  return write_string(path, chrome_json());
}

std::uint64_t TraceSink::total_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [pid, ring] : rings_) total += ring->size();
  return total;
}

std::uint64_t TraceSink::total_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [pid, ring] : rings_) total += ring->dropped();
  return total;
}

#else

Status TraceSink::write_file(const std::string& path) const {
  return write_string(path, chrome_json());
}

#endif  // MM_OBS_ENABLED

}  // namespace mm::obs
