file(REMOVE_RECURSE
  "CMakeFiles/test_symbols.dir/test_symbols.cpp.o"
  "CMakeFiles/test_symbols.dir/test_symbols.cpp.o.d"
  "test_symbols"
  "test_symbols.pdb"
  "test_symbols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symbols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
