// Tests for the treatment significance analysis.
#include <gtest/gtest.h>

#include "core/significance.hpp"

namespace mm::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.symbols = 5;
  cfg.days = 2;
  cfg.generator.quote_rate = 0.2;
  return cfg;
}

TEST(Significance, ComparesAllThreePairsForEachMeasure) {
  const auto result = run_experiment(tiny_config());
  const auto comparisons = compare_treatments(result, Measure::monthly_return);
  ASSERT_EQ(comparisons.size(), 3u);
  // Maronna/Pearson, Maronna/Combined, Pearson/Combined — in that order.
  EXPECT_EQ(comparisons[0].a, stats::Ctype::maronna);
  EXPECT_EQ(comparisons[0].b, stats::Ctype::pearson);
  EXPECT_EQ(comparisons[2].a, stats::Ctype::pearson);
  EXPECT_EQ(comparisons[2].b, stats::Ctype::combined);
  for (const auto& cmp : comparisons) {
    EXPECT_GE(cmp.t_test.p_value, 0.0);
    EXPECT_LE(cmp.t_test.p_value, 1.0);
    EXPECT_GE(cmp.wilcoxon.p_value, 0.0);
    EXPECT_LE(cmp.wilcoxon.p_value, 1.0);
    EXPECT_EQ(cmp.t_test.n, result.pair_count);
  }
}

TEST(Significance, EffectMatchesSampleMeanDifference) {
  const auto result = run_experiment(tiny_config());
  const auto comparisons = compare_treatments(result, Measure::win_loss);
  const auto& maronna = result.win_loss[static_cast<std::size_t>(stats::Ctype::maronna)];
  const auto& pearson = result.win_loss[static_cast<std::size_t>(stats::Ctype::pearson)];
  double diff = 0.0;
  for (std::size_t p = 0; p < maronna.size(); ++p) diff += maronna[p] - pearson[p];
  diff /= static_cast<double>(maronna.size());
  EXPECT_NEAR(comparisons[0].t_test.effect, diff, 1e-12);
}

TEST(Significance, ReportRenders) {
  const auto result = run_experiment(tiny_config());
  const auto text = render_significance_report(result);
  EXPECT_NE(text.find("Maronna"), std::string::npos);
  EXPECT_NE(text.find("wilcoxon"), std::string::npos);
  EXPECT_NE(text.find("average win-loss ratio"), std::string::npos);
}

}  // namespace
}  // namespace mm::core
