file(REMOVE_RECURSE
  "CMakeFiles/repro_future_params.dir/repro_future_params.cpp.o"
  "CMakeFiles/repro_future_params.dir/repro_future_params.cpp.o.d"
  "repro_future_params"
  "repro_future_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_future_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
