#include "mpmini/wait.hpp"

#include <cerrno>
#include <cstdlib>
#include <thread>

#include "common/log.hpp"
#include "common/strings.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace mm::mpi {
namespace {

// Strict u64 parse: the whole string must be digits. Garbage ("256k",
// "fast", "-1") is a parse failure, never a silent partial read.
bool parse_u64(const char* raw, std::uint64_t* out) {
  if (raw == nullptr || *raw == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || raw[0] == '-') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

const TransportEnv& env_values() {
  static const TransportEnv parsed = parse_transport_env(
      std::getenv("MM_MPMINI_TRANSPORT"), std::getenv("MM_MPMINI_SPIN"),
      std::getenv("MM_MPMINI_RING_CAP"), std::getenv("MM_MPMINI_PIN"),
      std::thread::hardware_concurrency());
  return parsed;
}

}  // namespace

TransportEnv parse_transport_env(const char* transport, const char* spin,
                                 const char* ring_cap, const char* pin,
                                 unsigned hardware_threads) {
  TransportEnv env;

  if (hardware_threads <= 1) {
    // Single core: a pause can never let the peer progress, and long spins
    // just burn the timeslice the peer needs. Yield immediately, a few
    // times, then park.
    env.spin.iterations = 16;
    env.spin.pause_share = 0;
  }

  if (transport != nullptr && *transport != '\0') {
    const std::string value(transport);
    if (value == "ring") {
      env.transport = TransportMode::ring;
    } else if (value == "locked") {
      env.transport = TransportMode::locked;
    } else if (value == "socket") {
      env.transport = TransportMode::socket;
    } else {
      env.warnings.push_back(
          format("MM_MPMINI_TRANSPORT='%s' is not ring|locked|socket; using ring",
                 transport));
    }
  }

  if (spin != nullptr && *spin != '\0') {
    std::uint64_t v = 0;
    if (!parse_u64(spin, &v) || v > (std::uint64_t{1} << 31)) {
      env.warnings.push_back(
          format("MM_MPMINI_SPIN='%s' is not a spin count; using %u", spin,
                 env.spin.iterations));
    } else {
      env.spin.iterations = static_cast<std::uint32_t>(v);
    }
  }
  if (env.spin.pause_share > env.spin.iterations)
    env.spin.pause_share = env.spin.iterations;

  if (ring_cap != nullptr && *ring_cap != '\0') {
    std::uint64_t v = 0;
    if (!parse_u64(ring_cap, &v)) {
      env.warnings.push_back(
          format("MM_MPMINI_RING_CAP='%s' is not a capacity; using %llu", ring_cap,
                 static_cast<unsigned long long>(env.ring_capacity)));
    } else if (v < 2) {
      env.warnings.push_back(
          format("MM_MPMINI_RING_CAP=%llu is below the minimum; clamping to 2",
                 static_cast<unsigned long long>(v)));
      env.ring_capacity = 2;
    } else if (v > (std::uint64_t{1} << 20)) {
      // A bogus value must not hang round_up_pow2 or bad_alloc at startup;
      // 2^20 message slots per lane is beyond any sane configuration.
      env.warnings.push_back(
          format("MM_MPMINI_RING_CAP=%llu is beyond 2^20; clamping to 2^20",
                 static_cast<unsigned long long>(v)));
      env.ring_capacity = std::uint64_t{1} << 20;
    } else {
      env.ring_capacity = v;
    }
  }

  if (pin != nullptr && *pin != '\0') {
    const std::string value(pin);
    if (value == "1") {
      env.pin = true;
    } else if (value != "0") {
      env.warnings.push_back(
          format("MM_MPMINI_PIN='%s' is not 0|1; pinning stays off", pin));
    }
  }

  return env;
}

TransportMode transport_mode() { return env_values().transport; }

const SpinPolicy& spin_policy() { return env_values().spin; }

std::uint64_t ring_capacity() { return env_values().ring_capacity; }

bool pin_requested() { return env_values().pin; }

void validate_transport_env() {
  static const bool logged = [] {
    for (const std::string& warning : env_values().warnings)
      MM_LOG_WARN("mpmini: " << warning);
    return true;
  }();
  (void)logged;
}

void spin_relax(const SpinPolicy& policy, std::uint32_t step) {
  if (step < policy.pause_share) {
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
    return;
  }
  // Past the pause share the peer may need this core — give it up. On a
  // single-CPU host this is what makes spinning a win at all: the handoff
  // costs one scheduler pass instead of a futex sleep/wake pair.
  std::this_thread::yield();
}

bool pin_current_thread(int cpu) {
#if defined(__linux__)
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu) % cores, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace mm::mpi
