file(REMOVE_RECURSE
  "CMakeFiles/test_rolling.dir/test_rolling.cpp.o"
  "CMakeFiles/test_rolling.dir/test_rolling.cpp.o.d"
  "test_rolling"
  "test_rolling.pdb"
  "test_rolling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rolling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
