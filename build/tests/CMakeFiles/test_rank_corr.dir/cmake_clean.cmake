file(REMOVE_RECURSE
  "CMakeFiles/test_rank_corr.dir/test_rank_corr.cpp.o"
  "CMakeFiles/test_rank_corr.dir/test_rank_corr.cpp.o.d"
  "test_rank_corr"
  "test_rank_corr.pdb"
  "test_rank_corr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rank_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
