// Zero-copy incremental frame parser for the mmq wire format.
//
// FrameParser consumes arbitrarily chunked byte spans (whatever recv()
// returned) and yields FrameViews pointing INTO the caller's buffer whenever
// a complete frame is available. A frame split across feeds is reassembled in
// a fixed carry buffer sized at construction, so steady-state parsing — and
// decoding a quote from a view — performs zero heap allocations (enforced by
// an operator-new-counting test).
//
// Usage:
//   parser.feed(buf, n);          // previous feed must be fully drained
//   FrameView v;
//   while (parser.next(&v)) { ... decode_quote(v, &q) ... }
//   if (parser.failed()) ...      // corrupt stream; views already emitted
//                                 // remain valid
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "wire/format.hpp"

namespace mm::wire {

// A complete frame. `body` points into the fed buffer (or the parser's carry
// buffer) and is valid until the next call to next() or feed().
struct FrameView {
  MsgType type{};
  const std::uint8_t* body = nullptr;
  std::size_t size = 0;
};

class FrameParser {
 public:
  explicit FrameParser(std::size_t max_body = max_body_bytes);

  // Hand the parser the next chunk. The previous chunk must be fully drained
  // (next() returned false); any partial tail was copied into the carry
  // buffer, so the caller may reuse its buffer immediately after.
  void feed(const std::uint8_t* data, std::size_t size);

  // Emit the next complete frame. Returns false when more bytes are needed
  // (feed again) or the stream is corrupt (check failed()).
  bool next(FrameView* out);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  // Stream statistics (frames/bytes accepted so far).
  std::uint64_t frames() const { return frames_; }
  std::uint64_t bytes() const { return bytes_; }

 private:
  bool header_ok(const std::uint8_t* p, std::size_t* frame_len);
  void fail(const std::string& why);

  std::vector<std::uint8_t> carry_;  // fixed capacity: one max-size frame
  std::size_t carry_size_ = 0;
  bool emitted_from_carry_ = false;  // reset carry on the call AFTER emitting

  const std::uint8_t* data_ = nullptr;  // current fed chunk
  std::size_t size_ = 0;
  std::size_t cursor_ = 0;

  std::size_t max_frame_ = 0;  // type byte + max body
  bool failed_ = false;
  std::string error_;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
};

// --- body decoders -------------------------------------------------------
// Each checks the view's type and exact (or minimum) size; on success the
// caller-provided out-param is filled. Quote decoding is allocation-free.

bool decode_quote(const FrameView& v, md::Quote* out);
bool decode_heartbeat(const FrameView& v, std::uint64_t* counter);
bool decode_end_of_day(const FrameView& v, std::uint64_t* quote_count);

struct Hello {
  std::uint64_t session = 0;
  std::uint16_t flags = 0;
  std::string key;
};

// Validates magic and version; allocates only for the key string (once per
// session, never per quote).
Expected<Hello> decode_hello(const FrameView& v);

// Parse and validate a UDP datagram header (magic, version, size bounds).
Expected<DatagramHeader> parse_datagram_header(const std::uint8_t* data,
                                               std::size_t size);

// Per-message sequence dedup for UDP streams. The publisher numbers messages
// contiguously from 0; each datagram carries [first_seq, first_seq + count).
// accept() returns how many messages at the TAIL of the datagram are new —
// 0 for a pure duplicate or late reordered datagram, `count` for in-order
// delivery (and for a jump forward, which records a gap).
class SequenceTracker {
 public:
  std::uint64_t accept(std::uint64_t first_seq, std::uint64_t count) {
    const std::uint64_t end = first_seq + count;
    if (end <= next_) {
      // Entirely behind the cursor: a duplicate, or a reordered straggler
      // whose slot was already skipped (that pairing shows up as one gap
      // plus one stale datagram in the stats).
      stale_ += 1;
      return 0;
    }
    if (first_seq < next_) {
      // Overlaps the cursor (partial retransmit): only the tail is new.
      overlaps_ += 1;
      const std::uint64_t fresh = end - next_;
      next_ = end;
      return fresh;
    }
    if (first_seq > next_) {
      gaps_ += 1;
      gap_messages_ += first_seq - next_;
    }
    next_ = end;
    return count;
  }

  std::uint64_t expected_next() const { return next_; }
  std::uint64_t stale() const { return stale_; }
  std::uint64_t overlaps() const { return overlaps_; }
  std::uint64_t gaps() const { return gaps_; }
  std::uint64_t gap_messages() const { return gap_messages_; }

 private:
  std::uint64_t next_ = 0;
  std::uint64_t stale_ = 0;
  std::uint64_t overlaps_ = 0;
  std::uint64_t gaps_ = 0;
  std::uint64_t gap_messages_ = 0;
};

}  // namespace mm::wire
