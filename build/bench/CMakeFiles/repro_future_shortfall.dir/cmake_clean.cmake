file(REMOVE_RECURSE
  "CMakeFiles/repro_future_shortfall.dir/repro_future_shortfall.cpp.o"
  "CMakeFiles/repro_future_shortfall.dir/repro_future_shortfall.cpp.o.d"
  "repro_future_shortfall"
  "repro_future_shortfall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_future_shortfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
