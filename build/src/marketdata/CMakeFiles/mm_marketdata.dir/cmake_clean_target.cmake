file(REMOVE_RECURSE
  "libmm_marketdata.a"
)
