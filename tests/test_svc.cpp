// Backtest service end-to-end: multi-tenant sweeps over shared data compute
// each correlation key once, serve per-tenant metrics, and return results
// bit-identical to a direct run_pipeline — plus the fair-share queue, the
// REST error ladder, cancellation, and deterministic shutdown.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "engine/pipeline.hpp"
#include "marketdata/generator.hpp"
#include "svc/service.hpp"

namespace mm::svc {
namespace {

std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  ::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  ssize_t got;
  while ((got = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    response.append(buf, static_cast<std::size_t>(got));
  ::close(fd);
  return response;
}

std::string get(std::uint16_t port, const std::string& path) {
  return http_exchange(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

std::string post(std::uint16_t port, const std::string& path,
                 const std::string& body) {
  return http_exchange(port, "POST " + path + " HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                                 std::to_string(body.size()) + "\r\n\r\n" + body);
}

std::string del(std::uint16_t port, const std::string& path) {
  return http_exchange(port, "DELETE " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

int status_of(const std::string& response) {
  if (response.rfind("HTTP/1.1 ", 0) != 0 || response.size() < 12) return -1;
  return std::stoi(response.substr(9, 3));
}

json::Value json_body(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  EXPECT_NE(split, std::string::npos);
  auto parsed = json::parse(response.substr(split + 4));
  EXPECT_TRUE(parsed.has_value());
  return parsed.has_value() ? parsed.value() : json::Value();
}

bool bits_equal(double x, double y) {
  return std::memcmp(&x, &y, sizeof(double)) == 0;
}

ServiceConfig fast_config(int workers = 2) {
  ServiceConfig config;
  config.workers = workers;
  config.quote_rate = 0.15;  // thin the synthetic tape so each unit is ~ms
  return config;
}

// Two-unit sweep shared verbatim by both tenants: unit A = two pearson
// strategies on the default (∆s=30, M=100), unit B = a maronna + a combined
// strategy on M=60. Submitted as JSON so the whole REST path is exercised.
std::string sweep_spec(const std::string& tenant) {
  return R"({"tenant":")" + tenant + R"(","symbols":8,"seed":7,"day":0,
    "paramsets":[
      {"ctype":"pearson","divergence":0.0005},
      {"ctype":"pearson","divergence":0.001},
      {"ctype":"maronna","corr_window":60},
      {"ctype":"combined","corr_window":60,"divergence":0.0008}
    ]})";
}

TEST(SvcEndToEnd, TwoTenantsShareCorrelationWorkAndMatchDirectRuns) {
  BacktestService service(fast_config());
  ASSERT_TRUE(service.start().has_value());
  const std::uint16_t port = service.port();

  const auto alice = post(port, "/jobs", sweep_spec("alice"));
  const auto bob = post(port, "/jobs", sweep_spec("bob"));
  ASSERT_EQ(status_of(alice), 201);
  ASSERT_EQ(status_of(bob), 201);
  const std::string alice_id = json_body(alice).get_string("id", "");
  const std::string bob_id = json_body(bob).get_string("id", "");
  ASSERT_TRUE(service.wait(alice_id, 60000));
  ASSERT_TRUE(service.wait(bob_id, 60000));

  // Status surface.
  const auto status = json_body(get(port, "/jobs/" + alice_id));
  EXPECT_EQ(status.get_string("state", ""), "done");
  EXPECT_EQ(status.get_int("units_total", 0), 2);
  EXPECT_EQ(status.get_int("units_done", 0), 2);

  // The shared plane: 2 distinct correlation keys across 4 units -> each
  // computed exactly once, the other tenant's identical units replayed.
  const auto store = service.corr_store().stats();
  EXPECT_EQ(store.computes, 2u);
  EXPECT_EQ(store.misses, 2u);
  // Each non-owner unit resolves to a hit (after a wait when it raced the
  // owner).
  EXPECT_EQ(store.hits, 2u);
  EXPECT_LE(store.waits, 2u);
  EXPECT_EQ(service.corr_store().entries(), 2u);
  // One day key, loaded once, shared by all 4 pipelines.
  EXPECT_EQ(service.day_cache().stats().misses, 1u);
  EXPECT_EQ(service.day_cache().entries(), 1u);

  // Results: both tenants ran the same spec, and replay is bit-exact, so
  // their result JSON must agree number-for-number.
  const auto alice_result = get(port, "/jobs/" + alice_id + "/result");
  const auto bob_result = get(port, "/jobs/" + bob_id + "/result");
  ASSERT_EQ(status_of(alice_result), 200);
  ASSERT_EQ(status_of(bob_result), 200);
  const auto ra = json_body(alice_result);
  const auto rb = json_body(bob_result);
  ASSERT_EQ(ra.find("paramsets")->size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& pa = ra.find("paramsets")->at(i);
    const auto& pb = rb.find("paramsets")->at(i);
    EXPECT_EQ(pa.get_int("trades", -1), pb.get_int("trades", -2));
    EXPECT_TRUE(bits_equal(pa.get_double("total_pnl", 0.0),
                           pb.get_double("total_pnl", 1.0)))
        << "paramset " << i;
  }

  // ... and agree bit-for-bit with a direct, service-free pipeline run of
  // the first unit (the two pearson paramsets).
  auto spec = parse_job_spec(sweep_spec("direct"));
  ASSERT_TRUE(spec.has_value());
  const md::Universe universe = md::make_universe(8);
  md::GeneratorConfig generator;
  generator.seed = 7;
  generator.quote_rate = 0.15;
  const md::SyntheticDay day(universe, generator, 0);
  engine::PipelineConfig config;
  config.symbols = 8;
  config.strategies = {spec.value().paramsets[0], spec.value().paramsets[1]};
  const auto direct = engine::run_pipeline(config, universe, day.quotes());
  ASSERT_EQ(direct.master.strategy_summaries.size(), 2u);
  for (std::size_t w = 0; w < 2; ++w) {
    const auto& summary = direct.master.strategy_summaries[w];
    const auto& via_svc = ra.find("paramsets")->at(w);
    EXPECT_EQ(via_svc.get_int("trades", -1),
              static_cast<std::int64_t>(summary.trades));
    EXPECT_TRUE(bits_equal(via_svc.get_double("total_pnl", 0.0),
                           summary.total_pnl))
        << "paramset " << w;
    const auto* returns = via_svc.find("trade_returns");
    ASSERT_NE(returns, nullptr);
    ASSERT_EQ(returns->size(), summary.trade_returns.size());
    for (std::size_t k = 0; k < summary.trade_returns.size(); ++k)
      EXPECT_TRUE(bits_equal(returns->at(k).as_double(),
                             summary.trade_returns[k]))
          << "return " << k;
  }

  // Per-tenant labeled families on the scrape (the registry is a field-free
  // no-op under MM_OBS_ENABLED=OFF; the native CorrStore/DayCache stats
  // asserted above cover compute-once in that build).
#if MM_OBS_ENABLED
  const std::string metrics = get(port, "/metrics");
  EXPECT_NE(metrics.find("mm_svc_jobs_done_total{tenant=\"alice\"} 1"),
            std::string::npos)
      << metrics.substr(0, 2000);
  EXPECT_NE(metrics.find("mm_svc_jobs_done_total{tenant=\"bob\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("mm_svc_units_done_total{tenant=\"alice\"} 2"),
            std::string::npos);
  EXPECT_NE(metrics.find("mm_corr_store_hits_total"), std::string::npos);
#else
  EXPECT_EQ(status_of(get(port, "/metrics")), 200);
#endif

  service.stop();
}

TEST(SvcEndToEnd, RestErrorLadder) {
  BacktestService service(fast_config(1));
  ASSERT_TRUE(service.start().has_value());
  const std::uint16_t port = service.port();

  EXPECT_EQ(status_of(post(port, "/jobs", "{not json")), 400);
  EXPECT_EQ(status_of(post(port, "/jobs", R"({"tenant":"a"})")), 400);
  EXPECT_EQ(status_of(post(
                port, "/jobs",
                R"({"tenant":"a","paramsets":[{"bogus_knob":1}]})")),
            400);
  EXPECT_EQ(status_of(get(port, "/jobs/nope")), 404);
  EXPECT_EQ(status_of(get(port, "/jobs/nope/result")), 404);
  EXPECT_EQ(status_of(del(port, "/jobs/nope")), 404);
  EXPECT_EQ(status_of(http_exchange(
                port, "PUT /jobs HTTP/1.1\r\nHost: x\r\n\r\n")),
            405);
  EXPECT_EQ(status_of(get(port, "/healthz")), 200);

  // Listing works and a result for an unfinished job answers 409.
  auto spec = parse_job_spec(sweep_spec("carol"));
  ASSERT_TRUE(spec.has_value());
  auto id = service.submit(spec.value());
  ASSERT_TRUE(id.has_value());
  const auto listing = json_body(get(port, "/jobs"));
  ASSERT_NE(listing.find("jobs"), nullptr);
  EXPECT_EQ(listing.find("jobs")->size(), 1u);
  // Depending on timing the job is queued/running/done; 409 only before done.
  const auto result_status =
      status_of(get(port, "/jobs/" + id.value() + "/result"));
  EXPECT_TRUE(result_status == 409 || result_status == 200);

  ASSERT_TRUE(service.wait(id.value(), 60000));
  EXPECT_EQ(status_of(get(port, "/jobs/" + id.value() + "/result")), 200);
  EXPECT_EQ(status_of(del(port, "/jobs/" + id.value())), 409);
  service.stop();
}

TEST(SvcQueue, FairShareRoundRobinsTenantsAndRemovesQueuedJobs) {
  JobQueue queue;
  const auto make_job = [](const std::string& tenant, const std::string& id) {
    auto job = std::make_shared<Job>();
    job->spec.tenant = tenant;
    job->id = id;
    return job;
  };
  // Tenant a floods; tenant b posts one job afterwards.
  ASSERT_TRUE(queue.push(make_job("a", "a1")));
  ASSERT_TRUE(queue.push(make_job("a", "a2")));
  ASSERT_TRUE(queue.push(make_job("a", "a3")));
  ASSERT_TRUE(queue.push(make_job("b", "b1")));

  // First take serves a (0 running each, a served-never, map order breaks the
  // tie deterministically); with a's job still running, b jumps the flood.
  const auto first = queue.take();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->id, "a1");
  const auto second = queue.take();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->id, "b1");
  // Both running: tie on running count, a was served less recently.
  const auto third = queue.take();
  ASSERT_NE(third, nullptr);
  EXPECT_EQ(third->id, "a2");

  // a finishes one; removal plucks a queued job by id.
  queue.finished("a");
  EXPECT_TRUE(queue.remove("a3"));
  EXPECT_FALSE(queue.remove("a3"));
  EXPECT_EQ(queue.queued(), 0u);

  queue.shutdown();
  EXPECT_EQ(queue.take(), nullptr);
  EXPECT_FALSE(queue.push(make_job("c", "c1")));
}

TEST(SvcQueue, PerTenantAdmissionLimitBoundsQueueDepthNotConcurrency) {
  JobQueue queue;
  const auto make_job = [](const std::string& tenant, const std::string& id) {
    auto job = std::make_shared<Job>();
    job->spec.tenant = tenant;
    job->id = id;
    return job;
  };
  // Tenant a fills its two queue slots; the third submission is refused while
  // tenant b is unaffected (the limit is per tenant, not global).
  ASSERT_TRUE(queue.try_push(make_job("a", "a1"), 2).has_value());
  ASSERT_TRUE(queue.try_push(make_job("a", "a2"), 2).has_value());
  const auto refused = queue.try_push(make_job("a", "a3"), 2);
  ASSERT_FALSE(refused.has_value());
  EXPECT_EQ(refused.error().code, Errc::capacity);
  ASSERT_TRUE(queue.try_push(make_job("b", "b1"), 2).has_value());

  // Taking a1 moves it to running — running jobs do not count against the
  // limit, so a slot frees up even though nothing has finished.
  const auto first = queue.take();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->id, "a1");
  ASSERT_TRUE(queue.try_push(make_job("a", "a3"), 2).has_value());

  // Limit 0 means unbounded.
  ASSERT_TRUE(queue.try_push(make_job("a", "a4"), 0).has_value());

  queue.shutdown();
  const auto after = queue.try_push(make_job("c", "c1"), 2);
  ASSERT_FALSE(after.has_value());
  EXPECT_EQ(after.error().code, Errc::shutdown);
}

TEST(SvcEndToEnd, TenantQueueLimitAnswers429AndCountsRejections) {
  // One worker + a queue depth of one: flooding POST /jobs must trip the
  // admission limit long before fifty sweeps can drain.
  ServiceConfig config = fast_config(1);
  config.tenant_queue_limit = 1;
  BacktestService service(config);
  ASSERT_TRUE(service.start().has_value());
  const std::uint16_t port = service.port();

  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < 50 && rejected == 0; ++i) {
    const int status = status_of(post(port, "/jobs", sweep_spec("greta")));
    if (status == 201)
      ++accepted;
    else if (status == 429)
      ++rejected;
    else
      FAIL() << "unexpected status " << status;
  }
  EXPECT_GE(accepted, 1);
  ASSERT_GE(rejected, 1);

  // The rejection shows up on the scrape, labeled by tenant (registry is a
  // no-op under MM_OBS_ENABLED=OFF — the 429s above cover that build); the
  // refused job is parked terminally cancelled so shutdown never waits on it.
#if MM_OBS_ENABLED
  const std::string metrics = get(port, "/metrics");
  EXPECT_NE(metrics.find("mm_svc_jobs_rejected_total{tenant=\"greta\"} " +
                         std::to_string(rejected)),
            std::string::npos)
      << metrics.substr(0, 2000);
#endif
  service.stop();
}

TEST(SvcEndToEnd, CancelQueuedAndRunningJobs) {
  // One worker so the second submission is guaranteed to queue behind the
  // first.
  BacktestService service(fast_config(1));
  ASSERT_TRUE(service.start().has_value());

  auto spec = parse_job_spec(sweep_spec("dave"));
  ASSERT_TRUE(spec.has_value());
  auto running = service.submit(spec.value());
  auto queued = service.submit(spec.value());
  ASSERT_TRUE(running.has_value());
  ASSERT_TRUE(queued.has_value());

  // Cancel the queued one: terminal immediately, it never runs.
  EXPECT_TRUE(service.cancel(queued.value()));
  EXPECT_EQ(service.find(queued.value())->state.load(), JobState::cancelled);

  // Cancel the in-flight one: it stops at a unit boundary (or was already
  // done — both are legal; the state must be terminal and consistent).
  service.cancel(running.value());
  ASSERT_TRUE(service.wait(running.value(), 60000));
  const JobState state = service.find(running.value())->state.load();
  EXPECT_TRUE(state == JobState::done || state == JobState::cancelled);
  service.stop();
}

// The shutdown bugfix: stop() must leave every job terminal and every worker
// joined, under any interleaving of submit and stop. TSan-labeled.
TEST(SvcEndToEnd, StopDrainsInFlightJobsDeterministically) {
  for (int round = 0; round < 3; ++round) {
    BacktestService service(fast_config(2));
    ASSERT_TRUE(service.start().has_value());
    auto spec = parse_job_spec(sweep_spec("erin"));
    ASSERT_TRUE(spec.has_value());
    std::vector<std::string> ids;
    for (int j = 0; j < 6; ++j) {
      auto id = service.submit(spec.value());
      ASSERT_TRUE(id.has_value());
      ids.push_back(id.value());
    }
    service.stop();  // must not hang, leak threads, or leave non-terminal jobs
    for (const auto& id : ids) {
      const JobState state = service.find(id)->state.load();
      EXPECT_TRUE(state == JobState::done || state == JobState::cancelled ||
                  state == JobState::failed)
          << "job " << id << " left in state " << to_string(state);
    }
  }
}

TEST(SvcJobSpec, RoundTripsThroughJsonAndRejectsUnknownFields) {
  auto spec = parse_job_spec(sweep_spec("frank"));
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec.value().paramsets.size(), 4u);
  EXPECT_EQ(spec.value().paramsets[2].ctype, stats::Ctype::maronna);
  EXPECT_EQ(spec.value().paramsets[2].corr_window, 60);
  // Unspecified fields come from ParamGrid::base().
  EXPECT_EQ(spec.value().paramsets[0].delta_s, core::ParamGrid::base().delta_s);

  auto again = parse_job_spec(job_spec_json(spec.value()).dump());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again.value().tenant, "frank");
  ASSERT_EQ(again.value().paramsets.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(again.value().paramsets[i].ctype, spec.value().paramsets[i].ctype);
    EXPECT_EQ(again.value().paramsets[i].divergence,
              spec.value().paramsets[i].divergence);
    EXPECT_EQ(again.value().paramsets[i].corr_window,
              spec.value().paramsets[i].corr_window);
  }

  EXPECT_FALSE(parse_job_spec(R"({"tenant":"x","paramsets":[{"diverg":1}]})")
                   .has_value());
  EXPECT_FALSE(parse_job_spec(R"({"tenant":"x","paramsets":[]})").has_value());
  EXPECT_FALSE(
      parse_job_spec(R"({"tenant":"x","paramsets":[{"ctype":"spearman"}]})")
          .has_value());
  EXPECT_FALSE(parse_job_spec(R"({"paramsets":[{}]})").has_value());
}

}  // namespace
}  // namespace mm::svc
