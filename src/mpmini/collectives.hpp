// Typed collective operations over Comm's byte-level primitives.
//
// All functions are collective: every member of the communicator must call
// them, in the same order. Reductions are deterministic — contributions are
// combined in ascending rank order regardless of arrival order, so floating
// point results are reproducible run to run.
#pragma once

#include <cstring>
#include <vector>

#include "mpmini/comm.hpp"

namespace mm::mpi {

namespace detail {

template <typename T>
std::vector<std::uint8_t> to_bytes(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::uint8_t> buf(sizeof(T));
  std::memcpy(buf.data(), &value, sizeof(T));
  return buf;
}

template <typename T>
T from_bytes(const std::vector<std::uint8_t>& buf) {
  static_assert(std::is_trivially_copyable_v<T>);
  MM_ASSERT(buf.size() == sizeof(T));
  T value;
  std::memcpy(&value, buf.data(), sizeof(T));
  return value;
}

template <typename T>
std::vector<std::uint8_t> vec_to_bytes(const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::uint8_t> buf(v.size() * sizeof(T));
  std::memcpy(buf.data(), v.data(), buf.size());
  return buf;
}

template <typename T>
std::vector<T> vec_from_bytes(const std::vector<std::uint8_t>& buf) {
  static_assert(std::is_trivially_copyable_v<T>);
  MM_ASSERT(buf.size() % sizeof(T) == 0);
  std::vector<T> v(buf.size() / sizeof(T));
  std::memcpy(v.data(), buf.data(), buf.size());
  return v;
}

}  // namespace detail

// Reduction functors.
struct Sum {
  template <typename T>
  T operator()(const T& a, const T& b) const { return a + b; }
};
struct Max {
  template <typename T>
  T operator()(const T& a, const T& b) const { return a > b ? a : b; }
};
struct Min {
  template <typename T>
  T operator()(const T& a, const T& b) const { return a < b ? a : b; }
};

// Broadcast a single trivially copyable value from root.
template <typename T>
T bcast_value(Comm& comm, T value, int root) {
  auto buf = detail::to_bytes(value);
  comm.bcast_bytes(buf, root);
  return detail::from_bytes<T>(buf);
}

// Broadcast a vector (size included) from root.
template <typename T>
std::vector<T> bcast_vector(Comm& comm, std::vector<T> v, int root) {
  auto buf = detail::vec_to_bytes(v);
  comm.bcast_bytes(buf, root);
  return detail::vec_from_bytes<T>(buf);
}

// Gather one value per rank to root (rank order). Non-roots get {}.
template <typename T>
std::vector<T> gather_values(Comm& comm, const T& mine, int root) {
  auto parts = comm.gather_bytes(detail::to_bytes(mine), root);
  std::vector<T> out;
  if (comm.rank() == root) {
    out.reserve(parts.size());
    for (const auto& p : parts) out.push_back(detail::from_bytes<T>(p));
  }
  return out;
}

// All ranks receive every rank's value, in rank order.
template <typename T>
std::vector<T> allgather_values(Comm& comm, const T& mine) {
  auto parts = comm.allgather_bytes(detail::to_bytes(mine));
  std::vector<T> out;
  out.reserve(parts.size());
  for (const auto& p : parts) out.push_back(detail::from_bytes<T>(p));
  return out;
}

// Variable-length allgather of element vectors.
template <typename T>
std::vector<std::vector<T>> allgather_vectors(Comm& comm, const std::vector<T>& mine) {
  auto parts = comm.allgather_bytes(detail::vec_to_bytes(mine));
  std::vector<std::vector<T>> out;
  out.reserve(parts.size());
  for (const auto& p : parts) out.push_back(detail::vec_from_bytes<T>(p));
  return out;
}

// Scatter one value per rank from root.
template <typename T>
T scatter_values(Comm& comm, const std::vector<T>& values, int root) {
  std::vector<std::vector<std::uint8_t>> parts;
  if (comm.rank() == root) {
    MM_ASSERT(static_cast<int>(values.size()) == comm.size());
    parts.reserve(values.size());
    for (const auto& v : values) parts.push_back(detail::to_bytes(v));
  }
  return detail::from_bytes<T>(comm.scatter_bytes(parts, root));
}

// Element-wise reduction of equal-length vectors to root, combining in
// ascending rank order (deterministic for floating point). Non-roots get {}.
template <typename T, typename Op>
std::vector<T> reduce_vectors(Comm& comm, const std::vector<T>& mine, Op op, int root) {
  auto parts = comm.gather_bytes(detail::vec_to_bytes(mine), root);
  std::vector<T> out;
  if (comm.rank() == root) {
    for (std::size_t r = 0; r < parts.size(); ++r) {
      auto v = detail::vec_from_bytes<T>(parts[r]);
      if (r == 0) {
        out = std::move(v);
      } else {
        MM_ASSERT_MSG(v.size() == out.size(), "reduce: vector length mismatch");
        for (std::size_t i = 0; i < out.size(); ++i) out[i] = op(out[i], v[i]);
      }
    }
  }
  return out;
}

// Scalar reduction to root.
template <typename T, typename Op>
T reduce_value(Comm& comm, const T& mine, Op op, int root) {
  auto out = reduce_vectors(comm, std::vector<T>{mine}, op, root);
  return comm.rank() == root ? out[0] : T{};
}

// Reduction delivered to every rank.
template <typename T, typename Op>
T allreduce_value(Comm& comm, const T& mine, Op op) {
  T result = reduce_value(comm, mine, op, 0);
  return bcast_value(comm, result, 0);
}

template <typename T, typename Op>
std::vector<T> allreduce_vectors(Comm& comm, const std::vector<T>& mine, Op op) {
  auto result = reduce_vectors(comm, mine, op, 0);
  return bcast_vector(comm, std::move(result), 0);
}

// Inclusive prefix reduction: rank r receives op(x_0, ..., x_r), mirroring
// MPI_Scan. Combination order is ascending rank (deterministic).
template <typename T, typename Op>
T scan_value(Comm& comm, const T& mine, Op op) {
  const auto all = allgather_values(comm, mine);
  T acc = all[0];
  for (int r = 1; r <= comm.rank(); ++r)
    acc = op(acc, all[static_cast<std::size_t>(r)]);
  return acc;
}

// Exclusive prefix reduction: rank r receives op(x_0, ..., x_{r-1}); rank 0
// receives `identity`, mirroring MPI_Exscan.
template <typename T, typename Op>
T exscan_value(Comm& comm, const T& mine, Op op, T identity) {
  const auto all = allgather_values(comm, mine);
  T acc = identity;
  for (int r = 0; r < comm.rank(); ++r)
    acc = op(acc, all[static_cast<std::size_t>(r)]);
  return acc;
}

// Personalized all-to-all: `parts[d]` goes to rank d; the result's slot s
// holds the value rank s addressed to this rank. Mirrors MPI_Alltoall.
template <typename T>
std::vector<T> alltoall_values(Comm& comm, const std::vector<T>& parts) {
  MM_ASSERT_MSG(static_cast<int>(parts.size()) == comm.size(),
                "alltoall: need one part per rank");
  // Flatten through allgather: cheap and correct for the small worlds mpmini
  // targets; a real-MPI port would use the native personalized exchange.
  const auto matrix = allgather_vectors(comm, parts);
  std::vector<T> out;
  out.reserve(matrix.size());
  for (const auto& row : matrix)
    out.push_back(row[static_cast<std::size_t>(comm.rank())]);
  return out;
}

}  // namespace mm::mpi
