// Report rendering for the reproduction benches: Tables III-V rows and the
// Figure 2 box plots, in the paper's layout, plus the paper's published
// numbers for side-by-side comparison.
#pragma once

#include <string>

#include "core/experiment.hpp"
#include "stats/boxplot.hpp"

namespace mm::core {

// Which of the three per-pair measures a table reports.
enum class Measure { monthly_return, max_daily_drawdown, win_loss };

const char* measure_name(Measure m);

// Sample for (measure, ctype) from an experiment result.
const std::vector<double>& sample_of(const ExperimentResult& result, Measure m,
                                     std::size_t ctype_index);

// A Tables-III/V-style block: rows = Mean/Median/StdDev[/Sharpe]/Skew/Kurt,
// columns = Maronna | Pearson | Combined (the paper's column order).
// `as_percent` renders values ×100 with a % sign (Table IV's drawdowns).
std::string render_table(const ExperimentResult& result, Measure m,
                         bool include_sharpe, bool as_percent);

// Figure-2-style block: per treatment, the five-number summary, outlier
// count, and an ASCII box plot on a shared axis.
std::string render_boxplots(const ExperimentResult& result, Measure m);

// The paper's published Table III/IV/V values, for the shape comparison
// printed beneath each reproduced table.
std::string paper_reference(Measure m);

// Export the per-pair samples as CSV
// (pair,ctype,monthly_return_plus1,max_daily_drawdown,win_loss), one row per
// (pair, treatment) — the raw data behind Tables III-V and Figure 2, ready
// for external plotting.
Status write_experiment_csv(const ExperimentResult& result, const std::string& path);

}  // namespace mm::core
