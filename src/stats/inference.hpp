// Inferential statistics for treatment comparisons.
//
// §V closes with: "all of these simple comparisons between values in the
// tables need to be examined on a more rigorous standard of statistical
// significance … we may consider a few simple inferential statistical tests"
// over the three per-treatment populations of per-pair measures. This module
// provides those tests: the paired t-test and the Wilcoxon signed-rank test
// (the samples are paired — the same 1830 pairs receive each treatment),
// plus the special functions they need.
#pragma once

#include <cstddef>
#include <vector>

namespace mm::stats {

// Φ(x), the standard normal CDF.
double normal_cdf(double x);

// Regularized incomplete beta function I_x(a, b) (continued fraction).
double incomplete_beta(double a, double b, double x);

// Student-t CDF with nu degrees of freedom.
double student_t_cdf(double t, double nu);

struct TestResult {
  double statistic = 0.0;  // t or z
  double p_value = 1.0;    // two-sided
  double effect = 0.0;     // mean difference (t-test) / median difference proxy
  std::size_t n = 0;

  bool significant(double alpha = 0.05) const { return p_value < alpha; }
};

// Paired two-sided t-test on x - y. Requires equal lengths, n >= 2. A zero-
// variance difference vector yields p = 1 (no evidence) unless the mean
// difference is exactly 0 too.
TestResult paired_t_test(const std::vector<double>& x, const std::vector<double>& y);

// Wilcoxon signed-rank test (normal approximation with tie correction;
// zero differences dropped per Wilcoxon's original treatment).
TestResult wilcoxon_signed_rank(const std::vector<double>& x,
                                const std::vector<double>& y);

}  // namespace mm::stats
