// Service-plane benchmarks: what memoization buys.
//
// BM_SvcSweepCold runs a 4-paramset sweep (2 units) through a FRESH service
// each iteration — every correlation day computed from scratch.
// BM_SvcSweepMemoized submits the same sweep to a long-lived service whose
// CorrStore and DayCache are warm: each unit replays resident frames, so the
// per-job cost collapses to pipeline plumbing + strategy evaluation. The
// ratio of the two is the service's multi-tenant amortization factor.
// BM_CorrStoreHit / BM_DayCacheHit price one warm acquire on each plane.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "marketdata/day_cache.hpp"
#include "stats/corr_store.hpp"
#include "svc/service.hpp"

namespace {

using namespace mm;

svc::ServiceConfig bench_config() {
  svc::ServiceConfig config;
  config.workers = 2;
  config.quote_rate = 0.15;
  return config;
}

Expected<svc::JobSpec> bench_spec(const std::string& tenant) {
  return svc::parse_job_spec(
      R"({"tenant":")" + tenant + R"(","symbols":8,"seed":7,"day":0,
         "paramsets":[
           {"ctype":"pearson","divergence":0.0005},
           {"ctype":"pearson","divergence":0.001},
           {"ctype":"maronna","corr_window":60},
           {"ctype":"combined","corr_window":60}]})");
}

void BM_SvcSweepCold(benchmark::State& state) {
  for (auto _ : state) {
    svc::BacktestService service(bench_config());
    if (!service.start().has_value()) state.SkipWithError("start failed");
    auto id = service.submit(bench_spec("cold").value());
    if (!id.has_value() || !service.wait(id.value(), 120000))
      state.SkipWithError("job failed");
    service.stop();
  }
  state.SetItemsProcessed(state.iterations() * 4);  // paramsets per sweep
}
BENCHMARK(BM_SvcSweepCold)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_SvcSweepMemoized(benchmark::State& state) {
  static svc::BacktestService* service = [] {
    auto* s = new svc::BacktestService(bench_config());
    MM_ASSERT(s->start().has_value());
    // Warm both planes once outside the timed loop.
    auto id = s->submit(bench_spec("warmup").value());
    MM_ASSERT(id.has_value() && s->wait(id.value(), 120000));
    return s;
  }();
  for (auto _ : state) {
    auto id = service->submit(bench_spec("warm").value());
    if (!id.has_value() || !service->wait(id.value(), 120000))
      state.SkipWithError("job failed");
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_SvcSweepMemoized)->Unit(benchmark::kMillisecond)->Iterations(10);

void BM_CorrStoreHit(benchmark::State& state) {
  stats::CorrStore store;
  stats::CorrKey key;
  key.universe = "bench";
  key.delta_s = 30;
  key.window = 100;
  key.estimator = "pearson";
  {
    auto lease = store.acquire(key);
    stats::CorrDay day;
    day.frames.assign(780, std::vector<std::uint8_t>(4096, 0));
    lease.publish(std::move(day));
  }
  for (auto _ : state) {
    auto lease = store.acquire(key);
    benchmark::DoNotOptimize(lease.data().get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CorrStoreHit);

void BM_DayCacheHit(benchmark::State& state) {
  md::DayCache cache([](const std::string&) -> Expected<std::vector<md::Quote>> {
    return std::vector<md::Quote>(100000);
  });
  (void)cache.get("day");
  for (auto _ : state) {
    auto day = cache.get("day");
    benchmark::DoNotOptimize(day.value().get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DayCacheHit);

}  // namespace
