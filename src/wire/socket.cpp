#include "wire/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "common/strings.hpp"

namespace mm::wire {
namespace {

Error sys_error(const char* what) {
  return Error(Errc::io_error, format("%s: %s", what, std::strerror(errno)));
}

Expected<sockaddr_in> resolve(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return Error(Errc::invalid_argument,
                 format("not an IPv4 address: '%s'", host.c_str()));
  return addr;
}

// Wait for readability; true when ready, false on timeout.
Expected<bool> wait_readable(int fd, std::chrono::milliseconds timeout) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&p, 1, static_cast<int>(timeout.count()));
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    return sys_error("poll");
  }
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Expected<Socket> tcp_listen(const std::string& host, std::uint16_t port,
                            std::uint16_t* bound_port) {
  auto addr = resolve(host, port);
  if (!addr) return addr.error();
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return sys_error("socket");
  const int one = 1;
  (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) != 0)
    return sys_error("bind");
  if (::listen(sock.fd(), 64) != 0) return sys_error("listen");
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual), &len) != 0)
      return sys_error("getsockname");
    *bound_port = ntohs(actual.sin_port);
  }
  return sock;
}

Expected<Socket> tcp_accept(const Socket& listener, std::chrono::milliseconds timeout) {
  if (timeout.count() > 0) {
    auto ready = wait_readable(listener.fd(), timeout);
    if (!ready) return ready.error();
    if (!*ready) return Error(Errc::timeout, "accept: no connection within deadline");
  }
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return sys_error("accept");
  }
}

Expected<Socket> tcp_connect(const std::string& host, std::uint16_t port,
                             std::chrono::milliseconds retry_for) {
  auto addr = resolve(host, port);
  if (!addr) return addr.error();
  const auto deadline = std::chrono::steady_clock::now() + retry_for;
  for (;;) {
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) return sys_error("socket");
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&*addr),
                  sizeof(*addr)) == 0) {
      set_nodelay(sock);
      return sock;
    }
    const bool retryable =
        errno == ECONNREFUSED || errno == ECONNRESET || errno == ETIMEDOUT;
    if (!retryable || std::chrono::steady_clock::now() >= deadline)
      return sys_error("connect");
    // Peer's listener may simply not be up yet (rendezvous race) — back off
    // briefly and try again until the deadline.
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  }
}

void set_nodelay(const Socket& sock) {
  const int one = 1;
  (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status send_all(const Socket& sock, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::send(sock.fd(), p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return sys_error("send");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return {};
}

Status recv_exact(const Socket& sock, void* data, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::recv(sock.fd(), p, size, 0);
    if (n == 0) return Error(Errc::io_error, "recv: connection closed by peer");
    if (n < 0) {
      if (errno == EINTR) continue;
      return sys_error("recv");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return {};
}

Expected<std::size_t> recv_some(const Socket& sock, void* data, std::size_t cap) {
  for (;;) {
    const ssize_t n = ::recv(sock.fd(), data, cap, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    return sys_error("recv");
  }
}

Expected<Socket> udp_bind(const std::string& host, std::uint16_t port,
                          std::uint16_t* bound_port) {
  auto addr = resolve(host, port);
  if (!addr) return addr.error();
  Socket sock(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!sock.valid()) return sys_error("socket");
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) != 0)
    return sys_error("bind");
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual), &len) != 0)
      return sys_error("getsockname");
    *bound_port = ntohs(actual.sin_port);
  }
  return sock;
}

Expected<Socket> udp_connect(const std::string& host, std::uint16_t port) {
  auto addr = resolve(host, port);
  if (!addr) return addr.error();
  Socket sock(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!sock.valid()) return sys_error("socket");
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&*addr),
                sizeof(*addr)) != 0)
    return sys_error("connect");
  return sock;
}

Status udp_send(const Socket& sock, const void* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::send(sock.fd(), data, size, 0);
    if (n >= 0) return {};
    if (errno == EINTR) continue;
    return sys_error("send");
  }
}

Expected<std::size_t> udp_recv(const Socket& sock, void* data, std::size_t cap,
                               std::chrono::milliseconds timeout) {
  if (timeout.count() > 0) {
    auto ready = wait_readable(sock.fd(), timeout);
    if (!ready) return ready.error();
    if (!*ready) return Error(Errc::timeout, "udp_recv: no datagram within deadline");
  }
  for (;;) {
    const ssize_t n = ::recv(sock.fd(), data, cap, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    return sys_error("recv");
  }
}

}  // namespace mm::wire
