// Property-style sweep: every one of the paper's 14 factor levels (x 3
// treatments) must uphold the strategy's structural invariants on realistic
// synthetic data.
#include <gtest/gtest.h>

#include "core/backtester.hpp"
#include "marketdata/bars.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"

namespace mm::core {
namespace {

struct SweepCase {
  std::size_t level;
  stats::Ctype ctype;
};

void PrintTo(const SweepCase& c, std::ostream* os) {
  *os << "level " << c.level + 1 << " " << stats::to_string(c.ctype);
}

class StrategySweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  // Shared day of data across all sweep instances (built once).
  static const std::vector<std::vector<double>>& bam() {
    static const std::vector<std::vector<double>> data = [] {
      const auto universe = md::make_universe(6);
      md::GeneratorConfig cfg;
      cfg.quote_rate = 0.25;
      const md::SyntheticDay day(universe, cfg, 7);
      md::QuoteCleaner cleaner(6, md::CleanerConfig{});
      return md::sample_bam_series(cleaner.clean(day.quotes()), 6, cfg.session, 30);
    }();
    return data;
  }
};

std::vector<SweepCase> all_cases() {
  std::vector<SweepCase> cases;
  for (std::size_t l = 0; l < 14; ++l)
    for (const auto c : stats::all_ctypes) cases.push_back({l, c});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllParameterSets, StrategySweep,
                         ::testing::ValuesIn(all_cases()));

TEST_P(StrategySweep, InvariantsHoldForEveryParameterSet) {
  const auto [level, ctype] = GetParam();
  StrategyParams params = ParamGrid().levels()[level];
  params.ctype = ctype;

  const auto& prices = bam();
  const auto smax = static_cast<std::int64_t>(prices[0].size());
  const auto pairs = stats::all_pairs(prices.size());
  const auto market =
      compute_market_corr_series(prices, params.corr_window,
                                 ctype != stats::Ctype::pearson);

  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const auto trades =
        run_pair_day(params, prices[pairs[k].i], prices[pairs[k].j], market, k);

    std::int64_t last_exit = -1;
    for (const auto& t : trades) {
      // Warmup: no entry before the correlation window is full.
      EXPECT_GE(t.entry_interval, params.corr_window);
      // ST rule: no entry in the final ST intervals.
      EXPECT_LT(t.entry_interval, smax - params.no_entry_before_close);
      // HP rule: no holding period beyond HP (EOD closes can cut it short).
      EXPECT_LE(t.exit_interval - t.entry_interval, params.max_holding);
      // Trades are sequential per pair (no overlap).
      EXPECT_GT(t.entry_interval, last_exit);
      last_exit = t.exit_interval;
      // One long leg, one short leg; positive basis; sane trade return.
      EXPECT_LT(t.shares_i * t.shares_j, 0.0);
      EXPECT_GT(t.gross_basis, 0.0);
      EXPECT_NEAR(t.trade_return, t.pnl / t.gross_basis, 1e-12);
      EXPECT_GT(t.trade_return, -0.5);
      EXPECT_LT(t.trade_return, 0.5);
      // Long side edges out the short side at entry (cash-neutral + long).
      const double long_value = (t.shares_i > 0 ? t.shares_i * t.entry_price_i : 0) +
                                (t.shares_j > 0 ? t.shares_j * t.entry_price_j : 0);
      const double short_value =
          (t.shares_i < 0 ? -t.shares_i * t.entry_price_i : 0) +
          (t.shares_j < 0 ? -t.shares_j * t.entry_price_j : 0);
      EXPECT_GE(long_value + 1e-9, short_value);
    }
  }
}

TEST_P(StrategySweep, DeterministicReplay) {
  const auto [level, ctype] = GetParam();
  StrategyParams params = ParamGrid().levels()[level];
  params.ctype = ctype;

  const auto& prices = bam();
  const auto market = compute_market_corr_series(
      prices, params.corr_window, ctype != stats::Ctype::pearson);
  const auto a = run_pair_day(params, prices[0], prices[1], market, 0);
  const auto b = run_pair_day(params, prices[0], prices[1], market, 0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].entry_interval, b[t].entry_interval);
    EXPECT_DOUBLE_EQ(a[t].pnl, b[t].pnl);
  }
}

}  // namespace
}  // namespace mm::core
