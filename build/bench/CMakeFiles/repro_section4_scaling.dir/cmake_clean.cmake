file(REMOVE_RECURSE
  "CMakeFiles/repro_section4_scaling.dir/repro_section4_scaling.cpp.o"
  "CMakeFiles/repro_section4_scaling.dir/repro_section4_scaling.cpp.o.d"
  "repro_section4_scaling"
  "repro_section4_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_section4_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
