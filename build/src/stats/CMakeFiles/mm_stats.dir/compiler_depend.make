# Empty compiler generated dependencies file for mm_stats.
# This may be replaced when dependencies are built.
