// Market-wide correlation engines: serial and parallel.
//
// This is the enabling component of the paper (§II): producing the full
// n × n correlation matrix over a sliding M-return window, every ∆s interval,
// in an online fashion. Pearson entries come from ReturnWindows' O(1)
// incremental sums; Maronna entries re-estimate each pair's 2×2 robust
// scatter over the window (the expensive part the paper parallelizes [14]).
//
// ParallelCorrelationEngine shards the n(n-1)/2 pairs across the ranks of an
// mpmini communicator — the "Parallel Correlation Engine" box of Fig. 1.
#pragma once

#include <vector>

#include "mpmini/comm.hpp"
#include "stats/correlation.hpp"
#include "stats/sym_matrix.hpp"
#include "stats/windows.hpp"

namespace mm::stats {

struct CorrEngineConfig {
  Ctype type = Ctype::pearson;
  std::size_t window = 100;  // the paper's M
  MaronnaConfig maronna{};
  // Repair the assembled matrix to PSD (meaningful for Maronna/Combined;
  // costs an O(n³) eigendecomposition per step).
  bool repair_psd = false;
};

// Single-threaded engine: push one return per symbol per interval, then read
// correlations or the full matrix.
class CorrelationCalculator {
 public:
  CorrelationCalculator(const CorrEngineConfig& config, std::size_t symbols);

  void push(const std::vector<double>& returns);
  bool ready() const { return windows_.ready(); }
  std::size_t symbols() const { return windows_.symbols(); }
  const CorrEngineConfig& config() const { return config_; }

  // Correlation of one pair at the current step (requires ready()).
  double pair(std::size_t i, std::size_t j) const;

  // Full matrix at the current step, unit diagonal.
  SymMatrix matrix() const;

 private:
  CorrEngineConfig config_;
  ReturnWindows windows_;
  mutable std::vector<double> scratch_x_, scratch_y_;
};

// Pair-sharded parallel engine. All ranks of `comm` construct it with the
// same arguments, then call step() collectively once per interval; rank 0
// passes the market-wide return vector (other ranks' argument is ignored)
// and every rank receives the assembled matrix (empty until windows fill).
//
// Shards are static and balanced: pair k goes to rank k % size.
class ParallelCorrelationEngine {
 public:
  ParallelCorrelationEngine(mpi::Comm& comm, const CorrEngineConfig& config,
                            std::size_t symbols);

  // Collective. Returns the matrix once windows are full, else an empty one.
  SymMatrix step(const std::vector<double>& returns);

  bool ready() const { return calc_.ready(); }
  std::size_t local_pair_count() const { return my_pairs_.size(); }

 private:
  mpi::Comm& comm_;
  CorrelationCalculator calc_;
  std::vector<PairIndex> my_pairs_;
};

}  // namespace mm::stats
