// Performance metrics — the paper's Equations (1) through (9).
//
// Returns compound multiplicatively (the strategy reinvests all capital each
// period). Eq. (2)/(3): daily and total cumulative returns; Eq. (4)/(5):
// aggregation across pairs or parameter sets by compounding; Eq. (6)/(7):
// maximum drawdown as the worst peak-to-valley drop of the running cumulative
// return, per trade or per day; Eq. (8)/(9): win–loss ratio.
#pragma once

#include <cstddef>
#include <vector>

#include "core/strategy.hpp"

namespace mm::core {

// Π(1 + r) − 1. Empty input = flat day = 0.
double cumulative_return(const std::vector<double>& returns);

// Worst peak-to-valley drop of the running cumulative-return curve built
// from `returns` in order (Eqs. 6/7). Non-negative; 0 for monotone growth.
double max_drawdown(const std::vector<double>& returns);

struct WinLoss {
  std::size_t wins = 0;
  std::size_t losses = 0;

  void add(double r) {
    if (r > 0.0) ++wins;
    else if (r < 0.0) ++losses;
  }
  void merge(const WinLoss& other) {
    wins += other.wins;
    losses += other.losses;
  }
  // W/L; a loss count of zero is floored at one so a flawless pair reports
  // `wins` rather than infinity (the aggregate tables need finite values).
  double ratio() const {
    return static_cast<double>(wins) / static_cast<double>(losses == 0 ? 1 : losses);
  }
};

WinLoss win_loss(const std::vector<double>& returns);

// Equity curve of running cumulative returns: out[q] = Π_{u<=q}(1+r_u) − 1.
std::vector<double> equity_curve(const std::vector<double>& returns);

// The paper's cross-sectional compounding aggregates: Eq. (4) compounds one
// day's cumulative returns across all pairs for a fixed parameter set, and
// Eq. (5) compounds across all parameter sets for a fixed pair. Both are
// Π(1 + r_x) − 1 over the given collection; the alias documents the intent.
inline double compound_across(const std::vector<double>& returns) {
  return cumulative_return(returns);
}

// Exit-reason breakdown of a trade list (diagnostics for reports/examples).
struct ExitBreakdown {
  std::size_t counts[5] = {0, 0, 0, 0, 0};  // indexed by ExitReason
  std::size_t total = 0;
};
ExitBreakdown exit_breakdown(const std::vector<Trade>& trades);

}  // namespace mm::core
