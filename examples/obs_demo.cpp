// Observability demo: run one synthetic trading day through the Fig. 1
// pipeline with mm::obs fully wired, then
//
//   1. print the metrics snapshot (mpmini transport counters, per-node
//      dagflow frame/stall metrics, correlation kernel and engine stage
//      histograms), and
//   2. write a Chrome-trace JSON of the run — one "process" row per mpmini
//      rank, one named "thread" row per dagflow node — loadable in
//      chrome://tracing or https://ui.perfetto.dev.
//
//   $ ./obs_demo [--symbols 8] [--workers 2] [--replicas 2] \
//                [--trace obs_demo.trace.json] [--json]
//
// (Built with MM_OBS_ENABLED=OFF the pipeline still runs; the snapshot is
// empty and the trace contains no events.)
#include <cstdio>

#include "common/cli.hpp"
#include "core/params.hpp"
#include "engine/pipeline.hpp"
#include "marketdata/generator.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  using namespace mm;
  Cli cli("obs_demo", "Run one day with telemetry and write a Chrome trace");
  auto& symbols = cli.add_int("symbols", 8, "universe size");
  auto& workers = cli.add_int("workers", 2, "strategy worker nodes");
  auto& replicas = cli.add_int("replicas", 2, "correlation engine replicas");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  auto& trace_path = cli.add_string("trace", "obs_demo.trace.json",
                                    "output path for the Chrome trace");
  auto& json = cli.add_flag("json", "print the snapshot as JSON instead of text");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(symbols);
  const auto universe = md::make_universe(n);
  md::GeneratorConfig gen;
  gen.seed = static_cast<std::uint64_t>(seed);
  gen.quote_rate = 0.3;
  const md::SyntheticDay day(universe, gen, 0);

  engine::PipelineConfig cfg;
  cfg.symbols = n;
  cfg.correlation_replicas = replicas;
  const auto all = core::ParamGrid().all();
  for (const auto& p : all) {
    if (p.corr_window != 100) continue;
    cfg.strategies.push_back(p);
    if (static_cast<std::int64_t>(cfg.strategies.size()) >= workers) break;
  }

  // The demo owns the registry and sink; run_pipeline would otherwise use a
  // private registry and return only the snapshot.
  obs::Registry metrics;
  obs::TraceSink trace;
  cfg.metrics = &metrics;
  cfg.trace = &trace;
  // Root causal context: every send inherits it, so the whole day stitches
  // into one trace with cross-rank flow arrows instead of per-rank rows.
  cfg.trace_context = obs::make_trace_context(obs::next_trace_id());

  const auto result = engine::run_pipeline(cfg, universe, day.quotes());

  std::printf("day complete: %llu quotes in %.2f s, %llu orders, pnl $%.2f%s\n\n",
              static_cast<unsigned long long>(result.quotes_in), result.wall_seconds,
              static_cast<unsigned long long>(result.master.orders),
              result.master.total_pnl, result.degraded ? " (degraded)" : "");

  if (json) {
    std::printf("%s\n", result.metrics.to_json().c_str());
  } else {
    std::printf("%s", result.metrics.to_string().c_str());
  }

  const auto status = trace.write_file(trace_path);
  if (!status.has_value()) {
    std::fprintf(stderr, "trace write failed: %s\n", status.error().message.c_str());
    return 1;
  }
  std::printf("\ntrace: %llu events (%llu dropped, %llu cross-rank stitches) -> %s\n",
              static_cast<unsigned long long>(trace.total_events()),
              static_cast<unsigned long long>(trace.total_dropped()),
              static_cast<unsigned long long>(trace.total_flow_finishes()),
              trace_path.c_str());
  std::printf("open chrome://tracing or https://ui.perfetto.dev and load the file\n");
  return 0;
}
