// TAQ-style quote file I/O.
//
// Two on-disk representations:
//   * CSV matching the paper's Table II columns
//     (Timestamp,Symbol,BidPrice,AskPrice,BidSize,AskSize) — human readable,
//     interoperable; timestamps are HH:MM:SS or HH:MM:SS.mmm;
//   * a compact binary block format (header + raw Quote records) used by the
//     tickdb store, ~6x smaller and zero-parse.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "marketdata/symbols.hpp"
#include "marketdata/types.hpp"

namespace mm::md {

// "09:30:04" or "09:30:04.123" -> milliseconds since midnight.
Expected<TimeMs> parse_time_of_day(std::string_view text);
std::string format_time_of_day(TimeMs ts_ms);

// Write quotes as Table-II-style CSV (with header row).
Status write_taq_csv(const std::string& path, const std::vector<Quote>& quotes,
                     const SymbolTable& symbols);

// Read a TAQ CSV. Unknown tickers are interned into `symbols`. Malformed
// rows produce an error (strict — the cleaning stage handles bad *values*,
// not bad *syntax*).
Expected<std::vector<Quote>> read_taq_csv(const std::string& path, SymbolTable& symbols);

// One CSV row, for streaming writers.
std::string format_taq_row(const Quote& quote, const SymbolTable& symbols);

// Binary block format.
Status write_quotes_binary(const std::string& path, const std::vector<Quote>& quotes);
Expected<std::vector<Quote>> read_quotes_binary(const std::string& path);

// Trade prints: CSV (Timestamp,Symbol,Price,Size) and binary block formats.
Status write_trades_csv(const std::string& path, const std::vector<Trade>& trades,
                        const SymbolTable& symbols);
Expected<std::vector<Trade>> read_trades_csv(const std::string& path,
                                             SymbolTable& symbols);
Status write_trades_binary(const std::string& path, const std::vector<Trade>& trades);
Expected<std::vector<Trade>> read_trades_binary(const std::string& path);

}  // namespace mm::md
