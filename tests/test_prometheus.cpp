// Prometheus exposition + HTTP listener tests.
//
// The exposition checks run a real (small) text-format parser over rendered
// pages: every line must be HELP, TYPE or a well-formed sample, names must
// match the Prometheus grammar, histogram buckets must be cumulative with
// ascending le bounds and +Inf == _count. MetricValue/Snapshot are real in
// both build modes, so the format tests are meaningful under
// MM_OBS_ENABLED=OFF too; only the mid-run pipeline scrape is gated.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/pipeline.hpp"
#include "marketdata/generator.hpp"
#include "obs/http.hpp"
#include "obs/prometheus.hpp"
#include "obs/registry.hpp"

namespace mm::obs {
namespace {

// --- a small Prometheus text-format (0.0.4) parser -------------------------

struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

struct PromPage {
  std::map<std::string, std::string> types;  // family -> counter|gauge|histogram
  std::set<std::string> helped;
  std::vector<PromSample> samples;

  const PromSample* find(const std::string& name,
                         const std::string& label = {},
                         const std::string& value = {}) const {
    for (const auto& s : samples) {
      if (s.name != name) continue;
      if (label.empty()) return &s;
      const auto it = s.labels.find(label);
      if (it != s.labels.end() && it->second == value) return &s;
    }
    return nullptr;
  }
};

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  const auto start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!start(name.front())) return false;
  for (const char c : name)
    if (!start(c) && !std::isdigit(static_cast<unsigned char>(c))) return false;
  return true;
}

// Parses one page; returns false with a diagnostic on the first bad line.
bool parse_prom(const std::string& text, PromPage* page, std::string* error) {
  std::size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    ++line_no;
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      *error = "line " + std::to_string(line_no) + ": missing trailing newline";
      return false;
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;

    const auto fail = [&](const std::string& why) {
      *error = "line " + std::to_string(line_no) + ": " + why + ": " + line;
      return false;
    };

    if (line[0] == '#') {
      std::size_t sp1 = line.find(' ');
      std::size_t sp2 = line.find(' ', sp1 + 1);
      std::size_t sp3 = line.find(' ', sp2 + 1);
      if (sp2 == std::string::npos) return fail("bare comment");
      const std::string kind = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string name =
          sp3 == std::string::npos ? line.substr(sp2 + 1)
                                   : line.substr(sp2 + 1, sp3 - sp2 - 1);
      if (!valid_name(name)) return fail("bad family name");
      if (kind == "HELP") {
        page->helped.insert(name);
      } else if (kind == "TYPE") {
        if (sp3 == std::string::npos) return fail("TYPE without a type");
        const std::string type = line.substr(sp3 + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped")
          return fail("unknown TYPE");
        page->types[name] = type;
      } else {
        return fail("unknown comment kind");
      }
      continue;
    }

    PromSample sample;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ')
      sample.name.push_back(line[i++]);
    if (!valid_name(sample.name)) return fail("bad metric name");
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::string key;
        while (i < line.size() && line[i] != '=') key.push_back(line[i++]);
        if (!valid_name(key)) return fail("bad label name");
        if (i + 1 >= line.size() || line[i] != '=' || line[i + 1] != '"')
          return fail("label value must be quoted");
        i += 2;
        std::string value;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            if (i + 1 >= line.size()) return fail("dangling escape");
            const char esc = line[i + 1];
            if (esc == '\\') value.push_back('\\');
            else if (esc == '"') value.push_back('"');
            else if (esc == 'n') value.push_back('\n');
            else return fail("unknown label escape");
            i += 2;
          } else {
            value.push_back(line[i++]);
          }
        }
        if (i >= line.size()) return fail("unterminated label value");
        ++i;  // closing quote
        sample.labels[key] = value;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size()) return fail("unterminated label set");
      ++i;  // closing brace
    }
    if (i >= line.size() || line[i] != ' ') return fail("missing value separator");
    const std::string value_text = line.substr(i + 1);
    if (value_text == "+Inf" || value_text == "-Inf" || value_text == "NaN") {
      sample.value = 0.0;
    } else {
      char* end = nullptr;
      sample.value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() || *end != '\0') return fail("bad sample value");
    }
    page->samples.push_back(std::move(sample));
  }

  // Every sample must belong to a TYPE'd family (histogram children resolve
  // through their suffix to the base family).
  for (const auto& s : page->samples) {
    std::string family = s.name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string base =
          s.name.size() > std::strlen(suffix) &&
                  s.name.compare(s.name.size() - std::strlen(suffix),
                                 std::string::npos, suffix) == 0
              ? s.name.substr(0, s.name.size() - std::strlen(suffix))
              : std::string{};
      if (!base.empty() && page->types.count(base) &&
          page->types.at(base) == "histogram")
        family = base;
    }
    if (page->types.find(family) == page->types.end()) {
      *error = "sample without TYPE: " + s.name;
      return false;
    }
    if (page->helped.find(family) == page->helped.end()) {
      *error = "sample without HELP: " + s.name;
      return false;
    }
  }
  return true;
}

PromPage must_parse(const std::string& text) {
  PromPage page;
  std::string error;
  EXPECT_TRUE(parse_prom(text, &page, &error)) << error;
  return page;
}

// --- name and label sanitization -------------------------------------------

TEST(PromName, SanitizesToTheMetricGrammar) {
  EXPECT_EQ(prom_name("mpmini.send.messages"), "mpmini_send_messages");
  EXPECT_EQ(prom_name("dag.strategy-0.wall_ns"), "dag_strategy_0_wall_ns");
  EXPECT_EQ(prom_name("already_fine:name_1"), "already_fine:name_1");
  EXPECT_EQ(prom_name("9lives"), "_9lives");
  EXPECT_EQ(prom_name(""), "_");
  EXPECT_EQ(prom_name("sp ace\ttab"), "sp_ace_tab");
  EXPECT_TRUE(valid_name(prom_name("42 weird!!names\n")));
}

TEST(PromName, LabelEscapingIsSpecExact) {
  EXPECT_EQ(prom_label_escape("plain"), "plain");
  EXPECT_EQ(prom_label_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(prom_label_escape("quo\"te"), "quo\\\"te");
  EXPECT_EQ(prom_label_escape("new\nline"), "new\\nline");
}

// --- exposition rendering over a hand-built snapshot ------------------------

Snapshot make_snapshot() {
  Snapshot snap;
  MetricValue c;
  c.name = "mpmini.send.messages";
  c.kind = MetricKind::counter;
  c.value = 5;
  snap.metrics.push_back(c);
  MetricValue g;
  g.name = "queue depth";  // needs sanitizing
  g.kind = MetricKind::gauge;
  g.value = 3;
  snap.metrics.push_back(g);
  MetricValue h;
  h.name = "step_ns";
  h.kind = MetricKind::histogram;
  h.bounds = {100, 200, 400};
  h.buckets = {10, 10, 0, 0};
  h.count = 20;
  h.sum = 2000;
  snap.metrics.push_back(h);
  return snap;
}

TEST(PromRender, PageParsesAndCarriesEveryFamily) {
  const PromPage page = must_parse(prom_render(make_snapshot()));
  EXPECT_EQ(page.types.at("mm_mpmini_send_messages_total"), "counter");
  EXPECT_EQ(page.types.at("mm_queue_depth"), "gauge");
  EXPECT_EQ(page.types.at("mm_step_ns"), "histogram");
  EXPECT_EQ(page.types.at("mm_step_ns_quantile"), "gauge");

  ASSERT_NE(page.find("mm_mpmini_send_messages_total"), nullptr);
  EXPECT_DOUBLE_EQ(page.find("mm_mpmini_send_messages_total")->value, 5.0);
  ASSERT_NE(page.find("mm_queue_depth"), nullptr);
  EXPECT_DOUBLE_EQ(page.find("mm_queue_depth")->value, 3.0);
}

TEST(PromRender, HistogramBucketsAreCumulativeAscendingWithInf) {
  const PromPage page = must_parse(prom_render(make_snapshot()));

  double prev_le = -1.0, prev_cum = -1.0;
  const PromSample* inf = nullptr;
  int buckets = 0;
  for (const auto& s : page.samples) {
    if (s.name != "mm_step_ns_bucket") continue;
    ++buckets;
    ASSERT_TRUE(s.labels.count("le"));
    if (s.labels.at("le") == "+Inf") {
      inf = &s;
      continue;
    }
    const double le = std::strtod(s.labels.at("le").c_str(), nullptr);
    EXPECT_GT(le, prev_le) << "le bounds must ascend";
    EXPECT_GE(s.value, prev_cum) << "buckets must be cumulative";
    prev_le = le;
    prev_cum = s.value;
  }
  EXPECT_EQ(buckets, 4);  // three bounds + +Inf
  ASSERT_NE(inf, nullptr) << "+Inf bucket is mandatory";
  const PromSample* count = page.find("mm_step_ns_count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(inf->value, count->value);
  EXPECT_DOUBLE_EQ(count->value, 20.0);
  ASSERT_NE(page.find("mm_step_ns_sum"), nullptr);
  EXPECT_DOUBLE_EQ(page.find("mm_step_ns_sum")->value, 2000.0);
}

TEST(PromRender, QuantileSeriesMatchInterpolatedQuantiles) {
  const Snapshot snap = make_snapshot();
  const PromPage page = must_parse(prom_render(snap));
  const MetricValue& h = snap.metrics.back();
  const PromSample* p50 = page.find("mm_step_ns_quantile", "quantile", "0.5");
  const PromSample* p95 = page.find("mm_step_ns_quantile", "quantile", "0.95");
  const PromSample* p99 = page.find("mm_step_ns_quantile", "quantile", "0.99");
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p95, nullptr);
  ASSERT_NE(p99, nullptr);
  EXPECT_DOUBLE_EQ(p50->value, h.quantile(0.5));
  EXPECT_DOUBLE_EQ(p95->value, h.quantile(0.95));
  EXPECT_DOUBLE_EQ(p99->value, h.quantile(0.99));
  EXPECT_DOUBLE_EQ(p50->value, 100.0);  // 10 below 100, 10 in [100, 200)
  EXPECT_DOUBLE_EQ(p95->value, 190.0);
  EXPECT_DOUBLE_EQ(p99->value, 198.0);
}

TEST(PromRender, LabeledNamesSplitIntoFamiliesWithContiguousSamples) {
  EXPECT_EQ(labeled("svc.jobs.submitted", {{"tenant", "alice"}}),
            "svc.jobs.submitted{tenant=\"alice\"}");
  EXPECT_EQ(labeled("svc.jobs", {{"tenant", "a\"b"}, {"kind", "full"}}),
            "svc.jobs{tenant=\"a\\\"b\",kind=\"full\"}");
  EXPECT_EQ(labeled("plain", {}), "plain");

  Snapshot snap;
  // Two tenants of one counter family, interleaved with an unrelated gauge —
  // a snapshot is name-sorted, so the page must regroup by family.
  for (const char* tenant : {"alice", "bob"}) {
    MetricValue c;
    c.name = labeled("svc.jobs.submitted", {{"tenant", tenant}});
    c.kind = MetricKind::counter;
    c.value = tenant[0] == 'a' ? 3 : 7;
    snap.metrics.push_back(c);
  }
  MetricValue g;
  g.name = labeled("svc.jobs.running", {{"tenant", "alice"}});
  g.kind = MetricKind::gauge;
  g.value = 2;
  snap.metrics.push_back(g);
  MetricValue h;
  h.name = labeled("svc.job.wall_ns", {{"tenant", "bob"}});
  h.kind = MetricKind::histogram;
  h.bounds = {100, 200};
  h.buckets = {4, 4, 0};
  h.count = 8;
  h.sum = 1000;
  snap.metrics.push_back(h);

  const std::string text = prom_render(snap);
  const PromPage page = must_parse(text);

  const PromSample* alice =
      page.find("mm_svc_jobs_submitted_total", "tenant", "alice");
  const PromSample* bob = page.find("mm_svc_jobs_submitted_total", "tenant", "bob");
  ASSERT_NE(alice, nullptr);
  ASSERT_NE(bob, nullptr);
  EXPECT_DOUBLE_EQ(alice->value, 3.0);
  EXPECT_DOUBLE_EQ(bob->value, 7.0);
  // One header for the family, both tenants beneath it.
  EXPECT_EQ(page.types.at("mm_svc_jobs_submitted_total"), "counter");
  EXPECT_EQ(text.find("# TYPE mm_svc_jobs_submitted_total"),
            text.rfind("# TYPE mm_svc_jobs_submitted_total"));

  const PromSample* running = page.find("mm_svc_jobs_running", "tenant", "alice");
  ASSERT_NE(running, nullptr);
  EXPECT_DOUBLE_EQ(running->value, 2.0);

  // Histogram children keep the tenant label and merge le/quantile labels.
  int buckets = 0;
  for (const auto& s : page.samples) {
    if (s.name != "mm_svc_job_wall_ns_bucket") continue;
    ++buckets;
    EXPECT_EQ(s.labels.at("tenant"), "bob");
    ASSERT_TRUE(s.labels.count("le"));
  }
  EXPECT_EQ(buckets, 3);  // two bounds + +Inf
  const PromSample* count = page.find("mm_svc_job_wall_ns_count", "tenant", "bob");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->value, 8.0);
  const PromSample* q = page.find("mm_svc_job_wall_ns_quantile", "quantile", "0.5");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->labels.at("tenant"), "bob");
}

TEST(PromRender, HealthPageRoundTripsHostileNodeLabels) {
  std::vector<RankHealth> health(2);
  health[0].state = Liveness::up;
  health[0].seq = 42;
  health[1].state = Liveness::down;
  const std::string hostile = "no\\de\"quo\nted";
  const PromPage page =
      must_parse(prom_render_health(health, {"collector", hostile}, 1'000'000));

  const PromSample* up0 = page.find("mm_heartbeat_up", "rank", "0");
  const PromSample* up1 = page.find("mm_heartbeat_up", "rank", "1");
  ASSERT_NE(up0, nullptr);
  ASSERT_NE(up1, nullptr);
  EXPECT_DOUBLE_EQ(up0->value, 1.0);
  EXPECT_DOUBLE_EQ(up1->value, 0.0);
  // The hostile node label survives escape + parse byte-for-byte.
  EXPECT_EQ(up1->labels.at("node"), hostile);

  const PromSample* state1 = page.find("mm_heartbeat_state", "rank", "1");
  ASSERT_NE(state1, nullptr);
  EXPECT_DOUBLE_EQ(state1->value, 2.0);  // down
  const PromSample* seq0 = page.find("mm_heartbeat_seq", "rank", "0");
  ASSERT_NE(seq0, nullptr);
  EXPECT_DOUBLE_EQ(seq0->value, 42.0);
}

TEST(PromRender, RatesPageCarriesWindowedGaugesAndQuantiles) {
  RateSample rates;
  rates.t_ns = 500'000'000;
  rates.dt_ns = 250'000'000;
  rates.msgs_per_s = 1234.5;
  rates.frames_per_s = 99.0;
  rates.p95_step_ns = 777.0;
  const PromPage page = must_parse(prom_render_rates(rates, 1'500'000'000));
  ASSERT_NE(page.find("mm_rate_messages_per_second"), nullptr);
  EXPECT_DOUBLE_EQ(page.find("mm_rate_messages_per_second")->value, 1234.5);
  ASSERT_NE(page.find("mm_rate_frames_per_second"), nullptr);
  const PromSample* p95 =
      page.find("mm_rate_step_latency_ns", "quantile", "0.95");
  ASSERT_NE(p95, nullptr);
  EXPECT_DOUBLE_EQ(p95->value, 777.0);
  ASSERT_NE(page.find("mm_snapshot_age_seconds"), nullptr);
  EXPECT_DOUBLE_EQ(page.find("mm_snapshot_age_seconds")->value, 1.0);
}

// --- the loopback listener ---------------------------------------------------

// One raw HTTP exchange against 127.0.0.1:port; returns the full response.
std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  ::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string response;
  char buf[4096];
  ssize_t got;
  while ((got = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    response.append(buf, static_cast<std::size_t>(got));
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_exchange(port,
                       "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string{} : response.substr(split + 4);
}

TEST(MetricsServerTest, ServesRoutesOnAnEphemeralLoopbackPort) {
  MetricsServer server;
  server.route("/metrics", [] {
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        "# HELP x marketminer gauge x\n# TYPE x gauge\nx 1\n"};
  });
  server.route("/healthz", [] { return HttpResponse{200, "text/plain", "ok\n"}; });
  ASSERT_TRUE(server.start(0).has_value());
  ASSERT_NE(server.port(), 0);  // the ephemeral port was resolved

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  must_parse(body_of(metrics));

  EXPECT_NE(http_get(server.port(), "/healthz").find("ok"), std::string::npos);
  // Query strings are stripped before routing.
  EXPECT_NE(http_get(server.port(), "/healthz?verbose=1").find("200 OK"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/nope").find("404"), std::string::npos);
  EXPECT_NE(http_exchange(server.port(),
                          "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("405"),
            std::string::npos);

  // Double-start is rejected; stop is idempotent.
  EXPECT_FALSE(server.start(0).has_value());
  server.stop();
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(MetricsServerTest, GarbageRequestGetsAnErrorNotAHang) {
  MetricsServer server;
  server.route("/metrics", [] { return HttpResponse{}; });
  ASSERT_TRUE(server.start(0).has_value());
  const std::string response = http_exchange(server.port(), "garbage\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 40"), std::string::npos);
  server.stop();
}

// --- mid-run scrape of a live pipeline --------------------------------------

#if MM_OBS_ENABLED
TEST(MetricsServerTest, LivePipelineScrapeIsValidPrometheus) {
  md::Universe universe = md::make_universe(4);
  md::GeneratorConfig gen;
  gen.quote_rate = 0.15;
  const md::SyntheticDay day(universe, gen, 3);

  std::atomic<std::uint16_t> port{0};
  engine::PipelineConfig cfg;
  cfg.symbols = 4;
  core::StrategyParams params = core::ParamGrid::base();
  params.ctype = stats::Ctype::pearson;
  params.divergence = 0.0005;
  cfg.strategies = {params};
  cfg.batch_size = 64;
  cfg.live.enabled = true;
  cfg.live.http_port = 0;  // ephemeral; published through port_out mid-run
  cfg.live.port_out = &port;
  cfg.live.snapshot_period = std::chrono::milliseconds{50};
  // Pace the replay so the day lasts ~2 wall seconds — long enough that the
  // scrape below is genuinely mid-run.
  cfg.replay_speedup = 12000.0;

  engine::PipelineResult result;
  std::thread run([&] { result = engine::run_pipeline(cfg, universe, day.quotes()); });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{10};
  while (port.load(std::memory_order_acquire) == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  ASSERT_NE(port.load(), 0) << "listener never came up";

  const std::string response = http_get(port.load(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  const std::string page_text = body_of(response);
  const PromPage page = must_parse(page_text);
  EXPECT_NE(page_text.find("mm_heartbeat_up"), std::string::npos);
  // Every rank of the 6-node graph reports as alive mid-run.
  int alive = 0;
  for (const auto& s : page.samples)
    if (s.name == "mm_heartbeat_up" && s.value == 1.0) ++alive;
  EXPECT_EQ(alive, 6);
  EXPECT_NE(http_get(port.load(), "/healthz").find("200 OK"), std::string::npos);

  run.join();
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.live.http_port, port.load());
  // The listener is down once the run ends.
  EXPECT_TRUE(http_get(port.load(), "/metrics").empty());
}
#endif  // MM_OBS_ENABLED

}  // namespace
}  // namespace mm::obs
