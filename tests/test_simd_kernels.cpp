// Golden equivalence tests for the runtime-dispatched SIMD kernels.
//
// The contract (see stats/simd.hpp) is that the scalar and AVX2 variants of
// every kernel are BIT-IDENTICAL: the scalar variants are written in lane
// form (four independent accumulators combined in the AVX2 horizontal-sum
// order), both translation units are built with -ffp-contract=off, and the
// remaining per-element operations are IEEE-exact. These tests assert that
// across aligned, unaligned and remainder lengths, and cross-check the
// full-matrix Pearson path against the per-pair reference at n = 512. On a
// host without AVX2 the comparisons skip (the scalar table is still
// exercised against itself through the dispatched entry points).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "stats/simd.hpp"
#include "stats/sym_matrix.hpp"
#include "stats/windows.hpp"

namespace mm::stats::simd {
namespace {

// Lengths straddling every dispatch regime: sub-vector, one vector, vector
// + remainder, several unrolled blocks, and large matrix-row sizes.
const std::size_t kLengths[] = {1,  2,  3,  4,   5,   7,   8,   15,  16,
                                31, 32, 61, 67, 100, 120, 128, 509, 512};

std::vector<double> make_series(std::size_t n, std::uint64_t seed,
                                bool fat_tails) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v)
    x = fat_tails ? 1e-4 * rng.student_t(3.0) : 1e-4 * rng.normal();
  return v;
}

class SimdKernelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!avx2_supported())
      GTEST_SKIP() << "AVX2 not available in this build/host";
  }
  const KernelTable& scalar_ = table_for(Level::scalar);
  const KernelTable& avx2_ = table_for(Level::avx2);
};

TEST_F(SimdKernelsTest, PairSumsBitwise) {
  for (const auto n : kLengths) {
    const auto x = make_series(n, 11 + n, false);
    const auto y = make_series(n, 23 + n, true);
    const auto a = scalar_.pair_sums(x.data(), y.data(), n);
    const auto b = avx2_.pair_sums(x.data(), y.data(), n);
    EXPECT_EQ(a.sx, b.sx) << "n=" << n;
    EXPECT_EQ(a.sy, b.sy) << "n=" << n;
  }
}

TEST_F(SimdKernelsTest, PairSumsBitwiseUnaligned) {
  // Offset the start pointer so AVX2 loads straddle cache lines.
  const auto x = make_series(515, 7, false);
  const auto y = make_series(515, 9, true);
  for (std::size_t off = 1; off <= 3; ++off) {
    const std::size_t n = 512 - off;
    const auto a = scalar_.pair_sums(x.data() + off, y.data() + off, n);
    const auto b = avx2_.pair_sums(x.data() + off, y.data() + off, n);
    EXPECT_EQ(a.sx, b.sx) << "off=" << off;
    EXPECT_EQ(a.sy, b.sy) << "off=" << off;
  }
}

TEST_F(SimdKernelsTest, CenteredSumsBitwise) {
  for (const auto n : kLengths) {
    const auto x = make_series(n, 31 + n, true);
    const auto y = make_series(n, 41 + n, false);
    const auto s = scalar_.pair_sums(x.data(), y.data(), n);
    const double mx = s.sx / static_cast<double>(n);
    const double my = s.sy / static_cast<double>(n);
    const auto a = scalar_.centered_sums(x.data(), y.data(), n, mx, my);
    const auto b = avx2_.centered_sums(x.data(), y.data(), n, mx, my);
    EXPECT_EQ(a.sxx, b.sxx) << "n=" << n;
    EXPECT_EQ(a.syy, b.syy) << "n=" << n;
    EXPECT_EQ(a.sxy, b.sxy) << "n=" << n;
  }
}

TEST_F(SimdKernelsTest, DotBitwise) {
  for (const auto n : kLengths) {
    const auto x = make_series(n, 51 + n, false);
    const auto y = make_series(n, 61 + n, true);
    EXPECT_EQ(scalar_.dot(x.data(), y.data(), n),
              avx2_.dot(x.data(), y.data(), n))
        << "n=" << n;
  }
}

TEST_F(SimdKernelsTest, CrossInsertBitwise) {
  for (const auto n : kLengths) {
    const auto r = make_series(n, 71 + n, true);
    auto row_a = make_series(n, 81 + n, false);
    auto row_b = row_a;
    scalar_.cross_insert(row_a.data(), r.data(), 0.37, n);
    avx2_.cross_insert(row_b.data(), r.data(), 0.37, n);
    EXPECT_EQ(row_a, row_b) << "n=" << n;
  }
}

TEST_F(SimdKernelsTest, CrossEvictInsertBitwise) {
  for (const auto n : kLengths) {
    const auto r = make_series(n, 91 + n, false);
    const auto old_col = make_series(n, 101 + n, true);
    auto row_a = make_series(n, 111 + n, false);
    auto row_b = row_a;
    scalar_.cross_evict_insert(row_a.data(), r.data(), old_col.data(), 0.37,
                               -0.21, n);
    avx2_.cross_evict_insert(row_b.data(), r.data(), old_col.data(), 0.37,
                             -0.21, n);
    EXPECT_EQ(row_a, row_b) << "n=" << n;
  }
}

TEST_F(SimdKernelsTest, PearsonRowBitwise) {
  for (const auto n : kLengths) {
    const auto crow = make_series(n, 121 + n, false);
    const auto sums_j = make_series(n, 131 + n, false);
    auto vars_j = make_series(n, 141 + n, false);
    std::vector<double> degen_j(n, 0.0);
    // Mix in degenerate columns, negative variances (roundoff artifacts the
    // denom > 0 guard must absorb) and exact zeros.
    for (std::size_t k = 0; k < n; ++k) {
      vars_j[k] = std::abs(vars_j[k]);
      if (k % 7 == 3) degen_j[k] = 1.0;
      if (k % 11 == 5) vars_j[k] = -vars_j[k];
      if (k % 13 == 8) vars_j[k] = 0.0;
    }
    std::vector<double> out_a(n, -9.0), out_b(n, -9.0);
    scalar_.pearson_row(out_a.data(), crow.data(), sums_j.data(),
                        vars_j.data(), degen_j.data(), 0.83, 2.4e-7, 100.0, n);
    avx2_.pearson_row(out_b.data(), crow.data(), sums_j.data(), vars_j.data(),
                      degen_j.data(), 0.83, 2.4e-7, 100.0, n);
    EXPECT_EQ(out_a, out_b) << "n=" << n;
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_GE(out_a[k], -1.0);
      EXPECT_LE(out_a[k], 1.0);
      if (degen_j[k] != 0.0) {
        EXPECT_EQ(out_a[k], 0.0);
      }
    }
  }
}

TEST_F(SimdKernelsTest, MaronnaWeightedSumsBitwise) {
  for (const auto n : kLengths) {
    const auto x = make_series(n, 151 + n, true);
    const auto y = make_series(n, 161 + n, true);
    // Scatter tight enough that a meaningful fraction of points exceeds the
    // Huber bound, exercising both blend arms.
    const double ixx = 4e7, ixy = 1e7, iyy = 5e7, k2 = 2.0;
    const auto a = scalar_.maronna_weighted_sums(x.data(), y.data(), n, 1e-5,
                                                 -2e-5, ixx, ixy, iyy, k2);
    const auto b = avx2_.maronna_weighted_sums(x.data(), y.data(), n, 1e-5,
                                               -2e-5, ixx, ixy, iyy, k2);
    EXPECT_EQ(a.sw, b.sw) << "n=" << n;
    EXPECT_EQ(a.swx, b.swx) << "n=" << n;
    EXPECT_EQ(a.swy, b.swy) << "n=" << n;
    EXPECT_EQ(a.sxx, b.sxx) << "n=" << n;
    EXPECT_EQ(a.sxy, b.sxy) << "n=" << n;
    EXPECT_EQ(a.syy, b.syy) << "n=" << n;
    EXPECT_GT(a.sw, 0.0);
    EXPECT_LE(a.sw, static_cast<double>(n));
  }
}

// Level plumbing: the dispatched table must follow set_level / ScopedLevel.
TEST(SimdDispatch, ScopedLevelSwitchesTables) {
  const Level initial = active_level();
  {
    ScopedLevel scalar_only(Level::scalar);
    ASSERT_TRUE(scalar_only.engaged());
    EXPECT_EQ(active_level(), Level::scalar);
    EXPECT_EQ(&kernels(), &table_for(Level::scalar));
  }
  EXPECT_EQ(active_level(), initial);
  if (avx2_supported()) {
    ScopedLevel forced(Level::avx2);
    ASSERT_TRUE(forced.engaged());
    EXPECT_EQ(active_level(), Level::avx2);
    EXPECT_EQ(&kernels(), &table_for(Level::avx2));
  } else {
    EXPECT_FALSE(set_level(Level::avx2));
    EXPECT_EQ(active_level(), Level::scalar);
  }
}

TEST(SimdDispatch, TableForFallsBackToScalar) {
  if (avx2_compiled() && !avx2_supported()) {
    EXPECT_EQ(&table_for(Level::avx2), &scalar_kernels());
  }
  EXPECT_EQ(&table_for(Level::scalar), &scalar_kernels());
  EXPECT_STREQ(level_name(Level::scalar), "scalar");
  EXPECT_STREQ(level_name(Level::avx2), "avx2");
}

// End-to-end: the full-matrix Pearson at n = 512 must match the per-pair
// incremental reference bit-for-bit under BOTH levels, and the two levels
// must agree with each other (full-matrix path composes several kernels, so
// this catches ordering bugs the per-kernel tests cannot).
TEST(SimdMatrix, PearsonMatrix512MatchesPerPairReference) {
  constexpr std::size_t n = 512;
  constexpr std::size_t window = 64;
  Rng rng(2026);
  ReturnWindows windows(n, window, true);
  std::vector<double> step(n);
  for (std::size_t t = 0; t < window + 9; ++t) {  // cross the ring wrap
    for (auto& r : step) r = 1e-4 * rng.student_t(4.0);
    step[17] = 0.0;  // keep one symbol near-degenerate some steps
    windows.push(step);
  }

  SymMatrix scalar_m, simd_m;
  {
    ScopedLevel scalar_only(Level::scalar);
    ASSERT_TRUE(scalar_only.engaged());
    windows.pearson_matrix(scalar_m);
    // Per-pair reference under the same level.
    for (std::size_t i = 0; i < n; i += 37)
      for (std::size_t j = i + 1; j < n; j += 41)
        EXPECT_EQ(scalar_m(i, j), windows.pearson(i, j))
            << "(" << i << "," << j << ")";
  }
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 not available";
  {
    ScopedLevel forced(Level::avx2);
    ASSERT_TRUE(forced.engaged());
    windows.pearson_matrix(simd_m);
  }
  EXPECT_EQ(SymMatrix::max_abs_diff(scalar_m, simd_m), 0.0);
}

}  // namespace
}  // namespace mm::stats::simd
