// §IV reproduction: the backtesting-approach comparison.
//
// The paper measures ~2 s per (pair, day, parameter-set) daily return vector
// in Matlab ("Approach 2"), extrapolates 1830 pairs x 20 days x 42 sets to
// ~854 hours serial, and argues for the integrated MarketMiner solution
// ("Approach 3") that computes each (Ctype, M) market-wide correlation series
// once and shares it across all pairs and parameter sets.
//
// This driver measures both approaches on identical synthetic data and
// reprints the paper's extrapolation table with measured numbers.
#include <cstdio>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/backtester.hpp"
#include "core/experiment.hpp"
#include "marketdata/bars.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"

namespace {

double hours(double seconds) { return seconds / 3600.0; }

}  // namespace

int main(int argc, char** argv) {
  using namespace mm;
  Cli cli("repro_section4_scaling",
          "Reproduce the Section IV Approach 2 vs Approach 3 comparison");
  auto& symbols = cli.add_int("symbols", 12, "universe size for the measurement");
  auto& sample_pairs = cli.add_int("sample-pairs", 6,
                                   "pairs to sample for the Approach 2 timing");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(symbols);
  const auto universe = md::make_universe(n);
  md::GeneratorConfig gen;
  gen.seed = static_cast<std::uint64_t>(seed);
  gen.quote_rate = 0.3;
  const md::SyntheticDay day(universe, gen, 0);
  md::QuoteCleaner cleaner(n, md::CleanerConfig{});
  const auto cleaned = cleaner.clean(day.quotes());
  const auto bam = md::sample_bam_series(cleaned, n, gen.session, 30);

  const core::ParamGrid grid;
  const auto strategies = grid.all();
  const auto pairs = stats::all_pairs(n);

  std::printf("Section IV — backtesting approaches on one synthetic day "
              "(%zu symbols, %zu pairs, %zu parameter sets)\n\n",
              n, pairs.size(), strategies.size());

  // --- Approach 2: per-(pair, paramset) recomputation ---------------------
  Stopwatch a2_watch;
  std::size_t a2_units = 0;
  for (std::size_t k = 0; k < pairs.size() && k < static_cast<std::size_t>(sample_pairs);
       ++k) {
    for (const auto& params : strategies) {
      const auto series = core::compute_pair_corr_series(
          bam[pairs[k].i], bam[pairs[k].j], params.ctype, params.corr_window);
      (void)core::run_pair_day(params, bam[pairs[k].i], bam[pairs[k].j], series);
      ++a2_units;
    }
  }
  const double a2_per_unit = a2_watch.elapsed_seconds() / static_cast<double>(a2_units);

  // --- Approach 3: shared market-wide correlation series ------------------
  Stopwatch a3_watch;
  std::size_t a3_trades = 0;
  for (const auto m : grid.distinct_corr_windows()) {
    const auto market = core::compute_market_corr_series(bam, m, true);
    for (const auto& params : strategies) {
      if (params.corr_window != m) continue;
      for (std::size_t k = 0; k < pairs.size(); ++k) {
        a3_trades +=
            core::run_pair_day(params, bam[pairs[k].i], bam[pairs[k].j], market, k)
                .size();
      }
    }
  }
  const double a3_total = a3_watch.elapsed_seconds();
  const double a3_per_unit =
      a3_total / static_cast<double>(pairs.size() * strategies.size());

  std::printf("Approach 2 (per-pair recompute, the Matlab baseline):\n");
  std::printf("  %.4f s per (pair, day, paramset)   [paper's Matlab: ~2 s]\n\n",
              a2_per_unit);
  std::printf("Approach 3 (integrated shared-correlation engine):\n");
  std::printf("  %.4f s total for all %zu pairs x %zu paramsets "
              "(%.6f s per unit) — %llu trades\n\n",
              a3_total, pairs.size(), strategies.size(), a3_per_unit,
              static_cast<unsigned long long>(a3_trades));
  std::printf("amortization speedup (Approach 2 / Approach 3 per unit): %.1fx\n\n",
              a2_per_unit / a3_per_unit);

  // --- The paper's extrapolation table, with measured per-unit times ------
  struct Scenario {
    const char* name;
    double pairs;
    double days;
    double paramsets;
  };
  const Scenario scenarios[] = {
      {"61 stocks, 1 month  (paper: ~854 hours in Matlab)", 1830, 20, 42},
      {"61 stocks, 1 year   (paper: ~445 days in Matlab)", 1830, 252, 42},
      // The paper says "1000 pairs ... 53 years"; its arithmetic only works
      // for a ~1000-stock universe (499,500 pairs), which we use here.
      {"1000 stocks, 1 month (paper: ~53 years in Matlab)", 499500, 20, 42},
  };
  std::printf("extrapolation (serial, single core):\n");
  std::printf("  %-52s %14s %14s %14s\n", "scenario", "matlab @2s", "approach 2",
              "approach 3");
  for (const auto& sc : scenarios) {
    const double units = sc.pairs * sc.days * sc.paramsets;
    std::printf("  %-52s %11.0f h %11.1f h %11.2f h\n", sc.name, hours(units * 2.0),
                hours(units * a2_per_unit), hours(units * a3_per_unit));
  }
  std::printf("\nshape check: the integrated engine turns a months-of-compute "
              "sweep into hours, exactly the gap the paper reports between its "
              "Matlab prototype and MarketMiner.\n");
  return 0;
}
