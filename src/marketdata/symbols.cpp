#include "marketdata/symbols.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/rng.hpp"

namespace mm::md {

SymbolId SymbolTable::intern(const std::string& ticker) {
  MM_ASSERT_MSG(!ticker.empty(), "empty ticker");
  if (const auto it = ids_.find(ticker); it != ids_.end()) return it->second;
  const auto id = static_cast<SymbolId>(names_.size());
  names_.push_back(ticker);
  ids_.emplace(ticker, id);
  return id;
}

SymbolId SymbolTable::lookup(const std::string& ticker) const {
  const auto it = ids_.find(ticker);
  return it == ids_.end() ? invalid_symbol : it->second;
}

const std::string& SymbolTable::name(SymbolId id) const {
  MM_ASSERT_MSG(id < names_.size(), "symbol id out of range");
  return names_[id];
}

const std::vector<UniverseEntry>& default_universe() {
  // 61 large-cap names liquid in March 2008 (incl. the five that appear in the
  // paper's Table II sample: NVDA, ORCL, SLB, TWX, BK), grouped by sector.
  // Prices are plausible levels for early March 2008.
  static const std::vector<UniverseEntry> universe = {
      // Technology
      {"MSFT", "tech", 28.0},  {"IBM", "tech", 114.0},  {"ORCL", "tech", 19.6},
      {"NVDA", "tech", 18.2},  {"INTC", "tech", 20.0},  {"CSCO", "tech", 24.0},
      {"AAPL", "tech", 122.0}, {"HPQ", "tech", 47.0},   {"DELL", "tech", 20.0},
      {"TXN", "tech", 29.0},   {"QCOM", "tech", 40.0},  {"EMC", "tech", 15.5},
      // Financials
      {"BK", "financial", 41.5},   {"C", "financial", 21.0},
      {"JPM", "financial", 40.0},  {"BAC", "financial", 38.0},
      {"WFC", "financial", 29.0},  {"GS", "financial", 165.0},
      {"MS", "financial", 42.0},   {"MER", "financial", 47.0},
      {"AXP", "financial", 43.0},  {"USB", "financial", 32.0},
      // Energy
      {"XOM", "energy", 86.0},  {"CVX", "energy", 85.0},  {"SLB", "energy", 83.0},
      {"COP", "energy", 80.0},  {"OXY", "energy", 75.0},  {"HAL", "energy", 38.0},
      {"DVN", "energy", 100.0}, {"APA", "energy", 110.0},
      // Consumer / retail
      {"WMT", "consumer", 50.0}, {"TGT", "consumer", 51.0}, {"HD", "consumer", 26.0},
      {"LOW", "consumer", 23.0}, {"COST", "consumer", 62.0}, {"MCD", "consumer", 53.0},
      {"KO", "consumer", 58.0},  {"PEP", "consumer", 68.0},  {"PG", "consumer", 66.0},
      {"CL", "consumer", 76.0},
      // Industrials / transport
      {"UPS", "industrial", 70.0}, {"FDX", "industrial", 88.0},
      {"GE", "industrial", 33.0},  {"BA", "industrial", 78.0},
      {"CAT", "industrial", 72.0}, {"DE", "industrial", 84.0},
      {"HON", "industrial", 56.0}, {"MMM", "industrial", 78.0},
      // Healthcare
      {"JNJ", "health", 62.0}, {"PFE", "health", 22.0}, {"MRK", "health", 44.0},
      {"ABT", "health", 54.0}, {"LLY", "health", 50.0}, {"BMY", "health", 22.0},
      // Media / telecom
      {"TWX", "media", 14.2}, {"DIS", "media", 31.0}, {"T", "media", 36.0},
      {"VZ", "media", 35.0},  {"CMCSA", "media", 19.0},
      // Semis / misc tech to round out 61
      {"AMD", "tech", 7.0}, {"MU", "tech", 6.5},
  };
  return universe;
}

Universe make_universe(std::size_t n) {
  const auto& all = default_universe();
  MM_ASSERT_MSG(n >= 2, "universe needs at least two symbols");

  Universe u;
  const std::size_t builtin = std::min(n, all.size());
  for (std::size_t i = 0; i < builtin; ++i) {
    const auto& entry = all[i];
    const SymbolId id = u.table.intern(entry.ticker);
    MM_ASSERT(id == i);
    const std::string sector = entry.sector;
    auto it = std::find(u.sector_names.begin(), u.sector_names.end(), sector);
    if (it == u.sector_names.end()) {
      u.sector_names.push_back(sector);
      it = std::prev(u.sector_names.end());
    }
    u.sector.push_back(static_cast<int>(it - u.sector_names.begin()));
    u.base_price.push_back(entry.price_2008);
  }

  // Beyond the 61 built-in large caps the universe continues with synthetic
  // names — the scale regime of the exchange-wide all-pairs studies. Tickers,
  // sector assignment and base prices are pure functions of the symbol index
  // (no RNG seed involved), so make_universe(m) is always a prefix of
  // make_universe(n) for m < n and every experiment stays reproducible.
  constexpr std::size_t kSyntheticSectorSize = 25;  // names per synthetic sector
  const auto base_sectors = u.sector_names.size();
  for (std::size_t i = builtin; i < n; ++i) {
    char ticker[16];
    std::snprintf(ticker, sizeof(ticker), "SYN%05zu", i);
    const SymbolId id = u.table.intern(ticker);
    MM_ASSERT(id == i);
    const std::size_t ordinal = (i - all.size()) / kSyntheticSectorSize;
    if (base_sectors + ordinal == u.sector_names.size())
      u.sector_names.push_back("syn" + std::to_string(ordinal));
    u.sector.push_back(static_cast<int>(base_sectors + ordinal));
    // Hash-derived price level in [5, 150] — plausible large-cap range.
    std::uint64_t sm = 0x7c9f0e8d2b1a5634ULL ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    const double f = static_cast<double>(splitmix64(sm) >> 11) * 0x1.0p-53;
    u.base_price.push_back(5.0 + 145.0 * f);
  }
  return u;
}

}  // namespace mm::md
