file(REMOVE_RECURSE
  "CMakeFiles/repro_figure2.dir/repro_figure2.cpp.o"
  "CMakeFiles/repro_figure2.dir/repro_figure2.cpp.o.d"
  "repro_figure2"
  "repro_figure2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_figure2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
