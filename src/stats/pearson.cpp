#include "stats/pearson.hpp"

#include <algorithm>
#include <cmath>

#include "stats/simd.hpp"
#include "stats/windows.hpp"  // kRebuildInterval — shared drift-bound policy

namespace mm::stats {

double pearson(const double* x, const double* y, std::size_t n) {
  MM_ASSERT_MSG(n >= 2, "pearson needs n >= 2");
  const auto& k = simd::kernels();
  const auto sums = k.pair_sums(x, y, n);
  const double mx = sums.sx / static_cast<double>(n);
  const double my = sums.sy / static_cast<double>(n);
  const auto m2 = k.centered_sums(x, y, n, mx, my);
  const double denom = std::sqrt(m2.sxx * m2.syy);
  if (denom <= 0.0 || !std::isfinite(denom)) return 0.0;
  const double r = m2.sxy / denom;
  return std::clamp(r, -1.0, 1.0);
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  MM_ASSERT_MSG(x.size() == y.size(), "pearson: length mismatch");
  return pearson(x.data(), y.data(), x.size());
}

SlidingPearson::SlidingPearson(std::size_t window)
    : window_(window), xs_(window, 0.0), ys_(window, 0.0) {
  MM_ASSERT_MSG(window >= 2, "SlidingPearson window must be >= 2");
}

void SlidingPearson::push(double x, double y) {
  // Center on the first observation: correlation is shift-invariant, and
  // removing a large common level (e.g. a $10M index value) avoids the
  // catastrophic cancellation that raw running sums suffer. rebuild()
  // re-anchors periodically so a trending series cannot drift away from
  // this initial anchor.
  if (pushes_ == 0) {
    offset_x_ = x;
    offset_y_ = y;
  }
  x -= offset_x_;
  y -= offset_y_;
  if (count_ == window_) {
    const double ox = xs_[head_];
    const double oy = ys_[head_];
    sum_x_ -= ox;
    sum_y_ -= oy;
    sum_xx_ -= ox * ox;
    sum_yy_ -= oy * oy;
    sum_xy_ -= ox * oy;
  } else {
    ++count_;
  }
  xs_[head_] = x;
  ys_[head_] = y;
  head_ = (head_ + 1) % window_;
  sum_x_ += x;
  sum_y_ += y;
  sum_xx_ += x * x;
  sum_yy_ += y * y;
  sum_xy_ += x * y;

  // Periodic exact rebuild bounds the accumulated cancellation error.
  if (++pushes_ % kRebuildInterval == 0) rebuild();
}

void SlidingPearson::rebuild() {
  // Re-anchor the centering offset to the current window mean. The offset
  // was captured from the FIRST observation and never moved; a series that
  // trends far from its starting level therefore accumulates large stored
  // values again, and the catastrophic cancellation the offset exists to
  // prevent returns. Correlation is shift-invariant, so moving the anchor by
  // the stored-value mean (and shifting every buffered value to match)
  // changes nothing except keeping the stored values permanently small.
  double mean_x = 0.0, mean_y = 0.0;
  for (std::size_t i = 0; i < count_; ++i) {
    mean_x += xs_[i];
    mean_y += ys_[i];
  }
  if (count_ > 0) {
    mean_x /= static_cast<double>(count_);
    mean_y /= static_cast<double>(count_);
  }
  offset_x_ += mean_x;
  offset_y_ += mean_y;
  sum_x_ = sum_y_ = sum_xx_ = sum_yy_ = sum_xy_ = 0.0;
  for (std::size_t i = 0; i < count_; ++i) {
    const double x = (xs_[i] -= mean_x);
    const double y = (ys_[i] -= mean_y);
    sum_x_ += x;
    sum_y_ += y;
    sum_xx_ += x * x;
    sum_yy_ += y * y;
    sum_xy_ += x * y;
  }
}

double SlidingPearson::correlation() const {
  MM_ASSERT_MSG(ready(), "SlidingPearson: window not yet full");
  const auto n = static_cast<double>(window_);
  const double cov = sum_xy_ - sum_x_ * sum_y_ / n;
  const double vx = sum_xx_ - sum_x_ * sum_x_ / n;
  const double vy = sum_yy_ - sum_y_ * sum_y_ / n;
  // Relative floor: variance that is a ~1e-12 sliver of the raw sum of
  // squares is cancellation residue from a constant window — no dispersion,
  // no signal, matching the batch estimator.
  if (vx <= 1e-12 * sum_xx_ || vy <= 1e-12 * sum_yy_) return 0.0;
  const double denom = std::sqrt(vx * vy);
  if (denom <= 0.0 || !std::isfinite(denom)) return 0.0;
  return std::clamp(cov / denom, -1.0, 1.0);
}

}  // namespace mm::stats
