// Backtest-as-a-service job model.
//
// A job is one tenant's request to sweep K parameter sets over one synthetic
// trading day. The service splits the sweep into UNITS — groups of paramsets
// sharing (∆s, M, estimator class) — because the Fig. 1 pipeline runs one
// correlation engine per (∆s, M): each unit becomes one run_pipeline call
// with K' strategy workers, and its correlation stream is memoized in the
// shared CorrStore under a key every tenant's identical unit hits.
//
// Specs and results travel as JSON (common/json.hpp). A spec names the
// tenant, the data (universe size, generator seed, day index) and the
// paramsets as overrides on ParamGrid::base() — unknown fields are rejected
// so a typo'd knob fails loudly instead of silently backtesting the default.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "core/params.hpp"
#include "obs/trace.hpp"

namespace mm::svc {

struct JobSpec {
  std::string tenant;
  std::size_t symbols = 10;        // universe size (make_universe prefix)
  std::uint64_t seed = 20080303;   // generator seed
  int day = 0;                     // synthetic day index
  std::vector<core::StrategyParams> paramsets;

  // Canonical fingerprint of the data this job reads; jobs with equal
  // universe keys share DayCache entries and CorrStore keys.
  std::string universe_key() const;
  // DayCache key for this spec's day.
  std::string day_key() const;
};

// Lower-case wire names for Ctype ("pearson" | "maronna" | "combined").
const char* ctype_wire_name(stats::Ctype c);
Expected<stats::Ctype> ctype_from_wire(const std::string& name);

// Parse a POST /jobs body. Validates every paramset (StrategyParams::
// validate) and rejects unknown paramset fields.
Expected<JobSpec> parse_job_spec(const std::string& body);

// Serialize a spec back to JSON (round-trips through parse_job_spec).
json::Value job_spec_json(const JobSpec& spec);

enum class JobState { queued, running, done, failed, cancelled };

inline const char* to_string(JobState s) {
  switch (s) {
    case JobState::queued: return "queued";
    case JobState::running: return "running";
    case JobState::done: return "done";
    case JobState::failed: return "failed";
    case JobState::cancelled: return "cancelled";
  }
  return "?";
}

// Per-paramset outcome, in spec order.
struct ParamOutcome {
  std::size_t index = 0;  // position in JobSpec::paramsets
  std::uint64_t trades = 0;
  double total_pnl = 0.0;
  std::vector<double> trade_returns;
};

// Latency attribution for one stage of a job's life: exact quantiles over
// this job's own samples (queue has one sample; cache/compute/exchange have
// one per unit). Plain steady-clock timing, so the breakdown survives
// MM_OBS_ENABLED=OFF builds.
struct StageLatency {
  std::string stage;  // "queue" | "cache" | "compute" | "exchange"
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t p50_ns = 0;
  std::int64_t p95_ns = 0;
  std::int64_t p99_ns = 0;
};

// Nearest-rank quantile summary of `samples_ns` (consumed; empty -> zeros).
StageLatency summarize_stage(std::string stage, std::vector<std::int64_t> samples_ns);

struct JobResult {
  std::vector<ParamOutcome> paramsets;
  std::uint64_t orders = 0;  // across all units
  std::uint64_t trades = 0;
  double wall_seconds = 0.0;
  int units = 0;               // pipeline runs this job was split into
  int units_from_cache = 0;    // units whose correlation day was resident
  // Where the job's wall time went: queue-wait, day-cache loads, pipeline
  // compute, transport exchange (credit stalls), in that order.
  std::vector<StageLatency> latency;
};

// One tracked job. State transitions: queued -> running -> done|failed, and
// queued|running -> cancelled (running jobs stop at the next unit boundary).
struct Job {
  std::string id;
  JobSpec spec;
  std::atomic<JobState> state{JobState::queued};
  std::atomic<bool> cancel{false};
  std::atomic<int> units_done{0};
  int units_total = 0;  // set before the job leaves `queued`

  // Causal tracing: the trace id every one of this job's spans and envelope
  // headers carries (0 when tracing is compiled out), the submission instant
  // (queue-wait attribution), and the job-scoped sink GET /jobs/{id}/trace
  // serves once the job is terminal. The sink is written only by the worker
  // running the job; state release/acquire orders it for readers.
  std::uint64_t trace_id = 0;
  std::chrono::steady_clock::time_point submitted{};
  std::shared_ptr<obs::TraceSink> trace;

  // Guards `result` and `error`; readable once state is terminal.
  mutable std::mutex mutex;
  JobResult result;
  std::string error;
};

// Status JSON for GET /jobs/{id}.
json::Value job_status_json(const Job& job);
// Result JSON for GET /jobs/{id}/result (call only when state == done).
json::Value job_result_json(const Job& job);

}  // namespace mm::svc
