// Treatment significance analysis — implements the "few simple inferential
// statistical tests" §V sketches: the three populations are the per-pair,
// level-averaged measures under Pearson / Maronna / Combined correlation
// (1830 paired samples at full scale). Since every pair receives every
// treatment, paired tests apply.
#pragma once

#include <array>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "stats/bootstrap.hpp"
#include "stats/inference.hpp"

namespace mm::core {

struct TreatmentComparison {
  stats::Ctype a;
  stats::Ctype b;
  Measure measure;
  stats::TestResult t_test;
  stats::TestResult wilcoxon;
  stats::BootstrapInterval bootstrap;  // percentile CI for the mean difference
};

// All three pairwise comparisons for one measure.
std::array<TreatmentComparison, 3> compare_treatments(const ExperimentResult& result,
                                                      Measure measure);

// Plain-text report block across all measures.
std::string render_significance_report(const ExperimentResult& result,
                                       double alpha = 0.05);

}  // namespace mm::core
