// Minimal command-line flag parser for the benches and examples.
//
// Usage:
//   mm::Cli cli("repro_table3", "Reproduce Table III");
//   auto& n = cli.add_int("symbols", 20, "universe size");
//   auto& full = cli.add_flag("full", "run the paper-scale experiment");
//   cli.parse(argc, argv);   // exits with usage on error / --help
//
// Flags are written --name value or --name=value; booleans are bare --name.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace mm {

class Cli {
 public:
  Cli(std::string program, std::string description);
  ~Cli();  // defined in cli.cpp where Option is complete

  std::int64_t& add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help);
  double& add_double(const std::string& name, double default_value,
                     const std::string& help);
  std::string& add_string(const std::string& name, const std::string& default_value,
                          const std::string& help);
  bool& add_flag(const std::string& name, const std::string& help);

  // Parses argv. On --help prints usage and exits 0; on a malformed or unknown
  // flag prints usage and exits 2.
  void parse(int argc, char** argv);

  // Non-exiting variant for tests.
  Status try_parse(const std::vector<std::string>& args);

  std::string usage() const;

 private:
  struct Option;
  Option* find(const std::string& name);

  std::string program_;
  std::string description_;
  std::vector<std::unique_ptr<Option>> options_;
};

}  // namespace mm
