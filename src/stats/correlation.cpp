#include "stats/correlation.hpp"

#include <cmath>

namespace mm::stats {

Expected<Ctype> parse_ctype(const std::string& name) {
  if (name == "pearson" || name == "Pearson") return Ctype::pearson;
  if (name == "maronna" || name == "Maronna") return Ctype::maronna;
  if (name == "combined" || name == "Combined") return Ctype::combined;
  return Error(Errc::invalid_argument, "unknown correlation type: " + name);
}

double combine(double pearson_r, double maronna_r) {
  if (pearson_r == 0.0 || maronna_r == 0.0) return 0.0;
  if ((pearson_r > 0.0) != (maronna_r > 0.0)) return 0.0;
  const double sign = pearson_r > 0.0 ? 1.0 : -1.0;
  return sign * std::min(std::abs(pearson_r), std::abs(maronna_r));
}

double correlation(Ctype type, const double* x, const double* y, std::size_t n,
                   const MaronnaConfig& maronna_config) {
  switch (type) {
    case Ctype::pearson:
      return pearson(x, y, n);
    case Ctype::maronna:
      return maronna(x, y, n, maronna_config);
    case Ctype::combined:
      return combine(pearson(x, y, n), maronna(x, y, n, maronna_config));
  }
  MM_ASSERT_MSG(false, "unreachable Ctype");
  return 0.0;
}

}  // namespace mm::stats
