#!/usr/bin/env bash
# Address+UB sanitizer flow plus the telemetry compile-out check:
#
#   1. configure the Sanitize build tree and run the `sanitize`-labeled test
#      subset (numeric kernels, fault matrix, mm::obs aggregation), then
#   2. build an MM_OBS_ENABLED=OFF tree and run the obs suite there, proving
#      the no-op telemetry API keeps every call site compiling and green.
#
# Usage: scripts/sanitize.sh [build-dir] [obs-off-build-dir]
# (defaults: build-sanitize, build-obs-off).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-sanitize"}
off_dir=${2:-"$repo_root/build-obs-off"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Sanitize
cmake --build "$build_dir" -j --target \
  test_pearson test_maronna test_correlation test_windows test_psd \
  test_corr_engine test_corr_kernels test_faults test_obs
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$build_dir" -L sanitize --output-on-failure

echo "== MM_OBS_ENABLED=OFF compile-out check =="
cmake -B "$off_dir" -S "$repo_root" -DMM_OBS_ENABLED=OFF
cmake --build "$off_dir" -j --target test_obs obs_demo
ctest --test-dir "$off_dir" -R Obs --output-on-failure
