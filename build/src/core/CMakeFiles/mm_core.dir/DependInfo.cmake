
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backtester.cpp" "src/core/CMakeFiles/mm_core.dir/backtester.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/backtester.cpp.o.d"
  "/root/repo/src/core/distance.cpp" "src/core/CMakeFiles/mm_core.dir/distance.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/distance.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/mm_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/mm_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/mm_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/mm_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/params.cpp.o.d"
  "/root/repo/src/core/portfolio.cpp" "src/core/CMakeFiles/mm_core.dir/portfolio.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/portfolio.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/mm_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/report.cpp.o.d"
  "/root/repo/src/core/significance.cpp" "src/core/CMakeFiles/mm_core.dir/significance.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/significance.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "src/core/CMakeFiles/mm_core.dir/strategy.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/strategy.cpp.o.d"
  "/root/repo/src/core/walkforward.cpp" "src/core/CMakeFiles/mm_core.dir/walkforward.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/walkforward.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/marketdata/CMakeFiles/mm_marketdata.dir/DependInfo.cmake"
  "/root/repo/build/src/mpmini/CMakeFiles/mm_mpmini.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
