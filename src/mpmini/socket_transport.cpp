#include "mpmini/socket_transport.hpp"

#include <cstdlib>
#include <stdexcept>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "wire/format.hpp"

namespace mm::mpi {
namespace {

// Handshake message magic ("MMT1" on the wire, distinct from the quote
// protocol's magic so a misdirected connection fails loudly).
constexpr std::uint32_t mesh_magic = 0x31544D4Du;

// Envelope frame kinds on an established mesh link.
constexpr std::uint8_t kind_message = 1;
constexpr std::uint8_t kind_bye = 2;

// Serialized envelope header after the kind byte: source, tag, comm id,
// sequence, trace id, flow, payload length.
constexpr std::size_t envelope_header_bytes = 4 + 4 + 8 + 8 + 8 + 4 + 8;

// Registration sent by the dialing side of every mesh link.
struct Registration {
  int rank = -1;
  std::uint16_t listen_port = 0;
  std::string host;
};

Status send_registration(const wire::Socket& sock, const Registration& reg) {
  std::vector<std::uint8_t> buf(4 + 4 + 2 + 2 + reg.host.size());
  wire::store_u32(buf.data(), mesh_magic);
  wire::store_u32(buf.data() + 4, static_cast<std::uint32_t>(reg.rank));
  wire::store_u16(buf.data() + 8, reg.listen_port);
  wire::store_u16(buf.data() + 10, static_cast<std::uint16_t>(reg.host.size()));
  std::memcpy(buf.data() + 12, reg.host.data(), reg.host.size());
  return wire::send_all(sock, buf.data(), buf.size());
}

Expected<Registration> recv_registration(const wire::Socket& sock) {
  std::uint8_t fixed[12];
  if (auto got = wire::recv_exact(sock, fixed, sizeof(fixed)); !got)
    return got.error();
  if (wire::load_u32(fixed) != mesh_magic)
    return Error(Errc::parse_error, "mesh registration: bad magic");
  Registration reg;
  reg.rank = static_cast<int>(wire::load_u32(fixed + 4));
  reg.listen_port = wire::load_u16(fixed + 8);
  const std::uint16_t host_len = wire::load_u16(fixed + 10);
  reg.host.resize(host_len);
  if (host_len > 0)
    if (auto got = wire::recv_exact(sock, reg.host.data(), host_len); !got)
      return got.error();
  return reg;
}

struct PeerAddress {
  std::string host;
  std::uint16_t port = 0;
};

Status send_table(const wire::Socket& sock, const std::vector<PeerAddress>& table) {
  std::vector<std::uint8_t> buf(8);
  wire::store_u32(buf.data(), mesh_magic);
  wire::store_u32(buf.data() + 4, static_cast<std::uint32_t>(table.size()));
  for (const PeerAddress& addr : table) {
    std::uint8_t entry[4];
    wire::store_u16(entry, addr.port);
    wire::store_u16(entry + 2, static_cast<std::uint16_t>(addr.host.size()));
    buf.insert(buf.end(), entry, entry + sizeof(entry));
    buf.insert(buf.end(), addr.host.begin(), addr.host.end());
  }
  return wire::send_all(sock, buf.data(), buf.size());
}

Expected<std::vector<PeerAddress>> recv_table(const wire::Socket& sock) {
  std::uint8_t fixed[8];
  if (auto got = wire::recv_exact(sock, fixed, sizeof(fixed)); !got)
    return got.error();
  if (wire::load_u32(fixed) != mesh_magic)
    return Error(Errc::parse_error, "mesh table: bad magic");
  const std::uint32_t n = wire::load_u32(fixed + 4);
  std::vector<PeerAddress> table(n);
  for (PeerAddress& addr : table) {
    std::uint8_t entry[4];
    if (auto got = wire::recv_exact(sock, entry, sizeof(entry)); !got)
      return got.error();
    addr.port = wire::load_u16(entry);
    const std::uint16_t host_len = wire::load_u16(entry + 2);
    addr.host.resize(host_len);
    if (host_len > 0)
      if (auto got = wire::recv_exact(sock, addr.host.data(), host_len); !got)
        return got.error();
  }
  return table;
}

// The address this rank advertises for inbound mesh dials.
std::string local_advertised_host() {
  const char* host = std::getenv("MM_MPMINI_HOST");
  return (host != nullptr && *host != '\0') ? host : "127.0.0.1";
}

[[noreturn]] void handshake_fail(int rank, const std::string& why) {
  throw std::runtime_error(
      format("socket transport rank %d: handshake failed: %s", rank, why.c_str()));
}

}  // namespace

Expected<Rendezvous> rendezvous_from_env() {
  const char* rank_raw = std::getenv("MM_MPMINI_RANK");
  const char* addr_raw = std::getenv("MM_MPMINI_RENDEZVOUS");
  if (rank_raw == nullptr || addr_raw == nullptr)
    return Error(Errc::invalid_argument,
                 "socket transport needs MM_MPMINI_RANK and "
                 "MM_MPMINI_RENDEZVOUS=host:port");
  Rendezvous rz;
  char* end = nullptr;
  const long rank = std::strtol(rank_raw, &end, 10);
  if (end == rank_raw || *end != '\0' || rank < 0)
    return Error(Errc::parse_error,
                 format("MM_MPMINI_RANK='%s' is not a rank", rank_raw));
  rz.rank = static_cast<int>(rank);

  const std::string addr(addr_raw);
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size())
    return Error(Errc::parse_error,
                 format("MM_MPMINI_RENDEZVOUS='%s' is not host:port", addr_raw));
  rz.host = addr.substr(0, colon);
  const long port = std::strtol(addr.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port <= 0 || port > 65535)
    return Error(Errc::parse_error,
                 format("MM_MPMINI_RENDEZVOUS='%s' has a bad port", addr_raw));
  rz.port = static_cast<std::uint16_t>(port);
  return rz;
}

SocketTransport::SocketTransport(int world_size, Rendezvous rendezvous)
    : size_(world_size), rz_(std::move(rendezvous)) {
  MM_ASSERT_MSG(world_size > 0, "World size must be positive");
  MM_ASSERT_MSG(rz_.rank >= 0 && rz_.rank < world_size,
                "rendezvous rank out of range for the world");
  peers_.resize(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r)
    if (r != rz_.rank) peers_[static_cast<std::size_t>(r)] = std::make_unique<Peer>();
}

SocketTransport::~SocketTransport() { stop(); }

void SocketTransport::start() {
  MM_ASSERT_MSG(!started_, "SocketTransport started twice");
  started_ = true;
  if (size_ == 1) return;  // a one-rank world has no mesh

  const std::string my_host = local_advertised_host();

  // 1. Raise this rank's listener.
  wire::Socket listener;
  std::uint16_t listen_port = 0;
  if (rz_.rank == 0 && rz_.listen_fd >= 0) {
    listener = wire::Socket(rz_.listen_fd);
    listen_port = rz_.port;
  } else {
    auto bound = wire::tcp_listen(rz_.rank == 0 ? rz_.host : my_host,
                                  rz_.rank == 0 ? rz_.port : 0, &listen_port);
    if (!bound) handshake_fail(rz_.rank, bound.error().to_string());
    listener = std::move(*bound);
  }

  if (rz_.rank == 0) {
    // 2. Collect every peer's registration; the connection doubles as the
    // mesh link to that peer.
    std::vector<PeerAddress> table(static_cast<std::size_t>(size_));
    for (int i = 1; i < size_; ++i) {
      auto conn = wire::tcp_accept(listener, rz_.connect_timeout);
      if (!conn) handshake_fail(0, conn.error().to_string());
      auto reg = recv_registration(*conn);
      if (!reg) handshake_fail(0, reg.error().to_string());
      if (reg->rank <= 0 || reg->rank >= size_ ||
          peers_[static_cast<std::size_t>(reg->rank)]->sock.valid())
        handshake_fail(0, format("bad or duplicate registration from rank %d",
                                 reg->rank));
      wire::set_nodelay(*conn);
      peers_[static_cast<std::size_t>(reg->rank)]->sock = std::move(*conn);
      table[static_cast<std::size_t>(reg->rank)] = {reg->host, reg->listen_port};
    }
    // 3. Broadcast the port table.
    for (int r = 1; r < size_; ++r) {
      if (auto sent = send_table(peers_[static_cast<std::size_t>(r)]->sock, table);
          !sent)
        handshake_fail(0, sent.error().to_string());
    }
  } else {
    // 2'. Register with rank 0.
    auto conn = wire::tcp_connect(rz_.host, rz_.port, rz_.connect_timeout);
    if (!conn) handshake_fail(rz_.rank, conn.error().to_string());
    if (auto sent = send_registration(*conn, {rz_.rank, listen_port, my_host});
        !sent)
      handshake_fail(rz_.rank, sent.error().to_string());
    auto table = recv_table(*conn);
    if (!table) handshake_fail(rz_.rank, table.error().to_string());
    peers_[0]->sock = std::move(*conn);

    // 4. Dial every lower nonzero rank; accept the higher ones.
    for (int q = 1; q < rz_.rank; ++q) {
      const PeerAddress& addr = (*table)[static_cast<std::size_t>(q)];
      auto link = wire::tcp_connect(addr.host, addr.port, rz_.connect_timeout);
      if (!link)
        handshake_fail(rz_.rank, format("dial rank %d: %s", q,
                                        link.error().to_string().c_str()));
      if (auto sent = send_registration(*link, {rz_.rank, 0, my_host}); !sent)
        handshake_fail(rz_.rank, sent.error().to_string());
      peers_[static_cast<std::size_t>(q)]->sock = std::move(*link);
    }
    for (int i = rz_.rank + 1; i < size_; ++i) {
      auto link = wire::tcp_accept(listener, rz_.connect_timeout);
      if (!link) handshake_fail(rz_.rank, link.error().to_string());
      auto reg = recv_registration(*link);
      if (!reg) handshake_fail(rz_.rank, reg.error().to_string());
      if (reg->rank <= rz_.rank || reg->rank >= size_ ||
          peers_[static_cast<std::size_t>(reg->rank)]->sock.valid())
        handshake_fail(rz_.rank, format("bad or duplicate registration from rank %d",
                                        reg->rank));
      wire::set_nodelay(*link);
      peers_[static_cast<std::size_t>(reg->rank)]->sock = std::move(*link);
    }
  }

  // 5. Mesh complete — start one reader per peer.
  for (int r = 0; r < size_; ++r) {
    if (r == rz_.rank) continue;
    peers_[static_cast<std::size_t>(r)]->reader =
        std::thread([this, r] { reader_loop(r); });
  }
}

void SocketTransport::reader_loop(int peer_rank) {
  Peer& peer = *peers_[static_cast<std::size_t>(peer_rank)];
  std::vector<std::uint8_t> header(envelope_header_bytes);
  for (;;) {
    std::uint8_t kind = 0;
    if (auto got = wire::recv_exact(peer.sock, &kind, 1); !got) {
      if (!stopping_.load())
        MM_LOG_WARN("socket transport: link to rank "
                    << peer_rank << " failed: " << got.error().to_string());
      note_bye();  // a dead link must not wedge the goodbye barrier
      return;
    }
    if (kind == kind_bye) {
      note_bye();
      return;
    }
    if (kind != kind_message) {
      MM_LOG_WARN("socket transport: unknown frame kind "
                  << int{kind} << " from rank " << peer_rank);
      note_bye();
      return;
    }
    if (auto got = wire::recv_exact(peer.sock, header.data(), header.size()); !got) {
      if (!stopping_.load())
        MM_LOG_WARN("socket transport: link to rank "
                    << peer_rank << " died mid-frame: " << got.error().to_string());
      note_bye();
      return;
    }
    Message msg;
    const std::uint8_t* p = header.data();
    msg.source = static_cast<int>(wire::load_u32(p));
    msg.tag = static_cast<int>(wire::load_u32(p + 4));
    msg.comm_id = wire::load_u64(p + 8);
    msg.sequence = wire::load_u64(p + 16);
    const std::uint64_t trace_id = wire::load_u64(p + 24);
    const std::uint32_t flow = wire::load_u32(p + 32);
#if MM_OBS_ENABLED
    msg.trace_id = trace_id;
    msg.flow = flow;
#else
    (void)trace_id;
    (void)flow;
#endif
    const std::uint64_t payload_len = wire::load_u64(p + 36);
    msg.payload.resize(payload_len);
    if (payload_len > 0)
      if (auto got = wire::recv_exact(peer.sock, msg.payload.data(), payload_len);
          !got) {
        if (!stopping_.load())
          MM_LOG_WARN("socket transport: link to rank "
                      << peer_rank
                      << " died mid-payload: " << got.error().to_string());
        note_bye();
        return;
      }
    mailbox_.deliver(std::move(msg));
  }
}

Status SocketTransport::send_envelope(Peer& peer, const Message& msg) {
  std::lock_guard<std::mutex> lock(peer.send_mutex);
  if (!peer.sock.valid())
    return Error(Errc::io_error, "peer link is down");
  peer.tx.resize(1 + envelope_header_bytes + msg.payload.size());
  std::uint8_t* p = peer.tx.data();
  p[0] = kind_message;
  wire::store_u32(p + 1, static_cast<std::uint32_t>(msg.source));
  wire::store_u32(p + 5, static_cast<std::uint32_t>(msg.tag));
  wire::store_u64(p + 9, msg.comm_id);
  wire::store_u64(p + 17, msg.sequence);
#if MM_OBS_ENABLED
  wire::store_u64(p + 25, msg.trace_id);
  wire::store_u32(p + 33, msg.flow);
#else
  wire::store_u64(p + 25, 0);
  wire::store_u32(p + 33, 0);
#endif
  wire::store_u64(p + 37, msg.payload.size());
  if (!msg.payload.empty())
    std::memcpy(p + 45, msg.payload.data(), msg.payload.size());
  return wire::send_all(peer.sock, peer.tx.data(), peer.tx.size());
}

void SocketTransport::transmit(int src_world, int dest_world, Message&& msg) {
  MM_ASSERT_MSG(src_world == rz_.rank,
                "socket transport: sends must originate from the local rank");
  if (dest_world == rz_.rank) {
    // Self-send stays in process (sendrecv-to-self, gather at root, ...).
    mailbox_.deliver(std::move(msg));
    return;
  }
  Peer& peer = *peers_[static_cast<std::size_t>(dest_world)];
  if (auto sent = send_envelope(peer, msg); !sent)
    throw std::runtime_error(format("socket transport: send to rank %d failed: %s",
                                    dest_world, sent.error().to_string().c_str()));
}

Mailbox& SocketTransport::mailbox(int world_rank) {
  MM_ASSERT_MSG(world_rank == rz_.rank,
                "socket transport: only the local rank's mailbox exists here");
  return mailbox_;
}

void SocketTransport::attach_obs(obs::Gauge* queue_peak, obs::Gauge* ring_peak) {
  mailbox_.set_obs(queue_peak, ring_peak);
}

void SocketTransport::note_bye() {
  std::lock_guard<std::mutex> lock(bye_mutex_);
  ++byes_;
  bye_cv_.notify_all();
}

void SocketTransport::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopping_.store(true);
  const int peer_count = size_ - 1;

  // Goodbye barrier: tell every peer this rank is done sending, then keep
  // draining (the readers stay up) until every peer says the same — any
  // message they sent before their bye is delivered to the mailbox first,
  // because the link is FIFO.
  for (int r = 0; r < size_; ++r) {
    if (r == rz_.rank) continue;
    Peer& peer = *peers_[static_cast<std::size_t>(r)];
    std::lock_guard<std::mutex> lock(peer.send_mutex);
    if (peer.sock.valid() && !peer.bye_sent) {
      const std::uint8_t bye = kind_bye;
      (void)wire::send_all(peer.sock, &bye, 1);
      peer.bye_sent = true;
    }
  }
  {
    std::unique_lock<std::mutex> lock(bye_mutex_);
    if (!bye_cv_.wait_for(lock, std::chrono::seconds{30},
                          [&] { return byes_ >= peer_count; }))
      MM_LOG_WARN("socket transport rank "
                  << rz_.rank << ": goodbye barrier timed out (" << byes_ << "/"
                  << peer_count << " byes); closing links anyway");
  }
  // Close links to unblock any reader still stuck in recv, then join.
  for (auto& peer : peers_) {
    if (peer == nullptr) continue;
    {
      std::lock_guard<std::mutex> lock(peer->send_mutex);
      peer->sock.close();
    }
    if (peer->reader.joinable()) peer->reader.join();
  }
}

}  // namespace mm::mpi
