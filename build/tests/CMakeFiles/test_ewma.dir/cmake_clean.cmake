file(REMOVE_RECURSE
  "CMakeFiles/test_ewma.dir/test_ewma.cpp.o"
  "CMakeFiles/test_ewma.dir/test_ewma.cpp.o.d"
  "test_ewma"
  "test_ewma.pdb"
  "test_ewma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ewma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
