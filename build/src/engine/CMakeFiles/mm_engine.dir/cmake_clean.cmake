file(REMOVE_RECURSE
  "CMakeFiles/mm_engine.dir/components.cpp.o"
  "CMakeFiles/mm_engine.dir/components.cpp.o.d"
  "CMakeFiles/mm_engine.dir/execution.cpp.o"
  "CMakeFiles/mm_engine.dir/execution.cpp.o.d"
  "CMakeFiles/mm_engine.dir/pipeline.cpp.o"
  "CMakeFiles/mm_engine.dir/pipeline.cpp.o.d"
  "libmm_engine.a"
  "libmm_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
