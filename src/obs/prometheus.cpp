#include "obs/prometheus.hpp"

#include "common/strings.hpp"

namespace mm::obs {
namespace {

bool name_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
}

bool name_char(char c) { return name_start(c) || (c >= '0' && c <= '9'); }

// HELP text escaping: backslash and newline (the only two the spec names).
std::string help_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Trailing-zero-free double formatting (Prometheus accepts both; short forms
// keep the exposition readable).
std::string num(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 && v < 1e15)
    return format("%lld", static_cast<long long>(v));
  return format("%.6g", v);
}

void family_header(std::string& out, const std::string& family,
                   const std::string& raw, const char* kind, const char* type) {
  out += "# HELP " + family + " marketminer " + std::string(kind) + " " +
         help_escape(raw) + "\n";
  out += "# TYPE " + family + " " + type + "\n";
}

// A raw registry name with an optional embedded label block (see labeled()):
// `svc.jobs{tenant="a"}` -> base "svc.jobs", labels `tenant="a"`.
struct NameParts {
  std::string base;
  std::string labels;  // inner block, braces stripped; empty when unlabeled
};

NameParts split_labels(const std::string& raw) {
  const std::size_t brace = raw.find('{');
  if (brace == std::string::npos || raw.back() != '}') return {raw, {}};
  return {raw.substr(0, brace), raw.substr(brace + 1, raw.size() - brace - 2)};
}

// Accumulates exposition lines grouped by family so that every labeled
// variant of a family lands under one HELP/TYPE header, in first-seen order —
// the format requires a family's samples to be contiguous.
class FamilyWriter {
 public:
  // Registers the family on first sight (writing its header) and returns the
  // body buffer to append sample lines to.
  std::string& family(const std::string& name, const std::string& raw,
                      const char* kind, const char* type) {
    for (auto& f : families_)
      if (f.name == name) return f.body;
    families_.push_back({name, {}});
    family_header(families_.back().body, name, raw, kind, type);
    return families_.back().body;
  }

  std::string take() {
    std::string out;
    for (auto& f : families_) out += f.body;
    return out;
  }

 private:
  struct Family {
    std::string name;
    std::string body;
  };
  std::vector<Family> families_;
};

// `{labels}` / `{labels,extra}` / `{extra}` / `` depending on what's present.
std::string label_block(const std::string& labels, const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return {};
  std::string out = "{" + labels;
  if (!labels.empty() && !extra.empty()) out += ",";
  out += extra + "}";
  return out;
}

}  // namespace

std::string prom_name(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 1);
  for (const char c : raw) out.push_back(name_char(c) ? c : '_');
  if (out.empty() || !name_start(out.front())) out.insert(out.begin(), '_');
  return out;
}

std::string prom_label_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string labeled(const std::string& name,
                    std::initializer_list<std::pair<std::string, std::string>> labels) {
  if (labels.size() == 0) return name;
  std::string out = name + "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += prom_name(key) + "=\"" + prom_label_escape(value) + "\"";
  }
  out += "}";
  return out;
}

std::string prom_render(const Snapshot& snap, const std::string& prefix) {
  FamilyWriter out;
  for (const auto& m : snap.metrics) {
    const NameParts parts = split_labels(m.name);
    const std::string base = prom_name(prefix + parts.base);
    const std::string at = label_block(parts.labels);
    switch (m.kind) {
      case MetricKind::counter: {
        const std::string family = base + "_total";
        out.family(family, parts.base, "counter", "counter") +=
            family + at + " " + num(static_cast<double>(m.value)) + "\n";
        break;
      }
      case MetricKind::gauge: {
        out.family(base, parts.base, "gauge", "gauge") +=
            base + at + " " + num(static_cast<double>(m.value)) + "\n";
        break;
      }
      case MetricKind::histogram: {
        std::string& body = out.family(base, parts.base, "histogram", "histogram");
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < m.bounds.size() && i < m.buckets.size(); ++i) {
          cumulative += m.buckets[i];
          body += base + "_bucket" +
                  label_block(parts.labels, "le=\"" +
                                                num(static_cast<double>(m.bounds[i])) +
                                                "\"") +
                  " " + format("%llu", static_cast<unsigned long long>(cumulative)) +
                  "\n";
        }
        body += base + "_bucket" + label_block(parts.labels, "le=\"+Inf\"") + " " +
                format("%llu", static_cast<unsigned long long>(m.count)) + "\n";
        body += base + "_sum" + at + " " + num(static_cast<double>(m.sum)) + "\n";
        body += base + "_count" + at + " " +
                format("%llu", static_cast<unsigned long long>(m.count)) + "\n";
        const std::string quantiles = base + "_quantile";
        std::string& qbody =
            out.family(quantiles, parts.base, "histogram quantiles", "gauge");
        for (const double q : {0.5, 0.95, 0.99})
          qbody += quantiles + label_block(parts.labels, "quantile=\"" + num(q) + "\"") +
                   " " + num(m.quantile(q)) + "\n";
        break;
      }
    }
  }
  return out.take();
}

std::string prom_render_health(const std::vector<RankHealth>& health,
                               const std::vector<std::string>& rank_nodes,
                               std::int64_t now_ns, const std::string& prefix) {
  if (health.empty()) return {};
  std::string out;
  const auto labels = [&](std::size_t r) {
    const std::string node = r < rank_nodes.size() ? rank_nodes[r] : std::string{};
    return "{rank=\"" + std::to_string(r) + "\",node=\"" + prom_label_escape(node) +
           "\"}";
  };
  const std::string up = prom_name(prefix + "heartbeat.up");
  family_header(out, up, "1 while the rank is believed alive", "gauge", "gauge");
  for (std::size_t r = 0; r < health.size(); ++r) {
    const bool alive = health[r].state == Liveness::up ||
                       health[r].state == Liveness::suspect;
    out += up + labels(r) + " " + (alive ? "1" : "0") + "\n";
  }
  const std::string state = prom_name(prefix + "heartbeat.state");
  family_header(out, state, "0 up, 1 suspect, 2 down, 3 done", "gauge", "gauge");
  for (std::size_t r = 0; r < health.size(); ++r)
    out += state + labels(r) + " " +
           std::to_string(static_cast<int>(health[r].state)) + "\n";
  const std::string seq = prom_name(prefix + "heartbeat.seq");
  family_header(out, seq, "last observed heartbeat sequence", "gauge", "gauge");
  for (std::size_t r = 0; r < health.size(); ++r)
    out += seq + labels(r) + " " +
           format("%llu", static_cast<unsigned long long>(health[r].seq)) + "\n";
  const std::string age = prom_name(prefix + "heartbeat.age_seconds");
  family_header(out, age, "seconds since the last observed beat", "gauge", "gauge");
  for (std::size_t r = 0; r < health.size(); ++r) {
    const double seconds =
        static_cast<double>(now_ns - health[r].last_seen_ns) / 1e9;
    out += age + labels(r) + " " + num(seconds < 0.0 ? 0.0 : seconds) + "\n";
  }
  const std::string missed = prom_name(prefix + "heartbeat.missed_scans");
  family_header(out, missed, "consecutive scans without a beat", "gauge", "gauge");
  for (std::size_t r = 0; r < health.size(); ++r)
    out += missed + labels(r) + " " + std::to_string(health[r].missed_scans) + "\n";
  return out;
}

std::string prom_render_rates(const RateSample& rates, std::int64_t now_ns,
                              const std::string& prefix) {
  std::string out;
  const auto gauge = [&](const char* name, const char* help, double v) {
    const std::string family = prom_name(prefix + name);
    family_header(out, family, help, "gauge", "gauge");
    out += family + " " + num(v) + "\n";
  };
  gauge("rate.messages_per_second", "transport receive rate over the last window",
        rates.msgs_per_s);
  gauge("rate.bytes_per_second", "transport byte rate over the last window",
        rates.bytes_per_s);
  gauge("rate.frames_per_second", "dagflow frame ingest rate over the last window",
        rates.frames_per_s);
  const std::string step = prom_name(prefix + "rate.step_latency_ns");
  family_header(out, step, "windowed step-latency quantiles", "gauge", "gauge");
  out += step + "{quantile=\"0.5\"} " + num(rates.p50_step_ns) + "\n";
  out += step + "{quantile=\"0.95\"} " + num(rates.p95_step_ns) + "\n";
  out += step + "{quantile=\"0.99\"} " + num(rates.p99_step_ns) + "\n";
  gauge("snapshot.age_seconds", "seconds since the newest registry snapshot",
        rates.t_ns > 0 ? static_cast<double>(now_ns - rates.t_ns) / 1e9 : 0.0);
  return out;
}

}  // namespace mm::obs
