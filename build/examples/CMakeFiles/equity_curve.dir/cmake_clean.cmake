file(REMOVE_RECURSE
  "CMakeFiles/equity_curve.dir/equity_curve.cpp.o"
  "CMakeFiles/equity_curve.dir/equity_curve.cpp.o.d"
  "equity_curve"
  "equity_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equity_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
