#include "obs/trace.hpp"

#include <cstdio>
#include <cstring>

#include "common/json.hpp"
#include "common/strings.hpp"

#if MM_OBS_ENABLED
#include <atomic>
#endif

namespace mm::obs {
namespace {

// Event/process names are plain identifiers in practice, but a stray quote
// must not corrupt the trace; use the tree-wide shared JSON escaper.
std::string escape(const std::string& s) { return json::escape(s); }

Status write_string(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return Error(Errc::io_error, "trace: cannot open " + path + " for writing");
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size())
    return Error(Errc::io_error, "trace: short write to " + path);
  return {};
}

}  // namespace

#if MM_OBS_ENABLED

std::uint64_t next_trace_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint32_t next_span_id() {
  static std::atomic<std::uint32_t> counter{0};
  // Wraps after 2^32 flows; ids only need to be unique within one trace's
  // lifetime, and 0 stays reserved for "no flow".
  std::uint32_t id = counter.fetch_add(1, std::memory_order_relaxed) + 1;
  if (id == 0) id = counter.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

ThreadTrace& thread_trace() noexcept {
  thread_local ThreadTrace state;
  return state;
}

TraceRing::TraceRing(std::int32_t pid, std::int64_t epoch_ns, std::size_t capacity)
    : pid_(pid), epoch_ns_(epoch_ns) {
  events_.resize(capacity);
}

void TraceRing::push(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
                     std::uint8_t kind, std::uint32_t flow) {
  if (size_ == events_.size()) {
    // Full: drop the newest rather than overwrite — the run's opening events
    // (graph setup, first frames) are the ones post-mortems need intact.
    ++dropped_;
    return;
  }
  TraceEvent& e = events_[size_++];
  std::snprintf(e.name, sizeof(e.name), "%s", name == nullptr ? "" : name);
  e.kind = kind;
  e.ts_ns = start_ns - epoch_ns_;
  e.dur_ns = dur_ns;
  e.tid = tid_;
  e.flow = flow;
}

TraceSink::TraceSink(std::size_t ring_capacity)
    : epoch_ns_(now_ns()), ring_capacity_(ring_capacity) {}

TraceRing& TraceSink::ring(std::int32_t pid, const std::string& process_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = rings_[pid];
  if (!slot) {
    slot = std::make_unique<TraceRing>(pid, epoch_ns_, ring_capacity_);
    process_names_[pid] = process_name;
  }
  return *slot;
}

void TraceSink::set_thread_name(std::int32_t pid, std::int32_t tid,
                                const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  thread_names_[{pid, tid}] = name;
}

void TraceSink::set_meta(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  meta_[key] = value;
}

std::string TraceSink::chrome_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto append = [&](const std::string& event) {
    if (!first) out += ",";
    first = false;
    out += event;
  };
  for (const auto& [pid, name] : process_names_)
    append(format("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                  "\"args\":{\"name\":\"%s\"}}",
                  pid, escape(name).c_str()));
  for (const auto& [key, name] : thread_names_)
    append(format("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                  "\"args\":{\"name\":\"%s\"}}",
                  key.first, key.second, escape(name).c_str()));
  for (const auto& [pid, ring] : rings_) {
    for (std::size_t i = 0; i < ring->size(); ++i) {
      const TraceEvent& e = ring->event(i);
      // chrome://tracing timestamps are microseconds (fractional allowed).
      switch (e.kind) {
        case TraceRing::kInstant:
          append(format("{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
                        "\"pid\":%d,\"tid\":%d}",
                        escape(e.name).c_str(), static_cast<double>(e.ts_ns) / 1e3,
                        pid, e.tid));
          break;
        case TraceRing::kFlowStart:
          // The viewer binds each flow endpoint to the slice enclosing its
          // timestamp on (pid, tid); matching ids draw the arrow.
          append(format("{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"s\","
                        "\"id\":%u,\"ts\":%.3f,\"pid\":%d,\"tid\":%d}",
                        escape(e.name).c_str(), e.flow,
                        static_cast<double>(e.ts_ns) / 1e3, pid, e.tid));
          break;
        case TraceRing::kFlowFinish:
          // "bp":"e" binds to the enclosing slice (the recv span) instead of
          // the next slice to start.
          append(format("{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"f\","
                        "\"bp\":\"e\",\"id\":%u,\"ts\":%.3f,\"pid\":%d,"
                        "\"tid\":%d}",
                        escape(e.name).c_str(), e.flow,
                        static_cast<double>(e.ts_ns) / 1e3, pid, e.tid));
          break;
        default:
          append(format("{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                        "\"pid\":%d,\"tid\":%d}",
                        escape(e.name).c_str(), static_cast<double>(e.ts_ns) / 1e3,
                        static_cast<double>(e.dur_ns) / 1e3, pid, e.tid));
          break;
      }
    }
  }
  out += "]";
  if (!meta_.empty()) {
    out += ",\"otherData\":{";
    bool first_meta = true;
    for (const auto& [key, value] : meta_) {
      if (!first_meta) out += ",";
      first_meta = false;
      out += format("\"%s\":\"%s\"", escape(key).c_str(), escape(value).c_str());
    }
    out += "}";
  }
  out += "}";
  return out;
}

Status TraceSink::write_file(const std::string& path) const {
  return write_string(path, chrome_json());
}

std::uint64_t TraceSink::count_kind(std::uint8_t kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [pid, ring] : rings_)
    for (std::size_t i = 0; i < ring->size(); ++i)
      if (ring->event(i).kind == kind) ++total;
  return total;
}

std::uint64_t TraceSink::total_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [pid, ring] : rings_) total += ring->size();
  return total;
}

std::uint64_t TraceSink::total_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [pid, ring] : rings_) total += ring->dropped();
  return total;
}

std::uint64_t TraceSink::total_flow_starts() const {
  return count_kind(TraceRing::kFlowStart);
}

std::uint64_t TraceSink::total_flow_finishes() const {
  return count_kind(TraceRing::kFlowFinish);
}

#else

Status TraceSink::write_file(const std::string& path) const {
  return write_string(path, chrome_json());
}

#endif  // MM_OBS_ENABLED

}  // namespace mm::obs
