#include "stats/cluster.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace mm::stats {
namespace {

// Union-find with path compression.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

Clustering densify(const std::vector<std::size_t>& roots) {
  Clustering out;
  out.assignment.resize(roots.size());
  std::vector<std::size_t> seen;
  for (std::size_t i = 0; i < roots.size(); ++i) {
    const auto it = std::find(seen.begin(), seen.end(), roots[i]);
    if (it == seen.end()) {
      out.assignment[i] = static_cast<int>(seen.size());
      seen.push_back(roots[i]);
    } else {
      out.assignment[i] = static_cast<int>(it - seen.begin());
    }
  }
  out.cluster_count = static_cast<int>(seen.size());
  return out;
}

}  // namespace

std::vector<std::vector<std::uint32_t>> Clustering::groups() const {
  std::vector<std::vector<std::uint32_t>> out(static_cast<std::size_t>(cluster_count));
  for (std::size_t i = 0; i < assignment.size(); ++i)
    out[static_cast<std::size_t>(assignment[i])].push_back(
        static_cast<std::uint32_t>(i));
  return out;
}

Clustering threshold_clusters(const SymMatrix& correlation, double threshold) {
  const std::size_t n = correlation.size();
  MM_ASSERT_MSG(n >= 1, "empty matrix");
  DisjointSets sets(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (correlation(i, j) >= threshold) sets.unite(i, j);

  std::vector<std::size_t> roots(n);
  for (std::size_t i = 0; i < n; ++i) roots[i] = sets.find(i);
  return densify(roots);
}

Clustering single_linkage_clusters(const SymMatrix& correlation, int target_clusters) {
  const std::size_t n = correlation.size();
  MM_ASSERT_MSG(n >= 1, "empty matrix");
  MM_ASSERT_MSG(target_clusters >= 1 && target_clusters <= static_cast<int>(n),
                "target cluster count out of range");

  // Single linkage == Kruskal on edges sorted by descending correlation,
  // stopping when the component count reaches the target.
  struct Link {
    double corr;
    std::uint32_t i, j;
  };
  std::vector<Link> links;
  links.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      links.push_back({correlation(i, j), static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(j)});
  std::stable_sort(links.begin(), links.end(),
                   [](const Link& a, const Link& b) { return a.corr > b.corr; });

  DisjointSets sets(n);
  int components = static_cast<int>(n);
  for (const auto& link : links) {
    if (components <= target_clusters) break;
    if (sets.find(link.i) != sets.find(link.j)) {
      sets.unite(link.i, link.j);
      --components;
    }
  }

  std::vector<std::size_t> roots(n);
  for (std::size_t i = 0; i < n; ++i) roots[i] = sets.find(i);
  return densify(roots);
}

double rand_index(const std::vector<int>& a, const std::vector<int>& b) {
  MM_ASSERT_MSG(a.size() == b.size(), "rand_index: partition size mismatch");
  MM_ASSERT_MSG(a.size() >= 2, "rand_index needs >= 2 elements");
  std::int64_t agree = 0, total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      const bool same_a = a[i] == a[j];
      const bool same_b = b[i] == b[j];
      if (same_a == same_b) ++agree;
      ++total;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace mm::stats
