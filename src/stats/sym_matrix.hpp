// Symmetric matrix with packed upper-triangular storage.
//
// Correlation matrices for n symbols need n(n+1)/2 doubles, not n²; for the
// paper's 8000-stock aspiration that is the difference between 256 MB and
// 512 MB per snapshot. Diagonal defaults to 1 (correlation convention is the
// caller's responsibility via fill_diagonal / set).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace mm::stats {

class SymMatrix {
 public:
  SymMatrix() = default;
  explicit SymMatrix(std::size_t n, double fill = 0.0)
      : n_(n), data_(n * (n + 1) / 2, fill) {}

  std::size_t size() const { return n_; }

  double operator()(std::size_t i, std::size_t j) const { return data_[index(i, j)]; }

  void set(std::size_t i, std::size_t j, double value) { data_[index(i, j)] = value; }

  void fill_diagonal(double value) {
    for (std::size_t i = 0; i < n_; ++i) set(i, i, value);
  }

  // Packed element count and raw access (for message transport).
  std::size_t packed_size() const { return data_.size(); }
  const std::vector<double>& packed() const { return data_; }
  std::vector<double>& packed() { return data_; }

  static SymMatrix from_packed(std::size_t n, std::vector<double> packed) {
    SymMatrix m;
    m.n_ = n;
    MM_ASSERT_MSG(packed.size() == n * (n + 1) / 2, "packed size mismatch");
    m.data_ = std::move(packed);
    return m;
  }

  // Max |a(i,j) - b(i,j)|, for tests.
  static double max_abs_diff(const SymMatrix& a, const SymMatrix& b) {
    MM_ASSERT(a.n_ == b.n_);
    double worst = 0.0;
    for (std::size_t k = 0; k < a.data_.size(); ++k) {
      const double d = a.data_[k] > b.data_[k] ? a.data_[k] - b.data_[k]
                                               : b.data_[k] - a.data_[k];
      if (d > worst) worst = d;
    }
    return worst;
  }

 private:
  std::size_t index(std::size_t i, std::size_t j) const {
    MM_ASSERT(i < n_ && j < n_);
    if (i > j) std::swap(i, j);
    // Row-major upper triangle: row i starts at i*n - i(i-1)/2 - ... use
    // standard formula: idx = i*(2n - i - 1)/2 + j.
    return i * (2 * n_ - i - 1) / 2 + j;
  }

  std::size_t n_ = 0;
  std::vector<double> data_;
};

// Flat list of the n(n-1)/2 unordered pairs (i < j), in the canonical order
// used to shard work across the parallel correlation workers.
struct PairIndex {
  std::uint32_t i;
  std::uint32_t j;
};

inline std::vector<PairIndex> all_pairs(std::size_t n) {
  std::vector<PairIndex> out;
  out.reserve(n * (n - 1) / 2);
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t j = i + 1; j < n; ++j) out.push_back({i, j});
  return out;
}

// Canonical slot of the unordered pair (i < j) in all_pairs(n) order —
// row-major upper triangle without the diagonal. O(1); lets engines keep
// per-pair state in a flat array without materializing the pair list.
inline std::size_t pair_slot(std::size_t n, std::size_t i, std::size_t j) {
  MM_ASSERT(i < j && j < n);
  return i * (2 * n - i - 1) / 2 + (j - i - 1);
}

}  // namespace mm::stats
