// Microbenchmarks for the mpmini message-passing substrate.
//
// Two families:
//
//   BM_Transport*     — the intra-process transport hot path over persistent
//                       worlds: per-message cost, blocking round-trip
//                       percentiles, saturation throughput and allocation
//                       counts, for the lock-free ring path, the locked
//                       fallback, and a faithful replica of the pre-ring
//                       heap-and-lock mailbox (the "before" side of the
//                       before/after comparison). `bench_json` emits exactly
//                       this family into BENCH_mpmini.json.
//   everything else   — macro benchmarks over Environment::run (world spawn,
//                       collectives), which measure coordination rather than
//                       transport cost.
//
// Interpreting the numbers on a single-core host (the CI container): blocking
// round trips are floored by two scheduler handoffs (see
// BM_TransportNullHandoff, ~1.2 us on the reference container), which no
// transport can remove; the transport-attributable overhead is the round trip
// minus that floor, plus the allocs_per_msg counter, where the ring path's
// advantage (zero allocations, no mutex, no futex wake per message) shows
// directly.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mpmini/collectives.hpp"
#include "mpmini/environment.hpp"

// Process-wide allocation counter: the transport benchmarks report
// allocs_per_msg from deltas around the hot loop (the zero-allocation claim
// for the ring path is also enforced by tests/test_transport.cpp).
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace mm::mpi;
using clk = std::chrono::steady_clock;

// --- legacy baseline ---------------------------------------------------------
// Faithful replica of the pre-ring mailbox transport: one mutex around a
// std::deque of messages and a std::list of shared_ptr receive tickets, a
// condition-variable notify on every delivery, and a heap-allocated ticket
// per receive. Kept here, not in the library, so the before/after comparison
// in BENCH_mpmini.json is measured rather than remembered.
namespace legacy {

struct Ticket {
  std::uint64_t comm_id = 0;
  int source = any_source;
  int tag = any_tag;
  bool done = false;
  Message message;
};

class Mailbox {
 public:
  void deliver(Message msg) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (!(*it)->done && matches(**it, msg)) {
        (*it)->message = std::move(msg);
        (*it)->done = true;
        pending_.erase(it);
        lock.unlock();
        cv_.notify_all();
        return;
      }
    }
    queue_.push_back(std::move(msg));
    lock.unlock();
    cv_.notify_all();
  }

  std::shared_ptr<Ticket> post_recv(std::uint64_t comm_id, int source, int tag) {
    auto ticket = std::make_shared<Ticket>();
    ticket->comm_id = comm_id;
    ticket->source = source;
    ticket->tag = tag;
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*ticket, *it)) {
        ticket->message = std::move(*it);
        ticket->done = true;
        queue_.erase(it);
        return ticket;
      }
    }
    pending_.push_back(ticket);
    return ticket;
  }

  Message wait(const std::shared_ptr<Ticket>& ticket) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return ticket->done; });
    return std::move(ticket->message);
  }

  Message recv(std::uint64_t comm_id, int source, int tag) {
    return wait(post_recv(comm_id, source, tag));
  }

 private:
  static bool matches(const Ticket& t, const Message& m) {
    return t.comm_id == m.comm_id &&
           (t.source == any_source || t.source == m.source) &&
           (t.tag == any_tag || t.tag == m.tag);
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::list<std::shared_ptr<Ticket>> pending_;
};

Message make_message(int source, int tag, std::vector<std::uint8_t> payload) {
  Message m;
  m.source = source;
  m.tag = tag;
  m.comm_id = 1;
  m.payload = std::move(payload);
  return m;
}

}  // namespace legacy

// Percentile over a sample vector (ns); sorts a copy.
void report_percentiles(benchmark::State& state, std::vector<double>& samples) {
  if (samples.empty()) return;
  std::sort(samples.begin(), samples.end());
  const auto pct = [&](double p) {
    const auto idx = static_cast<std::size_t>(p / 100.0 *
                                              static_cast<double>(samples.size() - 1));
    return samples[idx];
  };
  state.counters["p50_ns"] = pct(50);
  state.counters["p95_ns"] = pct(95);
  state.counters["p99_ns"] = pct(99);
}

// --- transport: single-thread self-loop (pure per-message cost) --------------
// One rank sends to itself and receives back, recycling the payload buffer:
// no scheduler involvement, so this is the per-message transport overhead in
// isolation (envelope handling, matching, synchronization, allocation).

void BM_TransportSelfLoop(benchmark::State& state, TransportMode mode) {
  World world(1, mode);
  Comm comm(&world, world.allocate_comm_id(), 0, {0});
  std::vector<std::uint8_t> payload(8, 0x5a);
  for (int i = 0; i < 512; ++i) {  // warm lanes, pool, buffer capacity
    comm.send(0, 1, std::move(payload));
    payload = comm.recv(0, 1);
  }
  const std::uint64_t a0 = g_alloc_count.load();
  for (auto _ : state) {
    comm.send(0, 1, std::move(payload));
    payload = comm.recv(0, 1);
  }
  const std::uint64_t a1 = g_alloc_count.load();
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs_per_msg"] =
      static_cast<double>(a1 - a0) / static_cast<double>(state.iterations());
}

void BM_TransportSelfLoopLegacy(benchmark::State& state) {
  legacy::Mailbox box;
  std::vector<std::uint8_t> payload(8, 0x5a);
  for (int i = 0; i < 512; ++i) {
    box.deliver(legacy::make_message(0, 1, std::move(payload)));
    payload = box.recv(1, 0, 1).payload;
  }
  const std::uint64_t a0 = g_alloc_count.load();
  for (auto _ : state) {
    box.deliver(legacy::make_message(0, 1, std::move(payload)));
    payload = box.recv(1, 0, 1).payload;
  }
  const std::uint64_t a1 = g_alloc_count.load();
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs_per_msg"] =
      static_cast<double>(a1 - a0) / static_cast<double>(state.iterations());
}

BENCHMARK_CAPTURE(BM_TransportSelfLoop, ring, TransportMode::ring)
    ->Iterations(100000);
BENCHMARK_CAPTURE(BM_TransportSelfLoop, locked, TransportMode::locked)
    ->Iterations(100000);
BENCHMARK(BM_TransportSelfLoopLegacy)->Iterations(100000);

// --- transport: blocking pingpong over a persistent world --------------------
// Real two-thread round trips with both sides blocking, the regime a DAG
// worker waiting on its upstream lives in. Reports p50/p95/p99 round-trip
// latency and allocations per round trip. Compare against the null-handoff
// floor below: everything above the floor is transport overhead.

constexpr int kPingPongIters = 20000;

void run_pingpong(benchmark::State& state, const std::function<void()>& once) {
  std::vector<double> samples;
  samples.reserve(kPingPongIters);
  const std::uint64_t a0 = g_alloc_count.load();
  for (auto _ : state) {
    const auto t0 = clk::now();
    once();
    samples.push_back(
        std::chrono::duration<double, std::nano>(clk::now() - t0).count());
  }
  const std::uint64_t a1 = g_alloc_count.load();
  state.SetItemsProcessed(state.iterations());
  // The samples vector was pre-sized; the delta is transport traffic only.
  state.counters["allocs_per_rt"] =
      static_cast<double>(a1 - a0) / static_cast<double>(state.iterations());
  report_percentiles(state, samples);
}

void BM_TransportPingPong(benchmark::State& state, TransportMode mode) {
  World world(2, mode);
  const std::uint64_t comm_id = world.allocate_comm_id();
  std::thread echo([&] {
    Comm comm(&world, comm_id, 1, {0, 1});
    for (;;) {
      RecvStatus st;
      auto buf = comm.recv(0, any_tag, &st);
      if (st.tag == 99) break;
      comm.send(0, 2, std::move(buf));
    }
  });
  Comm comm(&world, comm_id, 0, {0, 1});
  std::vector<std::uint8_t> payload(8, 0x5a);
  for (int i = 0; i < 512; ++i) {
    comm.send(1, 1, std::move(payload));
    payload = comm.recv(1, 2);
  }
  run_pingpong(state, [&] {
    comm.send(1, 1, std::move(payload));
    payload = comm.recv(1, 2);
  });
  comm.send(1, 99, {});
  echo.join();
}

void BM_TransportPingPongLegacy(benchmark::State& state) {
  legacy::Mailbox box0;
  legacy::Mailbox box1;
  std::thread echo([&] {
    for (;;) {
      Message m = box1.recv(1, 0, any_tag);
      if (m.tag == 99) break;
      box0.deliver(legacy::make_message(1, 2, std::move(m.payload)));
    }
  });
  std::vector<std::uint8_t> payload(8, 0x5a);
  for (int i = 0; i < 512; ++i) {
    box1.deliver(legacy::make_message(0, 1, std::move(payload)));
    payload = box0.recv(1, 1, 2).payload;
  }
  run_pingpong(state, [&] {
    box1.deliver(legacy::make_message(0, 1, std::move(payload)));
    payload = box0.recv(1, 1, 2).payload;
  });
  box1.deliver(legacy::make_message(0, 99, {}));
  echo.join();
}

BENCHMARK_CAPTURE(BM_TransportPingPong, ring, TransportMode::ring)
    ->Iterations(kPingPongIters)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_TransportPingPong, locked, TransportMode::locked)
    ->Iterations(kPingPongIters)
    ->UseRealTime();
BENCHMARK(BM_TransportPingPongLegacy)->Iterations(kPingPongIters)->UseRealTime();

// --- transport: the scheduler floor ------------------------------------------
// Two threads bounce one atomic token with a yield loop — no transport at
// all. On a single-core host this is the minimum any blocking round trip
// costs; subtract it from the pingpong numbers to get transport overhead.

void BM_TransportNullHandoff(benchmark::State& state) {
  std::atomic<int> token{0};
  std::atomic<bool> stop{false};
  std::thread peer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (token.load(std::memory_order_acquire) == 1)
        token.store(0, std::memory_order_release);
      else
        std::this_thread::yield();
    }
  });
  for (auto _ : state) {
    token.store(1, std::memory_order_release);
    while (token.load(std::memory_order_acquire) != 0) std::this_thread::yield();
  }
  stop.store(true);
  peer.join();
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_TransportNullHandoff)->Iterations(kPingPongIters)->UseRealTime();

// --- transport: saturation streaming -----------------------------------------
// One-way flow of empty messages with the receiver draining concurrently,
// measured to full delivery (receiver acks the batch). Sender-side
// backpressure (ring full -> locked fallback) is part of the measurement;
// items_per_second is the end-to-end saturation rate.

constexpr int kStreamBatch = 8192;

void BM_TransportStream(benchmark::State& state, TransportMode mode) {
  World world(2, mode);
  const std::uint64_t comm_id = world.allocate_comm_id();
  std::thread sink([&] {
    Comm comm(&world, comm_id, 1, {0, 1});
    for (;;) {
      RecvStatus st;
      (void)comm.recv(0, any_tag, &st);
      if (st.tag == 99) break;
      for (int i = 1; i < kStreamBatch; ++i) (void)comm.recv(0, 1);
      comm.send(0, 2, {});  // batch fully delivered
    }
  });
  Comm comm(&world, comm_id, 0, {0, 1});
  const std::uint64_t a0 = g_alloc_count.load();
  for (auto _ : state) {
    for (int i = 0; i < kStreamBatch; ++i) comm.send(1, 1, {});
    (void)comm.recv(1, 2);
  }
  const std::uint64_t a1 = g_alloc_count.load();
  comm.send(1, 99, {});
  sink.join();
  const auto msgs = state.iterations() * kStreamBatch;
  state.SetItemsProcessed(msgs);
  state.counters["allocs_per_msg"] =
      static_cast<double>(a1 - a0) / static_cast<double>(msgs);
}

void BM_TransportStreamLegacy(benchmark::State& state) {
  legacy::Mailbox box0;
  legacy::Mailbox box1;
  std::thread sink([&] {
    for (;;) {
      Message m = box1.recv(1, 0, any_tag);
      if (m.tag == 99) break;
      for (int i = 1; i < kStreamBatch; ++i) (void)box1.recv(1, 0, 1);
      box0.deliver(legacy::make_message(1, 2, {}));
    }
  });
  const std::uint64_t a0 = g_alloc_count.load();
  for (auto _ : state) {
    for (int i = 0; i < kStreamBatch; ++i)
      box1.deliver(legacy::make_message(0, 1, {}));
    (void)box0.recv(1, 1, 2);
  }
  const std::uint64_t a1 = g_alloc_count.load();
  box1.deliver(legacy::make_message(0, 99, {}));
  sink.join();
  const auto msgs = state.iterations() * kStreamBatch;
  state.SetItemsProcessed(msgs);
  state.counters["allocs_per_msg"] =
      static_cast<double>(a1 - a0) / static_cast<double>(msgs);
}

BENCHMARK_CAPTURE(BM_TransportStream, ring, TransportMode::ring)
    ->Iterations(40)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_TransportStream, locked, TransportMode::locked)
    ->Iterations(40)
    ->UseRealTime();
BENCHMARK(BM_TransportStreamLegacy)->Iterations(40)->UseRealTime();

// --- macro benchmarks over Environment::run ----------------------------------

void BM_PingPong(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  std::int64_t round_trips = 0;
  for (auto _ : state) {
    state.PauseTiming();
    constexpr int rounds = 64;
    state.ResumeTiming();
    Environment::run(2, [&](Comm& comm) {
      std::vector<std::uint8_t> payload(payload_size, 0x5a);
      for (int i = 0; i < rounds; ++i) {
        if (comm.rank() == 0) {
          comm.send(1, 1, payload);
          (void)comm.recv(1, 2);
        } else {
          (void)comm.recv(0, 1);
          comm.send(0, 2, payload);
        }
      }
    });
    round_trips += rounds;
  }
  state.SetItemsProcessed(round_trips);
  state.SetBytesProcessed(round_trips * 2 * static_cast<std::int64_t>(payload_size));
}
BENCHMARK(BM_PingPong)->Arg(8)->Arg(1024)->Arg(64 * 1024);

void BM_SendThroughput(benchmark::State& state) {
  const auto messages = 4096;
  for (auto _ : state) {
    Environment::run(2, [&](Comm& comm) {
      if (comm.rank() == 0) {
        for (int i = 0; i < messages; ++i) comm.send_value<int>(1, 1, i);
      } else {
        for (int i = 0; i < messages; ++i) (void)comm.recv(0, 1);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_SendThroughput);

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  constexpr int rounds = 128;
  for (auto _ : state) {
    Environment::run(ranks, [&](Comm& comm) {
      for (int i = 0; i < rounds; ++i) comm.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8);

void BM_BcastVector(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto doubles = static_cast<std::size_t>(state.range(1));
  constexpr int rounds = 32;
  for (auto _ : state) {
    Environment::run(ranks, [&](Comm& comm) {
      std::vector<double> data(doubles, 1.0);
      for (int i = 0; i < rounds; ++i)
        benchmark::DoNotOptimize(bcast_vector(comm, data, 0));
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
  state.SetBytesProcessed(state.iterations() * rounds *
                          static_cast<std::int64_t>(doubles * sizeof(double)));
}
BENCHMARK(BM_BcastVector)->Args({4, 64})->Args({4, 4096})->Args({8, 4096});

void BM_AllreduceSum(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  constexpr int rounds = 64;
  for (auto _ : state) {
    Environment::run(ranks, [&](Comm& comm) {
      for (int i = 0; i < rounds; ++i)
        benchmark::DoNotOptimize(
            allreduce_value(comm, static_cast<double>(comm.rank()), Sum{}));
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_AllreduceSum)->Arg(2)->Arg(4)->Arg(8);

void BM_EnvironmentSpawn(benchmark::State& state) {
  // Cost of standing up and tearing down a world (thread spawn + join).
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Environment::run(ranks, [](Comm&) {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnvironmentSpawn)->Arg(2)->Arg(8)->Arg(16);

}  // namespace
