// Tests for the Spearman and Kendall rank correlation extensions.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/pearson.hpp"
#include "stats/rank_corr.hpp"

namespace mm::stats {
namespace {

TEST(AverageRanks, SimpleAndTied) {
  const double x[] = {30.0, 10.0, 20.0};
  const auto r = average_ranks(x, 3);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);

  const double tied[] = {5.0, 1.0, 5.0, 9.0};
  const auto rt = average_ranks(tied, 4);
  EXPECT_DOUBLE_EQ(rt[0], 2.5);  // ranks 2 and 3 shared
  EXPECT_DOUBLE_EQ(rt[1], 1.0);
  EXPECT_DOUBLE_EQ(rt[2], 2.5);
  EXPECT_DOUBLE_EQ(rt[3], 4.0);
}

TEST(Spearman, PerfectMonotone) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {10, 100, 1000, 10000, 100000};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  const std::vector<double> ny = {5, 4, 3, 2, 1};
  EXPECT_NEAR(spearman(x, ny), -1.0, 1e-12);
}

TEST(Spearman, InvariantUnderMonotoneTransforms) {
  mm::Rng rng(1);
  std::vector<double> x(300), y(300), ey(300);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double f = rng.normal();
    x[i] = f + rng.normal();
    y[i] = f + rng.normal();
    ey[i] = std::exp(y[i]);  // strictly monotone transform
  }
  EXPECT_NEAR(spearman(x, y), spearman(x, ey), 1e-12);
  // Pearson, by contrast, is NOT invariant.
  EXPECT_GT(std::abs(pearson(x, y) - pearson(x, ey)), 1e-3);
}

TEST(Spearman, RobustToSingleOutlier) {
  mm::Rng rng(2);
  std::vector<double> x(100), y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    const double f = rng.normal();
    x[i] = 2.0 * f + rng.normal();
    y[i] = 2.0 * f + rng.normal();
  }
  const double clean = spearman(x, y);
  EXPECT_GT(clean, 0.7);
  x[7] = 1e6;
  y[7] = -1e6;
  // One point can move a rank statistic by at most O(1/n).
  EXPECT_NEAR(spearman(x, y), clean, 0.08);
}

TEST(Kendall, KnownSmallExample) {
  // x = 1..4, y = {1, 3, 2, 4}: 5 concordant, 1 discordant -> tau = 4/6.
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {1, 3, 2, 4};
  EXPECT_NEAR(kendall_tau(x, y), 4.0 / 6.0, 1e-12);
}

TEST(Kendall, PerfectAndReversed) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 8, 16, 32};
  EXPECT_NEAR(kendall_tau(x, y), 1.0, 1e-12);
  const std::vector<double> r = {5, 4, 3, 2, 1};
  EXPECT_NEAR(kendall_tau(x, r), -1.0, 1e-12);
}

TEST(Kendall, TieCorrection) {
  // With ties in x, tau-b uses the tie-corrected denominator and stays in
  // [-1, 1].
  const std::vector<double> x = {1, 1, 2, 3};
  const std::vector<double> y = {1, 2, 3, 4};
  const double tau = kendall_tau(x, y);
  EXPECT_GT(tau, 0.8);
  EXPECT_LE(tau, 1.0);
}

TEST(Kendall, IndependentNearZero) {
  mm::Rng rng(3);
  std::vector<double> x(500), y(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_NEAR(kendall_tau(x, y), 0.0, 0.08);
}

TEST(Kendall, GaussianRelationToPearson) {
  // For bivariate normals, tau ~= (2/pi) asin(rho).
  mm::Rng rng(4);
  const double a = 1.0;  // target rho = 0.5
  std::vector<double> x(4000), y(4000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double f = rng.normal();
    x[i] = a * f + rng.normal();
    y[i] = a * f + rng.normal();
  }
  const double expected = 2.0 / M_PI * std::asin(0.5);
  EXPECT_NEAR(kendall_tau(x, y), expected, 0.03);
}

TEST(Spearman, GaussianRelationToPearson) {
  // For bivariate normals, rho_s ~= (6/pi) asin(rho/2).
  mm::Rng rng(5);
  std::vector<double> x(8000), y(8000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double f = rng.normal();
    x[i] = f + rng.normal();
    y[i] = f + rng.normal();
  }
  const double expected = 6.0 / M_PI * std::asin(0.25);
  EXPECT_NEAR(spearman(x, y), expected, 0.03);
}

TEST(RankCorr, DegenerateInputsGiveZero) {
  const std::vector<double> c = {2, 2, 2, 2};
  const std::vector<double> x = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(spearman(c, x), 0.0);
  EXPECT_DOUBLE_EQ(kendall_tau(c, x), 0.0);
}

}  // namespace
}  // namespace mm::stats
