#include "marketdata/tickdb.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/strings.hpp"
#include "marketdata/taq.hpp"

namespace fs = std::filesystem;

namespace mm::md {
namespace {

// Sidecar time index: for each `bucket_ms` bucket since midnight, the index
// of the first quote at or after the bucket's start. Lets range reads seek.
struct IndexHeader {
  char magic[8] = {'M', 'M', 'Q', 'I', 'D', 'X', '0', '1'};
  std::int64_t bucket_ms = 60'000;
  std::uint64_t bucket_count = 0;
};

Status write_time_index(const std::string& path, const std::vector<Quote>& quotes) {
  IndexHeader header;
  const TimeMs last = quotes.empty() ? 0 : quotes.back().ts_ms;
  header.bucket_count = static_cast<std::uint64_t>(last / header.bucket_ms) + 1;

  std::vector<std::uint64_t> first_at(header.bucket_count, quotes.size());
  for (std::size_t k = quotes.size(); k-- > 0;) {
    const auto bucket = static_cast<std::size_t>(quotes[k].ts_ms / header.bucket_ms);
    first_at[bucket] = k;
  }
  // Buckets with no quotes point at the next bucket's first record.
  for (std::size_t b = first_at.size(); b-- > 1;)
    if (first_at[b - 1] == quotes.size()) first_at[b - 1] = first_at[b];
  // (A trailing empty region keeps quotes.size(), i.e. "end".)
  for (std::size_t b = first_at.size(); b-- > 1;)
    first_at[b - 1] = std::min(first_at[b - 1], first_at[b]);

  std::ofstream out(path, std::ios::binary);
  if (!out) return Error(Errc::io_error, "cannot write index: " + path);
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(first_at.data()),
            static_cast<std::streamsize>(first_at.size() * sizeof(std::uint64_t)));
  out.flush();
  if (!out) return Error(Errc::io_error, "index write failed: " + path);
  return {};
}

// Returns the record index to start scanning from for timestamps >= from,
// or 0 when the index is missing/unusable.
std::size_t index_seek(const std::string& path, TimeMs from, std::size_t record_count) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  IndexHeader header;
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || std::memcmp(header.magic, "MMQIDX01", 8) != 0 || header.bucket_ms <= 0)
    return 0;
  if (from < 0) return 0;
  const auto bucket = static_cast<std::uint64_t>(from / header.bucket_ms);
  if (bucket >= header.bucket_count) return record_count;  // past the last quote
  in.seekg(static_cast<std::streamoff>(sizeof(header) +
                                       bucket * sizeof(std::uint64_t)));
  std::uint64_t first = 0;
  in.read(reinterpret_cast<char*>(&first), sizeof(first));
  if (!in || first > record_count) return 0;
  return static_cast<std::size_t>(first);
}

}  // namespace

Expected<TickDb> TickDb::open(const std::string& root) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) return Error(Errc::io_error, "cannot create tickdb root: " + root);
  if (!fs::is_directory(root))
    return Error(Errc::io_error, "tickdb root is not a directory: " + root);
  return TickDb(root);
}

std::string TickDb::day_dir(const Date& date) const { return root_ + "/" + date.iso(); }

Status TickDb::put_symbols(const SymbolTable& symbols) {
  std::ofstream out(root_ + "/symbols.txt");
  if (!out) return Error(Errc::io_error, "cannot write symbols.txt");
  for (const auto& name : symbols.names()) out << name << '\n';
  out.flush();
  if (!out) return Error(Errc::io_error, "write failed: symbols.txt");
  return {};
}

Expected<SymbolTable> TickDb::get_symbols() const {
  std::ifstream in(root_ + "/symbols.txt");
  if (!in) return Error(Errc::not_found, "no symbols.txt in " + root_);
  SymbolTable table;
  std::string line;
  while (std::getline(in, line)) {
    const auto t = trim(line);
    if (!t.empty()) table.intern(std::string(t));
  }
  return table;
}

Status TickDb::write_day(const Date& date, const std::vector<Quote>& quotes) {
  MM_ASSERT_MSG(std::is_sorted(quotes.begin(), quotes.end(),
                               [](const Quote& a, const Quote& b) {
                                 return a.ts_ms < b.ts_ms;
                               }),
                "tickdb: quotes must be time-sorted");
  std::error_code ec;
  fs::create_directories(day_dir(date), ec);
  if (ec) return Error(Errc::io_error, "cannot create day dir: " + day_dir(date));
  if (auto st = write_quotes_binary(day_dir(date) + "/quotes.bin", quotes); !st)
    return st;
  return write_time_index(day_dir(date) + "/quotes.idx", quotes);
}

bool TickDb::has_index(const Date& date) const {
  return fs::exists(day_dir(date) + "/quotes.idx");
}

Expected<std::vector<Quote>> TickDb::read_day(const Date& date) const {
  return read_quotes_binary(day_dir(date) + "/quotes.bin");
}

Status TickDb::write_trades(const Date& date, const std::vector<Trade>& trades) {
  MM_ASSERT_MSG(std::is_sorted(trades.begin(), trades.end(),
                               [](const Trade& a, const Trade& b) {
                                 return a.ts_ms < b.ts_ms;
                               }),
                "tickdb: trades must be time-sorted");
  std::error_code ec;
  fs::create_directories(day_dir(date), ec);
  if (ec) return Error(Errc::io_error, "cannot create day dir: " + day_dir(date));
  return write_trades_binary(day_dir(date) + "/trades.bin", trades);
}

Expected<std::vector<Trade>> TickDb::read_trades(const Date& date) const {
  return read_trades_binary(day_dir(date) + "/trades.bin");
}

bool TickDb::has_trades(const Date& date) const {
  return fs::exists(day_dir(date) + "/trades.bin");
}

Expected<std::vector<Quote>> TickDb::read_range(const Date& date,
                                                const std::vector<SymbolId>& symbols,
                                                std::optional<TimeMs> from,
                                                std::optional<TimeMs> to) const {
  auto all = read_day(date);
  if (!all) return all.error();

  std::vector<bool> want;
  if (!symbols.empty()) {
    SymbolId max_id = 0;
    for (auto s : symbols) max_id = std::max(max_id, s);
    want.assign(max_id + 1, false);
    for (auto s : symbols) want[s] = true;
  }

  // Seek via the time index when a lower bound is given (falls back to a
  // full scan when the sidecar is missing).
  std::size_t start = 0;
  if (from)
    start = index_seek(day_dir(date) + "/quotes.idx", *from, all->size());

  std::vector<Quote> out;
  for (std::size_t k = start; k < all->size(); ++k) {
    const auto& q = (*all)[k];
    if (from && q.ts_ms < *from) continue;
    if (to && q.ts_ms >= *to) break;  // time-sorted: nothing later matches
    if (!want.empty() && (q.symbol >= want.size() || !want[q.symbol])) continue;
    out.push_back(q);
  }
  return out;
}

std::vector<Date> TickDb::days() const {
  std::vector<Date> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    // Expect YYYY-MM-DD.
    if (name.size() != 10 || name[4] != '-' || name[7] != '-') continue;
    auto year = parse_int(name.substr(0, 4));
    auto month = parse_int(name.substr(5, 2));
    auto day = parse_int(name.substr(8, 2));
    if (!year || !month || !day) continue;
    Date d{static_cast<int>(*year), static_cast<int>(*month), static_cast<int>(*day)};
    if (d.valid() && fs::exists(entry.path() / "quotes.bin")) out.push_back(d);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool TickDb::has_day(const Date& date) const {
  return fs::exists(day_dir(date) + "/quotes.bin");
}

}  // namespace mm::md
