// The §V experiment: brute-force backtest of all pairs under the full
// parameter grid, with correlation type as the treatment.
//
// For every trading day the synthetic market is generated, cleaned, sampled
// to ∆s BAM series, and the market-wide correlation series are computed once
// per distinct M (Approach 3's sharing). Every (pair, level, Ctype) strategy
// then replays the day. Results aggregate exactly as the paper does:
// per (pair, Ctype), average over the 14 factor levels of
//   * total cumulative monthly return (+1, as reported in Table III),
//   * maximum daily drawdown (Eq. 7, Table IV),
//   * win–loss ratio (Eq. 8, Table V),
// giving one sample per pair per treatment (1830 samples at full scale).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/backtester.hpp"
#include "core/params.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"
#include "marketdata/symbols.hpp"

namespace mm::core {

struct ExperimentConfig {
  // Universe size (2..61) and trading-day count. The paper's full scale is 61
  // symbols (1830 pairs) over the 20 business days of March 2008; the default
  // here is laptop-sized and `--full` benches override it.
  std::size_t symbols = 20;
  int days = 5;
  md::Date first_day{2008, 3, 3};
  // Offset into the deterministic day stream (day d of this experiment uses
  // generator stream first_day_index + d) — lets walk-forward studies slice
  // the same month a single run would produce.
  int first_day_index = 0;

  md::GeneratorConfig generator{};
  md::CleanerConfig cleaner{};
  stats::MaronnaConfig maronna{};
  // Warm-start each pair's Maronna estimate from the previous interval's
  // converged fixed point (stats::WarmMaronna): ~3×+ faster correlation
  // series at convergence-tolerance accuracy. Deterministic and independent
  // of the pair sharding, so serial and parallel runs still agree exactly.
  bool warm_maronna = true;
  ParamGrid grid{};

  // Ranks for the mpmini fan-out in run_experiment_parallel.
  int ranks = 4;

  // Retain the per-(Ctype, level, pair) measures in the result (used by the
  // parameter-set optimizer; costs |K| x pairs x 3 doubles x 3 measures).
  bool keep_level_detail = false;
};

// Per-(pair, treatment) level-averaged measures — the samples behind Tables
// III-V and Figure 2.
struct ExperimentResult {
  std::size_t symbols = 0;
  std::size_t pair_count = 0;
  int days = 0;
  std::vector<std::string> pair_names;

  // [ctype][pair] — r̄_p + 1 (Table III reports the +1 scale).
  std::array<std::vector<double>, 3> monthly_return_plus1;
  // [ctype][pair] — average (over levels) max daily drawdown, as a fraction.
  std::array<std::vector<double>, 3> max_daily_drawdown;
  // [ctype][pair] — average (over levels) win-loss ratio.
  std::array<std::vector<double>, 3> win_loss;

  // Per-level detail (empty unless ExperimentConfig::keep_level_detail):
  // [ctype][level][pair].
  std::array<std::vector<std::vector<double>>, 3> level_monthly_return_plus1;
  std::array<std::vector<std::vector<double>>, 3> level_max_daily_drawdown;
  std::array<std::vector<std::vector<double>>, 3> level_win_loss;

  std::uint64_t total_trades = 0;
  std::size_t quotes_processed = 0;
  std::size_t quotes_dropped = 0;
  double wall_seconds = 0.0;
};

// Serial runner (single rank).
ExperimentResult run_experiment(const ExperimentConfig& config);

// Pair-sharded parallel runner over `config.ranks` mpmini ranks: each rank
// generates the (identical, deterministic) day, computes correlation series
// only for its pair shard, runs the strategies and the results are gathered
// at rank 0. Output is identical to run_experiment.
ExperimentResult run_experiment_parallel(const ExperimentConfig& config);

}  // namespace mm::core
