// Equity curve: aggregate every pair's trades into one book and chart the
// intraday mark-to-market equity — the desk-level view of the strategy.
//
//   $ ./equity_curve [--symbols 20] [--ctype pearson] [--cash 1000000]
#include <algorithm>
#include <cstdio>

#include "common/cli.hpp"
#include "core/backtester.hpp"
#include "core/metrics.hpp"
#include "core/portfolio.hpp"
#include "marketdata/bars.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"

int main(int argc, char** argv) {
  using namespace mm;
  Cli cli("equity_curve", "Chart the aggregate intraday equity of the strategy");
  auto& symbols = cli.add_int("symbols", 20, "universe size (2..61)");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  auto& ctype_arg = cli.add_string("ctype", "pearson", "pearson|maronna|combined");
  auto& cash = cli.add_double("cash", 1e6, "initial capital");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(symbols);
  const auto ctype = stats::parse_ctype(ctype_arg);
  if (!ctype) {
    std::fprintf(stderr, "%s\n", ctype.error().message.c_str());
    return 2;
  }

  const auto universe = md::make_universe(n);
  md::GeneratorConfig gen;
  gen.seed = static_cast<std::uint64_t>(seed);
  const md::SyntheticDay day(universe, gen, 0);
  md::QuoteCleaner cleaner(n, md::CleanerConfig{});
  const auto bam = md::sample_bam_series(cleaner.clean(day.quotes()), n, gen.session, 30);

  core::StrategyParams params = core::ParamGrid::base();
  params.ctype = *ctype;
  params.divergence = 0.0005;
  const auto market = core::compute_market_corr_series(
      bam, params.corr_window, *ctype != stats::Ctype::pearson);
  const auto pairs = stats::all_pairs(n);

  std::vector<core::TaggedTrade> tagged;
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    for (const auto& t :
         core::run_pair_day(params, bam[pairs[k].i], bam[pairs[k].j], market, k))
      tagged.push_back({pairs[k], t});
  }
  if (tagged.empty()) {
    std::printf("no trades fired today — try another seed\n");
    return 0;
  }

  const auto curve = core::simulate_portfolio(tagged, bam, cash);

  double peak_gross = 0.0;
  double min_equity = curve[0].equity, max_equity = curve[0].equity;
  for (const auto& p : curve) {
    peak_gross = std::max(peak_gross, p.gross_exposure);
    min_equity = std::min(min_equity, p.equity);
    max_equity = std::max(max_equity, p.equity);
  }

  std::printf("intraday equity, %zu pairs, %s correlation, %zu trades\n\n",
              pairs.size(), stats::to_string(*ctype), tagged.size());
  std::printf("%s\n", core::render_equity_curve(curve).c_str());
  std::printf("start $%.2f  end $%.2f  (%+.3f%%)\n", cash, curve.back().equity,
              (curve.back().equity / cash - 1.0) * 100.0);
  std::printf("intraday range [$%.2f, $%.2f], peak gross exposure $%.2f "
              "(%.2f%% of capital)\n",
              min_equity, max_equity, peak_gross, 100.0 * peak_gross / cash);

  // Worst peak-to-valley on the curve (the day's realized drawdown).
  double peak = curve[0].equity, worst = 0.0;
  for (const auto& p : curve) {
    peak = std::max(peak, p.equity);
    worst = std::max(worst, peak - p.equity);
  }
  std::printf("worst intraday peak-to-valley: $%.2f (%.4f%% of capital)\n", worst,
              100.0 * worst / cash);
  return 0;
}
