// Core market-data value types.
//
// The pipeline's unit of input is the Quote — (timestamp, symbol, bid, ask,
// sizes) — matching the TAQ sample in Table II of the paper. Timestamps are
// milliseconds since midnight (exchange local time) plus a separate trading
// day index; the strategy only ever reasons within one day.
#pragma once

#include <cstdint>
#include <string>

namespace mm::md {

// Dense symbol identifier assigned by SymbolTable.
using SymbolId = std::uint32_t;
inline constexpr SymbolId invalid_symbol = 0xffffffffu;

// Milliseconds since midnight, exchange local time.
using TimeMs = std::int64_t;

inline constexpr TimeMs ms_per_second = 1000;
inline constexpr TimeMs ms_per_minute = 60 * ms_per_second;
inline constexpr TimeMs ms_per_hour = 60 * ms_per_minute;

// A single bid/ask quote tick. Trivially copyable by design: quotes are
// bulk-copied through mailboxes, files and the tick store.
struct Quote {
  TimeMs ts_ms = 0;
  SymbolId symbol = invalid_symbol;
  double bid = 0.0;
  double ask = 0.0;
  std::int32_t bid_size = 0;
  std::int32_t ask_size = 0;

  // Bid-ask midpoint — the paper's price proxy (§III): closer to the true
  // price level between trades than the last trade, especially for
  // infrequently traded names.
  double bam() const { return 0.5 * (bid + ask); }

  // Structurally valid: positive prices, uncrossed book.
  bool plausible() const {
    return bid > 0.0 && ask > 0.0 && bid <= ask && bid_size >= 0 && ask_size >= 0;
  }
};

// A trade print (used by the OHLC accumulator's trade path and tickdb).
// Field order keeps the struct tightly packed (24 bytes) for bulk storage.
struct Trade {
  TimeMs ts_ms = 0;
  double price = 0.0;
  SymbolId symbol = invalid_symbol;
  std::int32_t size = 0;
};

// One OHLC bar over a fixed interval. `volume` is the traded share count
// when built from trades, 0 when built from quotes.
struct Bar {
  TimeMs start_ms = 0;
  TimeMs end_ms = 0;
  SymbolId symbol = invalid_symbol;
  double open = 0.0;
  double high = 0.0;
  double low = 0.0;
  double close = 0.0;
  std::int64_t tick_count = 0;
  std::int64_t volume = 0;

  bool valid() const { return tick_count > 0 && low <= high; }
};

static_assert(sizeof(Quote) == 40, "Quote layout is part of the tickdb format");
static_assert(sizeof(Trade) == 24, "Trade layout is part of the tickdb format");

}  // namespace mm::md
