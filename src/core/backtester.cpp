#include "core/backtester.hpp"

#include "marketdata/bars.hpp"
#include "stats/windows.hpp"

namespace mm::core {

CorrSeries compute_pair_corr_series(const std::vector<double>& prices_i,
                                    const std::vector<double>& prices_j,
                                    stats::Ctype ctype, std::int64_t corr_window,
                                    const stats::MaronnaConfig& maronna_config) {
  MM_ASSERT_MSG(prices_i.size() == prices_j.size(), "price series length mismatch");
  const auto smax = static_cast<std::int64_t>(prices_i.size());
  const auto m = static_cast<std::size_t>(corr_window);
  MM_ASSERT_MSG(corr_window >= 2, "corr window must be >= 2");

  const auto ri = md::log_returns(prices_i);
  const auto rj = md::log_returns(prices_j);

  CorrSeries out;
  out.first_valid = corr_window;
  out.values.assign(static_cast<std::size_t>(smax), 0.0);
  // Returns r[t] correspond to interval t+1; the window of the last M returns
  // at interval s is r[s-M .. s-1] (indices into the return arrays).
  for (std::int64_t s = corr_window; s < smax; ++s) {
    const double* x = ri.data() + (s - corr_window);
    const double* y = rj.data() + (s - corr_window);
    out.values[static_cast<std::size_t>(s)] =
        stats::correlation(ctype, x, y, m, maronna_config);
  }
  return out;
}

double MarketCorrSeries::at(stats::Ctype ctype, std::size_t pair_index,
                            std::int64_t s) const {
  MM_ASSERT(pair_index < pearson.size());
  const auto si = static_cast<std::size_t>(s);
  switch (ctype) {
    case stats::Ctype::pearson:
      return pearson[pair_index][si];
    case stats::Ctype::maronna:
      MM_ASSERT_MSG(has_maronna, "Maronna series not computed");
      return maronna[pair_index][si];
    case stats::Ctype::combined:
      MM_ASSERT_MSG(has_maronna, "Combined needs the Maronna series");
      return stats::combine(pearson[pair_index][si], maronna[pair_index][si]);
  }
  MM_ASSERT_MSG(false, "unreachable Ctype");
  return 0.0;
}

MarketCorrSeries compute_market_corr_series(const std::vector<std::vector<double>>& bam,
                                            std::int64_t corr_window, bool need_maronna,
                                            const stats::MaronnaConfig& maronna_config,
                                            bool warm_maronna) {
  return compute_market_corr_series(bam, corr_window, need_maronna, maronna_config,
                                    stats::all_pairs(bam.size()), warm_maronna);
}

MarketCorrSeries compute_market_corr_series(const std::vector<std::vector<double>>& bam,
                                            std::int64_t corr_window, bool need_maronna,
                                            const stats::MaronnaConfig& maronna_config,
                                            const std::vector<stats::PairIndex>& pairs,
                                            bool warm_maronna) {
  const std::size_t n = bam.size();
  MM_ASSERT_MSG(n >= 2, "need at least two symbols");
  const auto smax = static_cast<std::int64_t>(bam[0].size());

  MarketCorrSeries out;
  out.first_valid = corr_window;
  out.smax = smax;
  out.symbols = n;
  out.has_maronna = need_maronna;
  out.pearson.assign(pairs.size(), std::vector<double>(static_cast<std::size_t>(smax), 0.0));
  if (need_maronna)
    out.maronna.assign(pairs.size(),
                       std::vector<double>(static_cast<std::size_t>(smax), 0.0));

  // Per-symbol return streams, pushed in lockstep.
  std::vector<std::vector<double>> returns(n);
  for (std::size_t i = 0; i < n; ++i) {
    MM_ASSERT_MSG(bam[i].size() == static_cast<std::size_t>(smax),
                  "ragged BAM matrix");
    returns[i] = md::log_returns(bam[i]);
  }

  stats::ReturnWindows windows(n, static_cast<std::size_t>(corr_window),
                               /*track_cross_sums=*/true);
  std::vector<double> step_returns(n);
  // Shared unwrap arena: each symbol's ring buffer is unwrapped once per
  // step (O(n·M)) and every pair reads contiguous views, instead of paying
  // a per-pair window copy (O(pairs·M)).
  const auto m = static_cast<std::size_t>(corr_window);
  std::vector<double> arena(need_maronna ? n * m : 0);
  stats::WarmMaronna warm(need_maronna && warm_maronna ? pairs.size() : 0,
                          maronna_config);
  // Per-symbol MAD-degeneracy flags, refreshed once per step (the warm
  // estimator trusts them instead of rescanning windows per pair).
  std::vector<unsigned char> mad_zero(warm_maronna ? n : 0, 0);

  for (std::int64_t s = 1; s < smax; ++s) {
    for (std::size_t i = 0; i < n; ++i)
      step_returns[i] = returns[i][static_cast<std::size_t>(s - 1)];
    windows.push(step_returns);
    warm.advance();
    if (!windows.ready() || s < corr_window) continue;

    if (need_maronna) {
      windows.unwrap_all(arena.data());
      if (warm_maronna)
        for (std::size_t i = 0; i < n; ++i)
          mad_zero[i] = stats::mad_is_zero(arena.data() + i * m, m) ? 1 : 0;
    }
    const auto si = static_cast<std::size_t>(s);
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      const auto [i, j] = pairs[k];
      out.pearson[k][si] = windows.pearson(i, j);
      if (need_maronna) {
        const double* x = arena.data() + i * m;
        const double* y = arena.data() + j * m;
        if (warm_maronna) {
          const bool degenerate = mad_zero[i] != 0 || mad_zero[j] != 0;
          out.maronna[k][si] = warm.estimate(k, x, y, m, degenerate);
        } else {
          out.maronna[k][si] = stats::maronna(x, y, m, maronna_config);
        }
      }
    }
  }
  return out;
}

namespace {

template <typename CorrLookup>
std::vector<Trade> run_day_impl(const StrategyParams& params,
                                const std::vector<double>& prices_i,
                                const std::vector<double>& prices_j,
                                std::int64_t first_valid, CorrLookup&& corr_at) {
  MM_ASSERT_MSG(prices_i.size() == prices_j.size(), "price series length mismatch");
  const auto smax = static_cast<std::int64_t>(prices_i.size());
  PairStrategy strategy(params, smax);
  for (std::int64_t s = 0; s < smax; ++s) {
    const bool valid = s >= first_valid;
    const double c = valid ? corr_at(s) : 0.0;
    strategy.step(s, prices_i[static_cast<std::size_t>(s)],
                  prices_j[static_cast<std::size_t>(s)], c, valid);
  }
  strategy.finish();
  return strategy.take_trades();
}

}  // namespace

std::vector<Trade> run_pair_day(const StrategyParams& params,
                                const std::vector<double>& prices_i,
                                const std::vector<double>& prices_j,
                                const CorrSeries& corr) {
  MM_ASSERT_MSG(corr.values.size() == prices_i.size(), "corr series length mismatch");
  return run_day_impl(params, prices_i, prices_j, corr.first_valid,
                      [&](std::int64_t s) { return corr.values[static_cast<std::size_t>(s)]; });
}

std::vector<Trade> run_pair_day(const StrategyParams& params,
                                const std::vector<double>& prices_i,
                                const std::vector<double>& prices_j,
                                const MarketCorrSeries& market, std::size_t pair_index) {
  return run_day_impl(params, prices_i, prices_j, market.first_valid,
                      [&](std::int64_t s) { return market.at(params.ctype, pair_index, s); });
}

}  // namespace mm::core
