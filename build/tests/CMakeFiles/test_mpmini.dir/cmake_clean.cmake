file(REMOVE_RECURSE
  "CMakeFiles/test_mpmini.dir/test_mpmini.cpp.o"
  "CMakeFiles/test_mpmini.dir/test_mpmini.cpp.o.d"
  "test_mpmini"
  "test_mpmini.pdb"
  "test_mpmini[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpmini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
