#include "svc/queue.hpp"

#include "common/strings.hpp"

namespace mm::svc {

bool JobQueue::push(std::shared_ptr<Job> job) {
  return try_push(std::move(job), 0).has_value();
}

Status JobQueue::try_push(std::shared_ptr<Job> job, std::size_t tenant_limit) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return Error(Errc::shutdown, "queue is shut down");
    Lane& lane = lanes_[job->spec.tenant];
    if (tenant_limit > 0 && lane.jobs.size() >= tenant_limit)
      return Error(Errc::capacity,
                   format("tenant %s has %zu jobs queued (limit %zu)",
                          job->spec.tenant.c_str(), lane.jobs.size(),
                          tenant_limit));
    lane.jobs.push_back(std::move(job));
    ++queued_;
  }
  ready_cv_.notify_one();
  return {};
}

std::shared_ptr<Job> JobQueue::take() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_cv_.wait(lock, [&] { return shutdown_ || queued_ > 0; });
  if (shutdown_) return nullptr;

  // Fair share: fewest running first, then least recently served. Lanes are
  // few (one per tenant), so a linear scan beats maintaining a heap.
  Lane* best = nullptr;
  for (auto& [tenant, lane] : lanes_) {
    (void)tenant;
    if (lane.jobs.empty()) continue;
    if (best == nullptr || lane.running < best->running ||
        (lane.running == best->running && lane.last_served < best->last_served))
      best = &lane;
  }
  MM_ASSERT(best != nullptr);
  std::shared_ptr<Job> job = std::move(best->jobs.front());
  best->jobs.pop_front();
  --queued_;
  ++best->running;
  best->last_served = ++serve_clock_;
  return job;
}

void JobQueue::finished(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = lanes_.find(tenant);
  MM_ASSERT(it != lanes_.end() && it->second.running > 0);
  --it->second.running;
}

bool JobQueue::remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [tenant, lane] : lanes_) {
    (void)tenant;
    for (auto it = lane.jobs.begin(); it != lane.jobs.end(); ++it) {
      if ((*it)->id != id) continue;
      lane.jobs.erase(it);
      --queued_;
      return true;
    }
  }
  return false;
}

void JobQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  ready_cv_.notify_all();
}

std::vector<std::shared_ptr<Job>> JobQueue::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<Job>> out;
  for (auto& [tenant, lane] : lanes_) {
    (void)tenant;
    for (auto& job : lane.jobs) out.push_back(std::move(job));
    lane.jobs.clear();
  }
  queued_ = 0;
  return out;
}

std::size_t JobQueue::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

}  // namespace mm::svc
