// Synthetic correlated tick data generator — the stand-in for NYSE TAQ data.
//
// The paper backtests on one month of TAQ quotes for 61 liquid stocks. TAQ is
// proprietary, so we synthesize quote streams that exhibit the features the
// MarketMiner pipeline and the pair strategy exist to handle:
//
//   * genuine cross-sectional correlation — log prices follow a market +
//     sector + idiosyncratic factor model, so same-sector pairs are highly
//     correlated (the candidates pair traders pick);
//   * short-term correlation breakdowns — Poisson-arriving "divergence
//     episodes" give one symbol a transient drift followed by a reversion,
//     producing exactly the diverge-then-recover spread dynamics the strategy
//     trades (§I, §III);
//   * intraday seasonality — U-shaped volatility and quote-arrival intensity;
//   * microstructure — proportional bid-ask spreads, discrete arrival times,
//     lot-size quote sizes;
//   * dirty data — fat-finger prints, far-out "test quotes" from electronic
//     systems, and crossed markets, at a configurable rate (§III's motivation
//     for the TCP-like filter and robust correlation).
//
// Generation is deterministic given (seed, day index, universe), so every
// experiment is reproducible and the serial baseline and the parallel engine
// consume bit-identical data.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "marketdata/calendar.hpp"
#include "marketdata/symbols.hpp"
#include "marketdata/types.hpp"

namespace mm::md {

struct GeneratorConfig {
  std::uint64_t seed = 20080303;

  // Per-second return volatilities (log scale). Daily vol of ~2% over 23400 s
  // corresponds to per-second ~1.3e-4.
  double market_vol = 6e-5;
  double sector_vol = 7e-5;
  double idio_vol = 8e-5;

  // Student-t degrees of freedom for idiosyncratic shocks (fat tails).
  double idio_tail_df = 5.0;

  // Mean quote arrivals per symbol per second (scaled by the U-shape).
  double quote_rate = 0.8;

  // Mean trade prints per symbol per second (scaled by the U-shape). Trade
  // data is lower-frequency than quote data (§III notes quotes dominate);
  // trades execute at the prevailing bid or ask.
  double trade_rate = 0.15;

  // Half-spread as a fraction of price (scaled up with instantaneous vol).
  double half_spread_frac = 4e-4;

  // Microstructure noise: each quote's mid is displaced from the true path by
  // N(0, quote_noise_frac) (bid-ask bounce, quote flicker). This is what
  // keeps the cleaning filter's adaptive band realistically wide.
  double quote_noise_frac = 3e-4;

  // Divergence episodes: expected episodes per symbol per day, length bounds,
  // and the total drift magnitude (log scale) accumulated over an episode.
  double episodes_per_day = 3.0;
  double episode_min_minutes = 4.0;
  double episode_max_minutes = 15.0;
  double episode_drift = 0.012;
  // Fraction of the episode drift that reverts afterwards (1 = full
  // mean-reversion; the strategy profits from the reverting part).
  double episode_reversion = 0.85;
  // Per-symbol episode-intensity multiplier: lognormal, exp(N(0, sigma)),
  // scaled by `median`, clamped to [min, max]. Deterministic in seed+symbol
  // and constant across days, so a few symbols are persistently
  // divergence-rich: their pairs compound outsized monthly returns, producing
  // the heavy right tail of the paper's cross-pair distributions (Fig. 2).
  double episode_mult_sigma = 0.8;
  double episode_mult_median = 0.9;
  double episode_mult_min = 0.1;
  double episode_mult_max = 6.0;
  // Per-symbol episode drift-magnitude multiplier (same lognormal mechanism).
  // Intensity x magnitude — a product of lognormals — is what produces the
  // strongly right-skewed, leptokurtic cross-pair return distribution of
  // Tables III/IV.
  double episode_drift_sigma = 0.5;
  double episode_drift_mult_min = 0.3;
  double episode_drift_mult_max = 4.0;

  // Dirty-data rates (fraction of emitted quotes).
  double bad_tick_rate = 0.002;    // fat-finger / far-out quotes
  double crossed_rate = 0.0005;    // bid > ask
  // Magnitude range for bad prints, as a fraction of price.
  double bad_tick_min_jump = 0.05;
  double bad_tick_max_jump = 0.6;
  // "Minor" bad ticks: displacements small enough to slip through the
  // band filter (the residual dirt §III says the robust correlation must
  // gracefully downweight). These are what separate the three Ctype
  // treatments after cleaning.
  double minor_tick_rate = 0.01;
  double minor_tick_min_jump = 0.0005;
  double minor_tick_max_jump = 0.0025;

  Session session{};
};

// One day's synthetic market.
class SyntheticDay {
 public:
  // `day_index` selects an independent random stream (combined with seed).
  // Prices open at the universe base prices.
  SyntheticDay(const Universe& universe, const GeneratorConfig& config, int day_index);

  // Chained variant: the day opens at `open_prices` (e.g. the previous day's
  // closing_prices(), plus any overnight gap the caller applies), giving a
  // continuous multi-day price history.
  SyntheticDay(const Universe& universe, const GeneratorConfig& config, int day_index,
               const std::vector<double>& open_prices);

  // Final true mid per symbol — feed into the next day's chained constructor.
  std::vector<double> closing_prices() const;

  // All quotes of the day, time-sorted across symbols. Bad ticks are included
  // (flagged internally only through their values — consumers must clean).
  const std::vector<Quote>& quotes() const { return quotes_; }

  // All trade prints of the day, time-sorted. Trades are clean (executions,
  // unlike quotes, are real) and hit the true path's bid or ask.
  const std::vector<Trade>& trades() const { return trades_; }

  // The true (uncorrupted) second-resolution mid-price path for a symbol —
  // ground truth for tests and for validating the cleaning stage.
  const std::vector<double>& true_path(SymbolId symbol) const;

  // Number of quotes that were corrupted when emitted (for tests/reports).
  std::size_t corrupted_count() const { return corrupted_; }

 private:
  void build(const Universe& universe, const GeneratorConfig& config, int day_index,
             const std::vector<double>& open_prices);
  void build_paths(const Universe& universe, const GeneratorConfig& config, Rng& rng);
  void emit_quotes(const Universe& universe, const GeneratorConfig& config, Rng& rng);
  void emit_trades(const Universe& universe, const GeneratorConfig& config, Rng& rng);

  std::int64_t seconds_ = 0;
  Session session_;
  std::vector<double> open_prices_;
  std::vector<std::vector<double>> paths_;  // [symbol][second] mid price
  std::vector<Quote> quotes_;
  std::vector<Trade> trades_;
  std::size_t corrupted_ = 0;
};

// Interval-resolution synthetic return stream for universe-scale experiments.
//
// SyntheticDay materializes every quote of every symbol — right for the
// cleaning/compression stages, but at thousands of symbols one day of quotes
// is gigabytes. The correlation plane only consumes one return per symbol per
// ∆s interval, so ReturnStream generates exactly that: the same market +
// sector + idiosyncratic factor model, divergence episodes and residual
// dirty-data spikes, sampled directly at interval resolution with O(symbols)
// state and an allocation-free next(). Deterministic in (seed, universe size,
// interval). It draws its own random streams — it does not reproduce
// SyntheticDay's paths — but reuses SyntheticDay's per-symbol episode
// multipliers, so the same symbols are divergence-rich in both generators.
class ReturnStream {
 public:
  ReturnStream(const Universe& universe, const GeneratorConfig& config,
               double interval_seconds = 60.0);

  std::size_t symbols() const { return symbols_; }
  std::size_t steps_per_day() const { return steps_per_day_; }

  // Fills `out` with one log return per symbol for the next interval.
  // Allocation-free once `out` is sized (the resize is a no-op after the
  // first call). Days chain seamlessly: a fresh random stream begins every
  // steps_per_day() calls.
  void next(std::vector<double>& out);

  // Allocating convenience form.
  std::vector<double> next();

 private:
  void begin_day();

  GeneratorConfig config_;
  std::vector<int> sector_;  // per-symbol sector index (copied from universe)
  std::size_t symbols_;
  std::size_t sectors_;
  std::size_t steps_per_day_;
  double interval_seconds_;
  // Per-symbol loadings and episode multipliers: index-derived, day-stable.
  std::vector<double> beta_, gamma_, sigma_;
  std::vector<double> episode_mult_, drift_mult_;
  // Per-symbol divergence-episode state machine: `div_left_` steps of drift
  // remain, then `rev_left_` steps of the opposing reversion drift.
  std::vector<std::int32_t> div_left_, rev_left_;
  std::vector<double> step_drift_;
  // A dirty-data spike is a price-level error: a return spike this interval,
  // undone on the next. `pending_` holds next interval's correction.
  std::vector<double> pending_;
  std::vector<double> sector_shock_;  // per-step scratch
  Rng rng_{0};
  int day_ = 0;
  std::size_t step_in_day_ = 0;
};

// Intraday U-shape multiplier at session fraction x in [0,1]: elevated at the
// open and close, subdued midday. Integrates to ~1 over the session.
double u_shape(double x);

}  // namespace mm::md
