// Table II reproduction: a sample of intra-day quote data in the TAQ layout,
// drawn from the synthetic generator (our TAQ substitute).
#include <cstdio>

#include "common/cli.hpp"
#include "marketdata/generator.hpp"
#include "marketdata/taq.hpp"

int main(int argc, char** argv) {
  mm::Cli cli("repro_table2", "Reproduce Table II: sample TAQ quote rows");
  auto& rows = cli.add_int("rows", 12, "sample rows to print");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  cli.parse(argc, argv);

  const auto universe = mm::md::make_universe(61);
  mm::md::GeneratorConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.quote_rate = 0.05;  // a light day is plenty for a sample
  const mm::md::SyntheticDay day(universe, cfg, 0);

  std::printf("Table II — sample synthetic quote data (TAQ layout)\n\n");
  std::printf("  %-12s %-7s %9s %9s %8s %8s\n", "Timestamp", "Symbol", "BidPrice",
              "AskPrice", "BidSize", "AskSize");
  // The paper's sample shows a burst of quotes near the open; print the first
  // `rows` quotes of the day the same way.
  std::int64_t printed = 0;
  for (const auto& q : day.quotes()) {
    std::printf("  %-12s %-7s %9.2f %9.2f %8d %8d\n",
                mm::md::format_time_of_day((q.ts_ms / 1000) * 1000).c_str(),
                universe.table.name(q.symbol).c_str(), q.bid, q.ask, q.bid_size,
                q.ask_size);
    if (++printed >= rows) break;
  }
  std::printf("\n(%zu quotes generated for the day across 61 symbols; raw stream "
              "includes the injected bad ticks the cleaning stage removes)\n",
              day.quotes().size());
  return 0;
}
