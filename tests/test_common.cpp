// Unit tests for src/common: Expected/Error, string utilities, CLI parser.
#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace mm {
namespace {

TEST(Expected, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value_or(7), 42);
}

TEST(Expected, HoldsError) {
  Expected<int> e(Error(Errc::not_found, "missing"));
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error().code, Errc::not_found);
  EXPECT_EQ(e.error().message, "missing");
  EXPECT_EQ(e.value_or(7), 7);
}

TEST(Expected, ValueOnErrorThrows) {
  Expected<int> e(Error(Errc::io_error, "boom"));
  EXPECT_THROW((void)e.value(), std::runtime_error);
}

TEST(Expected, VoidSpecialization) {
  Status ok;
  EXPECT_TRUE(ok.has_value());
  Status bad = Error(Errc::parse_error, "nope");
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().code, Errc::parse_error);
}

TEST(ErrcNames, AllDistinct) {
  EXPECT_STREQ(to_string(Errc::io_error), "io_error");
  EXPECT_STREQ(to_string(Errc::parse_error), "parse_error");
  EXPECT_STREQ(to_string(Errc::shutdown), "shutdown");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleField) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\n a b \n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(ParseDouble, Valid) {
  EXPECT_DOUBLE_EQ(*parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*parse_double(" -0.25 "), -0.25);
  EXPECT_DOUBLE_EQ(*parse_double("1e-3"), 1e-3);
}

TEST(ParseDouble, Invalid) {
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("3.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(ParseInt, Valid) {
  EXPECT_EQ(*parse_int("42"), 42);
  EXPECT_EQ(*parse_int("-17"), -17);
}

TEST(ParseInt, Invalid) {
  EXPECT_FALSE(parse_int("4.2").has_value());
  EXPECT_FALSE(parse_int("x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(format("%.2f", 1.2345), "1.23");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
}

TEST(Cli, ParsesTypedFlags) {
  Cli cli("prog", "test");
  auto& n = cli.add_int("n", 10, "count");
  auto& x = cli.add_double("x", 1.5, "factor");
  auto& s = cli.add_string("name", "d", "label");
  auto& f = cli.add_flag("fast", "go fast");

  ASSERT_TRUE(cli.try_parse({"--n", "42", "--x=2.5", "--name", "abc", "--fast"}));
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(s, "abc");
  EXPECT_TRUE(f);
}

TEST(Cli, DefaultsSurviveEmptyArgs) {
  Cli cli("prog", "test");
  auto& n = cli.add_int("n", 10, "count");
  ASSERT_TRUE(cli.try_parse({}));
  EXPECT_EQ(n, 10);
}

TEST(Cli, RejectsUnknownFlag) {
  Cli cli("prog", "test");
  cli.add_int("n", 10, "count");
  EXPECT_FALSE(cli.try_parse({"--bogus", "1"}).has_value());
}

TEST(Cli, RejectsMissingValue) {
  Cli cli("prog", "test");
  cli.add_int("n", 10, "count");
  EXPECT_FALSE(cli.try_parse({"--n"}).has_value());
}

TEST(Cli, RejectsBadNumber) {
  Cli cli("prog", "test");
  cli.add_int("n", 10, "count");
  EXPECT_FALSE(cli.try_parse({"--n", "abc"}).has_value());
}

TEST(Cli, FlagTakesNoValue) {
  Cli cli("prog", "test");
  cli.add_flag("fast", "go fast");
  EXPECT_FALSE(cli.try_parse({"--fast=1"}).has_value());
}

TEST(Cli, UsageMentionsOptions) {
  Cli cli("prog", "demo tool");
  cli.add_int("n", 10, "count of things");
  const auto usage = cli.usage();
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("count of things"), std::string::npos);
}

}  // namespace
}  // namespace mm
