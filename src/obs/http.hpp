// Minimal loopback HTTP/1.1 listener for the monitoring plane.
//
// Serves registered routes (in practice /metrics and /healthz) from ONE
// background thread on 127.0.0.1 only — this is an operator endpoint inside
// the trading host, not a web server: no keep-alive, no TLS, no
// concurrency, request line + headers capped at 8 KiB, every connection
// closed after one response. Port 0 binds an ephemeral port; port() returns
// the real one after start(), which is how tests (and the engine's
// `port_out` hand-off) discover where to scrape.
//
// Handlers run on the listener thread, so anything they touch must be
// thread-safe against the rest of the process (Registry snapshots and
// HeartbeatMonitor reads are). Compiled identically with MM_OBS_ENABLED on
// or off — the server only shuttles strings.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/error.hpp"

namespace mm::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class MetricsServer {
 public:
  using Handler = std::function<HttpResponse()>;

  MetricsServer() = default;
  ~MetricsServer();

  // Register a handler for an exact path ("/metrics"). Call before start().
  void route(const std::string& path, Handler handler);

  // Bind 127.0.0.1:`port` (0 = ephemeral), start the listener thread.
  Status start(std::uint16_t port);
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

 private:
  void serve();
  void handle(int client) const;

  std::map<std::string, Handler> routes_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> running_{false};
};

}  // namespace mm::obs
