// Tests for the canonical pair trading strategy state machine (§III),
// including the paper's worked sizing and return examples.
#include <gtest/gtest.h>

#include <cmath>

#include "core/strategy.hpp"

namespace mm::core {
namespace {

// Small windows so scenarios stay readable: W=5, Y=3, RT=4, HP=6, ST=2.
StrategyParams test_params() {
  StrategyParams p;
  p.delta_s = 30;
  p.ctype = stats::Ctype::pearson;
  p.min_correlation = 0.1;
  p.corr_window = 10;  // informational here; corr is fed directly
  p.avg_window = 5;
  p.divergence_window = 3;
  p.divergence = 0.01;
  p.retracement = 1.0 / 3.0;
  p.spread_window = 4;
  p.max_holding = 6;
  p.no_entry_before_close = 2;
  return p;
}

constexpr std::int64_t kSmax = 60;

TEST(SizePosition, PaperExampleLongCheapLeg) {
  // "if we short i [IBM $130], and long j [MSFT $30], then x = ceil(Pi/Pj)" —
  // the paper's 5:1 MSFT:IBM example: $150 long vs $130 short.
  const auto r = size_position(130.0, 30.0, /*long_i=*/false);
  EXPECT_DOUBLE_EQ(r.shares_i, -1.0);
  EXPECT_DOUBLE_EQ(r.shares_j, 5.0);
  const double long_value = r.shares_j * 30.0;
  const double short_value = -r.shares_i * 130.0;
  EXPECT_GT(long_value, short_value);  // "just slightly on the long side"
}

TEST(SizePosition, PaperExampleLongExpensiveLeg) {
  // Long IBM, short MSFT: x = floor(130/30) = 4 -> $130 long vs $120 short.
  const auto r = size_position(130.0, 30.0, /*long_i=*/true);
  EXPECT_DOUBLE_EQ(r.shares_i, 1.0);
  EXPECT_DOUBLE_EQ(r.shares_j, -4.0);
  EXPECT_GT(r.shares_i * 130.0, -r.shares_j * 30.0);
}

TEST(SizePosition, SymmetricWhenFirstLegCheap) {
  // Same trade with legs swapped must mirror.
  const auto r = size_position(30.0, 130.0, /*long_i=*/true);
  EXPECT_DOUBLE_EQ(r.shares_i, 5.0);
  EXPECT_DOUBLE_EQ(r.shares_j, -1.0);
}

TEST(SizePosition, LongSideAlwaysAtLeastShortSide) {
  for (double pi : {10.0, 33.3, 95.0, 130.0}) {
    for (double pj : {8.0, 20.0, 60.0, 128.0}) {
      for (bool long_i : {true, false}) {
        const auto r = size_position(pi, pj, long_i);
        const double long_value =
            (r.shares_i > 0 ? r.shares_i * pi : 0) + (r.shares_j > 0 ? r.shares_j * pj : 0);
        const double short_value =
            (r.shares_i < 0 ? -r.shares_i * pi : 0) + (r.shares_j < 0 ? -r.shares_j * pj : 0);
        EXPECT_GE(long_value + 1e-9, short_value)
            << "pi=" << pi << " pj=" << pj << " long_i=" << long_i;
        // Exactly one leg long, one short.
        EXPECT_LT(r.shares_i * r.shares_j, 0.0);
      }
    }
  }
}

TEST(PairStrategy, NoTradeWithoutDivergence) {
  PairStrategy s(test_params(), kSmax);
  for (std::int64_t t = 0; t < kSmax; ++t) s.step(t, 100.0, 50.0, 0.9, true);
  s.finish();
  EXPECT_TRUE(s.trades().empty());
}

TEST(PairStrategy, NoTradeWhenAverageBelowThreshold) {
  PairStrategy s(test_params(), kSmax);
  // Average correlation 0.05 < A = 0.1; a divergence occurs but must not fire.
  for (std::int64_t t = 0; t < 20; ++t) s.step(t, 100.0, 50.0, 0.05, true);
  s.step(20, 100.0, 50.0, 0.01, true);
  for (std::int64_t t = 21; t < 30; ++t) s.step(t, 100.0, 50.0, 0.01, true);
  s.finish();
  EXPECT_TRUE(s.trades().empty());
}

TEST(PairStrategy, FreshDivergenceOpensPosition) {
  PairStrategy s(test_params(), kSmax);
  for (std::int64_t t = 0; t < 10; ++t) s.step(t, 100.0, 50.0, 0.9, true);
  EXPECT_FALSE(s.in_position());
  s.step(10, 100.0, 50.0, 0.5, true);  // 44% below C-bar
  EXPECT_TRUE(s.in_position());
}

TEST(PairStrategy, DirectionShortsTheOverPerformer) {
  PairStrategy s(test_params(), kSmax);
  // Leg i rallies into the divergence; leg j flat -> short i, long j.
  for (std::int64_t t = 0; t < 10; ++t)
    s.step(t, 100.0 + static_cast<double>(t), 50.0, 0.9, true);
  s.step(10, 110.0, 50.0, 0.5, true);
  ASSERT_TRUE(s.in_position());
  EXPECT_LT(s.position_shares_i(), 0.0);
  EXPECT_GT(s.position_shares_j(), 0.0);
}

TEST(PairStrategy, StaleDivergenceNeverFires) {
  // Divergence begins while the spread window is still warming up; by the
  // time everything is warm the streak exceeds Y, so no entry all day.
  StrategyParams p = test_params();
  p.spread_window = 20;  // warm at s=19
  PairStrategy s(p, kSmax);
  for (std::int64_t t = 0; t < 10; ++t) s.step(t, 100.0, 50.0, 0.9, true);
  for (std::int64_t t = 10; t < kSmax; ++t) s.step(t, 100.0, 50.0, 0.5, true);
  s.finish();
  EXPECT_TRUE(s.trades().empty());
}

TEST(PairStrategy, StRuleBlocksLateEntries) {
  StrategyParams p = test_params();
  p.no_entry_before_close = 30;
  PairStrategy s(p, kSmax);
  for (std::int64_t t = 0; t < 35; ++t) s.step(t, 100.0, 50.0, 0.9, true);
  // Divergence at s=35 >= smax - ST = 30: must not open.
  s.step(35, 100.0, 50.0, 0.5, true);
  EXPECT_FALSE(s.in_position());
}

TEST(PairStrategy, MaxHoldingPeriodForcesExit) {
  PairStrategy s(test_params(), kSmax);
  // Spread falls steadily, so the retracement level (above) is never reached.
  const auto pj = [](std::int64_t t) { return 50.0 + 0.5 * static_cast<double>(t); };
  for (std::int64_t t = 0; t < 10; ++t) s.step(t, 100.0, pj(t), 0.9, true);
  s.step(10, 100.0, pj(10), 0.5, true);
  ASSERT_TRUE(s.in_position());
  for (std::int64_t t = 11; t <= 16; ++t) s.step(t, 100.0, pj(t), 0.5, true);
  ASSERT_FALSE(s.in_position());
  ASSERT_EQ(s.trades().size(), 1u);
  EXPECT_EQ(s.trades()[0].exit_reason, ExitReason::max_holding);
  EXPECT_EQ(s.trades()[0].exit_interval - s.trades()[0].entry_interval, 6);
}

TEST(PairStrategy, RetracementExitAndPaperReturnExample) {
  // Engineer the paper's §III step-6 example: short 1 IBM @130, long 5 MSFT
  // @30; exit at 120/29 -> pnl $5 on a $280 basis.
  PairStrategy s(test_params(), kSmax);
  // IBM (leg i) rallies into the divergence so it is the over-performer.
  for (std::int64_t t = 0; t < 10; ++t)
    s.step(t, 120.0 + static_cast<double>(t), 30.0, 0.9, true);
  s.step(10, 130.0, 30.0, 0.5, true);  // entry at 130 / 30
  ASSERT_TRUE(s.in_position());
  EXPECT_DOUBLE_EQ(s.position_shares_i(), -1.0);
  EXPECT_DOUBLE_EQ(s.position_shares_j(), 5.0);

  // Spread collapses from 100 to 91 -> crosses the retracement level.
  s.step(11, 120.0, 29.0, 0.5, true);
  ASSERT_FALSE(s.in_position());
  ASSERT_EQ(s.trades().size(), 1u);
  const Trade& t = s.trades()[0];
  EXPECT_EQ(t.exit_reason, ExitReason::retracement);
  EXPECT_DOUBLE_EQ(t.pnl, 5.0);             // (130-120) - 5*(30-29)
  EXPECT_DOUBLE_EQ(t.gross_basis, 280.0);   // 1*130 + 5*30
  EXPECT_NEAR(t.trade_return, 5.0 / 280.0, 1e-12);
}

TEST(PairStrategy, EndOfDayFlattensOpenPosition) {
  PairStrategy s(test_params(), kSmax);
  const auto pj = [](std::int64_t t) { return 50.0 + 0.5 * static_cast<double>(t); };
  for (std::int64_t t = 0; t < 10; ++t) s.step(t, 100.0, pj(t), 0.9, true);
  s.step(10, 100.0, pj(10), 0.5, true);
  ASSERT_TRUE(s.in_position());
  s.finish();
  EXPECT_FALSE(s.in_position());
  ASSERT_EQ(s.trades().size(), 1u);
  EXPECT_EQ(s.trades()[0].exit_reason, ExitReason::end_of_day);
}

TEST(PairStrategy, FinishWithoutPositionIsNoOp) {
  PairStrategy s(test_params(), kSmax);
  s.step(0, 100.0, 50.0, 0.9, true);
  s.finish();
  EXPECT_TRUE(s.trades().empty());
}

TEST(PairStrategy, StopLossExtensionExits) {
  StrategyParams p = test_params();
  p.stop_loss = 0.02;  // 2%
  PairStrategy s(p, kSmax);
  const auto pj = [](std::int64_t t) { return 50.0 + 0.5 * static_cast<double>(t); };
  for (std::int64_t t = 0; t < 10; ++t) s.step(t, 100.0, pj(t), 0.9, true);
  s.step(10, 100.0, pj(10), 0.5, true);  // short i / long j? i flat, j rallying
  ASSERT_TRUE(s.in_position());
  // j was the over-performer, so we are short j, long i. j keeps rallying:
  // the position bleeds until the stop-loss trips (well before HP=6 at this
  // bleed rate it may not; force a large adverse jump).
  s.step(11, 95.0, 70.0, 0.5, true);
  ASSERT_FALSE(s.in_position());
  EXPECT_EQ(s.trades()[0].exit_reason, ExitReason::stop_loss);
  EXPECT_LT(s.trades()[0].trade_return, -0.02);
}

TEST(PairStrategy, CorrelationReversionExtensionExits) {
  StrategyParams p = test_params();
  p.correlation_reversion_exit = true;
  PairStrategy s(p, kSmax);
  const auto pj = [](std::int64_t t) { return 50.0 + 0.5 * static_cast<double>(t); };
  for (std::int64_t t = 0; t < 10; ++t) s.step(t, 100.0, pj(t), 0.9, true);
  s.step(10, 100.0, pj(10), 0.5, true);
  ASSERT_TRUE(s.in_position());
  // Correlation returns into [C-bar(1-d), C-bar]: reversion exit.
  // C-bar is slightly below 0.9 now (the 0.5 entered the mean window).
  s.step(11, 100.0, pj(11), 0.82, true);
  ASSERT_FALSE(s.in_position());
  EXPECT_EQ(s.trades()[0].exit_reason, ExitReason::correlation_reversion);
}

TEST(PairStrategy, NoInstantReentryAfterExit) {
  PairStrategy s(test_params(), kSmax);
  const auto pj = [](std::int64_t t) { return 50.0 + 0.5 * static_cast<double>(t); };
  for (std::int64_t t = 0; t < 10; ++t) s.step(t, 100.0, pj(t), 0.9, true);
  s.step(10, 100.0, pj(10), 0.5, true);
  ASSERT_TRUE(s.in_position());
  // Hold to the HP exit while the divergence persists...
  for (std::int64_t t = 11; t <= 16; ++t) s.step(t, 100.0, pj(t), 0.5, true);
  ASSERT_FALSE(s.in_position());
  // ...the still-running (now stale) divergence must not re-open.
  for (std::int64_t t = 17; t < 25; ++t) {
    s.step(t, 100.0, pj(t), 0.5, true);
    EXPECT_FALSE(s.in_position()) << "re-entered at t=" << t;
  }
}

TEST(PairStrategy, TransactionCostsReducePnl) {
  auto run_with_cost = [](double cost) {
    StrategyParams p = test_params();
    p.cost_per_share = cost;
    PairStrategy s(p, kSmax);
    for (std::int64_t t = 0; t < 10; ++t)
      s.step(t, 120.0 + static_cast<double>(t), 30.0, 0.9, true);
    s.step(10, 130.0, 30.0, 0.5, true);
    s.step(11, 120.0, 29.0, 0.5, true);
    return s.trades().at(0).pnl;
  };
  const double free_pnl = run_with_cost(0.0);
  const double costly_pnl = run_with_cost(0.05);
  // 6 shares x 2 sides x $0.05 = $0.60.
  EXPECT_NEAR(free_pnl - costly_pnl, 0.60, 1e-9);
}

TEST(PairStrategy, SlippageWorsensBothLegs) {
  auto run_with_slippage = [](double slip) {
    StrategyParams p = test_params();
    p.slippage_frac = slip;
    PairStrategy s(p, kSmax);
    for (std::int64_t t = 0; t < 10; ++t)
      s.step(t, 120.0 + static_cast<double>(t), 30.0, 0.9, true);
    s.step(10, 130.0, 30.0, 0.5, true);
    s.step(11, 120.0, 29.0, 0.5, true);
    return s.trades().at(0);
  };
  const auto clean = run_with_slippage(0.0);
  const auto slipped = run_with_slippage(0.001);
  EXPECT_LT(slipped.pnl, clean.pnl);
  // Short leg i entered lower, long leg j entered higher.
  EXPECT_LT(slipped.entry_price_i, clean.entry_price_i);
  EXPECT_GT(slipped.entry_price_j, clean.entry_price_j);
}

TEST(PairStrategy, RetracementBeatsMaxHoldingOnSameInterval) {
  // Both conditions fire at s = entry + HP; the retracement exit is checked
  // first and must win (it is the strategy's intended exit).
  PairStrategy s(test_params(), kSmax);
  // Falling spread into entry -> exit_when_spread_above with L above entry.
  const auto pj = [](std::int64_t t) { return 50.0 + 0.5 * static_cast<double>(t); };
  for (std::int64_t t = 0; t < 10; ++t) s.step(t, 100.0, pj(t), 0.9, true);
  s.step(10, 100.0, pj(10), 0.5, true);
  ASSERT_TRUE(s.in_position());
  for (std::int64_t t = 11; t <= 15; ++t) s.step(t, 100.0, pj(t), 0.5, true);
  ASSERT_TRUE(s.in_position());
  // At t=16 (HP boundary), snap the spread far above the retracement level.
  s.step(16, 100.0, 40.0, 0.5, true);
  ASSERT_EQ(s.trades().size(), 1u);
  EXPECT_EQ(s.trades()[0].exit_reason, ExitReason::retracement);
}

TEST(PairStrategy, SecondTradePossibleAfterFreshDivergence) {
  PairStrategy s(test_params(), kSmax);
  const auto pj = [](std::int64_t t) { return 50.0 + 0.5 * static_cast<double>(t); };
  // First cycle.
  for (std::int64_t t = 0; t < 10; ++t) s.step(t, 100.0, pj(t), 0.9, true);
  s.step(10, 100.0, pj(10), 0.5, true);
  for (std::int64_t t = 11; t <= 16; ++t) s.step(t, 100.0, pj(t), 0.5, true);
  ASSERT_EQ(s.trades().size(), 1u);
  // Correlation recovers, averages rebuild, then a second fresh divergence.
  for (std::int64_t t = 17; t < 30; ++t) s.step(t, 100.0, pj(t), 0.9, true);
  s.step(30, 100.0, pj(30), 0.5, true);
  EXPECT_TRUE(s.in_position());
}

TEST(PairStrategy, EqualPricesUseUnitRatio) {
  // Pi == Pj: ratio 1, one share each side, long side >= short side.
  const auto r = size_position(50.0, 50.0, true);
  EXPECT_DOUBLE_EQ(r.shares_i, 1.0);
  EXPECT_DOUBLE_EQ(r.shares_j, -1.0);
}

TEST(PairStrategy, LotSizeScalesSharesNotReturns) {
  auto run_with_lot = [](double lot) {
    StrategyParams p = test_params();
    p.lot_size = lot;
    PairStrategy s(p, kSmax);
    for (std::int64_t t = 0; t < 10; ++t)
      s.step(t, 120.0 + static_cast<double>(t), 30.0, 0.9, true);
    s.step(10, 130.0, 30.0, 0.5, true);
    s.step(11, 120.0, 29.0, 0.5, true);
    return s.trades().at(0);
  };
  const auto unit = run_with_lot(1.0);
  const auto lots = run_with_lot(100.0);
  EXPECT_DOUBLE_EQ(lots.shares_i, unit.shares_i * 100.0);
  EXPECT_DOUBLE_EQ(lots.shares_j, unit.shares_j * 100.0);
  EXPECT_NEAR(lots.pnl, unit.pnl * 100.0, 1e-9);
  EXPECT_NEAR(lots.trade_return, unit.trade_return, 1e-12);  // scale-invariant
}

TEST(PairStrategy, InvalidCorrelationDelaysSignals) {
  PairStrategy s(test_params(), kSmax);
  // corr_valid=false for a long stretch: no averages build, no trades.
  for (std::int64_t t = 0; t < 30; ++t) s.step(t, 100.0, 50.0, 0.0, false);
  EXPECT_FALSE(s.correlation_ready());
  // Then the usual pattern works normally.
  for (std::int64_t t = 30; t < 40; ++t) s.step(t, 100.0, 50.0, 0.9, true);
  s.step(40, 100.0, 50.0, 0.5, true);
  EXPECT_TRUE(s.in_position());
}

}  // namespace
}  // namespace mm::core
