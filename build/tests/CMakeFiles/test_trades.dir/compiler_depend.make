# Empty compiler generated dependencies file for test_trades.
# This may be replaced when dependencies are built.
