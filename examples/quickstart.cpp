// Quickstart: backtest the canonical pair trading strategy on one pair for
// one synthetic trading day, printing every round trip.
//
//   $ ./quickstart [--pair MSFT/IBM] [--seed N] [--ctype pearson|maronna|combined]
//
// Walks through the full public API surface in ~60 lines: universe, data
// generation, cleaning, BAM sampling, correlation series, strategy run and
// metrics.
#include <cstdio>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "core/backtester.hpp"
#include "core/metrics.hpp"
#include "marketdata/bars.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"

int main(int argc, char** argv) {
  using namespace mm;
  Cli cli("quickstart", "Backtest one pair for one day");
  auto& pair_arg = cli.add_string("pair", "MSFT/IBM", "TICKER/TICKER from the universe");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  auto& ctype_arg = cli.add_string("ctype", "pearson", "pearson|maronna|combined");
  cli.parse(argc, argv);

  // 1. Universe and one synthetic day of quotes (the TAQ substitute).
  const auto universe = md::make_universe(61);
  md::GeneratorConfig gen;
  gen.seed = static_cast<std::uint64_t>(seed);
  const md::SyntheticDay day(universe, gen, /*day_index=*/0);
  std::printf("generated %zu quotes for %zu symbols (%zu corrupted at source)\n",
              day.quotes().size(), universe.table.size(), day.corrupted_count());

  // 2. Clean the stream with the TCP-like filter.
  md::QuoteCleaner cleaner(universe.table.size(), md::CleanerConfig{});
  const auto cleaned = cleaner.clean(day.quotes());
  std::printf("cleaning kept %zu quotes (dropped %zu structural, %zu band)\n",
              cleaned.size(), cleaner.dropped_structural(), cleaner.dropped_band());

  // 3. Sample bid-ask midpoints on the ds = 30 s interval grid.
  const auto bam =
      md::sample_bam_series(cleaned, universe.table.size(), gen.session, 30);

  // 4. Resolve the requested pair and correlation measure.
  const auto parts = split(pair_arg, '/');
  if (parts.size() != 2) {
    std::fprintf(stderr, "--pair must look like MSFT/IBM\n");
    return 2;
  }
  const std::string leg_i(parts[0]);
  const std::string leg_j(parts[1]);
  const auto sym_i = universe.table.lookup(leg_i);
  const auto sym_j = universe.table.lookup(leg_j);
  if (sym_i == md::invalid_symbol || sym_j == md::invalid_symbol) {
    std::fprintf(stderr, "unknown ticker in --pair\n");
    return 2;
  }
  const auto ctype = stats::parse_ctype(ctype_arg);
  if (!ctype) {
    std::fprintf(stderr, "%s\n", ctype.error().message.c_str());
    return 2;
  }

  // 5. Correlation series and strategy run with the paper's base parameters.
  core::StrategyParams params = core::ParamGrid::base();
  params.ctype = *ctype;
  params.divergence = 0.0005;  // a livelier d for a demo day
  const auto series =
      core::compute_pair_corr_series(bam[sym_i], bam[sym_j], *ctype,
                                     params.corr_window);
  const auto trades = core::run_pair_day(params, bam[sym_i], bam[sym_j], series);

  // 6. Report.
  std::printf("\n%s vs %s, %s correlation, params %s\n\n", leg_i.c_str(),
              leg_j.c_str(), stats::to_string(*ctype), params.describe().c_str());
  std::printf("  %5s %5s  %22s %22s %9s %8s  %s\n", "in", "out", "entry px (i/j)",
              "exit px (i/j)", "pnl $", "ret %", "exit");
  std::vector<double> returns;
  for (const auto& t : trades) {
    std::printf("  %5lld %5lld  %10.2f /%10.2f %10.2f /%10.2f %9.3f %7.3f%%  %s\n",
                static_cast<long long>(t.entry_interval),
                static_cast<long long>(t.exit_interval), t.entry_price_i,
                t.entry_price_j, t.exit_price_i, t.exit_price_j, t.pnl,
                t.trade_return * 100.0, core::to_string(t.exit_reason));
    returns.push_back(t.trade_return);
  }
  if (trades.empty()) {
    std::printf("  (no divergence fired on this pair today — try another seed)\n");
    return 0;
  }
  const auto wl = core::win_loss(returns);
  std::printf("\n%zu trades, daily cumulative return %.3f%%, max drawdown %.3f%%, "
              "wins/losses %zu/%zu\n",
              trades.size(), core::cumulative_return(returns) * 100.0,
              core::max_drawdown(returns) * 100.0, wl.wins, wl.losses);

  const auto exits = core::exit_breakdown(trades);
  std::printf("exits: %zu retracement, %zu max-holding, %zu end-of-day\n",
              exits.counts[static_cast<int>(core::ExitReason::retracement)],
              exits.counts[static_cast<int>(core::ExitReason::max_holding)],
              exits.counts[static_cast<int>(core::ExitReason::end_of_day)]);
  return 0;
}
