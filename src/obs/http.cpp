#include "obs/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/strings.hpp"

namespace mm::obs {
namespace {

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

// Blocking full-buffer send; MSG_NOSIGNAL so a dropped client cannot SIGPIPE
// the process.
void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t sent =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (sent <= 0) return;
    off += static_cast<std::size_t>(sent);
  }
}

// Case-insensitive Content-Length lookup inside the raw header block.
// Returns -1 when absent, -2 when present but unparseable.
long long content_length(const std::string& headers) {
  static constexpr const char* kName = "content-length:";
  static constexpr std::size_t kNameLen = 15;
  std::size_t pos = 0;
  while (pos < headers.size()) {
    std::size_t eol = headers.find("\r\n", pos);
    if (eol == std::string::npos) eol = headers.size();
    const std::size_t len = eol - pos;
    if (len > kNameLen) {
      bool match = true;
      for (std::size_t i = 0; i < kNameLen; ++i) {
        if (std::tolower(static_cast<unsigned char>(headers[pos + i])) != kName[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        std::size_t v = pos + kNameLen;
        while (v < eol && headers[v] == ' ') ++v;
        long long value = 0;
        bool any = false;
        for (; v < eol; ++v) {
          const char c = headers[v];
          if (c < '0' || c > '9') return -2;
          if (value > (1LL << 40)) return -2;  // absurd; reject before overflow
          value = value * 10 + (c - '0');
          any = true;
        }
        return any ? value : -2;
      }
    }
    pos = eol + 2;
  }
  return -1;
}

}  // namespace

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::route(const std::string& path, Handler handler,
                          std::vector<std::string> methods) {
  const auto it = std::find_if(routes_.begin(), routes_.end(), [&](const Route& r) {
    return !r.is_prefix && r.path == path;
  });
  Route r{path, false, std::move(methods), std::move(handler)};
  if (it != routes_.end())
    *it = std::move(r);
  else
    routes_.push_back(std::move(r));
}

void MetricsServer::route(const std::string& path, SimpleHandler handler,
                          std::vector<std::string> methods) {
  route(
      path,
      Handler{[h = std::move(handler)](const HttpRequest&) { return h(); }},
      std::move(methods));
}

void MetricsServer::route_prefix(const std::string& prefix, Handler handler,
                                 std::vector<std::string> methods) {
  const auto it = std::find_if(routes_.begin(), routes_.end(), [&](const Route& r) {
    return r.is_prefix && r.path == prefix;
  });
  Route r{prefix, true, std::move(methods), std::move(handler)};
  if (it != routes_.end())
    *it = std::move(r);
  else
    routes_.push_back(std::move(r));
}

const MetricsServer::Route* MetricsServer::match(const std::string& target) const {
  for (const auto& r : routes_)
    if (!r.is_prefix && r.path == target) return &r;
  const Route* best = nullptr;
  for (const auto& r : routes_) {
    if (!r.is_prefix || target.rfind(r.path, 0) != 0) continue;
    if (best == nullptr || r.path.size() > best->path.size()) best = &r;
  }
  return best;
}

Status MetricsServer::start(std::uint16_t port) {
  if (running()) return Error{Errc::already_exists, "metrics server already running"};
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Error{Errc::io_error, format("socket(): %s", std::strerror(errno))};
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Error{Errc::io_error,
                 format("bind 127.0.0.1:%u: %s", port, std::strerror(err))};
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    return Error{Errc::io_error, format("listen(): %s", std::strerror(err))};
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd);
    return Error{Errc::io_error, format("getsockname(): %s", std::strerror(err))};
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
  return {};
}

void MetricsServer::stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void MetricsServer::serve() {
  // One request at a time: the stop flag is polled between connections, so
  // stop() latency is bounded by the poll timeout plus one handler.
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle(client);
    ::close(client);
  }
}

void MetricsServer::handle(int client) const {
  timeval timeout{};
  timeout.tv_sec = 2;  // a stalled client must not wedge the listener
  ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  const auto reply = [&](HttpResponse resp, const std::string& allow = {}) {
    std::string head = format("HTTP/1.1 %d %s\r\nContent-Type: %s\r\n",
                              resp.status, reason_phrase(resp.status),
                              resp.content_type.c_str());
    if (!allow.empty()) head += "Allow: " + allow + "\r\n";
    head += format("Content-Length: %zu\r\nConnection: close\r\n\r\n",
                   resp.body.size());
    head += resp.body;
    send_all(client, head);
  };

  std::string request;
  char buf[2048];
  std::size_t header_end = std::string::npos;
  while (request.size() < kMaxHeaderBytes) {
    header_end = request.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    const ssize_t got = ::recv(client, buf, sizeof(buf), 0);
    if (got <= 0) break;
    request.append(buf, static_cast<std::size_t>(got));
  }
  // The loop can exit with the terminator arriving in the final chunk.
  if (header_end == std::string::npos) header_end = request.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    // No terminator: over the cap means oversized headers, under it means the
    // peer hung up (or timed out) mid-request.
    reply({request.size() >= kMaxHeaderBytes ? 431 : 400,
           "text/plain; charset=utf-8",
           request.size() >= kMaxHeaderBytes ? "headers too large\n"
                                             : "malformed request\n"});
    return;
  }

  const std::size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                   : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos || sp1 == 0) {
    reply({400, "text/plain; charset=utf-8", "malformed request\n"});
    return;
  }
  HttpRequest req;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (req.target.empty() || req.target.front() != '/') {
    reply({400, "text/plain; charset=utf-8", "malformed request\n"});
    return;
  }
  if (const std::size_t q = req.target.find('?'); q != std::string::npos)
    req.target.resize(q);

  const std::string headers =
      request.substr(line_end + 2, header_end - line_end - 2);
  const long long declared = content_length(headers);
  if (declared == -2) {
    reply({400, "text/plain; charset=utf-8", "malformed content-length\n"});
    return;
  }
  if (declared > static_cast<long long>(kMaxBodyBytes)) {
    reply({413, "text/plain; charset=utf-8", "body too large\n"});
    return;
  }

  req.body = request.substr(header_end + 4);
  if (declared >= 0) {
    const std::size_t want = static_cast<std::size_t>(declared);
    while (req.body.size() < want) {
      const ssize_t got = ::recv(client, buf, sizeof(buf), 0);
      if (got <= 0) break;
      req.body.append(buf, static_cast<std::size_t>(got));
    }
    if (req.body.size() < want) {
      reply({400, "text/plain; charset=utf-8", "truncated body\n"});
      return;
    }
    req.body.resize(want);  // ignore trailing pipelined bytes
  }

  const Route* route = match(req.target);
  if (route == nullptr) {
    reply({404, "text/plain; charset=utf-8", "not found\n"});
    return;
  }
  if (std::find(route->methods.begin(), route->methods.end(), req.method) ==
      route->methods.end()) {
    std::string allow;
    for (const auto& m : route->methods) {
      if (!allow.empty()) allow += ", ";
      allow += m;
    }
    reply({405, "text/plain; charset=utf-8", "method not allowed\n"}, allow);
    return;
  }
  reply(route->handler(req));
}

}  // namespace mm::obs
