// Tests for the embedded tick store.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "marketdata/generator.hpp"
#include "marketdata/tickdb.hpp"

namespace mm::md {
namespace {

class TickDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("mm_tickdb_test_" + std::to_string(::getpid())))
                .string();
  }
  void TearDown() override { std::filesystem::remove_all(root_); }
  std::string root_;
};

TEST_F(TickDbTest, OpenCreatesRoot) {
  auto db = TickDb::open(root_);
  ASSERT_TRUE(db.has_value());
  EXPECT_TRUE(std::filesystem::is_directory(root_));
}

TEST_F(TickDbTest, SymbolsRoundTrip) {
  auto db = TickDb::open(root_);
  ASSERT_TRUE(db.has_value());
  const auto universe = make_universe(5);
  ASSERT_TRUE(db->put_symbols(universe.table).has_value());
  auto loaded = db->get_symbols();
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 5u);
  for (SymbolId i = 0; i < 5; ++i)
    EXPECT_EQ(loaded->name(i), universe.table.name(i));
}

TEST_F(TickDbTest, SymbolsMissing) {
  auto db = TickDb::open(root_);
  ASSERT_TRUE(db.has_value());
  EXPECT_FALSE(db->get_symbols().has_value());
}

TEST_F(TickDbTest, WriteReadDay) {
  auto db = TickDb::open(root_);
  ASSERT_TRUE(db.has_value());
  const auto universe = make_universe(4);
  GeneratorConfig cfg;
  cfg.quote_rate = 0.05;
  const SyntheticDay day(universe, cfg, 0);

  const Date date{2008, 3, 3};
  EXPECT_FALSE(db->has_day(date));
  ASSERT_TRUE(db->write_day(date, day.quotes()).has_value());
  EXPECT_TRUE(db->has_day(date));

  auto loaded = db->read_day(date);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), day.quotes().size());
  EXPECT_EQ((*loaded)[0].ts_ms, day.quotes()[0].ts_ms);
}

TEST_F(TickDbTest, ReadMissingDayFails) {
  auto db = TickDb::open(root_);
  ASSERT_TRUE(db.has_value());
  EXPECT_FALSE(db->read_day(Date{2008, 3, 4}).has_value());
}

TEST_F(TickDbTest, RangeReadFiltersSymbolsAndTime) {
  auto db = TickDb::open(root_);
  ASSERT_TRUE(db.has_value());
  const auto universe = make_universe(4);
  GeneratorConfig cfg;
  cfg.quote_rate = 0.05;
  const SyntheticDay day(universe, cfg, 0);
  const Date date{2008, 3, 3};
  ASSERT_TRUE(db->write_day(date, day.quotes()).has_value());

  const Session session;
  const TimeMs from = session.open_ms() + ms_per_hour;
  const TimeMs to = from + ms_per_hour;
  auto range = db->read_range(date, {1, 2}, from, to);
  ASSERT_TRUE(range.has_value());
  ASSERT_FALSE(range->empty());
  for (const auto& q : *range) {
    EXPECT_TRUE(q.symbol == 1 || q.symbol == 2);
    EXPECT_GE(q.ts_ms, from);
    EXPECT_LT(q.ts_ms, to);
  }

  // Cross-check the count against a manual scan.
  std::size_t expected = 0;
  for (const auto& q : day.quotes())
    if ((q.symbol == 1 || q.symbol == 2) && q.ts_ms >= from && q.ts_ms < to) ++expected;
  EXPECT_EQ(range->size(), expected);
}

TEST_F(TickDbTest, RangeReadAllSymbols) {
  auto db = TickDb::open(root_);
  ASSERT_TRUE(db.has_value());
  const auto universe = make_universe(2);
  GeneratorConfig cfg;
  cfg.quote_rate = 0.02;
  const SyntheticDay day(universe, cfg, 0);
  const Date date{2008, 3, 5};
  ASSERT_TRUE(db->write_day(date, day.quotes()).has_value());
  auto all = db->read_range(date, {}, std::nullopt, std::nullopt);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->size(), day.quotes().size());
}

TEST_F(TickDbTest, TimeIndexWrittenAndSeekMatchesScan) {
  auto db = TickDb::open(root_);
  ASSERT_TRUE(db.has_value());
  const auto universe = make_universe(4);
  GeneratorConfig cfg;
  cfg.quote_rate = 0.1;
  const SyntheticDay day(universe, cfg, 0);
  const Date date{2008, 3, 6};
  ASSERT_TRUE(db->write_day(date, day.quotes()).has_value());
  EXPECT_TRUE(db->has_index(date));

  // Indexed range reads must exactly match a manual scan for a spread of
  // windows, including bucket-unaligned bounds and out-of-session bounds.
  const Session session;
  const TimeMs probes[] = {
      session.open_ms(), session.open_ms() + 1234,
      session.open_ms() + 2 * ms_per_hour + 17, session.close_ms() - 5000,
      session.close_ms() + ms_per_hour};
  for (const TimeMs from : probes) {
    for (const TimeMs span : {TimeMs{60'000}, TimeMs{3'600'000}}) {
      auto indexed = db->read_range(date, {}, from, from + span);
      ASSERT_TRUE(indexed.has_value());
      std::vector<Quote> expected;
      for (const auto& q : day.quotes())
        if (q.ts_ms >= from && q.ts_ms < from + span) expected.push_back(q);
      ASSERT_EQ(indexed->size(), expected.size()) << "from=" << from;
      for (std::size_t k = 0; k < expected.size(); ++k)
        EXPECT_EQ((*indexed)[k].ts_ms, expected[k].ts_ms);
    }
  }
}

TEST_F(TickDbTest, RangeReadSurvivesMissingIndex) {
  auto db = TickDb::open(root_);
  ASSERT_TRUE(db.has_value());
  const auto universe = make_universe(2);
  GeneratorConfig cfg;
  cfg.quote_rate = 0.05;
  const SyntheticDay day(universe, cfg, 0);
  const Date date{2008, 3, 7};
  ASSERT_TRUE(db->write_day(date, day.quotes()).has_value());
  // Delete the sidecar: reads must fall back to scanning.
  std::filesystem::remove(root_ + "/" + date.iso() + "/quotes.idx");
  EXPECT_FALSE(db->has_index(date));
  const Session session;
  auto range = db->read_range(date, {}, session.open_ms() + ms_per_hour,
                              session.open_ms() + 2 * ms_per_hour);
  ASSERT_TRUE(range.has_value());
  EXPECT_FALSE(range->empty());
}

TEST_F(TickDbTest, DaysEnumeratesSorted) {
  auto db = TickDb::open(root_);
  ASSERT_TRUE(db.has_value());
  const auto universe = make_universe(2);
  GeneratorConfig cfg;
  cfg.quote_rate = 0.01;
  for (int k : {2, 0, 1}) {
    const SyntheticDay day(universe, cfg, k);
    ASSERT_TRUE(
        db->write_day(Date{2008, 3, 3 + k}, day.quotes()).has_value());
  }
  const auto days = db->days();
  ASSERT_EQ(days.size(), 3u);
  EXPECT_EQ(days[0], (Date{2008, 3, 3}));
  EXPECT_EQ(days[2], (Date{2008, 3, 5}));
}

}  // namespace
}  // namespace mm::md
