// Multi-process pipeline demo: the full pair-trading graph with one OS
// process per rank, talking over the TCP socket transport.
//
// Two ways to run it:
//
//   1. Orchestrated (default, what CI's transport-smoke job runs): the parent
//      binds the rendezvous port, forks one child per rank, runs the same
//      day in-process as a reference, and asserts the multi-process master
//      report is BIT-identical (hex-float compare) before printing
//      PIPELINE_2PROC_OK.
//
//        ./pipeline_2proc
//
//   2. By hand, one terminal per process, using the same env route the
//      Environment uses when MM_MPMINI_TRANSPORT=socket:
//
//        MM_MPMINI_RANK=0 MM_MPMINI_RENDEZVOUS=127.0.0.1:7701 ./pipeline_2proc --rank
//        MM_MPMINI_RANK=1 MM_MPMINI_RENDEZVOUS=127.0.0.1:7701 ./pipeline_2proc --rank
//        ...                                           (6 ranks total)
//
//      The rank-5 (master) process prints the canonical summary.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "engine/pipeline.hpp"
#include "marketdata/generator.hpp"
#include "marketdata/symbols.hpp"
#include "mpmini/socket_transport.hpp"
#include "wire/socket.hpp"

namespace {

using namespace mm;

constexpr std::size_t kSymbols = 5;
// collector, cleaner, snapshot, correlation, strategy-0, master
constexpr int kRanks = 6;
constexpr int kMasterRank = kRanks - 1;

engine::PipelineConfig demo_config() {
  engine::PipelineConfig config;
  config.symbols = kSymbols;
  core::StrategyParams p = core::ParamGrid::base();
  p.divergence = 0.0005;
  config.strategies = {p};
  return config;
}

md::GeneratorConfig demo_generator() {
  md::GeneratorConfig generator;
  generator.quote_rate = 0.15;
  return generator;
}

// Canonical textual image of the master-owned result. Hex floats: equality
// means the bits match across the in-process and multi-process runs.
std::string summarize(const engine::PipelineResult& r) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "orders=%llu trades=%llu pnl=%a\n",
                static_cast<unsigned long long>(r.master.orders),
                static_cast<unsigned long long>(r.master.trades),
                r.master.total_pnl);
  out += line;
  for (const auto& s : r.master.strategy_summaries) {
    std::snprintf(line, sizeof(line), "strategy=%d trades=%llu pnl=%a\n",
                  s.strategy_id, static_cast<unsigned long long>(s.trades),
                  s.total_pnl);
    out += line;
  }
  return out;
}

// Run this process's slice of the graph and return the local summary (only
// meaningful on the master rank).
std::string run_rank(const mpi::Rendezvous& rz) {
  const md::Universe universe = md::make_universe(kSymbols);
  const md::SyntheticDay day(universe, demo_generator(), 0);
  engine::PipelineConfig config = demo_config();
  config.rendezvous = &rz;
  const engine::PipelineResult result =
      engine::run_pipeline(config, universe, day.quotes());
  return summarize(result);
}

int run_env_rank() {
  auto rz = mpi::rendezvous_from_env();
  if (!rz.has_value()) {
    std::fprintf(stderr, "bad rendezvous env: %s\n",
                 rz.error().message.c_str());
    return 1;
  }
  const std::string summary = run_rank(rz.value());
  if (rz.value().rank == kMasterRank) std::fputs(summary.c_str(), stdout);
  return 0;
}

int run_orchestrated() {
  // In-process reference first: thread-per-rank over the SPSC rings.
  const md::Universe universe = md::make_universe(kSymbols);
  const md::SyntheticDay day(universe, demo_generator(), 0);
  const engine::PipelineResult reference =
      engine::run_pipeline(demo_config(), universe, day.quotes());
  const std::string expect = summarize(reference);
  std::printf("in-process reference:\n%s", expect.c_str());

  // Bind the rendezvous port before forking so no child can lose the race.
  std::uint16_t port = 0;
  auto listener = wire::tcp_listen("127.0.0.1", 0, &port);
  if (!listener.has_value()) {
    std::fprintf(stderr, "rendezvous bind failed: %s\n",
                 listener.error().message.c_str());
    return 1;
  }
  int report_pipe[2] = {-1, -1};
  if (pipe(report_pipe) != 0) {
    std::fprintf(stderr, "pipe failed\n");
    return 1;
  }

  std::vector<pid_t> children;
  for (int rank = 0; rank < kRanks; ++rank) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::fprintf(stderr, "fork failed\n");
      return 1;
    }
    if (pid == 0) {
      ::close(report_pipe[0]);
      mpi::Rendezvous rz;
      rz.rank = rank;
      rz.port = port;
      if (rank == 0) rz.listen_fd = listener.value().release();
      int code = 0;
      try {
        const std::string summary = run_rank(rz);
        if (rank == kMasterRank) {
          std::size_t at = 0;
          while (at < summary.size()) {
            const ssize_t n = write(report_pipe[1], summary.data() + at,
                                    summary.size() - at);
            if (n <= 0) break;
            at += static_cast<std::size_t>(n);
          }
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "rank %d died: %s\n", rank, e.what());
        code = 1;
      }
      ::close(report_pipe[1]);
      _exit(code);
    }
    children.push_back(pid);
  }

  listener.value().close();
  ::close(report_pipe[1]);
  std::string got;
  char buf[4096];
  ssize_t n = 0;
  while ((n = read(report_pipe[0], buf, sizeof(buf))) > 0)
    got.append(buf, static_cast<std::size_t>(n));
  ::close(report_pipe[0]);

  bool ok = true;
  for (std::size_t i = 0; i < children.size(); ++i) {
    int status = 0;
    waitpid(children[i], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "rank %zu exited abnormally\n", i);
      ok = false;
    }
  }
  std::printf("multi-process (%d ranks over TCP):\n%s", kRanks, got.c_str());
  if (!ok || got != expect) {
    std::fprintf(stderr, "MISMATCH between in-process and multi-process runs\n");
    return 1;
  }
  std::printf("PIPELINE_2PROC_OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--rank") == 0) return run_env_rank();
  return run_orchestrated();
}
