#include "mpmini/environment.hpp"

#include <exception>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "mpmini/wait.hpp"

namespace mm::mpi {

void Environment::run(int world_size, const std::function<void(Comm&)>& rank_main) {
  run(world_size, rank_main, FaultPlan{});
}

void Environment::run(int world_size, const std::function<void(Comm&)>& rank_main,
                      const FaultPlan& fault, obs::Registry* metrics,
                      obs::HeartbeatBoard* heartbeat,
                      std::chrono::nanoseconds heartbeat_interval) {
  MM_ASSERT_MSG(world_size > 0, "world_size must be positive");
  MM_ASSERT_MSG(heartbeat == nullptr || heartbeat->size() >= world_size,
                "heartbeat board is smaller than the world");
  // Surface env-knob misconfigurations (warn-once) before traffic starts.
  validate_transport_env();

  if (transport_mode() == TransportMode::socket) {
    // Env route to the multi-process launcher: this process hosts exactly
    // one rank and meets the others at the rendezvous address.
    auto rz = rendezvous_from_env();
    if (!rz)
      throw std::runtime_error("MM_MPMINI_TRANSPORT=socket: " +
                               rz.error().to_string());
    run_rendezvous(*rz, world_size, rank_main, fault, metrics, heartbeat,
                   heartbeat_interval);
    return;
  }

  World world(world_size);
  world.set_fault_plan(fault);
  if (metrics != nullptr) world.attach_obs(*metrics);
  std::vector<int> members(static_cast<std::size_t>(world_size));
  std::iota(members.begin(), members.end(), 0);
  const std::uint64_t world_comm_id = world.allocate_comm_id();

  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_size));
  for (int rank = 0; rank < world_size; ++rank) {
    threads.emplace_back([&, rank] {
      log::set_thread_label(format("rank %d", rank));
      // Optional affinity (MM_MPMINI_PIN=1): rank threads round-robin over
      // cores, so a spinning rank stops migrating between its polls.
      if (pin_requested()) (void)pin_current_thread(rank);
      obs::PulseGuard pulse(heartbeat, rank, heartbeat_interval);
      Comm comm(&world, world_comm_id, rank, members);
      try {
        rank_main(comm);
        // Clean completion only: a killed rank's pulse is marked dead (this
        // retire is then a no-op) and an exception path never gets here, so
        // the monitor sees silence — `down`, never `done` — for real deaths.
        pulse.retire();
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        MM_LOG_ERROR("rank " << rank << " terminated with an exception");
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void Environment::run_rendezvous(const Rendezvous& rz, int world_size,
                                 const std::function<void(Comm&)>& rank_main,
                                 const FaultPlan& fault, obs::Registry* metrics,
                                 obs::HeartbeatBoard* heartbeat,
                                 std::chrono::nanoseconds heartbeat_interval) {
  MM_ASSERT_MSG(world_size > 0, "world_size must be positive");
  MM_ASSERT_MSG(rz.rank >= 0 && rz.rank < world_size,
                "rendezvous rank out of range for the world");
  MM_ASSERT_MSG(heartbeat == nullptr || heartbeat->size() >= world_size,
                "heartbeat board is smaller than the world");
  validate_transport_env();

  World world(world_size, std::make_unique<SocketTransport>(world_size, rz));
  world.set_fault_plan(fault);
  if (metrics != nullptr) world.attach_obs(*metrics);
  // Handshake after wiring obs so early inbound traffic lands in
  // instrumented mailboxes.
  world.transport_layer().start();

  std::vector<int> members(static_cast<std::size_t>(world_size));
  std::iota(members.begin(), members.end(), 0);
  // Rank 0 of every process allocates the same first id from its own world:
  // comm-id agreement across processes needs no traffic because collectives
  // allocate at rank 0 and broadcast (split/duplicate), and the world comm
  // is id #1 everywhere by construction.
  const std::uint64_t world_comm_id = world.allocate_comm_id();

  std::exception_ptr error;
  {
    log::set_thread_label(format("rank %d", rz.rank));
    if (pin_requested()) (void)pin_current_thread(rz.rank);
    obs::PulseGuard pulse(heartbeat, rz.rank, heartbeat_interval);
    Comm comm(&world, world_comm_id, rz.rank, members);
    try {
      rank_main(comm);
      pulse.retire();
    } catch (...) {
      error = std::current_exception();
      MM_LOG_ERROR("rank " << rz.rank << " terminated with an exception");
    }
  }
  // Goodbye barrier even on the error path: peers blocked on traffic this
  // rank already sent still drain it before everyone tears down.
  world.transport_layer().stop();
  if (error) std::rethrow_exception(error);
}

}  // namespace mm::mpi
