// Combined evaluation report: Tables III, IV, V and Figure 2 from a single
// experiment run (the per-table drivers re-run the experiment each; use this
// one for the paper-scale --full sweep so the heavy compute happens once).
#include <cstdio>

#include "core/report.hpp"
#include "repro_common.hpp"

int main(int argc, char** argv) {
  mm::Cli cli("repro_report",
              "Tables III-V and Figure 2 from one experiment run");
  auto& csv = cli.add_string("csv", "", "also export per-pair samples to this CSV");
  const auto cfg = mm::bench::build_config(cli, argc, argv);
  const auto result = mm::bench::run_with_banner(
      cfg, "Full evaluation report (Tables III-V, Figure 2)");

  using mm::core::Measure;
  const struct {
    Measure measure;
    const char* title;
    bool sharpe;
    bool percent;
  } tables[] = {
      {Measure::monthly_return, "Table III — average cumulative monthly returns",
       true, false},
      {Measure::max_daily_drawdown, "Table IV — average maximum daily drawdown",
       false, true},
      {Measure::win_loss, "Table V — average win-loss ratio", false, false},
  };
  for (const auto& t : tables) {
    std::printf("%s\n%s\n%s\n", t.title,
                mm::core::render_table(result, t.measure, t.sharpe, t.percent).c_str(),
                mm::core::paper_reference(t.measure).c_str());
  }

  const struct {
    Measure measure;
    const char* title;
  } panels[] = {
      {Measure::monthly_return, "(a) average cumulative monthly returns"},
      {Measure::max_daily_drawdown, "(b) average maximum daily drawdown"},
      {Measure::win_loss, "(c) average win-loss ratio"},
  };
  for (const auto& panel : panels) {
    std::printf("Figure 2%s\n%s\n", panel.title,
                mm::core::render_boxplots(result, panel.measure).c_str());
  }

  if (!csv.empty()) {
    if (auto st = mm::core::write_experiment_csv(result, csv); !st) {
      std::fprintf(stderr, "csv export failed: %s\n", st.error().message.c_str());
      return 1;
    }
    std::printf("per-pair samples exported to %s\n", csv.c_str());
  }
  return 0;
}
