file(REMOVE_RECURSE
  "CMakeFiles/repro_table2.dir/repro_table2.cpp.o"
  "CMakeFiles/repro_table2.dir/repro_table2.cpp.o.d"
  "repro_table2"
  "repro_table2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_table2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
