// Correlation clustering — the other half of the MarketMiner workload.
//
// The platform the paper builds on ([12], Rostoker/Wagner/Hoos) does
// "real-time correlation AND clustering of high-frequency stock market data":
// the same market-wide matrix that feeds the pair strategy also feeds a
// clustering stage that discovers co-moving groups (de-facto sectors). This
// module provides the two standard flavours on a SymMatrix:
//
//   * threshold graph components — connect i~j when C(i,j) >= threshold and
//     take connected components (the online-friendly method [12] uses);
//   * agglomerative single-linkage — merge closest clusters by maximum
//     pairwise correlation until `cluster_count` remain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/sym_matrix.hpp"

namespace mm::stats {

struct Clustering {
  // cluster id per symbol, 0-based, dense.
  std::vector<int> assignment;
  int cluster_count = 0;

  // Members per cluster, each sorted ascending.
  std::vector<std::vector<std::uint32_t>> groups() const;
};

// Connected components of the graph {i ~ j : C(i,j) >= threshold}.
Clustering threshold_clusters(const SymMatrix& correlation, double threshold);

// Single-linkage agglomeration down to `target_clusters` (similarity =
// correlation; merges the pair of clusters with the highest single link).
Clustering single_linkage_clusters(const SymMatrix& correlation,
                                   int target_clusters);

// Quality of a clustering against ground truth (e.g. the generator's
// sectors): the Rand index in [0, 1], 1 = identical partitions.
double rand_index(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace mm::stats
