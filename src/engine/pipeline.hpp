// The integrated MarketMiner pair trading pipeline (the paper's Figure 1).
//
// Wires the component library into the published topology:
//
//   collector --> cleaner --> snapshot (OHLC bars + 1-interval returns)
//        --> correlation engine --> strategy worker x K --> master
//
// Each box runs on its own mpmini rank; edges are bounded dagflow channels.
// run_pipeline() streams one trading day through the graph and returns the
// master's report plus per-stage throughput.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "dagflow/graph.hpp"
#include "engine/components.hpp"
#include "marketdata/generator.hpp"
#include "mpmini/fault.hpp"
#include "obs/live.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace mm::engine {

struct PipelineConfig {
  std::size_t symbols = 10;
  // Strategies to run in parallel (each gets its own worker rank). All must
  // share delta_s and corr_window — the single correlation engine of Fig. 1
  // serves one (∆s, M); see DESIGN.md.
  std::vector<core::StrategyParams> strategies;
  md::CleanerConfig cleaner{};
  stats::MaronnaConfig maronna{};
  std::size_t batch_size = 256;
  int channel_capacity = 64;
  RiskConfig risk{};
  // Ranks backing the correlation engine (>1 uses the parallel group stage).
  int correlation_replicas = 1;
  // >0 adds the clustering branch ([12]): a snapshot of the market's
  // co-movement groups every `cluster_every` intervals.
  std::int64_t cluster_every = 0;
  int cluster_count = 4;
  // Optional tickdb source; when empty the in-memory quote vector is used.
  std::string tickdb_root;
  md::Date date{2008, 3, 3};
  // Optional shared day (takes precedence over both tickdb_root and the
  // quotes argument): N concurrent runs over one day replay one immutable
  // quote vector owned by the caller's DayCache instead of copying it.
  std::shared_ptr<const std::vector<md::Quote>> day;

  // --- correlation memoization --------------------------------------------
  // When set, the correlation stage memoizes whole days of packed CorrFrames
  // in `corr_store` under `corr_key`: the first run over a key computes and
  // publishes, every later run replays bit-identical frames without
  // re-estimating. Requires correlation_replicas == 1. The caller owns the
  // key's correctness — it must uniquely identify (data, ∆s, M, estimator).
  stats::CorrStore* corr_store = nullptr;
  stats::CorrKey corr_key{};

  // --- fault tolerance -----------------------------------------------------
  // Injected faults (tests and chaos drills); default plan is inactive.
  mpi::FaultPlan fault{};
  // Bound on every transport wait inside a stage (0 = wait forever). With a
  // deadline, a stage whose upstream dies finishes its day degraded instead
  // of hanging, and run_pipeline() returns in bounded time under any
  // single-stage failure.
  std::chrono::milliseconds stage_deadline{0};
  // Deadline for one correlation replica's shard; a replica that misses it
  // is resharded onto the survivors (see make_parallel_correlation_stage).
  std::chrono::milliseconds replica_deadline{0};

  // --- telemetry -----------------------------------------------------------
  // Metrics registry shared by the transport, the dagflow runtime and the
  // stage components. Null = a private per-run registry whose aggregate is
  // returned in PipelineResult::metrics; pass your own to accumulate across
  // days (run_pipeline_session does not reset it between days).
  obs::Registry* metrics = nullptr;
  // Root causal context for the run: with a valid context (and a trace sink)
  // every frame the collector emits carries it, spans link across ranks via
  // flow events, and the whole day stitches into one Perfetto trace. The
  // service plane sets this to the job's trace id.
  obs::TraceContext trace_context{};
  // Optional trace sink: one ring per rank, one named row per node. Drain
  // with TraceSink::write_file after the run for chrome://tracing/Perfetto.
  obs::TraceSink* trace = nullptr;
  // Live monitoring plane (heartbeat liveness, periodic snapshots, /metrics
  // + /healthz HTTP exposition, crash flight recorder). Off by default; see
  // obs/live.hpp. The plane monitors THIS run only — one board per world.
  obs::LiveConfig live{};
  // > 0 paces the collector by quote timestamps at this multiple of real
  // time so the run lasts long enough to scrape mid-day (see components.hpp);
  // 0 streams at full speed.
  double replay_speedup = 0.0;

  // --- multi-process mode --------------------------------------------------
  // When set, this process runs ONLY rendezvous->rank of the pipeline graph
  // over the TCP socket transport; peer processes run the same config with
  // their own ranks (see dag::RunOptions::rendezvous). The PipelineResult
  // reflects local ranks only — run the master rank's process to get the
  // report. Must outlive the run.
  const mpi::Rendezvous* rendezvous = nullptr;
};

struct StageReport {
  std::string name;
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t items_in = 0;
  std::uint64_t items_out = 0;
  std::uint64_t faults = 0;  // fault events the stage absorbed (resharding)
};

struct PipelineResult {
  MasterReport master;
  std::vector<StageReport> stages;
  // Cluster snapshots (empty unless cluster_every > 0).
  std::vector<ClusterSnapshot> clusters;
  double wall_seconds = 0.0;
  std::uint64_t quotes_in = 0;
  double quotes_per_second = 0.0;

  // Degradation section: true when any node failed, inherited a poisoned
  // stream, or hit a deadline; `faults` lists those nodes' statuses.
  bool degraded = false;
  std::vector<dag::NodeStatus> faults;

  // Structured telemetry for THIS run: mpmini transport counters, per-node
  // dagflow frame/stall/wall metrics, and engine stage histograms (empty when
  // built with MM_OBS_ENABLED=OFF). When the caller shares one registry
  // across days this is still per-run — a delta against the registry's state
  // at run start — so back-to-back runs never bleed into each other.
  obs::Snapshot metrics;

  // Live-plane outcome: final per-rank liveness, merged crash entries and the
  // flight-recorder bundle path (default-empty when config.live is off).
  obs::LiveReport live;
};

// Stream `quotes` (one day, time-sorted) through the Fig. 1 graph.
PipelineResult run_pipeline(const PipelineConfig& config,
                            const md::Universe& universe,
                            std::vector<md::Quote> quotes);

// Multi-day session: generate and stream `day_count` consecutive synthetic
// trading days through fresh pipeline instances (state resets at the close,
// as the strategy's EOD-flatten mandates) and aggregate the master reports.
struct SessionResult {
  std::vector<PipelineResult> days;
  std::uint64_t total_trades = 0;
  std::uint64_t total_orders = 0;
  double total_pnl = 0.0;
  std::vector<double> daily_pnl;
  double wall_seconds = 0.0;
};

SessionResult run_pipeline_session(const PipelineConfig& config,
                                   const md::Universe& universe,
                                   const md::GeneratorConfig& generator,
                                   int day_count);

}  // namespace mm::engine
