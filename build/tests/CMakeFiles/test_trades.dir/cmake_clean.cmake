file(REMOVE_RECURSE
  "CMakeFiles/test_trades.dir/test_trades.cpp.o"
  "CMakeFiles/test_trades.dir/test_trades.cpp.o.d"
  "test_trades"
  "test_trades.pdb"
  "test_trades[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
