#include "stats/bootstrap.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/descriptive.hpp"

namespace mm::stats {
namespace {

BootstrapInterval finish(std::vector<double> stats_sample, double estimate,
                         double confidence, int resamples) {
  BootstrapInterval out;
  out.estimate = estimate;
  out.confidence = confidence;
  out.resamples = resamples;
  const double alpha = 1.0 - confidence;
  out.lo = quantile(stats_sample, alpha / 2.0);
  out.hi = quantile(std::move(stats_sample), 1.0 - alpha / 2.0);
  return out;
}

}  // namespace

BootstrapInterval bootstrap_ci(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    int resamples, double confidence, std::uint64_t seed) {
  MM_ASSERT_MSG(sample.size() >= 2, "bootstrap needs n >= 2");
  MM_ASSERT_MSG(resamples >= 100, "bootstrap needs >= 100 resamples");
  MM_ASSERT_MSG(confidence > 0.0 && confidence < 1.0, "confidence in (0,1)");

  mm::Rng rng(seed);
  std::vector<double> stats_sample;
  stats_sample.reserve(static_cast<std::size_t>(resamples));
  std::vector<double> draw(sample.size());
  for (int b = 0; b < resamples; ++b) {
    for (auto& x : draw)
      x = sample[static_cast<std::size_t>(rng.uniform_int(sample.size()))];
    stats_sample.push_back(statistic(draw));
  }
  return finish(std::move(stats_sample), statistic(sample), confidence, resamples);
}

BootstrapInterval bootstrap_mean_diff_ci(const std::vector<double>& x,
                                         const std::vector<double>& y,
                                         int resamples, double confidence,
                                         std::uint64_t seed) {
  MM_ASSERT_MSG(x.size() == y.size(), "bootstrap_mean_diff: length mismatch");
  std::vector<double> diffs(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) diffs[i] = x[i] - y[i];
  return bootstrap_ci(diffs, [](const std::vector<double>& d) { return mean(d); },
                      resamples, confidence, seed);
}

}  // namespace mm::stats
