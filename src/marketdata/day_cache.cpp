#include "marketdata/day_cache.hpp"

#include <cstdio>
#include <utility>

#include "marketdata/tickdb.hpp"

namespace mm::md {

namespace {

std::size_t day_bytes(const std::vector<Quote>& quotes) {
  return sizeof(std::vector<Quote>) + quotes.capacity() * sizeof(Quote);
}

}  // namespace

DayCache::DayCache(Loader loader, std::size_t byte_budget, obs::Registry* registry)
    : loader_(std::move(loader)), byte_budget_(byte_budget), registry_(registry) {
  MM_ASSERT_MSG(loader_ != nullptr, "DayCache needs a loader");
}

Expected<DayCache::Day> DayCache::get(const std::string& key) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      // First caller through: become the loading owner.
      Entry& entry = entries_[key];
      entry.loading = true;
      ++stats_.misses;
      if (registry_ != nullptr) registry_->counter("day_cache.misses").add();
      lock.unlock();
      auto loaded = loader_(key);
      lock.lock();
      // The entry cannot have been evicted or replaced meanwhile: only the
      // owner publishes/erases it, and eviction skips loading entries.
      auto self = entries_.find(key);
      MM_ASSERT(self != entries_.end() && self->second.loading);
      ++self->second.generation;
      if (!loaded.has_value()) {
        // Do not cache failures; one waiter (if any) inherits ownership by
        // re-finding the key absent and retrying the loader.
        entries_.erase(self);
        ++stats_.load_errors;
        if (registry_ != nullptr)
          registry_->counter("day_cache.load_errors").add();
        ready_cv_.notify_all();
        return loaded.error();
      }
      auto day = std::make_shared<const std::vector<Quote>>(
          std::move(loaded.value()));
      self->second.day = day;
      self->second.loading = false;
      bytes_ += day_bytes(*day);
      lru_.push_front(key);
      self->second.lru = lru_.begin();
      evict_locked();
      sync_gauges_locked();
      ready_cv_.notify_all();
      return day;
    }
    if (it->second.day != nullptr) {
      ++stats_.hits;
      if (registry_ != nullptr) registry_->counter("day_cache.hits").add();
      touch_locked(it->second, key);
      return it->second.day;
    }
    // A load is in flight; block until it publishes or fails.
    ++stats_.waits;
    if (registry_ != nullptr) registry_->counter("day_cache.waits").add();
    const std::uint64_t seen = it->second.generation;
    ready_cv_.wait(lock, [&] {
      auto cur = entries_.find(key);
      return cur == entries_.end() || cur->second.day != nullptr ||
             cur->second.generation != seen;
    });
  }
}

DayCache::Day DayCache::peek(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  return it != entries_.end() ? it->second.day : nullptr;
}

DayCache DayCache::from_tickdb(std::string root, std::size_t byte_budget,
                               obs::Registry* registry) {
  return DayCache(
      [root = std::move(root)](const std::string& key) -> Expected<std::vector<Quote>> {
        Date date;
        if (std::sscanf(key.c_str(), "%d-%d-%d", &date.year, &date.month,
                        &date.day) != 3 ||
            !date.valid())
          return Error(Errc::invalid_argument,
                       "day cache key must be an ISO date: " + key);
        auto db = TickDb::open(root);
        if (!db.has_value()) return db.error();
        return db.value().read_day(date);
      },
      byte_budget, registry);
}

DayCache::Stats DayCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t DayCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::size_t DayCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void DayCache::evict_locked() {
  if (byte_budget_ == 0) return;
  // Never evict the most recent day — the caller that just loaded it holds a
  // reference anyway, so dropping it would only thrash the budget.
  while (bytes_ > byte_budget_ && lru_.size() > 1) {
    const std::string victim = lru_.back();
    auto it = entries_.find(victim);
    MM_ASSERT(it != entries_.end() && it->second.day != nullptr);
    bytes_ -= day_bytes(*it->second.day);
    lru_.pop_back();
    entries_.erase(it);
    ++stats_.evictions;
    if (registry_ != nullptr) registry_->counter("day_cache.evictions").add();
  }
}

void DayCache::touch_locked(Entry& entry, const std::string& key) {
  lru_.erase(entry.lru);
  lru_.push_front(key);
  entry.lru = lru_.begin();
}

void DayCache::sync_gauges_locked() {
  if (registry_ == nullptr) return;
  registry_->gauge("day_cache.bytes").set(static_cast<std::int64_t>(bytes_));
  registry_->gauge("day_cache.days").set(static_cast<std::int64_t>(entries_.size()));
}

}  // namespace mm::md
