#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace mm::log {
namespace {

std::atomic<int> g_level{static_cast<int>(Level::warn)};
std::mutex g_mutex;
thread_local std::string t_label;

}  // namespace

void set_level(Level level) { g_level.store(static_cast<int>(level)); }

Level level() { return static_cast<Level>(g_level.load(std::memory_order_relaxed)); }

void set_thread_label(std::string label) { t_label = std::move(label); }

const char* to_string(Level level) {
  switch (level) {
    case Level::trace: return "TRACE";
    case Level::debug: return "DEBUG";
    case Level::info: return "INFO";
    case Level::warn: return "WARN";
    case Level::error: return "ERROR";
    case Level::off: return "OFF";
  }
  return "?";
}

void write(Level level, const std::string& message) {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto us = duration_cast<microseconds>(now.time_since_epoch()).count();

  std::string line;
  line.reserve(message.size() + t_label.size() + 40);
  char head[48];
  std::snprintf(head, sizeof(head), "[%lld.%06lld] %-5s ",
                static_cast<long long>(us / 1000000),
                static_cast<long long>(us % 1000000), to_string(level));
  line += head;
  if (!t_label.empty()) {
    line += '[';
    line += t_label;
    line += "] ";
  }
  line += message;
  line += '\n';

  std::lock_guard<std::mutex> lock(g_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace mm::log
