// Table V reproduction: average win-loss ratio per correlation type.
#include <cstdio>

#include "core/report.hpp"
#include "repro_common.hpp"

int main(int argc, char** argv) {
  mm::Cli cli("repro_table5", "Reproduce Table V: average win-loss ratio");
  const auto cfg = mm::bench::build_config(cli, argc, argv);
  const auto result =
      mm::bench::run_with_banner(cfg, "Table V — average win-loss ratio");

  using mm::core::Measure;
  std::printf("%s\n", mm::core::render_table(result, Measure::win_loss,
                                             /*include_sharpe=*/false,
                                             /*as_percent=*/false)
                          .c_str());
  std::printf("%s\n", mm::core::paper_reference(Measure::win_loss).c_str());
  return 0;
}
