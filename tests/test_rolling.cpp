// Tests for the rolling-window primitives.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/rolling.hpp"

namespace mm::stats {
namespace {

TEST(RollingWindow, FillsThenEvicts) {
  RollingWindow<int> w(3);
  EXPECT_FALSE(w.full());
  w.push(1);
  w.push(2);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w.oldest(), 1);
  EXPECT_EQ(w.newest(), 2);
  w.push(3);
  EXPECT_TRUE(w.full());
  w.push(4);  // evicts 1
  EXPECT_EQ(w.oldest(), 2);
  EXPECT_EQ(w.newest(), 4);
  EXPECT_EQ(w[0], 2);
  EXPECT_EQ(w[1], 3);
  EXPECT_EQ(w[2], 4);
}

TEST(RollingWindow, SnapshotOrder) {
  RollingWindow<int> w(4);
  for (int i = 0; i < 9; ++i) w.push(i);
  EXPECT_EQ(w.snapshot(), (std::vector<int>{5, 6, 7, 8}));
}

TEST(RollingWindow, Clear) {
  RollingWindow<int> w(2);
  w.push(1);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  w.push(9);
  EXPECT_EQ(w.newest(), 9);
}

TEST(RollingMean, ExactOverWindow) {
  RollingMean m(3);
  m.update(1.0);
  EXPECT_DOUBLE_EQ(m.mean(), 1.0);
  m.update(2.0);
  EXPECT_DOUBLE_EQ(m.mean(), 1.5);
  m.update(3.0);
  EXPECT_TRUE(m.full());
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
  m.update(4.0);  // window {2,3,4}
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
}

TEST(RollingMean, NoDriftOverLongStreams) {
  RollingMean m(100);
  mm::Rng rng(3);
  std::vector<double> recent;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.uniform(-1.0, 1.0) * 1e-4 + 1e6;  // adversarial scale
    m.update(x);
    recent.push_back(x);
    if (recent.size() > 100) recent.erase(recent.begin());
  }
  double expect = 0.0;
  for (double x : recent) expect += x;
  expect /= 100.0;
  EXPECT_NEAR(m.mean(), expect, 1e-6);
}

TEST(RollingMinMax, TracksWindowExtremes) {
  RollingMinMax mm(3);
  mm.update(5.0);
  EXPECT_DOUBLE_EQ(mm.min(), 5.0);
  EXPECT_DOUBLE_EQ(mm.max(), 5.0);
  mm.update(3.0);
  mm.update(7.0);
  EXPECT_TRUE(mm.full());
  EXPECT_DOUBLE_EQ(mm.min(), 3.0);
  EXPECT_DOUBLE_EQ(mm.max(), 7.0);
  mm.update(4.0);  // evicts 5; window {3,7,4}
  EXPECT_DOUBLE_EQ(mm.min(), 3.0);
  mm.update(6.0);  // evicts 3; window {7,4,6}
  EXPECT_DOUBLE_EQ(mm.min(), 4.0);
  EXPECT_DOUBLE_EQ(mm.max(), 7.0);
}

TEST(RollingMinMax, MatchesBruteForceOnRandomStream) {
  constexpr std::size_t window = 17;
  RollingMinMax mm(window);
  mm::Rng rng(8);
  std::vector<double> history;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal();
    mm.update(x);
    history.push_back(x);
    const std::size_t lo = history.size() > window ? history.size() - window : 0;
    double bmin = history[lo], bmax = history[lo];
    for (std::size_t k = lo; k < history.size(); ++k) {
      bmin = std::min(bmin, history[k]);
      bmax = std::max(bmax, history[k]);
    }
    ASSERT_DOUBLE_EQ(mm.min(), bmin) << "at step " << i;
    ASSERT_DOUBLE_EQ(mm.max(), bmax) << "at step " << i;
  }
}

TEST(RollingMinMax, MonotoneStreams) {
  RollingMinMax up(5);
  for (int i = 0; i < 20; ++i) {
    up.update(i);
    EXPECT_DOUBLE_EQ(up.max(), i);
    EXPECT_DOUBLE_EQ(up.min(), std::max(0, i - 4));
  }
}

}  // namespace
}  // namespace mm::stats
