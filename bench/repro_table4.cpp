// Table IV reproduction: average maximum daily drawdown per correlation type.
#include <cstdio>

#include "core/report.hpp"
#include "repro_common.hpp"

int main(int argc, char** argv) {
  mm::Cli cli("repro_table4", "Reproduce Table IV: average maximum daily drawdown");
  const auto cfg = mm::bench::build_config(cli, argc, argv);
  const auto result = mm::bench::run_with_banner(
      cfg, "Table IV — average maximum daily drawdown");

  using mm::core::Measure;
  std::printf("%s\n", mm::core::render_table(result, Measure::max_daily_drawdown,
                                             /*include_sharpe=*/false,
                                             /*as_percent=*/true)
                          .c_str());
  std::printf("%s\n", mm::core::paper_reference(Measure::max_daily_drawdown).c_str());
  return 0;
}
