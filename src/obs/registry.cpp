#include "obs/registry.hpp"

#include <algorithm>

#include "common/json.hpp"
#include "common/strings.hpp"

namespace mm::obs {

std::vector<std::int64_t> default_latency_bounds_ns() {
  std::vector<std::int64_t> bounds;
  bounds.reserve(12);
  std::int64_t bound = 1'000;  // 1 µs
  for (int i = 0; i < 12; ++i) {
    bounds.push_back(bound);
    bound *= 4;
  }
  return bounds;  // last bound ≈ 4.3 s
}

double MetricValue::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  if (bounds.empty() || buckets.size() != bounds.size() + 1) return mean();
  const double rank = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (cumulative + in_bucket < rank || in_bucket == 0.0) {
      cumulative += in_bucket;
      continue;
    }
    if (i == buckets.size() - 1)  // overflow: pinned to the last finite bound
      return static_cast<double>(bounds.back());
    const double lo = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
    const double hi = static_cast<double>(bounds[i]);
    return lo + (hi - lo) * ((rank - cumulative) / in_bucket);
  }
  return static_cast<double>(bounds.back());
}

Snapshot Snapshot::delta(const Snapshot& base) const {
  Snapshot out = *this;
  for (auto& m : out.metrics) {
    if (m.kind == MetricKind::gauge) continue;  // levels: current value stands
    const MetricValue* prev = base.find(m.name);
    if (prev == nullptr || prev->kind != m.kind) continue;
    if (m.kind == MetricKind::counter) {
      m.value = m.value >= prev->value ? m.value - prev->value : m.value;
      continue;
    }
    // Histogram: subtract only when the bucket layout matches (it always does
    // for one registry; a re-registered histogram with new bounds passes
    // through unchanged).
    if (prev->bounds != m.bounds || prev->buckets.size() != m.buckets.size())
      continue;
    if (prev->count > m.count) continue;  // reset in between: keep current
    m.count -= prev->count;
    m.sum -= prev->sum;
    for (std::size_t i = 0; i < m.buckets.size(); ++i)
      m.buckets[i] -= std::min(m.buckets[i], prev->buckets[i]);
  }
  return out;
}

const MetricValue* Snapshot::find(const std::string& name) const {
  for (const auto& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

std::int64_t Snapshot::counter_total(const std::string& prefix) const {
  std::int64_t total = 0;
  for (const auto& m : metrics)
    if (m.kind == MetricKind::counter && m.name.rfind(prefix, 0) == 0)
      total += m.value;
  return total;
}

std::int64_t Snapshot::counter_suffix_total(const std::string& suffix) const {
  std::int64_t total = 0;
  for (const auto& m : metrics) {
    if (m.kind != MetricKind::counter || m.name.size() < suffix.size()) continue;
    if (m.name.compare(m.name.size() - suffix.size(), suffix.size(), suffix) == 0)
      total += m.value;
  }
  return total;
}

std::string Snapshot::to_string() const {
  std::string out;
  for (const auto& m : metrics) {
    switch (m.kind) {
      case MetricKind::counter:
        out += format("%-48s counter   %lld\n", m.name.c_str(),
                      static_cast<long long>(m.value));
        break;
      case MetricKind::gauge:
        out += format("%-48s gauge     %lld\n", m.name.c_str(),
                      static_cast<long long>(m.value));
        break;
      case MetricKind::histogram:
        out += format(
            "%-48s histogram count=%llu mean=%.0f p50=%.0f p95=%.0f p99=%.0f "
            "sum=%lld\n",
            m.name.c_str(), static_cast<unsigned long long>(m.count), m.mean(),
            m.quantile(0.50), m.quantile(0.95), m.quantile(0.99),
            static_cast<long long>(m.sum));
        break;
    }
  }
  return out;
}

std::string Snapshot::to_json() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& m : metrics) {
    if (!first) out += ",";
    first = false;
    const char* kind = m.kind == MetricKind::counter  ? "counter"
                       : m.kind == MetricKind::gauge  ? "gauge"
                                                      : "histogram";
    // Names can carry a label block ({tenant="x"}) whose quotes must be
    // escaped for the JSON to stay parseable.
    out += format("{\"name\":\"%s\",\"kind\":\"%s\"", json::escape(m.name).c_str(),
                  kind);
    if (m.kind == MetricKind::histogram) {
      out += format(",\"count\":%llu,\"sum\":%lld,\"p50\":%.1f,\"p95\":%.1f,"
                    "\"p99\":%.1f,\"bounds\":[",
                    static_cast<unsigned long long>(m.count),
                    static_cast<long long>(m.sum), m.quantile(0.50),
                    m.quantile(0.95), m.quantile(0.99));
      for (std::size_t i = 0; i < m.bounds.size(); ++i)
        out += format(i == 0 ? "%lld" : ",%lld", static_cast<long long>(m.bounds[i]));
      out += "],\"buckets\":[";
      for (std::size_t i = 0; i < m.buckets.size(); ++i)
        out += format(i == 0 ? "%llu" : ",%llu",
                      static_cast<unsigned long long>(m.buckets[i]));
      out += "]}";
    } else {
      out += format(",\"value\":%lld}", static_cast<long long>(m.value));
    }
  }
  out += "]}";
  return out;
}

#if MM_OBS_ENABLED

Histogram::Histogram(std::vector<std::int64_t> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (bounds_[i - 1] >= bounds_[i])
      bounds_.clear();  // misdeclared bounds degrade to a single bucket
  // One cache line holds 8 atomics; pad each shard's row so shards never
  // share a line.
  stride_ = ((bucket_count() + 7) / 8) * 8;
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(kShardCount * stride_);
  for (std::size_t i = 0; i < kShardCount * stride_; ++i) counts_[i] = 0;
}

std::vector<std::uint64_t> Histogram::bucket_values() const {
  std::vector<std::uint64_t> out(bucket_count(), 0);
  for (std::size_t shard = 0; shard < kShardCount; ++shard)
    for (std::size_t b = 0; b < out.size(); ++b)
      out[b] += counts_[shard * stride_ + b].load(std::memory_order_relaxed);
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto b : bucket_values()) total += b;
  return total;
}

std::int64_t Histogram::sum() const {
  std::int64_t total = 0;
  for (const auto& shard : sums_) total += shard.value.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i < kShardCount * stride_; ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  for (auto& shard : sums_) shard.value.store(0, std::memory_order_relaxed);
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<std::int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.metrics.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricValue m;
    m.name = name;
    m.kind = MetricKind::counter;
    m.value = static_cast<std::int64_t>(counter->value());
    snap.metrics.push_back(std::move(m));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricValue m;
    m.name = name;
    m.kind = MetricKind::gauge;
    m.value = gauge->value();
    snap.metrics.push_back(std::move(m));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricValue m;
    m.name = name;
    m.kind = MetricKind::histogram;
    m.count = hist->count();
    m.sum = hist->sum();
    m.bounds = hist->bounds();
    m.buckets = hist->bucket_values();
    snap.metrics.push_back(std::move(m));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, hist] : histograms_) hist->reset();
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

#else

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

#endif  // MM_OBS_ENABLED

}  // namespace mm::obs
