// Table I reproduction: strategy parameter descriptions, the value grid, and
// the 42 (14 x 3) parameter sets the experiment sweeps.
#include <cstdio>

#include "common/cli.hpp"
#include "core/params.hpp"

int main(int argc, char** argv) {
  mm::Cli cli("repro_table1", "Reproduce Table I: strategy parameters and values");
  cli.parse(argc, argv);

  std::printf("Table I — strategy parameter descriptions and values\n\n");
  std::printf("  %-4s %-58s %s\n", "par", "description", "values");
  const auto row = [](const char* p, const char* desc, const char* values) {
    std::printf("  %-4s %-58s %s\n", p, desc, values);
  };
  row("ds", "Time window", "30 sec");
  row("Ct", "Type of correlation measure", "Pearson | Maronna | Combined");
  row("A", "Minimum correlation for trading", "0.1");
  row("M", "Time window for correlation calculation", "50 | 100 | 200");
  row("W", "Time window of average correlation calculation", "60 | 120");
  row("Y", "Window within which divergences are considered", "10 | 20");
  row("d", "Divergence level required to trigger a trade",
      "0.01% .. 0.05%, 0.10%");
  row("l", "Retracement level for reversing a position", "1/3 | 2/3");
  row("RT", "Time window for measuring the spread level", "60");
  row("HP", "Maximum holding period for any position", "30 | 40");
  row("ST", "Minimum time before close to open a position", "20");

  const mm::core::ParamGrid grid;
  std::printf("\nfactor levels (the paper's 14 non-treatment parameter vectors):\n");
  int index = 1;
  for (const auto& level : grid.levels())
    std::printf("  k'%-3d %s\n", index++, level.describe().c_str());

  const auto all = grid.all();
  std::printf("\ntotal parameter sets: %zu (= 14 levels x 3 correlation types; "
              "the paper's 42)\n",
              all.size());
  std::printf("distinct correlation windows M: ");
  for (const auto m : grid.distinct_corr_windows())
    std::printf("%lld ", static_cast<long long>(m));
  std::printf("— each (Ctype, M) correlation series is computed once and shared "
              "across levels (Approach 3)\n");
  return 0;
}
