file(REMOVE_RECURSE
  "CMakeFiles/mm_dagflow.dir/context.cpp.o"
  "CMakeFiles/mm_dagflow.dir/context.cpp.o.d"
  "CMakeFiles/mm_dagflow.dir/graph.cpp.o"
  "CMakeFiles/mm_dagflow.dir/graph.cpp.o.d"
  "libmm_dagflow.a"
  "libmm_dagflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_dagflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
