// Live pipeline: the Fig. 1 graph fed at live pace, with the full monitoring
// plane attached — heartbeat liveness, periodic snapshots, and a Prometheus
// /metrics + /healthz endpoint you can curl mid-day:
//
//   $ ./live_pipeline --speedup 2340 --metrics-port 9090 &
//   $ curl -s localhost:9090/metrics | grep mm_heartbeat_up
//   $ curl -s localhost:9090/healthz
//
// The collector itself paces the replay (PipelineConfig::replay_speedup), so
// the whole graph runs at live rate: 2340x plays the 6.5-hour session in ten
// seconds. --kill-rank injects a fault-plan kill mid-day to watch the
// heartbeat monitor catch it and the flight recorder write a postmortem
// bundle (rank layout prints at startup).
#include <cstdio>

#include "common/cli.hpp"
#include "engine/pipeline.hpp"
#include "marketdata/generator.hpp"
#include "obs/heartbeat.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  using namespace mm;
  Cli cli("live_pipeline",
          "Stream a paced synthetic feed through the Fig. 1 graph with the "
          "live monitoring plane attached");
  auto& symbols = cli.add_int("symbols", 8, "universe size");
  auto& speedup = cli.add_double("speedup", 23400.0,
                                 "replay speedup (23400 = full day in 1 s)");
  auto& workers = cli.add_int("workers", 3, "strategy worker nodes");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  auto& port = cli.add_int("metrics-port", 9090,
                           "/metrics listener port (0 = ephemeral, -1 = off)");
  auto& heartbeat_ms = cli.add_int("heartbeat-ms", 100, "heartbeat interval");
  auto& snapshot_ms = cli.add_int("snapshot-ms", 250, "snapshot period");
  auto& flight_dir = cli.add_string("flight-dir", "flight",
                                    "flight-recorder bundle directory");
  auto& kill_rank = cli.add_int("kill-rank", -1,
                                "inject a kill on this rank (chaos drill)");
  auto& kill_at = cli.add_int("kill-at", 200, "transport op count of the kill");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(symbols);
  const auto universe = md::make_universe(n);
  md::GeneratorConfig gen;
  gen.seed = static_cast<std::uint64_t>(seed);
  gen.quote_rate = 0.3;
  const md::SyntheticDay day(universe, gen, 0);

  obs::Registry metrics;
  obs::TraceSink trace;

  engine::PipelineConfig cfg;
  cfg.symbols = n;
  cfg.batch_size = 64;  // smaller batches: lower latency, live-feed style
  cfg.replay_speedup = speedup;
  cfg.metrics = &metrics;
  cfg.trace = &trace;
  const auto all = core::ParamGrid().all();
  for (const auto& p : all) {
    if (p.corr_window != 100) continue;
    cfg.strategies.push_back(p);
    if (static_cast<std::int64_t>(cfg.strategies.size()) >= workers) break;
  }

  cfg.live.enabled = true;
  cfg.live.http_port = static_cast<int>(port);
  cfg.live.heartbeat_interval = std::chrono::milliseconds{heartbeat_ms};
  cfg.live.snapshot_period = std::chrono::milliseconds{snapshot_ms};
  cfg.live.flight_dir = flight_dir;

  if (kill_rank >= 0) {
    cfg.fault.kill_rank = static_cast<int>(kill_rank);
    cfg.fault.kill_at_op = static_cast<std::uint64_t>(kill_at);
    cfg.stage_deadline = std::chrono::milliseconds{2000};
    cfg.replica_deadline = std::chrono::milliseconds{2000};
  }

  std::printf("replaying %zu quotes at %.0fx with %zu strategy workers\n",
              day.quotes().size(), speedup, cfg.strategies.size());

  const auto result = engine::run_pipeline(cfg, universe, day.quotes());

  std::printf("\npipeline processed %llu quotes in %.2f s (%.0f quotes/s)\n",
              static_cast<unsigned long long>(result.quotes_in), result.wall_seconds,
              result.quotes_per_second);
  std::printf("orders: %llu in %llu interval baskets; %llu round trips, "
              "total pnl $%.2f\n",
              static_cast<unsigned long long>(result.master.orders),
              static_cast<unsigned long long>(result.master.basket_count),
              static_cast<unsigned long long>(result.master.trades),
              result.master.total_pnl);

  if (result.live.enabled) {
    std::printf("\nliveness (heartbeat monitor, %d ms interval):\n",
                static_cast<int>(heartbeat_ms));
    for (std::size_t r = 0; r < result.live.health.size(); ++r) {
      const auto& h = result.live.health[r];
      const std::string& node =
          r < result.live.rank_nodes.size() ? result.live.rank_nodes[r] : "";
      std::printf("  rank %zu %-16s %-7s (seq %llu)\n", r, node.c_str(),
                  obs::liveness_name(h.state),
                  static_cast<unsigned long long>(h.seq));
    }
    for (const auto& crash : result.live.crashes)
      std::printf("crash: rank %d (%s) — %s: %s\n", crash.rank,
                  crash.node.c_str(), crash.reason.c_str(), crash.error.c_str());
    if (!result.live.flight_bundle.empty())
      std::printf("flight bundle: %s\n", result.live.flight_bundle.c_str());
  }
  return result.degraded && kill_rank < 0 ? 1 : 0;
}
