#include "stats/windows.hpp"

#include <algorithm>
#include <cmath>

namespace mm::stats {

ReturnWindows::ReturnWindows(std::size_t symbols, std::size_t window,
                             bool track_cross_sums)
    : symbols_(symbols),
      window_(window),
      data_(symbols * window, 0.0),
      sum_(symbols, 0.0),
      sum_sq_(symbols, 0.0),
      last_value_(symbols, 0.0),
      run_length_(symbols, 0) {
  MM_ASSERT_MSG(symbols >= 1, "ReturnWindows needs at least one symbol");
  MM_ASSERT_MSG(window >= 2, "ReturnWindows window must be >= 2");
  if (track_cross_sums) cross_ = SymMatrix(symbols, 0.0);
}

void ReturnWindows::push(const std::vector<double>& returns) {
  MM_ASSERT_MSG(returns.size() == symbols_, "push: one return per symbol required");

  const bool evicting = count_ >= window_;
  const bool cross = tracks_cross_sums();

  if (evicting) {
    // Remove the oldest column (the slot we are about to overwrite).
    for (std::size_t i = 0; i < symbols_; ++i) {
      const double old = data_[i * window_ + head_];
      sum_[i] -= old;
      sum_sq_[i] -= old * old;
    }
    if (cross) {
      for (std::size_t i = 0; i < symbols_; ++i) {
        const double oi = data_[i * window_ + head_];
        for (std::size_t j = i + 1; j < symbols_; ++j) {
          const double oj = data_[j * window_ + head_];
          cross_.set(i, j, cross_(i, j) - oi * oj);
        }
      }
    }
  }

  for (std::size_t i = 0; i < symbols_; ++i) {
    const double x = returns[i];
    data_[i * window_ + head_] = x;
    sum_[i] += x;
    sum_sq_[i] += x * x;
    if (count_ > 0 && x == last_value_[i]) {
      ++run_length_[i];
    } else {
      last_value_[i] = x;
      run_length_[i] = 1;
    }
  }
  if (cross) {
    for (std::size_t i = 0; i < symbols_; ++i) {
      const double xi = returns[i];
      for (std::size_t j = i + 1; j < symbols_; ++j) {
        cross_.set(i, j, cross_(i, j) + xi * returns[j]);
      }
    }
  }

  head_ = (head_ + 1) % window_;
  ++count_;

  // Bound floating-point drift in the running sums.
  if (count_ % 8192 == 0) rebuild_sums();
}

void ReturnWindows::rebuild_sums() {
  std::fill(sum_.begin(), sum_.end(), 0.0);
  std::fill(sum_sq_.begin(), sum_sq_.end(), 0.0);
  const std::size_t filled = std::min(count_, window_);
  for (std::size_t i = 0; i < symbols_; ++i) {
    for (std::size_t t = 0; t < filled; ++t) {
      const double x = data_[i * window_ + t];
      sum_[i] += x;
      sum_sq_[i] += x * x;
    }
  }
  if (tracks_cross_sums()) {
    for (std::size_t i = 0; i < symbols_; ++i) {
      for (std::size_t j = i + 1; j < symbols_; ++j) {
        double s = 0.0;
        for (std::size_t t = 0; t < filled; ++t)
          s += data_[i * window_ + t] * data_[j * window_ + t];
        cross_.set(i, j, s);
      }
    }
  }
}

void ReturnWindows::copy_window(std::size_t symbol, double* out) const {
  MM_ASSERT(symbol < symbols_);
  MM_ASSERT_MSG(ready(), "copy_window before the window is full");
  // Oldest element is at head_ (the next overwrite target) once full.
  const double* row = data_.data() + symbol * window_;
  for (std::size_t t = 0; t < window_; ++t) out[t] = row[(head_ + t) % window_];
}

double ReturnWindows::cross_sum(std::size_t i, std::size_t j) const {
  MM_ASSERT_MSG(tracks_cross_sums(), "cross sums not tracked");
  if (i == j) return sum_sq_[i];
  return cross_(i, j);
}

double ReturnWindows::pearson(std::size_t i, std::size_t j) const {
  MM_ASSERT_MSG(ready(), "pearson before the window is full");
  // An exactly constant window has zero variance: no signal. (The batch
  // estimator sees dx == 0 exactly; the running sums only see their own
  // roundoff residue, so detect the case via value run lengths.)
  if (run_length_[i] >= window_ || run_length_[j] >= window_) return 0.0;
  const auto n = static_cast<double>(window_);
  const double cov = cross_sum(i, j) - sum_[i] * sum_[j] / n;
  const double vi = sum_sq_[i] - sum_[i] * sum_[i] / n;
  const double vj = sum_sq_[j] - sum_[j] * sum_[j] / n;
  // A variance that is a ~1e-12 sliver of the raw sum of squares is pure
  // cancellation residue from a (numerically) constant window: report "no
  // dispersion" -> 0, exactly as the batch estimator does when dx == 0.
  if (vi <= 1e-12 * sum_sq_[i] || vj <= 1e-12 * sum_sq_[j]) return 0.0;
  const double denom = std::sqrt(vi * vj);
  if (denom <= 0.0 || !std::isfinite(denom)) return 0.0;
  return std::clamp(cov / denom, -1.0, 1.0);
}

}  // namespace mm::stats
