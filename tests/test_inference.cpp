// Tests for the inferential statistics (special functions + paired tests)
// against known values.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/inference.hpp"

namespace mm::stats {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
  EXPECT_NEAR(normal_cdf(1.0), 0.841344746, 1e-7);
  EXPECT_NEAR(normal_cdf(-3.0), 0.001349898, 1e-7);
}

TEST(IncompleteBeta, KnownValues) {
  // I_x(1, 1) = x.
  EXPECT_NEAR(incomplete_beta(1.0, 1.0, 0.3), 0.3, 1e-10);
  // I_x(2, 2) = x^2 (3 - 2x).
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, 0.5), 0.5, 1e-10);
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, 0.25), 0.25 * 0.25 * 2.5, 1e-10);
  // Boundaries.
  EXPECT_DOUBLE_EQ(incomplete_beta(3.0, 4.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(3.0, 4.0, 1.0), 1.0);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(incomplete_beta(2.5, 1.5, 0.4), 1.0 - incomplete_beta(1.5, 2.5, 0.6),
              1e-10);
}

TEST(StudentTCdf, KnownValues) {
  // t(1) is Cauchy: CDF(1) = 0.75.
  EXPECT_NEAR(student_t_cdf(1.0, 1.0), 0.75, 1e-9);
  EXPECT_NEAR(student_t_cdf(0.0, 7.0), 0.5, 1e-12);
  // t(10): P(T <= 2.228) = 0.975 (classic table value).
  EXPECT_NEAR(student_t_cdf(2.228, 10.0), 0.975, 5e-4);
  // Large nu approaches the normal.
  EXPECT_NEAR(student_t_cdf(1.96, 1e6), normal_cdf(1.96), 1e-5);
  // Symmetry.
  EXPECT_NEAR(student_t_cdf(-1.3, 5.0), 1.0 - student_t_cdf(1.3, 5.0), 1e-12);
}

TEST(PairedTTest, HandComputedExample) {
  // d = {1, 2, 3}: mean 2, sd 1, t = 2 / (1/sqrt(3)) = 3.4641, df = 2.
  const std::vector<double> x = {2.0, 4.0, 6.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  const auto result = paired_t_test(x, y);
  EXPECT_NEAR(result.statistic, 3.4641016, 1e-6);
  EXPECT_NEAR(result.effect, 2.0, 1e-12);
  // Two-sided p for t=3.464, df=2 is ~0.0742.
  EXPECT_NEAR(result.p_value, 0.0742, 2e-3);
  EXPECT_FALSE(result.significant(0.05));
}

TEST(PairedTTest, DetectsObviousShift) {
  mm::Rng rng(1);
  std::vector<double> x(200), y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    const double base = rng.normal();
    x[i] = base + 0.5;  // consistent +0.5 shift
    y[i] = base + rng.normal() * 0.1;
  }
  const auto result = paired_t_test(x, y);
  EXPECT_TRUE(result.significant(0.001));
  EXPECT_GT(result.statistic, 10.0);
}

TEST(PairedTTest, NoEffectNoSignificance) {
  mm::Rng rng(2);
  std::vector<double> x(500), y(500);
  for (std::size_t i = 0; i < 500; ++i) {
    const double base = rng.normal();
    x[i] = base + rng.normal();
    y[i] = base + rng.normal();
  }
  const auto result = paired_t_test(x, y);
  EXPECT_GT(result.p_value, 0.01);  // should virtually never fire
}

TEST(PairedTTest, FalsePositiveRateNearAlpha) {
  // Under the null, p < 0.05 should occur ~5% of the time.
  mm::Rng rng(3);
  int fired = 0;
  constexpr int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> x(30), y(30);
    for (std::size_t i = 0; i < 30; ++i) {
      x[i] = rng.normal();
      y[i] = rng.normal();
    }
    if (paired_t_test(x, y).significant(0.05)) ++fired;
  }
  EXPECT_NEAR(static_cast<double>(fired) / trials, 0.05, 0.035);
}

TEST(PairedTTest, ZeroVarianceDifferences) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> same = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(paired_t_test(x, same).p_value, 1.0);
  const std::vector<double> shifted = {2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(paired_t_test(shifted, x).p_value, 0.0);  // exact +1 shift
}

TEST(Wilcoxon, DetectsObviousShift) {
  mm::Rng rng(4);
  std::vector<double> x(150), y(150);
  for (std::size_t i = 0; i < 150; ++i) {
    const double base = rng.normal();
    x[i] = base + 0.8;
    y[i] = base + rng.normal() * 0.2;
  }
  const auto result = wilcoxon_signed_rank(x, y);
  EXPECT_TRUE(result.significant(0.001));
  EXPECT_GT(result.statistic, 5.0);
  EXPECT_GT(result.effect, 0.5);
}

TEST(Wilcoxon, NoEffectNoSignificance) {
  mm::Rng rng(5);
  std::vector<double> x(300), y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_GT(wilcoxon_signed_rank(x, y).p_value, 0.01);
}

TEST(Wilcoxon, RobustToOutliersWhereTTestIsNot) {
  // A heavy-tailed difference distribution with a small consistent shift:
  // the rank test should find it at least as confidently as the t-test.
  mm::Rng rng(6);
  std::vector<double> x(200), y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    const double noise = rng.student_t(2.0);  // infinite-variance-ish noise
    x[i] = 0.2 + noise;
    y[i] = 0.0;
  }
  const auto w = wilcoxon_signed_rank(x, y);
  const auto t = paired_t_test(x, y);
  EXPECT_LE(w.p_value, t.p_value * 2.0);
}

TEST(Wilcoxon, DropsZeroDifferences) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = {1.0, 2.0, 3.0, 3.0, 4.0};  // 3 zero diffs
  const auto result = wilcoxon_signed_rank(x, y);
  EXPECT_EQ(result.n, 2u);
  EXPECT_GT(result.p_value, 0.05);  // n = 2 cannot be significant
}

}  // namespace
}  // namespace mm::stats
