// Backtest-as-a-service demo.
//
// Default mode starts the service on --port (0 = ephemeral) and prints a
// curl quickstart, then serves until stdin closes or SIGINT:
//
//   ./svc_demo --port 7090
//   curl -s localhost:7090/jobs -d '{"tenant":"alice","symbols":8,
//        "paramsets":[{"ctype":"pearson"},{"ctype":"maronna"}]}'
//   curl -s localhost:7090/jobs/job-1
//   curl -s localhost:7090/jobs/job-1/result
//   curl -s localhost:7090/metrics | grep -E 'svc|corr_store'
//
// --smoke runs the CI scenario instead: two tenants POST the same sweep over
// one shared day, the process asserts the correlation plane computed each
// key exactly once, that both tenants' results agree number-for-number, that
// each result carries the queue/cache/compute/exchange latency breakdown,
// and that GET /jobs/{id}/trace serves a job-scoped Perfetto trace with
// cross-rank flow events stitching send->recv spans; prints one SVC_SMOKE_OK
// line and exits 0 (non-zero on any violation).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "svc/service.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  ::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  ssize_t got;
  while ((got = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    response.append(buf, static_cast<std::size_t>(got));
  ::close(fd);
  return response;
}

std::string post_json(std::uint16_t port, const std::string& path,
                      const std::string& body) {
  return http_exchange(port,
                       "POST " + path + " HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                           std::to_string(body.size()) + "\r\n\r\n" + body);
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string{} : response.substr(split + 4);
}

int run_smoke() {
  mm::svc::ServiceConfig config;
  config.workers = 2;
  config.quote_rate = 0.15;
  mm::svc::BacktestService service(config);
  if (!service.start().has_value()) {
    std::fprintf(stderr, "smoke: service failed to start\n");
    return 1;
  }
  const std::uint16_t port = service.port();

  const char* sweep =
      R"({"tenant":"%s","symbols":8,"seed":7,"day":0,"paramsets":[
          {"ctype":"pearson","divergence":0.0005},
          {"ctype":"pearson","divergence":0.001},
          {"ctype":"maronna","corr_window":60},
          {"ctype":"combined","corr_window":60}]})";
  char spec[512];
  std::string ids[2];
  const char* tenants[2] = {"alice", "bob"};
  for (int t = 0; t < 2; ++t) {
    std::snprintf(spec, sizeof(spec), sweep, tenants[t]);
    auto doc = mm::json::parse(body_of(post_json(port, "/jobs", spec)));
    if (!doc.has_value() || doc.value().get_string("id", "").empty()) {
      std::fprintf(stderr, "smoke: POST /jobs failed for %s\n", tenants[t]);
      return 1;
    }
    ids[t] = doc.value().get_string("id", "");
  }
  for (const auto& id : ids)
    if (!service.wait(id, 120000)) {
      std::fprintf(stderr, "smoke: job %s did not finish\n", id.c_str());
      return 1;
    }

  std::string results[2];
  for (int t = 0; t < 2; ++t) {
    const auto response =
        http_exchange(port, "GET /jobs/" + ids[t] + "/result HTTP/1.1\r\nHost: x\r\n\r\n");
    auto doc = mm::json::parse(body_of(response));
    if (!doc.has_value() || doc.value().get_string("tenant", "") != tenants[t]) {
      std::fprintf(stderr, "smoke: GET result failed for %s\n", tenants[t]);
      return 1;
    }
    // Every result must attribute its latency across the four stages.
    const mm::json::Value* latency = doc.value().find("latency");
    if (latency == nullptr || !latency->is_array() || latency->size() != 4) {
      std::fprintf(stderr, "smoke: result for %s lacks the latency breakdown\n",
                   tenants[t]);
      return 1;
    }
    // Strip the tenant- and run-specific fields (ids, wall clock, cache luck,
    // per-run latency); what remains must match exactly.
    mm::json::Value stripped = mm::json::Value::object();
    for (const auto& [key, value] : doc.value().members())
      if (key != "id" && key != "tenant" && key != "wall_seconds" &&
          key != "units_from_cache" && key != "trace_id" && key != "latency")
        stripped.set(key, value);
    results[t] = stripped.dump();
  }
  if (results[0] != results[1]) {
    std::fprintf(stderr, "smoke: tenants' results diverged\n%s\n%s\n",
                 results[0].c_str(), results[1].c_str());
    return 1;
  }

  // Job-scoped traces: each job's trace endpoint serves its own sink —
  // tagged with its own job id — and (when telemetry is compiled in) the
  // stitched trace must contain cross-rank flow events linking send spans to
  // recv spans.
  std::uint64_t flow_pairs = 0;
  for (int t = 0; t < 2; ++t) {
    const std::string trace = body_of(http_exchange(
        port, "GET /jobs/" + ids[t] + "/trace HTTP/1.1\r\nHost: x\r\n\r\n"));
    if (trace.find("\"traceEvents\"") == std::string::npos) {
      std::fprintf(stderr, "smoke: GET trace failed for %s\n", tenants[t]);
      return 1;
    }
#if MM_OBS_ENABLED
    const std::string own_tag = "\"job\":\"" + ids[t] + "\"";
    const std::string other_tag = "\"job\":\"" + ids[1 - t] + "\"";
    if (trace.find(own_tag) == std::string::npos ||
        trace.find(other_tag) != std::string::npos) {
      std::fprintf(stderr, "smoke: trace for %s is not job-scoped\n",
                   ids[t].c_str());
      return 1;
    }
    if (trace.find("\"ph\":\"s\"") == std::string::npos ||
        trace.find("\"ph\":\"f\"") == std::string::npos) {
      std::fprintf(stderr, "smoke: trace for %s has no cross-rank flow events\n",
                   ids[t].c_str());
      return 1;
    }
    ++flow_pairs;
#endif
  }

  const auto store = service.corr_store().stats();
  const auto days = service.day_cache().stats();
  service.stop();
  if (store.computes != 2 || store.hits == 0) {
    std::fprintf(stderr,
                 "smoke: memoization broken: computes=%llu hits=%llu\n",
                 static_cast<unsigned long long>(store.computes),
                 static_cast<unsigned long long>(store.hits));
    return 1;
  }
  if (days.misses != 1) {
    std::fprintf(stderr, "smoke: day cache loaded %llu times, want 1\n",
                 static_cast<unsigned long long>(days.misses));
    return 1;
  }
  std::printf(
      "SVC_SMOKE_OK tenants=2 corr_computes=%llu corr_hits=%llu day_loads=%llu "
      "stitched_traces=%llu\n",
      static_cast<unsigned long long>(store.computes),
      static_cast<unsigned long long>(store.hits),
      static_cast<unsigned long long>(days.misses),
      static_cast<unsigned long long>(flow_pairs));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 7090;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc)
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
  }
  if (smoke) return run_smoke();

  mm::svc::ServiceConfig config;
  config.port = port;
  mm::svc::BacktestService service(config);
  if (auto status = service.start(); !status.has_value()) {
    std::fprintf(stderr, "failed to start: %s\n",
                 status.error().to_string().c_str());
    return 1;
  }
  std::printf("backtest service on http://127.0.0.1:%u — try:\n", service.port());
  std::printf(
      "  curl -s localhost:%u/jobs -d '{\"tenant\":\"alice\",\"symbols\":8,"
      "\"paramsets\":[{\"ctype\":\"pearson\"},{\"ctype\":\"maronna\"}]}'\n",
      service.port());
  std::printf("  curl -s localhost:%u/jobs/job-1\n", service.port());
  std::printf("  curl -s localhost:%u/jobs/job-1/result\n", service.port());
  std::printf("  curl -s localhost:%u/metrics | grep -E 'svc|corr_store'\n",
              service.port());
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (!g_stop) ::usleep(100000);
  service.stop();
  return 0;
}
