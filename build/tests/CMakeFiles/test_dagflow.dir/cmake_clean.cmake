file(REMOVE_RECURSE
  "CMakeFiles/test_dagflow.dir/test_dagflow.cpp.o"
  "CMakeFiles/test_dagflow.dir/test_dagflow.cpp.o.d"
  "test_dagflow"
  "test_dagflow.pdb"
  "test_dagflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dagflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
