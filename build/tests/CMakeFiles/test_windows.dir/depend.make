# Empty dependencies file for test_windows.
# This may be replaced when dependencies are built.
