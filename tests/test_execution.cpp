// Tests for the execution simulator and implementation-shortfall accounting.
#include <gtest/gtest.h>

#include "engine/execution.hpp"

namespace mm::engine {
namespace {

md::Quote quote_at(md::TimeMs ts, md::SymbolId sym, double bid, double ask) {
  md::Quote q;
  q.ts_ms = ts;
  q.symbol = sym;
  q.bid = bid;
  q.ask = ask;
  q.bid_size = 1;
  q.ask_size = 1;
  return q;
}

Order order_at(std::int64_t interval, double shares_i, double shares_j,
               double price_i, double price_j) {
  Order o;
  o.interval = interval;
  o.symbol_i = 0;
  o.symbol_j = 1;
  o.shares_i = shares_i;
  o.shares_j = shares_j;
  o.price_i = price_i;
  o.price_j = price_j;
  o.is_entry = 1;
  return o;
}

ExecutionConfig base_config() {
  ExecutionConfig cfg;
  cfg.delta_s = 30;
  return cfg;
}

TEST(Execution, FrictionlessBaselineHasZeroShortfallAtBam) {
  const md::Session session;
  // Symmetric book around the decision price 10.00 / 20.00.
  std::vector<md::Quote> quotes = {
      quote_at(session.interval_end(5, 30) - 100, 0, 9.95, 10.05),
      quote_at(session.interval_end(5, 30) - 100, 1, 19.90, 20.10),
  };
  std::vector<Order> orders = {order_at(5, 2.0, -1.0, 10.0, 20.0)};

  ExecutionConfig cfg = base_config();
  cfg.cross_spread = false;
  const auto result = simulate_execution(orders, quotes, 2, cfg);
  ASSERT_EQ(result.orders_filled, 1u);
  EXPECT_NEAR(result.shortfall_dollars, 0.0, 1e-12);
  EXPECT_NEAR(result.decision_notional, 40.0, 1e-12);
}

TEST(Execution, SpreadCrossingCostsHalfSpreadPerLeg) {
  const md::Session session;
  std::vector<md::Quote> quotes = {
      quote_at(session.interval_end(5, 30) - 100, 0, 9.95, 10.05),
      quote_at(session.interval_end(5, 30) - 100, 1, 19.90, 20.10),
  };
  // Buy 2 of symbol 0 (at ask 10.05 vs decision 10.00 -> +0.10 cost);
  // sell 1 of symbol 1 (at bid 19.90 vs decision 20.00 -> +0.10 cost).
  std::vector<Order> orders = {order_at(5, 2.0, -1.0, 10.0, 20.0)};
  const auto result = simulate_execution(orders, quotes, 2, base_config());
  ASSERT_EQ(result.orders_filled, 1u);
  EXPECT_NEAR(result.shortfall_dollars, 0.20, 1e-12);
  EXPECT_NEAR(result.shortfall_bps(), 1e4 * 0.20 / 40.0, 1e-9);
}

TEST(Execution, LatencyUsesLaterBook) {
  const md::Session session;
  const md::TimeMs decision = session.interval_end(5, 30);
  std::vector<md::Quote> quotes = {
      quote_at(decision - 100, 0, 9.95, 10.05),
      quote_at(decision - 100, 1, 19.90, 20.10),
      // 30 s later the book for symbol 0 has moved up a dollar.
      quote_at(decision + 30'000, 0, 10.95, 11.05),
  };
  std::vector<Order> orders = {order_at(5, 1.0, -1.0, 10.0, 20.0)};

  ExecutionConfig cfg = base_config();
  cfg.latency_ms = 30'000;
  const auto result = simulate_execution(orders, quotes, 2, cfg);
  ASSERT_EQ(result.orders_filled, 1u);
  // Buy leg fills at the new ask 11.05 (shortfall 1.05); sell leg at the old
  // bid 19.90 (shortfall 0.10).
  EXPECT_NEAR(result.shortfall_dollars, 1.15, 1e-12);
}

TEST(Execution, MarketImpactScalesWithSize) {
  const md::Session session;
  std::vector<md::Quote> quotes = {
      quote_at(session.interval_end(5, 30) - 100, 0, 9.95, 10.05),
      quote_at(session.interval_end(5, 30) - 100, 1, 19.90, 20.10),
  };
  std::vector<Order> orders = {order_at(5, 200.0, -100.0, 10.0, 20.0)};

  ExecutionConfig cfg = base_config();
  cfg.impact_frac_per_lot = 1e-4;  // 1 bp per 100 shares
  const auto result = simulate_execution(orders, quotes, 2, cfg);
  ASSERT_EQ(result.fills.size(), 2u);
  // Buy leg: 200 shares = 2 lots -> +2 bps of 10.05.
  EXPECT_NEAR(result.fills[0].fill_price, 10.05 * (1.0 + 2e-4), 1e-9);
  // Sell leg: 100 shares = 1 lot -> -1 bp of 19.90.
  EXPECT_NEAR(result.fills[1].fill_price, 19.90 * (1.0 - 1e-4), 1e-9);
}

TEST(Execution, LostOpportunityWhenBookStale) {
  const md::Session session;
  // Only symbol 0 ever quotes; symbol 1's book never exists.
  std::vector<md::Quote> quotes = {
      quote_at(session.interval_end(5, 30) - 100, 0, 9.95, 10.05),
  };
  std::vector<Order> orders = {order_at(5, 1.0, -1.0, 10.0, 20.0)};
  const auto result = simulate_execution(orders, quotes, 2, base_config());
  EXPECT_EQ(result.orders_filled, 0u);
  EXPECT_EQ(result.orders_lost, 1u);
  EXPECT_TRUE(result.fills.empty());
}

TEST(Execution, StaleHorizonEnforced) {
  const md::Session session;
  const md::TimeMs decision = session.interval_end(100, 30);
  std::vector<md::Quote> quotes = {
      // Quotes exist but are 10 minutes old at decision time.
      quote_at(decision - 10 * 60'000, 0, 9.95, 10.05),
      quote_at(decision - 10 * 60'000, 1, 19.90, 20.10),
  };
  std::vector<Order> orders = {order_at(100, 1.0, -1.0, 10.0, 20.0)};

  ExecutionConfig cfg = base_config();
  cfg.fill_horizon_ms = 5 * 60'000;
  EXPECT_EQ(simulate_execution(orders, quotes, 2, cfg).orders_lost, 1u);
  cfg.fill_horizon_ms = 15 * 60'000;
  EXPECT_EQ(simulate_execution(orders, quotes, 2, cfg).orders_filled, 1u);
}

TEST(Execution, UnsortedOrderLogHandled) {
  const md::Session session;
  std::vector<md::Quote> quotes = {
      quote_at(session.interval_end(4, 30) - 100, 0, 9.95, 10.05),
      quote_at(session.interval_end(4, 30) - 100, 1, 19.90, 20.10),
      quote_at(session.interval_end(9, 30) - 100, 0, 10.95, 11.05),
      quote_at(session.interval_end(9, 30) - 100, 1, 20.90, 21.10),
  };
  // Interleaved strategy logs: later interval first.
  std::vector<Order> orders = {order_at(9, 1.0, -1.0, 11.0, 21.0),
                               order_at(4, 1.0, -1.0, 10.0, 20.0)};
  const auto result = simulate_execution(orders, quotes, 2, base_config());
  EXPECT_EQ(result.orders_filled, 2u);
  // Each order crosses its own epoch's book: 0.05 + 0.10 each.
  EXPECT_NEAR(result.shortfall_dollars, 2 * 0.15, 1e-12);
}

}  // namespace
}  // namespace mm::engine
