// Tests for mpmini collectives across a range of world sizes (parameterized:
// collectives must work for 1, 2, odd, even and non-power-of-two sizes).
#include <gtest/gtest.h>

#include <numeric>

#include "mpmini/collectives.hpp"
#include "mpmini/environment.hpp"

namespace mm::mpi {
namespace {

class CollectivesSized : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectivesSized,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13));

TEST_P(CollectivesSized, BcastValueFromEveryRoot) {
  const int n = GetParam();
  Environment::run(n, [&](Comm& comm) {
    for (int root = 0; root < n; ++root) {
      const int v = comm.rank() == root ? 1000 + root : -1;
      EXPECT_EQ(bcast_value(comm, v, root), 1000 + root);
    }
  });
}

TEST_P(CollectivesSized, BcastVector) {
  const int n = GetParam();
  Environment::run(n, [&](Comm& comm) {
    std::vector<double> v;
    if (comm.rank() == 0) {
      v.resize(257);
      std::iota(v.begin(), v.end(), 0.5);
    }
    const auto out = bcast_vector(comm, v, 0);
    ASSERT_EQ(out.size(), 257u);
    EXPECT_DOUBLE_EQ(out[256], 256.5);
  });
}

TEST_P(CollectivesSized, Barrier) {
  const int n = GetParam();
  std::atomic<int> phase_one{0};
  std::atomic<bool> violated{false};
  Environment::run(n, [&](Comm& comm) {
    ++phase_one;
    comm.barrier();
    if (phase_one.load() != n) violated = true;
    comm.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(CollectivesSized, GatherInRankOrder) {
  const int n = GetParam();
  Environment::run(n, [&](Comm& comm) {
    const auto out = gather_values(comm, comm.rank() * 2, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(out.size(), static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], r * 2);
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

TEST_P(CollectivesSized, AllgatherEveryRankSeesAll) {
  const int n = GetParam();
  Environment::run(n, [&](Comm& comm) {
    const auto out = allgather_values(comm, 100 + comm.rank());
    ASSERT_EQ(out.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], 100 + r);
  });
}

TEST_P(CollectivesSized, AllgatherVariableLengthVectors) {
  const int n = GetParam();
  Environment::run(n, [&](Comm& comm) {
    std::vector<int> mine(static_cast<std::size_t>(comm.rank() + 1), comm.rank());
    const auto out = allgather_vectors(comm, mine);
    ASSERT_EQ(out.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(out[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r + 1));
      EXPECT_EQ(out[static_cast<std::size_t>(r)].front(), r);
    }
  });
}

TEST_P(CollectivesSized, ScatterDeliversOwnPart) {
  const int n = GetParam();
  Environment::run(n, [&](Comm& comm) {
    std::vector<int> parts;
    if (comm.rank() == 0) {
      parts.resize(static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) parts[static_cast<std::size_t>(r)] = r * r;
    }
    EXPECT_EQ(scatter_values(comm, parts, 0), comm.rank() * comm.rank());
  });
}

TEST_P(CollectivesSized, ReduceSumAndMax) {
  const int n = GetParam();
  Environment::run(n, [&](Comm& comm) {
    const int sum = reduce_value(comm, comm.rank() + 1, Sum{}, 0);
    const int mx = reduce_value(comm, comm.rank(), Max{}, 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(sum, n * (n + 1) / 2);
      EXPECT_EQ(mx, n - 1);
    }
  });
}

TEST_P(CollectivesSized, AllreduceMatchesOnEveryRank) {
  const int n = GetParam();
  Environment::run(n, [&](Comm& comm) {
    EXPECT_EQ(allreduce_value(comm, comm.rank() + 1, Sum{}), n * (n + 1) / 2);
    EXPECT_EQ(allreduce_value(comm, -comm.rank(), Min{}), -(n - 1));
  });
}

TEST_P(CollectivesSized, ReduceVectorsElementwise) {
  const int n = GetParam();
  Environment::run(n, [&](Comm& comm) {
    const std::vector<double> mine = {1.0, static_cast<double>(comm.rank())};
    const auto out = allreduce_vectors(comm, mine, Sum{});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], n);
    EXPECT_DOUBLE_EQ(out[1], n * (n - 1) / 2.0);
  });
}

TEST_P(CollectivesSized, ScanInclusivePrefixSums) {
  const int n = GetParam();
  Environment::run(n, [&](Comm& comm) {
    const int prefix = scan_value(comm, comm.rank() + 1, Sum{});
    EXPECT_EQ(prefix, (comm.rank() + 1) * (comm.rank() + 2) / 2);
  });
}

TEST_P(CollectivesSized, ExscanExclusivePrefixSums) {
  const int n = GetParam();
  Environment::run(n, [&](Comm& comm) {
    const int prefix = exscan_value(comm, comm.rank() + 1, Sum{}, 0);
    EXPECT_EQ(prefix, comm.rank() * (comm.rank() + 1) / 2);
  });
}

TEST_P(CollectivesSized, AlltoallPersonalizedExchange) {
  const int n = GetParam();
  Environment::run(n, [&](Comm& comm) {
    // Rank r sends value 100*r + d to destination d.
    std::vector<int> parts(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d)
      parts[static_cast<std::size_t>(d)] = 100 * comm.rank() + d;
    const auto got = alltoall_values(comm, parts);
    ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s)
      EXPECT_EQ(got[static_cast<std::size_t>(s)], 100 * s + comm.rank());
  });
}

TEST(Collectives, BackToBackGenerationsDoNotCrossMatch) {
  // Rapid-fire collectives exercise the internal tag sequencing.
  Environment::run(4, [](Comm& comm) {
    for (int round = 0; round < 200; ++round) {
      const int v = bcast_value(comm, round * 10 + comm.rank(), round % 4);
      EXPECT_EQ(v, round * 10 + round % 4);
    }
  });
}

TEST(Collectives, DeterministicFloatingPointReduction) {
  // Same inputs must give bit-identical sums regardless of arrival order.
  double first = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    double result = 0.0;
    Environment::run(5, [&](Comm& comm) {
      const double mine = 0.1 * (comm.rank() + 1) + 1e-13 * comm.rank();
      const double sum = allreduce_value(comm, mine, Sum{});
      if (comm.rank() == 0) result = sum;
    });
    if (trial == 0) first = result;
    EXPECT_EQ(result, first);
  }
}

}  // namespace
}  // namespace mm::mpi
