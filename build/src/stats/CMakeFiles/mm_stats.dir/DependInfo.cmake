
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/mm_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/mm_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/boxplot.cpp" "src/stats/CMakeFiles/mm_stats.dir/boxplot.cpp.o" "gcc" "src/stats/CMakeFiles/mm_stats.dir/boxplot.cpp.o.d"
  "/root/repo/src/stats/cluster.cpp" "src/stats/CMakeFiles/mm_stats.dir/cluster.cpp.o" "gcc" "src/stats/CMakeFiles/mm_stats.dir/cluster.cpp.o.d"
  "/root/repo/src/stats/corr_engine.cpp" "src/stats/CMakeFiles/mm_stats.dir/corr_engine.cpp.o" "gcc" "src/stats/CMakeFiles/mm_stats.dir/corr_engine.cpp.o.d"
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/mm_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/mm_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/mm_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/mm_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/inference.cpp" "src/stats/CMakeFiles/mm_stats.dir/inference.cpp.o" "gcc" "src/stats/CMakeFiles/mm_stats.dir/inference.cpp.o.d"
  "/root/repo/src/stats/maronna.cpp" "src/stats/CMakeFiles/mm_stats.dir/maronna.cpp.o" "gcc" "src/stats/CMakeFiles/mm_stats.dir/maronna.cpp.o.d"
  "/root/repo/src/stats/pearson.cpp" "src/stats/CMakeFiles/mm_stats.dir/pearson.cpp.o" "gcc" "src/stats/CMakeFiles/mm_stats.dir/pearson.cpp.o.d"
  "/root/repo/src/stats/psd.cpp" "src/stats/CMakeFiles/mm_stats.dir/psd.cpp.o" "gcc" "src/stats/CMakeFiles/mm_stats.dir/psd.cpp.o.d"
  "/root/repo/src/stats/rank_corr.cpp" "src/stats/CMakeFiles/mm_stats.dir/rank_corr.cpp.o" "gcc" "src/stats/CMakeFiles/mm_stats.dir/rank_corr.cpp.o.d"
  "/root/repo/src/stats/windows.cpp" "src/stats/CMakeFiles/mm_stats.dir/windows.cpp.o" "gcc" "src/stats/CMakeFiles/mm_stats.dir/windows.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpmini/CMakeFiles/mm_mpmini.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
