// dagflow: directed-acyclic-graph stream processing over mpmini.
//
// MarketMiner "has since been extended to support arbitrary directed acyclic
// graph (DAG) stream processing workflows" (§II). dagflow is that layer:
//
//   * a Graph of named nodes (components), each a user function run on its
//     own rank, connected by directed edges between numbered ports;
//   * validation — edges well-formed, graph acyclic;
//   * execution — one mpmini rank per node, edges carried as tagged messages;
//   * bounded channels — every edge has a capacity and uses credit-based flow
//     control, so a slow stage exerts backpressure instead of letting queues
//     grow without bound (critical when the correlation stage is slower than
//     a live feed);
//   * end-of-stream propagation — a node's outputs are closed automatically
//     when its function returns; Context::recv() drains inputs until all
//     upstream nodes have closed;
//   * failure containment — an exception escaping a node function is caught
//     by the run harness, the node's outputs are closed with a NodeFailure
//     marker (poisoning the downstream lineage), its inputs are drained, and
//     run() reports a per-node status instead of tearing down the process.
//     Nodes that consume a poisoned input to end-of-stream re-propagate the
//     marker when their own outputs close, so sinks can tell a degraded
//     stream from a healthy one.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "mpmini/comm.hpp"
#include "mpmini/fault.hpp"

namespace mm::mpi {
struct Rendezvous;  // socket_transport.hpp; used by pointer only
}  // namespace mm::mpi
#include "obs/heartbeat.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace mm::dag {

class Context;

using NodeFn = std::function<void(Context&)>;

// A node backed by a GROUP of ranks (Fig. 1's "Parallel Correlation Engine"
// is such a box). The group's rank 0 (the leader) owns the node's edges and
// receives a Context; every member (leader included) receives the group's
// private communicator for internal collectives. Non-leaders get ctx ==
// nullptr.
using GroupNodeFn = std::function<void(Context* ctx, mpi::Comm& group)>;

struct Edge {
  int from_node = -1;
  int from_port = 0;
  int to_node = -1;
  int to_port = 0;
  int capacity = 64;  // in-flight messages before the sender blocks
};

// Outcome of one node after run(): did its own function fail, and did its
// input lineage include a failure (marker or transport timeout)?
struct NodeStatus {
  std::string name;
  bool failed = false;           // the node function threw (incl. RankKilled)
  bool upstream_failed = false;  // an input closed with a failure marker
  bool timed_out = false;        // a pump deadline expired on this node
  std::string error;             // what() of the node's own exception

  bool ok() const { return !failed && !upstream_failed && !timed_out; }
};

struct RunResult {
  std::vector<NodeStatus> nodes;  // indexed by node id

  bool ok() const {
    for (const auto& n : nodes)
      if (!n.ok()) return false;
    return true;
  }
};

struct RunOptions {
  // Fault plan installed on the mpmini world (tests and chaos drills).
  mpi::FaultPlan fault{};
  // Bound on every transport wait inside a node (0 = wait forever). Required
  // for bounded-time completion when ranks can die without a dying breath:
  // a node whose upstream goes silent past the deadline treats the stream as
  // failed instead of hanging.
  std::chrono::milliseconds pump_timeout{0};

  // --- telemetry (both optional; must outlive the run) --------------------
  // Registry for runtime metrics: the mpmini world's transport counters plus
  // per-node dag.<name>.frames_in / frames_out / credit_stall_ns counters and
  // a dag.<name>.wall_ns histogram of node-function wall time.
  obs::Registry* metrics = nullptr;
  // Trace sink: one ring ("process") per rank, one named thread row per
  // node; node run / teardown spans and emit-stall spans are recorded and
  // can be drained to chrome://tracing JSON after run() returns.
  obs::TraceSink* trace = nullptr;
  // Heartbeat board from the caller's monitoring plane (size >= rank_count()).
  // Every rank thread publishes beats against it while the caller's
  // HeartbeatMonitor watches for silence; see obs/heartbeat.hpp.
  obs::HeartbeatBoard* heartbeat = nullptr;
  std::chrono::nanoseconds heartbeat_interval{std::chrono::milliseconds{100}};
  // Root causal context installed on every rank thread for the run: source
  // nodes (no inputs) send with it, so the whole run stitches into one trace.
  // Nodes with inputs re-adopt the context of each frame they consume.
  // Invalid (the default) means sends are untraced until a frame says
  // otherwise. Field-free no-op when MM_OBS_ENABLED=OFF.
  obs::TraceContext trace_context{};

  // Multi-process mode: when set, this process runs ONLY rendezvous->rank of
  // the graph's rank space, meeting the other rank processes over the TCP
  // socket transport (Environment::run_rendezvous). Every process must run
  // the same graph. The RunResult reports node statuses observed by LOCAL
  // ranks only; remote nodes appear as never-started. Must outlive run().
  const mpi::Rendezvous* rendezvous = nullptr;
};

class Graph {
 public:
  // Returns the node id. Nodes execute fn on their own rank when run() is
  // called.
  int add_node(std::string name, NodeFn fn);

  // A node backed by `replicas` ranks; see GroupNodeFn.
  int add_group_node(std::string name, GroupNodeFn fn, int replicas);

  // Connect from_node's output port to to_node's input port. Ports are
  // small integers chosen by the caller; a node may have several inputs and
  // outputs. capacity bounds in-flight messages on this edge.
  void connect(int from_node, int from_port, int to_node, int to_port,
               int capacity = 64);

  std::size_t node_count() const { return nodes_.size(); }
  const std::string& node_name(int node) const;
  const std::vector<Edge>& edges() const { return edges_; }

  // Well-formed endpoints, positive capacities, no duplicate input port on a
  // node, acyclic.
  Status validate() const;

  // Execute: spawns one rank per node and blocks until every node function
  // has returned and all streams have drained. Node exceptions are contained
  // (see header comment) and reported in the result; only an invalid graph
  // throws.
  RunResult run(const RunOptions& options = {});

  // Graphviz rendering of the topology (node names, port labels, capacities)
  // for documentation and debugging.
  std::string to_dot() const;

  // Total ranks required (sum of replica counts).
  int rank_count() const;

  // World rank -> node name under run()'s layout (contiguous replica blocks,
  // in add order); replicas beyond the leader are suffixed "#<index>". Lets
  // monitoring label per-rank data with the component it runs.
  std::vector<std::string> rank_node_names() const;

 private:
  struct Node {
    std::string name;
    NodeFn fn;               // exactly one of fn / group_fn is set
    GroupNodeFn group_fn;
    int replicas = 1;
  };
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

}  // namespace mm::dag
