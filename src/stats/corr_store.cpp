#include "stats/corr_store.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace mm::stats {

std::string CorrKey::cache_key() const {
  return format("u=%s|d=%d|s=%lld|w=%lld|e=%s", universe.c_str(), date,
                static_cast<long long>(delta_s), static_cast<long long>(window),
                estimator.c_str());
}

CorrStore::CorrStore(std::size_t byte_budget, obs::Registry* registry)
    : byte_budget_(byte_budget), registry_(registry) {}

CorrStore::Lease::Lease(Lease&& other) noexcept
    : store_(other.store_), key_(std::move(other.key_)),
      data_(std::move(other.data_)), owner_(other.owner_) {
  other.store_ = nullptr;
  other.owner_ = false;
}

CorrStore::Lease::~Lease() {
  if (store_ != nullptr && owner_) store_->abandon(key_);
}

void CorrStore::Lease::publish(CorrDay day) {
  MM_ASSERT_MSG(owner_, "publish() on a non-owning lease");
  store_->publish_day(key_, std::move(day));
  owner_ = false;
  // The published copy is now the store's; a hit for this lease's own caller
  // is one peek away, but owners already hold the frames they computed.
}

CorrStore::Lease CorrStore::acquire(const CorrKey& key) {
  const std::string k = key.cache_key();
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    auto it = entries_.find(k);
    if (it == entries_.end()) {
      Entry entry;
      entry.computing = true;
      entries_.emplace(k, std::move(entry));
      ++stats_.misses;
      if (registry_ != nullptr) registry_->counter("corr_store.misses").add();
      return Lease(this, k, nullptr, /*owner=*/true);
    }
    if (it->second.data != nullptr) {
      touch_locked(it->second, k);
      ++stats_.hits;
      if (registry_ != nullptr) registry_->counter("corr_store.hits").add();
      return Lease(this, k, it->second.data, /*owner=*/false);
    }
    // Someone else is computing: wait for publish or abandon. On abandon the
    // entry disappears, so the loop re-runs and ONE waiter re-creates it as
    // the new owner; the rest queue up behind the fresh compute.
    ++stats_.waits;
    if (registry_ != nullptr) registry_->counter("corr_store.waits").add();
    const std::uint64_t seen = it->second.generation;
    ready_cv_.wait(lock, [&] {
      auto e = entries_.find(k);
      return e == entries_.end() || e->second.data != nullptr ||
             e->second.generation != seen;
    });
  }
}

std::shared_ptr<const CorrDay> CorrStore::peek(const CorrKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key.cache_key());
  return it != entries_.end() ? it->second.data : nullptr;
}

void CorrStore::publish_day(const std::string& key, CorrDay day) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  MM_ASSERT_MSG(it != entries_.end() && it->second.computing,
                "publish without a computing entry");
  auto shared = std::make_shared<const CorrDay>(std::move(day));
  bytes_ += shared->bytes();
  it->second.data = std::move(shared);
  it->second.computing = false;
  ++it->second.generation;
  lru_.push_front(key);
  it->second.lru = lru_.begin();
  ++stats_.computes;
  if (registry_ != nullptr) {
    registry_->counter("corr_store.computes").add();
    registry_->gauge("corr_store.bytes").set(static_cast<std::int64_t>(bytes_));
    registry_->gauge("corr_store.days").set(
        static_cast<std::int64_t>(lru_.size()));
  }
  evict_locked();
  ready_cv_.notify_all();
}

void CorrStore::abandon(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.computing) return;
  entries_.erase(it);
  ++stats_.abandons;
  if (registry_ != nullptr) registry_->counter("corr_store.abandons").add();
  ready_cv_.notify_all();
}

void CorrStore::touch_locked(Entry& entry, const std::string& key) {
  lru_.erase(entry.lru);
  lru_.push_front(key);
  entry.lru = lru_.begin();
}

void CorrStore::evict_locked() {
  if (byte_budget_ == 0) return;
  while (bytes_ > byte_budget_ && lru_.size() > 1) {
    // Never evict the newest entry — the day just published must survive its
    // own publication even when it alone exceeds the budget.
    const std::string victim = lru_.back();
    auto it = entries_.find(victim);
    bytes_ -= it->second.data->bytes();
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
    if (registry_ != nullptr) {
      registry_->counter("corr_store.evictions").add();
      registry_->gauge("corr_store.bytes").set(static_cast<std::int64_t>(bytes_));
      registry_->gauge("corr_store.days").set(
          static_cast<std::int64_t>(lru_.size()));
    }
  }
}

CorrStore::Stats CorrStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t CorrStore::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::size_t CorrStore::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace mm::stats
