# Empty compiler generated dependencies file for test_tickdb.
# This may be replaced when dependencies are built.
