file(REMOVE_RECURSE
  "libmm_engine.a"
)
