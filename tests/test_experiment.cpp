// Tests for the §V experiment framework: structure, determinism, and
// serial/parallel equivalence.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/experiment.hpp"
#include "core/report.hpp"

namespace mm::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.symbols = 5;  // 10 pairs
  cfg.days = 2;
  cfg.generator.quote_rate = 0.2;  // keep the test quick
  return cfg;
}

TEST(Experiment, ResultShapeMatchesConfig) {
  const auto result = run_experiment(tiny_config());
  EXPECT_EQ(result.symbols, 5u);
  EXPECT_EQ(result.pair_count, 10u);
  EXPECT_EQ(result.days, 2);
  EXPECT_EQ(result.pair_names.size(), 10u);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(result.monthly_return_plus1[static_cast<std::size_t>(c)].size(), 10u);
    EXPECT_EQ(result.max_daily_drawdown[static_cast<std::size_t>(c)].size(), 10u);
    EXPECT_EQ(result.win_loss[static_cast<std::size_t>(c)].size(), 10u);
  }
  EXPECT_GT(result.quotes_processed, 0u);
  EXPECT_GT(result.total_trades, 0u);
  EXPECT_EQ(result.pair_names[0], "MSFT/IBM");
}

TEST(Experiment, MeasuresInPlausibleRanges) {
  const auto result = run_experiment(tiny_config());
  for (int c = 0; c < 3; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    for (std::size_t p = 0; p < result.pair_count; ++p) {
      // Monthly return +1 must be positive and not absurd.
      EXPECT_GT(result.monthly_return_plus1[ci][p], 0.5);
      EXPECT_LT(result.monthly_return_plus1[ci][p], 3.0);
      // Drawdown is a non-negative fraction.
      EXPECT_GE(result.max_daily_drawdown[ci][p], 0.0);
      EXPECT_LT(result.max_daily_drawdown[ci][p], 1.0);
      EXPECT_GE(result.win_loss[ci][p], 0.0);
    }
  }
}

TEST(Experiment, DeterministicAcrossRuns) {
  const auto a = run_experiment(tiny_config());
  const auto b = run_experiment(tiny_config());
  for (int c = 0; c < 3; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    for (std::size_t p = 0; p < a.pair_count; ++p) {
      EXPECT_DOUBLE_EQ(a.monthly_return_plus1[ci][p], b.monthly_return_plus1[ci][p]);
      EXPECT_DOUBLE_EQ(a.max_daily_drawdown[ci][p], b.max_daily_drawdown[ci][p]);
      EXPECT_DOUBLE_EQ(a.win_loss[ci][p], b.win_loss[ci][p]);
    }
  }
  EXPECT_EQ(a.total_trades, b.total_trades);
}

TEST(Experiment, ParallelMatchesSerialExactly) {
  auto cfg = tiny_config();
  const auto serial = run_experiment(cfg);
  for (int ranks : {2, 3}) {
    cfg.ranks = ranks;
    const auto parallel = run_experiment_parallel(cfg);
    EXPECT_EQ(parallel.total_trades, serial.total_trades) << ranks << " ranks";
    for (int c = 0; c < 3; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      for (std::size_t p = 0; p < serial.pair_count; ++p) {
        ASSERT_DOUBLE_EQ(parallel.monthly_return_plus1[ci][p],
                         serial.monthly_return_plus1[ci][p])
            << ranks << " ranks, pair " << p;
        ASSERT_DOUBLE_EQ(parallel.win_loss[ci][p], serial.win_loss[ci][p]);
      }
    }
  }
}

TEST(Experiment, SeedChangesResults) {
  auto cfg = tiny_config();
  const auto a = run_experiment(cfg);
  cfg.generator.seed = 999;
  const auto b = run_experiment(cfg);
  bool any_different = false;
  for (std::size_t p = 0; p < a.pair_count; ++p)
    if (a.monthly_return_plus1[0][p] != b.monthly_return_plus1[0][p])
      any_different = true;
  EXPECT_TRUE(any_different);
}

TEST(Report, TablesRenderAllRows) {
  const auto result = run_experiment(tiny_config());
  const auto table3 = render_table(result, Measure::monthly_return, true, false);
  EXPECT_NE(table3.find("Mean"), std::string::npos);
  EXPECT_NE(table3.find("Sharpe Ratio"), std::string::npos);
  EXPECT_NE(table3.find("Kurtosis"), std::string::npos);
  EXPECT_NE(table3.find("Maronna"), std::string::npos);
  EXPECT_NE(table3.find("Pearson"), std::string::npos);
  EXPECT_NE(table3.find("Combined"), std::string::npos);

  const auto table4 = render_table(result, Measure::max_daily_drawdown, false, true);
  EXPECT_NE(table4.find('%'), std::string::npos);
  EXPECT_EQ(table4.find("Sharpe"), std::string::npos);
}

TEST(Report, BoxplotsRender) {
  const auto result = run_experiment(tiny_config());
  const auto block = render_boxplots(result, Measure::win_loss);
  EXPECT_NE(block.find("med="), std::string::npos);
  EXPECT_NE(block.find("axis:"), std::string::npos);
  EXPECT_NE(block.find('#'), std::string::npos);
}

TEST(Report, CsvExportRoundTrips) {
  const auto result = run_experiment(tiny_config());
  const std::string path = "/tmp/mm_report_test.csv";
  ASSERT_TRUE(write_experiment_csv(result, path).has_value());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "pair,ctype,monthly_return_plus1,max_daily_drawdown,win_loss");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, result.pair_count * 3);
  std::remove(path.c_str());
}

TEST(Report, PaperReferencesNonEmpty) {
  for (Measure m : {Measure::monthly_return, Measure::max_daily_drawdown,
                    Measure::win_loss}) {
    EXPECT_FALSE(paper_reference(m).empty());
    EXPECT_NE(paper_reference(m).find("paper"), std::string::npos);
  }
}

}  // namespace
}  // namespace mm::core
