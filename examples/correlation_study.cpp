// Correlation study: why the paper bothers with a robust measure.
//
// Takes one correlated pair, sweeps the bad-tick injection rate, and shows
// how Pearson, Maronna and Combined estimates degrade — with and without the
// TCP-like cleaning filter in front. Reproduces the §II argument: raw
// high-frequency data wrecks Pearson; cleaning helps; Maronna gracefully
// downweights whatever survives.
//
//   $ ./correlation_study [--symbols 6] [--window 100]
#include <cstdio>

#include "common/cli.hpp"
#include "core/backtester.hpp"
#include "marketdata/bars.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"
#include "stats/descriptive.hpp"
#include "stats/rank_corr.hpp"

namespace {

// Mean |C(s)| of pair 0 over the valid range — a scalar "signal level".
double series_level(const mm::core::MarketCorrSeries& market, mm::stats::Ctype ctype,
                    std::int64_t smax) {
  double sum = 0.0;
  std::int64_t n = 0;
  for (std::int64_t s = market.first_valid; s < smax; ++s) {
    sum += market.at(ctype, 0, s);
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mm;
  Cli cli("correlation_study",
          "Pearson vs Maronna vs Combined under dirty-data injection");
  auto& window = cli.add_int("window", 100, "correlation window M");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  cli.parse(argc, argv);

  // Two same-sector symbols => a genuinely correlated pair.
  constexpr std::size_t n = 2;
  const auto universe = md::make_universe(n);

  std::printf("pair %s/%s, M = %lld, mean correlation estimate over the day\n\n",
              universe.table.name(0).c_str(), universe.table.name(1).c_str(),
              static_cast<long long>(window));
  std::printf("  %-10s | %-31s | %-31s\n", "", "raw stream", "after TCP-like filter");
  std::printf("  %-10s | %9s %9s %9s | %9s %9s %9s\n", "bad ticks", "Pearson",
              "Maronna", "Combined", "Pearson", "Maronna", "Combined");

  for (const double bad_rate : {0.0, 0.001, 0.005, 0.01, 0.02, 0.05}) {
    md::GeneratorConfig gen;
    gen.seed = static_cast<std::uint64_t>(seed);
    gen.quote_rate = 0.5;
    gen.bad_tick_rate = bad_rate;
    const md::SyntheticDay day(universe, gen, 0);

    const auto raw_bam = md::sample_bam_series(day.quotes(), n, gen.session, 30);
    md::QuoteCleaner cleaner(n, md::CleanerConfig{});
    const auto clean_bam =
        md::sample_bam_series(cleaner.clean(day.quotes()), n, gen.session, 30);

    const auto raw = core::compute_market_corr_series(raw_bam, window, true);
    const auto clean = core::compute_market_corr_series(clean_bam, window, true);
    const auto smax = static_cast<std::int64_t>(raw_bam[0].size());

    std::printf("  %9.2f%% | %9.3f %9.3f %9.3f | %9.3f %9.3f %9.3f\n",
                bad_rate * 100.0,
                series_level(raw, stats::Ctype::pearson, smax),
                series_level(raw, stats::Ctype::maronna, smax),
                series_level(raw, stats::Ctype::combined, smax),
                series_level(clean, stats::Ctype::pearson, smax),
                series_level(clean, stats::Ctype::maronna, smax),
                series_level(clean, stats::Ctype::combined, smax));
  }

  std::printf("\nreading guide: the 0.00%% row is the truth each column should\n"
              "hold on to. Moving down a column shows that estimator's decay as\n"
              "the stream gets dirtier; Pearson on the raw stream collapses\n"
              "first, Maronna degrades gracefully, and the filter restores most\n"
              "of Pearson's signal — the paper's §II argument in one table.\n");

  // Extension (§VI anticipates further measures): rank correlations on the
  // raw stream — robust by construction, no iteration required.
  std::printf("\nextension — rank measures on the raw stream (window-mean):\n");
  std::printf("  %-10s %9s %9s\n", "bad ticks", "Spearman", "Kendall");
  for (const double bad_rate : {0.0, 0.01, 0.05}) {
    md::GeneratorConfig gen;
    gen.seed = static_cast<std::uint64_t>(seed);
    gen.quote_rate = 0.5;
    gen.bad_tick_rate = bad_rate;
    const md::SyntheticDay day(universe, gen, 0);
    const auto raw_bam = md::sample_bam_series(day.quotes(), n, gen.session, 30);
    const auto r0 = md::log_returns(raw_bam[0]);
    const auto r1 = md::log_returns(raw_bam[1]);
    const auto m = static_cast<std::size_t>(window);
    double sp_sum = 0.0, kd_sum = 0.0;
    std::size_t count = 0;
    for (std::size_t s = m; s + 1 < r0.size(); s += 25) {
      sp_sum += stats::spearman(r0.data() + s - m, r1.data() + s - m, m);
      kd_sum += stats::kendall_tau(r0.data() + s - m, r1.data() + s - m, m);
      ++count;
    }
    std::printf("  %9.2f%% %9.3f %9.3f\n", bad_rate * 100.0,
                sp_sum / static_cast<double>(count), kd_sum / static_cast<double>(count));
  }
  return 0;
}
