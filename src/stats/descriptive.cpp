#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

namespace mm::stats {

double mean(const std::vector<double>& xs) {
  MM_ASSERT_MSG(!xs.empty(), "mean of empty sample");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  MM_ASSERT_MSG(xs.size() >= 2, "variance needs n >= 2");
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  MM_ASSERT_MSG(!xs.empty(), "median of empty sample");
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid), xs.end());
  const double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double quantile(std::vector<double> xs, double q) {
  MM_ASSERT_MSG(!xs.empty(), "quantile of empty sample");
  MM_ASSERT_MSG(q >= 0.0 && q <= 1.0, "quantile level out of [0,1]");
  std::sort(xs.begin(), xs.end());
  const double h = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

namespace {

// Central moments m2, m3, m4 (population, n denominator).
struct Moments {
  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
};

Moments central_moments(const std::vector<double>& xs) {
  const double m = mean(xs);
  Moments out;
  for (double x : xs) {
    const double d = x - m;
    const double d2 = d * d;
    out.m2 += d2;
    out.m3 += d2 * d;
    out.m4 += d2 * d2;
  }
  const auto n = static_cast<double>(xs.size());
  out.m2 /= n;
  out.m3 /= n;
  out.m4 /= n;
  return out;
}

}  // namespace

double skewness(const std::vector<double>& xs) {
  MM_ASSERT_MSG(xs.size() >= 2, "skewness needs n >= 2");
  const auto m = central_moments(xs);
  MM_ASSERT_MSG(m.m2 > 0.0, "skewness of a constant sample");
  return m.m3 / std::pow(m.m2, 1.5);
}

double kurtosis(const std::vector<double>& xs) {
  MM_ASSERT_MSG(xs.size() >= 2, "kurtosis needs n >= 2");
  const auto m = central_moments(xs);
  MM_ASSERT_MSG(m.m2 > 0.0, "kurtosis of a constant sample");
  return m.m4 / (m.m2 * m.m2);
}

double sharpe_ratio(const std::vector<double>& xs) {
  const double sd = stddev(xs);
  MM_ASSERT_MSG(sd > 0.0, "sharpe of a constant sample");
  return mean(xs) / sd;
}

Summary summarize(const std::vector<double>& xs) {
  MM_ASSERT_MSG(xs.size() >= 2, "summarize needs n >= 2");
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.median = median(xs);
  s.stddev = stddev(xs);
  s.sharpe = s.stddev > 0.0 ? s.mean / s.stddev : 0.0;
  const auto m = central_moments(xs);
  s.skewness = m.m2 > 0.0 ? m.m3 / std::pow(m.m2, 1.5) : 0.0;
  s.kurtosis = m.m2 > 0.0 ? m.m4 / (m.m2 * m.m2) : 0.0;
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  s.min = *lo;
  s.max = *hi;
  return s;
}

}  // namespace mm::stats
