// Per-rank mailbox implementing MPI envelope matching over lock-free lanes.
//
// A mailbox holds messages delivered to one rank and the rank's posted
// (pending) receives. Matching rules follow MPI:
//   * a receive posted with (comm, source, tag) matches a message with the
//     same comm, and source/tag equal or wildcard (any_source / any_tag);
//   * among queued messages, the earliest-arrived match wins, which together
//     with per-lane FIFO delivery preserves per-(source, comm) non-overtaking;
//   * among posted receives, the earliest-posted match wins.
//
// Transport layout (ring mode, the default — see wait.hpp for the knobs):
//
//   sender rank S ──SpscRing<Message>──▶ lane (S → R) ──drain──▶ Mailbox R
//
// Each (sender, receiver) world-rank pair owns one bounded SPSC ring (a
// "lane"), created lazily by the sender, who is its only producer. A send is
// a payload move into a ring slot plus one release store: senders never take
// the receiving mailbox's mutex, so concurrent senders to one rank do not
// contend with each other or with the receiver. The receiving side drains its
// lanes into the matching structures under the mailbox mutex — uncontended in
// the common one-thread-per-rank regime — which keeps the multi-consumer
// matching contract (below) intact. Messages that must queue are parked in
// pooled envelopes (pool.hpp): steady-state traffic performs no heap
// allocation anywhere in the transport.
//
// Waits are spin-then-park: a blocked receiver polls its ticket flag and its
// lanes through a bounded spin (pause, then yield), and only then parks on
// the condition variable after raising `parked_` — the eventcount handshake
// senders check (one fence + one load on the hot path) before paying for a
// wake. The legacy locked path (deliver()) remains both the overflow route
// for full rings and the whole transport in "locked" mode, which the bench
// uses as its before/after baseline.
//
// Probe/recv matching contract (the MPI_Mprobe problem): a blocking probe
// RESERVES the message it reports for the probing thread. Reserved messages
// are invisible to every other thread's receives and probes, so the classic
// probe -> recv sequence can never lose its message to a concurrent wildcard
// receive on another thread. The reservation is released when the probing
// thread posts a matching receive (which then consumes exactly that message).
// iprobe is advisory and does not reserve.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "mpmini/message.hpp"
#include "mpmini/pool.hpp"
#include "mpmini/ring.hpp"
#include "obs/registry.hpp"

namespace mm::mpi {

// One sender's inbound ring plus its producer-side depth watermark. Created
// by the sending thread on first use (its slot in the mailbox lane table is
// single-writer) and destroyed with the mailbox.
struct Lane {
  SpscRing<Message> ring;
  std::size_t depth_watermark = 0;   // producer-owned
  obs::Gauge* depth_peak = nullptr;  // shared high watermark (see set_obs)
#ifndef NDEBUG
  std::thread::id producer{};  // first sending thread; enforced per send
#endif

  explicit Lane(std::size_t capacity, obs::Gauge* gauge)
      : ring(capacity), depth_peak(gauge) {}

  // Producer side, after a successful push: ring depth high-watermark. The
  // shared gauge is only touched when this lane's own maximum grows, so the
  // steady-state cost is one local compare.
  void note_depth() {
    const std::size_t d = ring.size_from_producer();
    if (d > depth_watermark) {
      depth_watermark = d;
      if (depth_peak != nullptr) depth_peak->max_of(static_cast<std::int64_t>(d));
    }
  }
};

// Shared completion state for one posted receive. Mutation is guarded by the
// owning mailbox's mutex; `done` flips with release ordering so spin waiters
// can observe completion (and then read `message`) without the lock. Posted
// tickets are threaded into an intrusive pending list — heap tickets (irecv)
// keep themselves alive through `self` while posted, fast-path receives link
// stack-allocated tickets and pay no allocation.
struct RecvTicket {
  std::uint64_t comm_id = 0;
  int source = any_source;
  int tag = any_tag;
  std::atomic<bool> done{false};
  Message message;

  RecvTicket* prev = nullptr;  // intrusive pending list (mailbox mutex)
  RecvTicket* next = nullptr;
  std::shared_ptr<RecvTicket> self;  // posted heap tickets own themselves
};

class Mailbox {
 public:
  Mailbox();
  ~Mailbox();

  // --- transport wiring (called by World before traffic starts) ---------
  // Size the lane table: one inbound slot per world rank.
  void init_lanes(int world_size);

  // Producer side: the lane carrying `source_world_rank`'s traffic into this
  // mailbox, created on first use. Only that rank's thread may call this.
  Lane& lane_for_sender(int source_world_rank);

  // Producer side, after a ring push: wake this mailbox's parked waiters if
  // there are any (eventcount check — one fence and one load when nobody is
  // parked, which is the hot case).
  void notify_ring_push() noexcept;

  // --- delivery ---------------------------------------------------------
  // Deliver a message through the locked path: ring-overflow fallback,
  // "locked" transport mode, and direct use in tests. Drains this mailbox's
  // lanes first so a same-source message cannot overtake its ring backlog.
  void deliver(Message msg);

  // --- receives ---------------------------------------------------------
  // Post a receive. If a queued or in-ring message already matches, the
  // ticket completes immediately; otherwise it completes on a future
  // delivery.
  std::shared_ptr<RecvTicket> post_recv(std::uint64_t comm_id, int source, int tag);

  // Block until the ticket completes, then return its message.
  Message wait(const std::shared_ptr<RecvTicket>& ticket);

  // Deadline wait: true once the ticket completed, false if the deadline
  // passed first (the ticket stays posted — wait again, or cancel()).
  bool wait_for(const std::shared_ptr<RecvTicket>& ticket,
                std::chrono::nanoseconds timeout);

  // Withdraw a posted receive (after a wait_for timeout). If the ticket
  // completed in the meantime its message is returned — the caller must
  // treat that as a successful receive, the message is not requeued.
  std::optional<Message> cancel(const std::shared_ptr<RecvTicket>& ticket);

  // Non-blocking completion check.
  bool test(const std::shared_ptr<RecvTicket>& ticket);

  // Fast-path blocking receive: stack ticket, spin-then-park wait, zero
  // allocation. Equivalent to post_recv + wait.
  Message receive(std::uint64_t comm_id, int source, int tag);

  // Fast-path deadline receive: true and *out filled on success, false when
  // the deadline passed with no match (nothing stays posted afterwards).
  bool receive_for(std::uint64_t comm_id, int source, int tag,
                   std::chrono::nanoseconds timeout, Message* out);

  // --- probes -----------------------------------------------------------
  // Non-blocking probe: reports the envelope of the earliest matching
  // message without consuming or reserving it.
  bool iprobe(std::uint64_t comm_id, int source, int tag, RecvStatus* status);

  // Blocking probe; reserves the reported message for the calling thread.
  RecvStatus probe(std::uint64_t comm_id, int source, int tag);

  // Deadline probe: true (and *status filled, message reserved) if a match
  // arrived before the deadline.
  bool probe_for(std::uint64_t comm_id, int source, int tag,
                 std::chrono::nanoseconds timeout, RecvStatus* status);

  // Queued (drained but unreceived) messages, after absorbing any ring
  // backlog; for tests/stats.
  std::size_t queued();

  // Telemetry: `queue_peak` records the queued-message high watermark,
  // `ring_depth_peak` the per-lane ring depth high watermark (both shared
  // across the world's mailboxes). Set before traffic starts.
  void set_obs(obs::Gauge* queue_peak, obs::Gauge* ring_depth_peak = nullptr);

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

 private:
  static bool matches(const RecvTicket& ticket, const Message& msg) {
    return ticket.comm_id == msg.comm_id &&
           (ticket.source == any_source || ticket.source == msg.source) &&
           (ticket.tag == any_tag || ticket.tag == msg.tag);
  }

  // A queued envelope is visible to `thread` unless another thread reserved it.
  static bool visible_to(const Envelope& e, std::thread::id thread) {
    return !e.reserved || e.reserved_by == thread;
  }

  // All private helpers below require mutex_ unless noted otherwise.

  // Pop every lane ring into the matching structures. Returns true if any
  // message was absorbed (callers wake parked waiters when so).
  bool drain_locked();
  // Match `msg` against the earliest posted receive, else queue it.
  void absorb_locked(Message&& msg);
  // Complete `t` with `msg`: unlink, fill, flip done (release), drop self.
  void complete_locked(RecvTicket* t, Message&& msg);
  // Earliest queued match visible to the calling thread, or nullptr.
  Envelope* find_match_locked(const RecvTicket& ticket);
  // Unlink `e` from the queue, move its message out, recycle the envelope.
  Message take_locked(Envelope* e);

  void pending_push_locked(RecvTicket* t);
  void pending_unlink_locked(RecvTicket* t);
  void queue_push_locked(Envelope* e);
  void queue_unlink_locked(Envelope* e);

  // True when any lane ring has traffic (lock-free peek for spin loops).
  bool lanes_nonempty() const noexcept;

  // Shared blocking core for wait/wait_for/receive/receive_for: spin-then-
  // park until `t` completes or `deadline` (time_point::max() = never)
  // passes. Returns t.done. Called WITHOUT the mutex.
  bool block_on(RecvTicket& t, std::chrono::steady_clock::time_point deadline);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<int> parked_{0};  // waiters inside a cv wait (eventcount)

  EnvelopePool pool_;                  // mutex_
  Envelope* queue_head_ = nullptr;     // FIFO of undelivered messages
  Envelope* queue_tail_ = nullptr;
  std::size_t queue_size_ = 0;
  RecvTicket* pending_head_ = nullptr;  // posted receives, post order
  RecvTicket* pending_tail_ = nullptr;

  std::unique_ptr<std::atomic<Lane*>[]> lanes_;  // [sender world rank]
  int lane_count_ = 0;

  obs::Gauge* queue_peak_ = nullptr;
  obs::Gauge* ring_peak_ = nullptr;
};

}  // namespace mm::mpi
