// A md::QuoteFeed backed by a TCP wire-format session.
//
// WireQuoteSource subscribes to a day on a TcpFeedServer (hello with the
// day's key), then pulls quotes out of the socket incrementally through the
// zero-copy FrameParser: next() performs no heap allocation in steady state
// and hands back quotes in stream order. fetch_day() is the batch
// convenience used as a md::DayCache loader — the socket-fed day source for
// the backtest service.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "marketdata/feed.hpp"
#include "wire/feed.hpp"
#include "wire/parser.hpp"
#include "wire/socket.hpp"

namespace mm::wire {

class WireQuoteSource final : public md::QuoteFeed {
 public:
  // Connect and subscribe. Non-movable (the parser holds views into the
  // receive buffer), hence the unique_ptr return.
  static Expected<std::unique_ptr<WireQuoteSource>> connect(
      const std::string& host, std::uint16_t port, const std::string& key,
      std::chrono::milliseconds connect_timeout = std::chrono::milliseconds{2000});

  // Next quote in stream order; nullopt at end_of_day — and on transport or
  // parse failure, which failed()/error() disambiguate from a clean end.
  std::optional<md::Quote> next() override;

  bool done() const { return done_; }
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  std::uint64_t session() const { return session_; }
  const FeedStats& stats() const { return stats_; }

  WireQuoteSource(const WireQuoteSource&) = delete;
  WireQuoteSource& operator=(const WireQuoteSource&) = delete;

 private:
  WireQuoteSource() = default;

  void fail(std::string why) {
    failed_ = true;
    done_ = true;
    error_ = std::move(why);
  }

  Socket sock_;
  FrameParser parser_;
  std::vector<std::uint8_t> rx_ = std::vector<std::uint8_t>(64 << 10);
  std::uint64_t session_ = 0;
  std::uint64_t announced_count_ = 0;
  FeedStats stats_{};
  bool done_ = false;
  bool failed_ = false;
  std::string error_;
};

// Fetch a whole day over TCP: connect, subscribe to `key`, drain to
// end_of_day. Shaped for md::DayCache: bind host/port and it IS a loader.
Expected<std::vector<md::Quote>> fetch_day(
    const std::string& host, std::uint16_t port, const std::string& key,
    std::chrono::milliseconds connect_timeout = std::chrono::milliseconds{2000});

}  // namespace mm::wire
