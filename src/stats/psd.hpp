// Positive semi-definiteness: detection and repair.
//
// The paper notes (§IV, Approach 2) that assembling pairwise Maronna
// coefficients into a matrix "no longer assures the resulting matrix is
// positive semi-definite". We provide the standard remedy: a Jacobi
// eigendecomposition, an is_psd check, and nearest_psd_correlation — clip
// negative eigenvalues, reconstruct, and rescale back to unit diagonal
// (the eigenvalue-clipping flavour of Higham's nearest-correlation repair).
#pragma once

#include <vector>

#include "stats/sym_matrix.hpp"

namespace mm::stats {

struct EigenResult {
  std::vector<double> values;   // ascending
  // Row-major n x n; column k of the ORIGINAL problem is eigenvector k,
  // stored here as vectors[i * n + k] = component i of eigenvector k.
  std::vector<double> vectors;
};

// Cyclic Jacobi eigensolver for a symmetric matrix. O(n³) per sweep; fine for
// the few-hundred-symbol matrices the engine produces.
EigenResult jacobi_eigen(const SymMatrix& m, int max_sweeps = 64, double tol = 1e-12);

double min_eigenvalue(const SymMatrix& m);

bool is_psd(const SymMatrix& m, double tolerance = 1e-9);

// Nearest (in the eigenvalue-clipping sense) valid correlation matrix: clip
// eigenvalues at `floor`, reconstruct, rescale to unit diagonal, clamp
// off-diagonals to [-1, 1]. One eigendecomposition; the engine's default.
SymMatrix nearest_psd_correlation(const SymMatrix& m, double floor = 1e-8);

// Higham (2002) nearest correlation matrix by alternating projections with
// Dykstra's correction: converges to the true Frobenius-nearest correlation
// matrix. Several eigendecompositions (max_iterations bound); use when
// fidelity matters more than latency.
SymMatrix nearest_correlation_higham(const SymMatrix& m, int max_iterations = 64,
                                     double tolerance = 1e-10);

}  // namespace mm::stats
