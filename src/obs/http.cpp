#include "obs/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.hpp"

namespace mm::obs {
namespace {

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

// Blocking full-buffer send; MSG_NOSIGNAL so a dropped client cannot SIGPIPE
// the process.
void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t sent =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (sent <= 0) return;
    off += static_cast<std::size_t>(sent);
  }
}

}  // namespace

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::route(const std::string& path, Handler handler) {
  routes_[path] = std::move(handler);
}

Status MetricsServer::start(std::uint16_t port) {
  if (running()) return Error{Errc::already_exists, "metrics server already running"};
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Error{Errc::io_error, format("socket(): %s", std::strerror(errno))};
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Error{Errc::io_error,
                 format("bind 127.0.0.1:%u: %s", port, std::strerror(err))};
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    return Error{Errc::io_error, format("listen(): %s", std::strerror(err))};
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd);
    return Error{Errc::io_error, format("getsockname(): %s", std::strerror(err))};
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
  return {};
}

void MetricsServer::stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void MetricsServer::serve() {
  // One request at a time: the stop flag is polled between connections, so
  // stop() latency is bounded by the poll timeout plus one handler.
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle(client);
    ::close(client);
  }
}

void MetricsServer::handle(int client) const {
  timeval timeout{};
  timeout.tv_sec = 2;  // a stalled client must not wedge the listener
  ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buf[2048];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t got = ::recv(client, buf, sizeof(buf), 0);
    if (got <= 0) break;
    request.append(buf, static_cast<std::size_t>(got));
  }

  const std::size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  std::string method, target;
  if (sp1 != std::string::npos && sp2 != std::string::npos) {
    method = line.substr(0, sp1);
    target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  }
  if (const std::size_t q = target.find('?'); q != std::string::npos)
    target.resize(q);

  HttpResponse resp;
  if (method != "GET") {
    resp = HttpResponse{405, "text/plain; charset=utf-8", "method not allowed\n"};
  } else if (const auto it = routes_.find(target); it == routes_.end()) {
    resp = HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
  } else {
    resp = it->second();
  }

  std::string head = format(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      resp.status, reason_phrase(resp.status), resp.content_type.c_str(),
      resp.body.size());
  head += resp.body;
  send_all(client, head);
}

}  // namespace mm::obs
