// CorrStore: the memoized correlation plane under src/svc.
//
// Three properties carry the backtest service's correctness:
//   1. compute-once — N concurrent acquirers of one key produce exactly one
//      compute (counter-asserted, including across an owner abandon);
//   2. bit-identity — a pipeline served from the store produces a master
//      report identical to a cold run (orders, PnL bits, trade returns);
//   3. bounded residency — eviction respects the byte budget in LRU order
//      without invalidating in-flight replays.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "engine/pipeline.hpp"
#include "marketdata/generator.hpp"
#include "stats/corr_store.hpp"

namespace mm::stats {
namespace {

CorrKey key_of(const char* universe, std::int32_t date) {
  CorrKey k;
  k.universe = universe;
  k.date = date;
  k.delta_s = 15;
  k.window = 30;
  k.estimator = "pearson";
  return k;
}

CorrDay day_of(std::size_t frames, std::size_t frame_bytes, std::uint8_t fill) {
  CorrDay day;
  day.frames.assign(frames, std::vector<std::uint8_t>(frame_bytes, fill));
  return day;
}

TEST(CorrKey, CacheKeyIsCanonicalAndDiscriminates) {
  const CorrKey a = key_of("synthetic/6/0", 20080303);
  EXPECT_EQ(a.cache_key(), "u=synthetic/6/0|d=20080303|s=15|w=30|e=pearson");
  CorrKey b = a;
  b.window = 31;
  CorrKey c = a;
  c.estimator = "pearson+maronna";
  EXPECT_NE(a.cache_key(), b.cache_key());
  EXPECT_NE(a.cache_key(), c.cache_key());
  EXPECT_EQ(a.cache_key(), key_of("synthetic/6/0", 20080303).cache_key());
}

TEST(CorrStore, MissThenPublishThenHit) {
  CorrStore store;
  const CorrKey key = key_of("u", 1);

  {
    auto lease = store.acquire(key);
    EXPECT_TRUE(lease.owner());
    EXPECT_FALSE(lease.hit());
    lease.publish(day_of(4, 100, 7));
  }
  EXPECT_EQ(store.entries(), 1u);
  EXPECT_GT(store.bytes(), 4u * 100u);

  auto lease = store.acquire(key);
  EXPECT_FALSE(lease.owner());
  ASSERT_TRUE(lease.hit());
  ASSERT_EQ(lease.data()->frames.size(), 4u);
  EXPECT_EQ(lease.data()->frames[0][0], 7);

  const auto stats = store.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.computes, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.waits, 0u);
  EXPECT_NE(store.peek(key), nullptr);
  EXPECT_EQ(store.peek(key_of("u", 2)), nullptr);
}

TEST(CorrStore, ConcurrentSameKeyComputesExactlyOnce) {
  CorrStore store;
  const CorrKey key = key_of("shared", 20080303);
  constexpr int kThreads = 8;

  std::atomic<int> computes{0};
  std::atomic<int> ready{0};
  std::vector<const CorrDay*> seen(kThreads, nullptr);
  std::vector<std::shared_ptr<const CorrDay>> held(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      auto lease = store.acquire(key);
      if (lease.owner()) {
        computes.fetch_add(1);
        // Hold the once-flag long enough that the other threads pile up.
        std::this_thread::sleep_for(std::chrono::milliseconds{20});
        lease.publish(day_of(8, 64, 3));
        held[t] = store.peek(key);
      } else {
        held[t] = lease.data();
      }
      seen[t] = held[t].get();
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(computes.load(), 1);
  const auto stats = store.stats();
  EXPECT_EQ(stats.computes, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.abandons, 0u);
  // Everyone ended up with the SAME published day (pointer-identical).
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(seen[t], nullptr) << "thread " << t;
    EXPECT_EQ(seen[t], seen[0]);
  }
}

TEST(CorrStore, AbandonHandsOwnershipToAWaiter) {
  CorrStore store;
  const CorrKey key = key_of("flaky", 1);

  std::atomic<bool> first_owner_holding{false};
  std::thread flaky([&] {
    auto lease = store.acquire(key);
    ASSERT_TRUE(lease.owner());
    first_owner_holding.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
    // Destroyed without publish: the aborted run must not publish a
    // truncated day — ownership hands off to the blocked waiter below.
  });
  while (!first_owner_holding.load()) std::this_thread::yield();

  auto lease = store.acquire(key);  // blocks until the abandon
  flaky.join();
  ASSERT_TRUE(lease.owner());
  lease.publish(day_of(2, 16, 9));

  const auto stats = store.stats();
  EXPECT_EQ(stats.abandons, 1u);
  EXPECT_EQ(stats.computes, 1u);
  EXPECT_EQ(stats.misses, 2u);  // both owners took the miss path
  EXPECT_GE(stats.waits, 1u);
  ASSERT_NE(store.peek(key), nullptr);
  EXPECT_EQ(store.peek(key)->frames.size(), 2u);
}

TEST(CorrStore, EvictionRespectsByteBudgetInLruOrder) {
  // Each day ≈ 4 frames x 1000 bytes; a ~10 KiB budget holds two days.
  CorrStore store(/*byte_budget=*/10'000);
  const CorrKey a = key_of("u", 1), b = key_of("u", 2), c = key_of("u", 3);

  store.acquire(a).publish(day_of(4, 1000, 1));
  store.acquire(b).publish(day_of(4, 1000, 2));
  EXPECT_EQ(store.entries(), 2u);

  // Keep an in-flight replay of A alive, then touch A so B is the LRU victim.
  const auto held_a = store.peek(a);
  ASSERT_NE(held_a, nullptr);
  { auto touch = store.acquire(a); }
  store.acquire(c).publish(day_of(4, 1000, 3));

  const auto stats = store.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(store.entries(), 2u);
  EXPECT_LE(store.bytes(), 10'000u);
  EXPECT_NE(store.peek(a), nullptr);
  EXPECT_EQ(store.peek(b), nullptr);  // LRU victim
  EXPECT_NE(store.peek(c), nullptr);

  // The evicted-or-not distinction never touches in-flight readers.
  EXPECT_EQ(held_a->frames[0][0], 1);

  // An oversized single day still publishes (never evict the newest).
  store.acquire(key_of("u", 4)).publish(day_of(4, 100'000, 4));
  EXPECT_NE(store.peek(key_of("u", 4)), nullptr);
}

// --- engine integration: memoized replay is bit-identical -------------------

struct Scenario {
  md::Universe universe;
  std::vector<md::Quote> quotes;
};

Scenario make_scenario(std::size_t symbols, int day) {
  Scenario s{md::make_universe(symbols), {}};
  md::GeneratorConfig cfg;
  cfg.quote_rate = 0.15;
  const md::SyntheticDay synth(s.universe, cfg, day);
  s.quotes = synth.quotes();
  return s;
}

engine::PipelineConfig pipeline_config(std::size_t symbols) {
  engine::PipelineConfig cfg;
  cfg.symbols = symbols;
  core::StrategyParams p = core::ParamGrid::base();
  p.ctype = stats::Ctype::pearson;
  p.divergence = 0.0005;
  core::StrategyParams q = p;
  q.divergence = 0.001;
  cfg.strategies = {p, q};
  return cfg;
}

bool bits_equal(double x, double y) {
  return std::memcmp(&x, &y, sizeof(double)) == 0;
}

// Arrival order at the master interleaves the strategy workers' threads, so
// the raw order_log is a race even between two identical runs; compare the
// canonically sorted multiset instead. Per-strategy streams (the summaries)
// ARE deterministic and compare bit-for-bit.
std::vector<engine::Order> canonical_orders(const engine::MasterReport& r) {
  std::vector<engine::Order> orders = r.order_log;
  std::sort(orders.begin(), orders.end(),
            [](const engine::Order& a, const engine::Order& b) {
              if (a.interval != b.interval) return a.interval < b.interval;
              if (a.strategy_id != b.strategy_id)
                return a.strategy_id < b.strategy_id;
              if (a.symbol_i != b.symbol_i) return a.symbol_i < b.symbol_i;
              if (a.symbol_j != b.symbol_j) return a.symbol_j < b.symbol_j;
              return a.is_entry > b.is_entry;
            });
  return orders;
}

void expect_identical_reports(const engine::MasterReport& a,
                              const engine::MasterReport& b) {
  EXPECT_EQ(a.orders, b.orders);
  EXPECT_EQ(a.trades, b.trades);

  const auto oa = canonical_orders(a);
  const auto ob = canonical_orders(b);
  ASSERT_EQ(oa.size(), ob.size());
  for (std::size_t i = 0; i < oa.size(); ++i) {
    EXPECT_EQ(oa[i].interval, ob[i].interval);
    EXPECT_EQ(oa[i].strategy_id, ob[i].strategy_id);
    EXPECT_EQ(oa[i].symbol_i, ob[i].symbol_i);
    EXPECT_EQ(oa[i].symbol_j, ob[i].symbol_j);
    // Bit-level equality, not tolerance: the replayed frames are the same
    // bytes, so every downstream double must match exactly.
    EXPECT_TRUE(bits_equal(oa[i].shares_i, ob[i].shares_i)) << "order " << i;
    EXPECT_TRUE(bits_equal(oa[i].shares_j, ob[i].shares_j)) << "order " << i;
    EXPECT_TRUE(bits_equal(oa[i].price_i, ob[i].price_i)) << "order " << i;
    EXPECT_TRUE(bits_equal(oa[i].price_j, ob[i].price_j)) << "order " << i;
  }

  ASSERT_EQ(a.strategy_summaries.size(), b.strategy_summaries.size());
  for (std::size_t i = 0; i < a.strategy_summaries.size(); ++i) {
    const auto& sa = a.strategy_summaries[i];
    const auto& sb = b.strategy_summaries[i];
    EXPECT_EQ(sa.strategy_id, sb.strategy_id);
    EXPECT_EQ(sa.trades, sb.trades);
    EXPECT_TRUE(bits_equal(sa.total_pnl, sb.total_pnl)) << "strategy " << i;
    ASSERT_EQ(sa.trade_returns.size(), sb.trade_returns.size());
    for (std::size_t k = 0; k < sa.trade_returns.size(); ++k)
      EXPECT_TRUE(bits_equal(sa.trade_returns[k], sb.trade_returns[k]))
          << "strategy " << i << " trade " << k;
  }
  EXPECT_DOUBLE_EQ(a.total_pnl, b.total_pnl);
}

TEST(CorrStorePipeline, MemoizedReplayIsBitIdenticalToColdRun) {
  const auto scenario = make_scenario(6, 2);
  const CorrKey key = key_of("synthetic/6/2", 20080303);

  // Cold run without any store: the reference.
  auto cfg = pipeline_config(6);
  const auto reference = engine::run_pipeline(cfg, scenario.universe,
                                              scenario.quotes);
  ASSERT_GT(reference.master.trades, 0u);
  ASSERT_EQ(reference.master.strategy_summaries.size(), 2u);

  CorrStore store;
  cfg.corr_store = &store;
  cfg.corr_key = key;

  // First store-backed run computes and publishes...
  const auto first = engine::run_pipeline(cfg, scenario.universe, scenario.quotes);
  EXPECT_EQ(store.stats().computes, 1u);
  EXPECT_EQ(store.stats().misses, 1u);
  expect_identical_reports(reference.master, first.master);

  // ...the second replays without re-estimating.
  const auto second = engine::run_pipeline(cfg, scenario.universe, scenario.quotes);
  EXPECT_EQ(store.stats().computes, 1u);
  EXPECT_EQ(store.stats().hits, 1u);
  expect_identical_reports(reference.master, second.master);
}

TEST(CorrStorePipeline, ConcurrentPipelinesShareOneCompute) {
  const auto scenario = make_scenario(5, 3);
  const CorrKey key = key_of("synthetic/5/3", 20080303);
  CorrStore store;

  constexpr int kRuns = 3;
  std::vector<engine::PipelineResult> results(kRuns);
  std::vector<std::thread> threads;
  for (int r = 0; r < kRuns; ++r) {
    threads.emplace_back([&, r] {
      auto cfg = pipeline_config(5);
      cfg.corr_store = &store;
      cfg.corr_key = key;
      results[static_cast<std::size_t>(r)] =
          engine::run_pipeline(cfg, scenario.universe, scenario.quotes);
    });
  }
  for (auto& t : threads) t.join();

  const auto stats = store.stats();
  EXPECT_EQ(stats.computes, 1u) << "day computed more than once";
  EXPECT_EQ(stats.misses, 1u);
  // Every run resolved to the one published day: one miss, the rest hits
  // (possibly after a wait).
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::uint64_t>(kRuns));
  for (int r = 1; r < kRuns; ++r)
    expect_identical_reports(results[0].master,
                             results[static_cast<std::size_t>(r)].master);
}

}  // namespace
}  // namespace mm::stats
