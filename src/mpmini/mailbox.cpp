#include "mpmini/mailbox.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/heartbeat.hpp"

namespace mm::mpi {

void Mailbox::deliver(Message msg) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Earliest-posted matching receive wins.
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (!(*it)->done && matches(**it, msg)) {
      (*it)->message = std::move(msg);
      (*it)->done = true;
      pending_.erase(it);
      lock.unlock();
      cv_.notify_all();
      return;
    }
  }
  queue_.push_back({std::move(msg), false, {}});
  if (queue_peak_ != nullptr)
    queue_peak_->max_of(static_cast<std::int64_t>(queue_.size()));
  lock.unlock();
  cv_.notify_all();  // wake probers
}

std::deque<Mailbox::Queued>::iterator Mailbox::find_match(const RecvTicket& ticket) {
  const auto me = std::this_thread::get_id();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (visible_to(*it, me) && matches(ticket, it->msg)) return it;
  }
  return queue_.end();
}

std::shared_ptr<RecvTicket> Mailbox::post_recv(std::uint64_t comm_id, int source,
                                               int tag) {
  auto ticket = std::make_shared<RecvTicket>();
  ticket->comm_id = comm_id;
  ticket->source = source;
  ticket->tag = tag;

  std::lock_guard<std::mutex> lock(mutex_);
  // Earliest-arrived matching message wins (skipping messages another
  // thread's probe reserved; taking a message releases its reservation).
  if (auto it = find_match(*ticket); it != queue_.end()) {
    ticket->message = std::move(it->msg);
    ticket->done = true;
    queue_.erase(it);
    return ticket;
  }
  pending_.push_back(ticket);
  return ticket;
}

Message Mailbox::wait(const std::shared_ptr<RecvTicket>& ticket) {
  std::unique_lock<std::mutex> lock(mutex_);
  obs::Pulse& pulse = obs::pulse_this_thread();
  if (!pulse.armed()) {
    cv_.wait(lock, [&] { return ticket->done; });
  } else {
    // Idle-but-alive: a rank blocked here with no traffic wakes every
    // heartbeat interval to publish a beat, so it is never suspected.
    while (!ticket->done) {
      cv_.wait_for(lock, pulse.interval(), [&] { return ticket->done; });
      pulse.beat();
    }
  }
  return std::move(ticket->message);
}

bool Mailbox::wait_for(const std::shared_ptr<RecvTicket>& ticket,
                       std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  obs::Pulse& pulse = obs::pulse_this_thread();
  if (!pulse.armed())
    return cv_.wait_for(lock, timeout, [&] { return ticket->done; });
  // Chunk the deadline wait into heartbeat intervals (see wait()).
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!ticket->done) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    cv_.wait_until(lock, std::min(deadline, now + pulse.interval()),
                   [&] { return ticket->done; });
    pulse.beat();
  }
  return true;
}

std::optional<Message> Mailbox::cancel(const std::shared_ptr<RecvTicket>& ticket) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ticket->done) return std::move(ticket->message);
  pending_.remove(ticket);
  return std::nullopt;
}

bool Mailbox::test(const std::shared_ptr<RecvTicket>& ticket) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ticket->done;
}

bool Mailbox::iprobe(std::uint64_t comm_id, int source, int tag, RecvStatus* status) {
  RecvTicket probe_ticket;
  probe_ticket.comm_id = comm_id;
  probe_ticket.source = source;
  probe_ticket.tag = tag;

  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = find_match(probe_ticket);
  if (it == queue_.end()) return false;
  if (status != nullptr) {
    status->source = it->msg.source;
    status->tag = it->msg.tag;
    status->byte_count = it->msg.payload.size();
  }
  return true;
}

RecvStatus Mailbox::probe(std::uint64_t comm_id, int source, int tag) {
  RecvStatus status;
  // A blocking probe cannot time out waiting on itself.
  const bool found = probe_for(comm_id, source, tag,
                               std::chrono::nanoseconds::max(), &status);
  MM_ASSERT(found);
  return status;
}

bool Mailbox::probe_for(std::uint64_t comm_id, int source, int tag,
                        std::chrono::nanoseconds timeout, RecvStatus* status) {
  RecvTicket probe_ticket;
  probe_ticket.comm_id = comm_id;
  probe_ticket.source = source;
  probe_ticket.tag = tag;

  const auto deadline = (timeout == std::chrono::nanoseconds::max())
                            ? std::chrono::steady_clock::time_point::max()
                            : std::chrono::steady_clock::now() + timeout;

  obs::Pulse& pulse = obs::pulse_this_thread();
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (auto it = find_match(probe_ticket); it != queue_.end()) {
      it->reserved = true;
      it->reserved_by = std::this_thread::get_id();
      if (status != nullptr) {
        status->source = it->msg.source;
        status->tag = it->msg.tag;
        status->byte_count = it->msg.payload.size();
      }
      return true;
    }
    if (deadline == std::chrono::steady_clock::time_point::max()) {
      if (pulse.armed()) {
        // Chunked wait so an idle prober keeps beating (see wait()).
        cv_.wait_for(lock, pulse.interval());
        pulse.beat();
      } else {
        cv_.wait(lock);
      }
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      // The scan at the top of this iteration was the post-deadline scan:
      // a notification racing the deadline has already been honored.
      return false;
    }
    auto target = deadline;
    if (pulse.armed() && now + pulse.interval() < target)
      target = now + pulse.interval();
    cv_.wait_until(lock, target);
    pulse.beat();  // single branch when unarmed
  }
}

std::size_t Mailbox::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace mm::mpi
