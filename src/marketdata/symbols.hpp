// Symbol table: ticker string <-> dense SymbolId, plus the default universe.
//
// The paper backtests 61 highly liquid US stocks (unnamed). We ship a default
// 61-ticker universe of large-cap names liquid in March 2008, grouped into
// sectors — the synthetic generator uses the sector grouping to induce the
// genuine co-movement structure pair trading exploits.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "marketdata/types.hpp"

namespace mm::md {

class SymbolTable {
 public:
  SymbolTable() = default;

  // Adds `ticker` (idempotent) and returns its id.
  SymbolId intern(const std::string& ticker);

  // Id for a known ticker, or invalid_symbol.
  SymbolId lookup(const std::string& ticker) const;

  const std::string& name(SymbolId id) const;
  std::size_t size() const { return names_.size(); }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> ids_;
};

// One entry of the built-in universe.
struct UniverseEntry {
  const char* ticker;
  const char* sector;
  double price_2008;  // plausible March-2008 price level, seeds the generator
};

// The full built-in 61-name universe (sector-grouped).
const std::vector<UniverseEntry>& default_universe();

// Universe of `n` symbols: the first min(n, 61) are the built-in names; past
// the built-ins the universe continues with deterministic synthetic tickers
// ("SYN00061", ...) grouped into synthetic sectors of 25, with hash-derived
// base prices — the 1k–5k regime of the exchange-wide all-pairs studies.
// make_universe(m) is always a prefix of make_universe(n) for m < n. Returns
// the table and parallel sector-index / seed-price arrays.
struct Universe {
  SymbolTable table;
  std::vector<int> sector;        // per symbol id
  std::vector<double> base_price; // per symbol id
  std::vector<std::string> sector_names;
};

Universe make_universe(std::size_t n);

}  // namespace mm::md
