// mm::obs telemetry tests: exact concurrent aggregation of the sharded
// counters/histograms, the documented bucket boundary rule, registry
// snapshots, and the trace ring -> Chrome JSON path (round-tripped through a
// real JSON parser, not substring checks).
//
// Value assertions are #if-guarded so the suite also passes in an
// MM_OBS_ENABLED=OFF build, where every update is a no-op and snapshots and
// traces are empty but the API (and the JSON it emits) must stay valid.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace mm::obs {
namespace {

// --- minimal JSON parser ----------------------------------------------------
// Enough of RFC 8259 to round-trip what mm::obs emits (objects, arrays,
// strings with \" escapes, numbers, literals). parse() demands that the whole
// input is one valid value.

struct Json {
  enum class Type { null, boolean, number, string, array, object };
  Type type = Type::null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> items;                          // array
  std::vector<std::pair<std::string, Json>> fields; // object, in input order

  const Json* get(const std::string& key) const {
    for (const auto& [k, v] : fields)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  bool parse(Json* out) {
    pos_ = 0;
    skip();
    if (!value(out)) return false;
    skip();
    return pos_ == text_.size();
  }

 private:
  void skip() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool string_token(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: return false;  // \u etc. never emitted by mm::obs
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool value(Json* out) {
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->type = Json::Type::string;
      return string_token(&out->string);
    }
    if (c == 't') { out->type = Json::Type::boolean; out->boolean = true;  return literal("true"); }
    if (c == 'f') { out->type = Json::Type::boolean; out->boolean = false; return literal("false"); }
    if (c == 'n') { out->type = Json::Type::null; return literal("null"); }
    // Number.
    char* end = nullptr;
    out->type = Json::Type::number;
    out->number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    return true;
  }

  bool object(Json* out) {
    out->type = Json::Type::object;
    ++pos_;  // '{'
    skip();
    if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      std::string key;
      skip();
      if (!string_token(&key)) return false;
      skip();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      skip();
      Json v;
      if (!value(&v)) return false;
      out->fields.emplace_back(std::move(key), std::move(v));
      skip();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array(Json* out) {
    out->type = Json::Type::array;
    ++pos_;  // '['
    skip();
    if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      Json v;
      skip();
      if (!value(&v)) return false;
      out->items.push_back(std::move(v));
      skip();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// --- counters ---------------------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  for (auto& th : threads) th.join();
#if MM_OBS_ENABLED
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  counter.reset();
#endif
  EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsCounter, AddWithArgument) {
  Counter counter;
  counter.add(5);
  counter.add();  // default 1
  counter.add(7);
#if MM_OBS_ENABLED
  EXPECT_EQ(counter.value(), 13u);
#else
  EXPECT_EQ(counter.value(), 0u);
#endif
}

// --- gauges -----------------------------------------------------------------

TEST(ObsGauge, SetAddAndWatermark) {
  Gauge gauge;
  gauge.set(10);
  gauge.add(-3);
  gauge.max_of(5);  // below current 7: no effect
#if MM_OBS_ENABLED
  EXPECT_EQ(gauge.value(), 7);
  gauge.max_of(40);
  EXPECT_EQ(gauge.value(), 40);
  gauge.reset();
#endif
  EXPECT_EQ(gauge.value(), 0);
}

TEST(ObsGauge, ConcurrentMaxOfKeepsHighWatermark) {
  Gauge gauge;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&gauge, t] {
      for (std::int64_t v = 0; v <= 1000; ++v) gauge.max_of(v * (t + 1));
    });
  for (auto& th : threads) th.join();
#if MM_OBS_ENABLED
  EXPECT_EQ(gauge.value(), 1000 * kThreads);
#else
  EXPECT_EQ(gauge.value(), 0);
#endif
}

// --- histograms -------------------------------------------------------------

// The documented boundary rule: lower bound inclusive, upper bound exclusive.
// With bounds {10, 20}: bucket0 = v < 10, bucket1 = 10 <= v < 20,
// bucket2 (overflow) = v >= 20.
TEST(ObsHistogram, BucketBoundariesInclusiveLowerExclusiveUpper) {
  Histogram hist(std::vector<std::int64_t>{10, 20});
  hist.record(9);   // bucket 0 (just below the first bound)
  hist.record(10);  // bucket 1 (exactly on a bound -> higher bucket)
  hist.record(19);  // bucket 1
  hist.record(20);  // overflow (exactly on the last bound)
  hist.record(25);  // overflow
#if MM_OBS_ENABLED
  ASSERT_EQ(hist.bucket_count(), 3u);
  const auto buckets = hist.bucket_values();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_EQ(hist.sum(), 9 + 10 + 19 + 20 + 25);
#else
  EXPECT_EQ(hist.count(), 0u);
#endif
}

TEST(ObsHistogram, ConcurrentRecordsAggregateExactly) {
  // Samples 0..39 against the default ns bounds all land in bucket 0; the
  // per-thread pattern makes count and sum exactly predictable.
  Histogram hist(default_latency_bounds_ns());
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&hist] {
      for (std::int64_t i = 0; i < kPerThread; ++i) hist.record(i % 40);
    });
  for (auto& th : threads) th.join();
#if MM_OBS_ENABLED
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  // sum over one thread: kPerThread/40 full cycles of 0+..+39 = 780.
  const std::int64_t cycle_sum = 39 * 40 / 2;
  EXPECT_EQ(hist.sum(), kThreads * (kPerThread / 40) * cycle_sum);
  const auto buckets = hist.bucket_values();
  EXPECT_EQ(buckets.front(), hist.count());
  hist.reset();
#endif
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0);
}

// --- registry and snapshots -------------------------------------------------

TEST(ObsRegistry, HandlesAreStableAndSnapshotAggregates) {
  Registry registry;
  Counter& sent = registry.counter("edge.sent");
  Counter& recv = registry.counter("edge.recv");
  Gauge& depth = registry.gauge("queue.depth");
  Histogram& lat = registry.histogram("latency_ns");

  // Re-registration returns the same object.
  EXPECT_EQ(&sent, &registry.counter("edge.sent"));
  EXPECT_EQ(&depth, &registry.gauge("queue.depth"));
  EXPECT_EQ(&lat, &registry.histogram("latency_ns"));

  sent.add(3);
  recv.add(2);
  depth.max_of(17);
  lat.record(1500);

  const Snapshot snap = registry.snapshot();
#if MM_OBS_ENABLED
  ASSERT_EQ(snap.metrics.size(), 4u);
  // Name-sorted within each kind; find() works regardless.
  const MetricValue* s = snap.find("edge.sent");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, MetricKind::counter);
  EXPECT_EQ(s->value, 3);
  EXPECT_EQ(snap.counter_total("edge."), 5);
  const MetricValue* d = snap.find("queue.depth");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->value, 17);
  const MetricValue* h = snap.find("latency_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_EQ(h->sum, 1500);
  ASSERT_EQ(h->buckets.size(), h->bounds.size() + 1);
  EXPECT_FALSE(snap.to_string().empty());

  registry.reset();
  const Snapshot zeroed = registry.snapshot();
  EXPECT_EQ(zeroed.counter_total("edge."), 0);
  EXPECT_EQ(zeroed.find("latency_ns")->count, 0u);
#else
  EXPECT_TRUE(snap.metrics.empty());
  EXPECT_EQ(snap.find("edge.sent"), nullptr);
  EXPECT_EQ(snap.counter_total(""), 0);
#endif
}

TEST(ObsSnapshot, JsonRoundTripsThroughParser) {
  Registry registry;
  registry.counter("a.count").add(41);
  registry.gauge("b.level").set(-7);
  registry.histogram("c.lat_ns").record(2000);

  Json doc;
  ASSERT_TRUE(JsonParser(registry.snapshot().to_json()).parse(&doc));
  const Json* metrics = doc.get("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->type, Json::Type::array);
#if MM_OBS_ENABLED
  ASSERT_EQ(metrics->items.size(), 3u);
  bool saw_counter = false;
  for (const auto& m : metrics->items) {
    ASSERT_EQ(m.type, Json::Type::object);
    ASSERT_NE(m.get("name"), nullptr);
    if (m.get("name")->string == "a.count") {
      saw_counter = true;
      EXPECT_EQ(m.get("kind")->string, "counter");
      EXPECT_EQ(m.get("value")->number, 41.0);
    }
  }
  EXPECT_TRUE(saw_counter);
#else
  EXPECT_TRUE(metrics->items.empty());
#endif
}

// --- quantiles and deltas (MetricValue/Snapshot are real in both modes) ----

MetricValue make_histogram_value(std::vector<std::int64_t> bounds,
                                 std::vector<std::uint64_t> buckets) {
  MetricValue m;
  m.name = "h";
  m.kind = MetricKind::histogram;
  m.bounds = std::move(bounds);
  m.buckets = std::move(buckets);
  for (const auto b : m.buckets) m.count += b;
  return m;
}

TEST(ObsQuantile, InterpolatesLinearlyInsideBuckets) {
  // 10 samples in [0, 100), 10 in [100, 200).
  const MetricValue m = make_histogram_value({100, 200, 400}, {10, 10, 0, 0});
  EXPECT_DOUBLE_EQ(m.quantile(0.25), 50.0);
  EXPECT_DOUBLE_EQ(m.quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(m.quantile(0.75), 150.0);
  EXPECT_DOUBLE_EQ(m.quantile(1.0), 200.0);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(m.quantile(-1.0), m.quantile(0.0));
  EXPECT_DOUBLE_EQ(m.quantile(2.0), m.quantile(1.0));
}

TEST(ObsQuantile, OverflowSamplesArePinnedToLastBound) {
  const MetricValue m = make_histogram_value({100, 200, 400}, {0, 0, 0, 5});
  EXPECT_DOUBLE_EQ(m.quantile(0.5), 400.0);
  EXPECT_DOUBLE_EQ(m.quantile(0.99), 400.0);
}

TEST(ObsQuantile, DegenerateShapes) {
  MetricValue empty;
  empty.kind = MetricKind::histogram;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  MetricValue no_bounds;  // falls back to the mean
  no_bounds.kind = MetricKind::histogram;
  no_bounds.count = 4;
  no_bounds.sum = 100;
  EXPECT_DOUBLE_EQ(no_bounds.quantile(0.95), 25.0);
}

TEST(ObsSnapshot, DeltaSubtractsCountersKeepsGauges) {
  Snapshot base, now;
  MetricValue c;
  c.name = "sent";
  c.kind = MetricKind::counter;
  c.value = 100;
  base.metrics.push_back(c);
  c.value = 250;
  now.metrics.push_back(c);
  MetricValue g;
  g.name = "depth";
  g.kind = MetricKind::gauge;
  g.value = 7;
  base.metrics.push_back(g);
  g.value = 3;
  now.metrics.push_back(g);
  MetricValue fresh;  // absent from base: passes through
  fresh.name = "new.counter";
  fresh.kind = MetricKind::counter;
  fresh.value = 5;
  now.metrics.push_back(fresh);

  const Snapshot d = now.delta(base);
  EXPECT_EQ(d.find("sent")->value, 150);
  EXPECT_EQ(d.find("depth")->value, 3);  // gauges are levels, not totals
  EXPECT_EQ(d.find("new.counter")->value, 5);
}

TEST(ObsSnapshot, DeltaSubtractsHistogramBucketsAndSurvivesReset) {
  Snapshot base, now;
  MetricValue h1 = make_histogram_value({100, 200}, {5, 5, 0});
  h1.name = "lat";
  h1.sum = 500;
  base.metrics.push_back(h1);
  MetricValue h2 = make_histogram_value({100, 200}, {5, 9, 1});
  h2.name = "lat";
  h2.sum = 1700;
  now.metrics.push_back(h2);

  const Snapshot d = now.delta(base);
  const MetricValue* m = d.find("lat");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 5u);
  EXPECT_EQ(m->sum, 1200);
  EXPECT_EQ(m->buckets[0], 0u);
  EXPECT_EQ(m->buckets[1], 4u);
  EXPECT_EQ(m->buckets[2], 1u);

  // Registry reset between snapshots (base count exceeds current): the delta
  // degrades to the current values instead of underflowing.
  const Snapshot reversed = base.delta(now);
  EXPECT_EQ(reversed.find("lat")->count, 10u);
}

TEST(ObsSnapshot, CounterSuffixTotalSumsMatchingCounters) {
  Snapshot snap;
  for (const char* name : {"dag.a.frames_in", "dag.b.frames_in", "dag.a.frames_out"}) {
    MetricValue c;
    c.name = name;
    c.kind = MetricKind::counter;
    c.value = 10;
    snap.metrics.push_back(c);
  }
  EXPECT_EQ(snap.counter_suffix_total(".frames_in"), 20);
  EXPECT_EQ(snap.counter_suffix_total(".frames_out"), 10);
  EXPECT_EQ(snap.counter_suffix_total(".absent"), 0);
}

#if MM_OBS_ENABLED
TEST(ObsSnapshot, HistogramRendersQuantilesInTextAndJson) {
  Registry registry;
  Histogram& h = registry.histogram("step_ns", {100, 200, 400});
  for (int i = 0; i < 10; ++i) h.record(50);
  const Snapshot snap = registry.snapshot();
  EXPECT_NE(snap.to_string().find("p95="), std::string::npos);
  Json doc;
  ASSERT_TRUE(JsonParser(snap.to_json()).parse(&doc));
  const Json& m = doc.get("metrics")->items.at(0);
  ASSERT_NE(m.get("p95"), nullptr);
  EXPECT_GT(m.get("p95")->number, 0.0);
  EXPECT_LE(m.get("p95")->number, 100.0);
}
#endif  // MM_OBS_ENABLED

// --- trace ring and Chrome JSON --------------------------------------------

TEST(ObsTrace, ChromeJsonRoundTripsThroughParser) {
  TraceSink sink;
  TraceRing& ring = sink.ring(3, "rank 3");
  ring.set_tid(2);
  sink.set_thread_name(3, 2, "cleaner");
  { ObsSpan span(&ring, "work"); }
  ring.instant("tick");

  Json doc;
  ASSERT_TRUE(JsonParser(sink.chrome_json()).parse(&doc));
  const Json* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, Json::Type::array);
#if MM_OBS_ENABLED
  EXPECT_EQ(sink.total_events(), 2u);
  bool saw_process = false, saw_thread = false, saw_span = false, saw_instant = false;
  for (const auto& e : events->items) {
    ASSERT_EQ(e.type, Json::Type::object);
    const std::string& ph = e.get("ph")->string;
    const std::string& name = e.get("name")->string;
    if (ph == "M" && name == "process_name") {
      saw_process = true;
      EXPECT_EQ(e.get("pid")->number, 3.0);
      EXPECT_EQ(e.get("args")->get("name")->string, "rank 3");
    } else if (ph == "M" && name == "thread_name") {
      saw_thread = true;
      EXPECT_EQ(e.get("tid")->number, 2.0);
      EXPECT_EQ(e.get("args")->get("name")->string, "cleaner");
    } else if (ph == "X") {
      saw_span = true;
      EXPECT_EQ(name, "work");
      EXPECT_EQ(e.get("pid")->number, 3.0);
      EXPECT_EQ(e.get("tid")->number, 2.0);
      EXPECT_GE(e.get("dur")->number, 0.0);
    } else if (ph == "i") {
      saw_instant = true;
      EXPECT_EQ(name, "tick");
    }
  }
  EXPECT_TRUE(saw_process);
  EXPECT_TRUE(saw_thread);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
#else
  EXPECT_TRUE(events->items.empty());
#endif
}

TEST(ObsTrace, WriteFileProducesParsableJson) {
  TraceSink sink;
  TraceRing& ring = sink.ring(0, "rank 0");
  { ObsSpan span(&ring, "day"); }
  const std::string path = "test_obs_tmp.trace.json";
  ASSERT_TRUE(sink.write_file(path).has_value());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string body;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  Json doc;
  ASSERT_TRUE(JsonParser(body).parse(&doc));
  ASSERT_NE(doc.get("traceEvents"), nullptr);
}

#if MM_OBS_ENABLED
TEST(ObsTrace, FullRingDropsNewestAndCounts) {
  TraceSink sink(/*ring_capacity=*/4);
  TraceRing& ring = sink.ring(0, "rank 0");
  for (int i = 0; i < 10; ++i) ring.instant("e");
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(sink.total_dropped(), 6u);
}

TEST(ObsTrace, SpanRecordsHistogramAndCloseIsIdempotent) {
  TraceSink sink;
  TraceRing& ring = sink.ring(0, "rank 0");
  Histogram hist(default_latency_bounds_ns());
  {
    ObsSpan span(&ring, "step", &hist);
    span.close();
    span.close();  // second close: no double record
  }                // destructor after close: no record either
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(ring.size(), 1u);
}
#endif  // MM_OBS_ENABLED

TEST(ObsTrace, NullTargetsAreNoOps) {
  ObsSpan span(nullptr, "free");
  ObsSpan both(nullptr, "free", nullptr);
  both.close();
  // Nothing to assert beyond "does not crash / read the clock".
}

}  // namespace
}  // namespace mm::obs
