// AVX2 kernel variants. Compiled only when MM_SIMD=ON and the toolchain
// accepts -mavx2 (see src/stats/CMakeLists.txt); selected at runtime when
// the host CPU reports AVX2.
//
// Every kernel mirrors the scalar variant's arithmetic exactly: vertical
// 4-lane adds, one horizontal reduction in (l0 + l2) + (l1 + l3) order, and
// a sequential scalar tail appended after the combine. No FMA is used (and
// the TU is compiled with -ffp-contract=off so the tails cannot be
// contracted either); mul, add, div and sqrt are IEEE-754 exact per
// element, so results are bit-identical to the scalar kernels — the
// property tests/test_simd_kernels.cpp asserts.
#include "stats/simd_detail.hpp"

#if MM_SIMD_AVX2

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>

namespace mm::stats::simd {
namespace {

// (l0 + l2) + (l1 + l3): add the two 128-bit halves vertically, then the
// two remaining lanes. The scalar kernels replicate this order.
inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

PairSums pair_sums_avx2(const double* x, const double* y, std::size_t n) {
  __m256d ax = _mm256_setzero_pd();
  __m256d ay = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    ax = _mm256_add_pd(ax, _mm256_loadu_pd(x + i));
    ay = _mm256_add_pd(ay, _mm256_loadu_pd(y + i));
  }
  PairSums out;
  out.sx = hsum(ax);
  out.sy = hsum(ay);
  for (std::size_t i = n4; i < n; ++i) {
    out.sx += x[i];
    out.sy += y[i];
  }
  return out;
}

CenteredSums centered_sums_avx2(const double* x, const double* y, std::size_t n,
                                double mx, double my) {
  const __m256d vmx = _mm256_set1_pd(mx);
  const __m256d vmy = _mm256_set1_pd(my);
  __m256d axx = _mm256_setzero_pd();
  __m256d ayy = _mm256_setzero_pd();
  __m256d axy = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(x + i), vmx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(y + i), vmy);
    axx = _mm256_add_pd(axx, _mm256_mul_pd(dx, dx));
    ayy = _mm256_add_pd(ayy, _mm256_mul_pd(dy, dy));
    axy = _mm256_add_pd(axy, _mm256_mul_pd(dx, dy));
  }
  CenteredSums out;
  out.sxx = hsum(axx);
  out.syy = hsum(ayy);
  out.sxy = hsum(axy);
  for (std::size_t i = n4; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    out.sxx += dx * dx;
    out.syy += dy * dy;
    out.sxy += dx * dy;
  }
  return out;
}

double dot_avx2(const double* x, const double* y, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4)
    acc = _mm256_add_pd(acc,
                        _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  double s = hsum(acc);
  for (std::size_t i = n4; i < n; ++i) s += x[i] * y[i];
  return s;
}

void cross_insert_avx2(double* row, const double* r, double xi, std::size_t n) {
  const __m256d vxi = _mm256_set1_pd(xi);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t k = 0; k < n4; k += 4) {
    const __m256d cur = _mm256_loadu_pd(row + k);
    const __m256d add = _mm256_mul_pd(vxi, _mm256_loadu_pd(r + k));
    _mm256_storeu_pd(row + k, _mm256_add_pd(cur, add));
  }
  for (std::size_t k = n4; k < n; ++k) row[k] += xi * r[k];
}

void cross_evict_insert_avx2(double* row, const double* r, const double* old_col,
                             double xi, double oi, std::size_t n) {
  const __m256d vxi = _mm256_set1_pd(xi);
  const __m256d voi = _mm256_set1_pd(oi);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t k = 0; k < n4; k += 4) {
    const __m256d cur = _mm256_loadu_pd(row + k);
    const __m256d ins = _mm256_mul_pd(vxi, _mm256_loadu_pd(r + k));
    const __m256d evi = _mm256_mul_pd(voi, _mm256_loadu_pd(old_col + k));
    _mm256_storeu_pd(row + k, _mm256_add_pd(cur, _mm256_sub_pd(ins, evi)));
  }
  for (std::size_t k = n4; k < n; ++k) row[k] += xi * r[k] - oi * old_col[k];
}

void pearson_row_avx2(double* orow, const double* crow, const double* sums_j,
                      const double* vars_j, const double* degen_j, double sum_i,
                      double vi, double count, std::size_t n) {
  const __m256d vsum_i = _mm256_set1_pd(sum_i);
  const __m256d vvi = _mm256_set1_pd(vi);
  const __m256d vcount = _mm256_set1_pd(count);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vneg1 = _mm256_set1_pd(-1.0);
  const __m256d vpos1 = _mm256_set1_pd(1.0);
  const __m256d vinf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t k = 0; k < n4; k += 4) {
    const __m256d usable = _mm256_cmp_pd(_mm256_loadu_pd(degen_j + k), vzero,
                                         _CMP_EQ_OQ);
    const __m256d cov = _mm256_sub_pd(
        _mm256_loadu_pd(crow + k),
        _mm256_div_pd(_mm256_mul_pd(vsum_i, _mm256_loadu_pd(sums_j + k)), vcount));
    const __m256d denom =
        _mm256_sqrt_pd(_mm256_mul_pd(vvi, _mm256_loadu_pd(vars_j + k)));
    const __m256d good =
        _mm256_and_pd(_mm256_cmp_pd(denom, vzero, _CMP_GT_OQ),
                      _mm256_cmp_pd(denom, vinf, _CMP_LT_OQ));
    const __m256d q = _mm256_div_pd(cov, denom);
    const __m256d clamped = _mm256_min_pd(_mm256_max_pd(q, vneg1), vpos1);
    _mm256_storeu_pd(orow + k,
                     _mm256_and_pd(clamped, _mm256_and_pd(usable, good)));
  }
  for (std::size_t k = n4; k < n; ++k) {
    double r = 0.0;
    if (degen_j[k] == 0.0) {
      const double cov = crow[k] - sum_i * sums_j[k] / count;
      const double denom = std::sqrt(vi * vars_j[k]);
      if (denom > 0.0 && std::isfinite(denom))
        r = std::clamp(cov / denom, -1.0, 1.0);
    }
    orow[k] = r;
  }
}

WeightedSums maronna_weighted_sums_avx2(const double* x, const double* y,
                                        std::size_t n, double mx, double my,
                                        double ixx, double ixy, double iyy,
                                        double k2) {
  const __m256d vmx = _mm256_set1_pd(mx);
  const __m256d vmy = _mm256_set1_pd(my);
  const __m256d vixx = _mm256_set1_pd(ixx);
  const __m256d vixy = _mm256_set1_pd(ixy);
  const __m256d viyy = _mm256_set1_pd(iyy);
  const __m256d vk2 = _mm256_set1_pd(k2);
  const __m256d vtwo = _mm256_set1_pd(2.0);
  const __m256d vone = _mm256_set1_pd(1.0);
  __m256d asw = _mm256_setzero_pd();
  __m256d aswx = _mm256_setzero_pd();
  __m256d aswy = _mm256_setzero_pd();
  __m256d asxx = _mm256_setzero_pd();
  __m256d asxy = _mm256_setzero_pd();
  __m256d asyy = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    const __m256d yv = _mm256_loadu_pd(y + i);
    const __m256d dx = _mm256_sub_pd(xv, vmx);
    const __m256d dy = _mm256_sub_pd(yv, vmy);
    // d2 = (dx*dx)*ixx + ((2*dx)*dy)*ixy + (dy*dy)*iyy, summed left to
    // right — the scalar kernel's exact association.
    const __m256d t1 = _mm256_mul_pd(_mm256_mul_pd(dx, dx), vixx);
    const __m256d t2 =
        _mm256_mul_pd(_mm256_mul_pd(_mm256_mul_pd(vtwo, dx), dy), vixy);
    const __m256d t3 = _mm256_mul_pd(_mm256_mul_pd(dy, dy), viyy);
    const __m256d d2 = _mm256_add_pd(_mm256_add_pd(t1, t2), t3);
    const __m256d inside = _mm256_cmp_pd(d2, vk2, _CMP_LE_OQ);
    const __m256d w = _mm256_blendv_pd(_mm256_div_pd(vk2, d2), vone, inside);
    asw = _mm256_add_pd(asw, w);
    aswx = _mm256_add_pd(aswx, _mm256_mul_pd(w, xv));
    aswy = _mm256_add_pd(aswy, _mm256_mul_pd(w, yv));
    asxx = _mm256_add_pd(asxx, _mm256_mul_pd(_mm256_mul_pd(w, dx), dx));
    asxy = _mm256_add_pd(asxy, _mm256_mul_pd(_mm256_mul_pd(w, dx), dy));
    asyy = _mm256_add_pd(asyy, _mm256_mul_pd(_mm256_mul_pd(w, dy), dy));
  }
  WeightedSums out;
  out.sw = hsum(asw);
  out.swx = hsum(aswx);
  out.swy = hsum(aswy);
  out.sxx = hsum(asxx);
  out.sxy = hsum(asxy);
  out.syy = hsum(asyy);
  for (std::size_t i = n4; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    const double d2 = dx * dx * ixx + 2.0 * dx * dy * ixy + dy * dy * iyy;
    const double w = d2 <= k2 ? 1.0 : k2 / d2;
    out.sw += w;
    out.swx += w * x[i];
    out.swy += w * y[i];
    out.sxx += w * dx * dx;
    out.sxy += w * dx * dy;
    out.syy += w * dy * dy;
  }
  return out;
}

}  // namespace

namespace detail {

const KernelTable& avx2_table() {
  static const KernelTable table = {
      pair_sums_avx2,      centered_sums_avx2,
      dot_avx2,            cross_insert_avx2,
      cross_evict_insert_avx2, pearson_row_avx2,
      maronna_weighted_sums_avx2,
  };
  return table;
}

}  // namespace detail
}  // namespace mm::stats::simd

#endif  // MM_SIMD_AVX2
