#!/usr/bin/env bash
# Telemetry smoke drill, three acts:
#
#   1. obs_demo       one synthetic day with metrics + tracing, writing a
#                     Chrome-trace JSON (chrome://tracing / ui.perfetto.dev);
#   2. live scrape    live_pipeline paced over several seconds with the
#                     monitoring plane on, /metrics scraped mid-day and
#                     checked for heartbeat liveness series;
#   3. kill drill     live_pipeline with a fault-plan kill of a strategy rank,
#                     verifying the flight recorder wrote a postmortem bundle
#                     (crash_report.json, trace.json, snapshots.json,
#                     metrics.prom).
#
# Usage: scripts/obs_trace.sh [build-dir] [out.json]
# (defaults: build, obs_demo.trace.json at the repo root).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
out=${2:-"$repo_root/obs_demo.trace.json"}
port=${MM_METRICS_PORT:-19273}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j --target obs_demo live_pipeline

echo "--- 1/3: obs_demo trace -> $out"
"$build_dir/examples/obs_demo" --trace "$out"
# The trace must be causally stitched: flow-start ("ph":"s") events on the
# sending ranks and matching flow-finish ("ph":"f") events on the receiving
# ranks, i.e. cross-rank send->recv arrows in Perfetto, not N disconnected
# rank timelines. (An OFF build writes an event-less trace; skip then.)
if grep -q '"ph":"X"' "$out"; then
  grep -q '"cat":"flow","ph":"s"' "$out" ||
    { echo "FAIL: trace has no cross-rank flow starts"; exit 1; }
  grep -q '"cat":"flow","ph":"f"' "$out" ||
    { echo "FAIL: trace has no cross-rank flow finishes"; exit 1; }
  echo "trace stitched: $(grep -o '"ph":"f"' "$out" | wc -l) flow finishes"
fi

# Raw-bash HTTP GET (no curl dependency): /dev/tcp + a one-shot request.
scrape() { # scrape <port> <path>
  exec 3<>"/dev/tcp/127.0.0.1/$1"
  printf 'GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n' "$2" >&3
  cat <&3
  exec 3<&- 3>&-
}

echo "--- 2/3: live run on 127.0.0.1:$port, scraping /metrics mid-day"
"$build_dir/examples/live_pipeline" --speedup 4680 --metrics-port "$port" &
live_pid=$!
trap 'kill "$live_pid" 2>/dev/null || true' EXIT
sleep 2  # the 6.5 h session replays in ~5 s; scrape lands mid-day
page=$(scrape "$port" /metrics)
echo "$page" | grep -q '^mm_heartbeat_up{rank="0"' ||
  { echo "FAIL: /metrics has no heartbeat series"; exit 1; }
echo "$page" | grep -q '^mm_mpmini_send_messages_total' ||
  { echo "FAIL: /metrics has no transport counters"; exit 1; }
scrape "$port" /healthz | grep -q '200 OK' ||
  { echo "FAIL: /healthz not OK mid-day"; exit 1; }
echo "scraped $(echo "$page" | grep -c '^mm_') mm_ samples; healthz OK"
wait "$live_pid"
trap - EXIT

echo "--- 3/3: kill drill (strategy-0 rank murdered mid-day)"
flight_dir=$(mktemp -d)
"$build_dir/examples/live_pipeline" --speedup 23400 --metrics-port -1 \
  --kill-rank 4 --kill-at 150 --flight-dir "$flight_dir"
bundle=$(find "$flight_dir" -maxdepth 1 -name 'postmortem-*' | head -1)
[ -n "$bundle" ] || { echo "FAIL: no flight bundle in $flight_dir"; exit 1; }
for f in crash_report.json trace.json snapshots.json metrics.prom; do
  [ -s "$bundle/$f" ] || { echo "FAIL: bundle missing $f"; exit 1; }
done
grep -q '"rank":4' "$bundle/crash_report.json" ||
  { echo "FAIL: crash report does not name rank 4"; exit 1; }
echo "flight bundle OK: $bundle"
rm -rf "$flight_dir"
echo "obs drill passed"
