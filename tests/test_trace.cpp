// Causal tracing tests: cross-rank context propagation through the mpmini
// envelope, dagflow frame inheritance, flow-event stitching in the Chrome
// JSON, fault-plan interaction (drops orphan nothing, duplicates don't
// double-finish), the kill -> flight-bundle path, and name truncation.
//
// Every test compiles in MM_OBS_ENABLED=OFF builds too (the obs-off CI tree
// runs this file): value assertions on trace content are #if-guarded, while
// the control flow — scopes, sends, graph runs — executes in both modes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "dagflow/context.hpp"
#include "dagflow/graph.hpp"
#include "engine/pipeline.hpp"
#include "marketdata/generator.hpp"
#include "marketdata/symbols.hpp"
#include "mpmini/environment.hpp"
#include "obs/trace.hpp"

namespace mm::obs {
namespace {

using std::chrono::milliseconds;

#if MM_OBS_ENABLED
// Events of `kind` recorded on `ring`, in recording order.
std::vector<TraceEvent> events_of_kind(const TraceRing& ring, std::uint8_t kind) {
  std::vector<TraceEvent> out;
  for (std::size_t i = 0; i < ring.size(); ++i)
    if (ring.event(i).kind == kind) out.push_back(ring.event(i));
  return out;
}
#endif

// --- name truncation --------------------------------------------------------

TEST(TraceNames, LongNamesTruncateAtCapacity) {
  TraceSink sink(16);
  TraceRing& ring = sink.ring(0, "p");
  const std::string max_name(kMaxEventName, 'a');       // exactly fits
  const std::string long_name(kMaxEventName + 12, 'b'); // must truncate
  ring.complete(max_name.c_str(), 10, 10);
  ring.complete(long_name.c_str(), 30, 10);
#if MM_OBS_ENABLED
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_EQ(std::strlen(ring.event(0).name), kMaxEventName);
  EXPECT_EQ(ring.event(0).name, max_name);
  // The truncated copy keeps the first kMaxEventName characters.
  EXPECT_EQ(std::strlen(ring.event(1).name), kMaxEventName);
  EXPECT_EQ(ring.event(1).name, long_name.substr(0, kMaxEventName));
  // And the JSON carries the truncated name, not garbage.
  EXPECT_NE(sink.chrome_json().find(long_name.substr(0, kMaxEventName)),
            std::string::npos);
  EXPECT_EQ(sink.chrome_json().find(long_name), std::string::npos);
#else
  EXPECT_EQ(ring.size(), 0u);
#endif
}

// --- context plumbing -------------------------------------------------------

TEST(TraceContextApi, ScopesInstallAndRestore) {
#if MM_OBS_ENABLED
  EXPECT_FALSE(current_trace_context().valid());
  const std::uint64_t id = next_trace_id();
  {
    TraceContextScope scope(make_trace_context(id, 7));
    EXPECT_TRUE(current_trace_context().valid());
    EXPECT_EQ(current_trace_context().trace_id, id);
    EXPECT_EQ(current_trace_context().parent_span, 7u);
    {
      TraceContextScope inner(TraceContext{});
      EXPECT_FALSE(current_trace_context().valid());
    }
    EXPECT_EQ(current_trace_context().trace_id, id);
  }
  EXPECT_FALSE(current_trace_context().valid());
  // Allocators never return the 0 sentinel.
  EXPECT_NE(next_trace_id(), 0u);
  EXPECT_NE(next_span_id(), 0u);
#else
  // OFF: everything compiles to no-ops and the context is never valid.
  TraceContextScope scope(make_trace_context(42));
  EXPECT_FALSE(current_trace_context().valid());
  EXPECT_EQ(next_trace_id(), 0u);
  EXPECT_EQ(next_span_id(), 0u);
#endif
}

#if !MM_OBS_ENABLED
TEST(TraceOffMode, MessageCarriesNoTraceHeader) {
  // The envelope header is a packed extension: compiled out entirely, it
  // must add zero bytes to the Message struct.
  struct BareMessage {
    int source;
    int tag;
    std::uint64_t comm_id;
    std::uint64_t sequence;
    std::vector<std::uint8_t> payload;
  };
  EXPECT_EQ(sizeof(mpi::Message), sizeof(BareMessage));
}
#endif

// --- cross-rank stitching through mpmini ------------------------------------

TEST(TraceCrossRank, SendRecvEmitLinkedFlowEvents) {
  TraceSink sink(256);
  std::uint64_t root_trace = next_trace_id();
  std::atomic<std::uint64_t> recv_trace_id{0};
  std::atomic<std::uint32_t> recv_flow{0};

  mpi::Environment::run(2, [&](mpi::Comm& comm) {
    TraceRing& ring = sink.ring(comm.rank(), "rank");
    TraceRingScope ring_scope(&ring);
    if (comm.rank() == 0) {
      TraceContextScope context_scope(make_trace_context(root_trace));
      comm.send(1, 5, {1, 2, 3});
    } else {
      mpi::RecvStatus status;
      (void)comm.recv(0, 5, &status);
#if MM_OBS_ENABLED
      recv_trace_id = status.trace_id;
      recv_flow = status.flow;
#endif
    }
  });

#if MM_OBS_ENABLED
  // The envelope carried the sender's context to the receiver intact.
  EXPECT_EQ(recv_trace_id.load(), root_trace);
  EXPECT_NE(recv_flow.load(), 0u);

  // One flow start on the sender's ring, one finish on the receiver's, same
  // id — that's the arrow the viewer draws.
  const auto starts = events_of_kind(sink.ring(0, "rank"), TraceRing::kFlowStart);
  const auto finishes = events_of_kind(sink.ring(1, "rank"), TraceRing::kFlowFinish);
  ASSERT_EQ(starts.size(), 1u);
  ASSERT_EQ(finishes.size(), 1u);
  EXPECT_EQ(starts[0].flow, finishes[0].flow);
  EXPECT_EQ(starts[0].flow, recv_flow.load());

  // Both endpoints sit inside their enclosing spans ("send" / "recv") so the
  // viewer can bind them.
  ASSERT_EQ(events_of_kind(sink.ring(0, "rank"), TraceRing::kSpan).size(), 1u);
  ASSERT_EQ(events_of_kind(sink.ring(1, "rank"), TraceRing::kSpan).size(), 1u);
  const TraceEvent send_span = events_of_kind(sink.ring(0, "rank"), TraceRing::kSpan)[0];
  const TraceEvent recv_span = events_of_kind(sink.ring(1, "rank"), TraceRing::kSpan)[0];
  EXPECT_STREQ(send_span.name, "send");
  EXPECT_STREQ(recv_span.name, "recv");
  EXPECT_GE(starts[0].ts_ns, send_span.ts_ns);
  EXPECT_LE(starts[0].ts_ns, send_span.ts_ns + send_span.dur_ns);
  EXPECT_GE(finishes[0].ts_ns, recv_span.ts_ns);
  EXPECT_LE(finishes[0].ts_ns, recv_span.ts_ns + recv_span.dur_ns);

  // Serialized form: a "s" and a "f" flow event with matching ids and the
  // enclosing-slice binding point on the finish.
  const std::string json = sink.chrome_json();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flow\""), std::string::npos);
#else
  EXPECT_EQ(sink.total_events(), 0u);
  EXPECT_EQ(root_trace, 0u);
#endif
}

TEST(TraceCrossRank, UntracedSendsCarryNoHeaderAndEmitNothing) {
  TraceSink sink(256);
  mpi::Environment::run(2, [&](mpi::Comm& comm) {
    TraceRing& ring = sink.ring(comm.rank(), "rank");
    TraceRingScope ring_scope(&ring);
    // No TraceContextScope: the thread context is invalid, so the send goes
    // out untraced even though a ring is attached.
    if (comm.rank() == 0) {
      comm.send(1, 5, {9});
    } else {
      mpi::RecvStatus status;
      (void)comm.recv(0, 5, &status);
#if MM_OBS_ENABLED
      EXPECT_EQ(status.trace_id, 0u);
      EXPECT_EQ(status.flow, 0u);
#endif
    }
  });
  EXPECT_EQ(sink.total_events(), 0u);
  EXPECT_EQ(sink.total_flow_starts(), 0u);
  EXPECT_EQ(sink.total_flow_finishes(), 0u);
}

// --- fault-plan interaction -------------------------------------------------

TEST(TraceFaults, DroppedMessagesOrphanNoSpans) {
  TraceSink sink(1024);
  mpi::FaultPlan plan;
  plan.seed = 11;
  plan.drop_prob = 1.0;  // every user-tag message is dropped in flight
  const std::uint64_t root_trace = next_trace_id();

  mpi::Environment::run(
      2,
      [&](mpi::Comm& comm) {
        TraceRing& ring = sink.ring(comm.rank(), "rank");
        TraceRingScope ring_scope(&ring);
        if (comm.rank() == 0) {
          TraceContextScope context_scope(make_trace_context(root_trace));
          for (int i = 0; i < 8; ++i) comm.send(1, 5, {7});
        } else {
          // Nothing can arrive; every wait times out.
          for (int i = 0; i < 2; ++i)
            EXPECT_FALSE(comm.recv_for(milliseconds{20}, 0, 5).has_value());
        }
      },
      plan);

  // A dropped send emits neither a span nor a flow start: no half-arrows, no
  // spans for messages that never existed downstream.
  EXPECT_EQ(sink.total_flow_starts(), 0u);
  EXPECT_EQ(sink.total_flow_finishes(), 0u);
  EXPECT_EQ(sink.total_events(), 0u);
}

TEST(TraceFaults, DuplicatedMessagesEmitOneFlowFinishEach) {
  TraceSink sink(1024);
  mpi::FaultPlan plan;
  plan.seed = 11;
  plan.duplicate_prob = 1.0;  // every user-tag message arrives twice
  const std::uint64_t root_trace = next_trace_id();
  constexpr int kSends = 8;
  std::atomic<int> traced_recvs{0};
  std::atomic<int> untraced_recvs{0};

  mpi::Environment::run(
      2,
      [&](mpi::Comm& comm) {
        TraceRing& ring = sink.ring(comm.rank(), "rank");
        TraceRingScope ring_scope(&ring);
        if (comm.rank() == 0) {
          TraceContextScope context_scope(make_trace_context(root_trace));
          for (int i = 0; i < kSends; ++i) comm.send(1, 5, {7});
        } else {
          for (int i = 0; i < 2 * kSends; ++i) {
            mpi::RecvStatus status;
            (void)comm.recv(0, 5, &status);
#if MM_OBS_ENABLED
            (status.trace_id != 0 ? traced_recvs : untraced_recvs)++;
#endif
          }
        }
      },
      plan);

#if MM_OBS_ENABLED
  // The duplicate copy travels with a cleared header: exactly one of each
  // delivered pair is the causal edge, so flow finishes match flow starts
  // and nothing is double-emitted.
  EXPECT_EQ(traced_recvs.load(), kSends);
  EXPECT_EQ(untraced_recvs.load(), kSends);
  EXPECT_EQ(sink.total_flow_starts(), static_cast<std::uint64_t>(kSends));
  EXPECT_EQ(sink.total_flow_finishes(), static_cast<std::uint64_t>(kSends));
#else
  EXPECT_EQ(sink.total_events(), 0u);
#endif
}

// --- dagflow inheritance ----------------------------------------------------

TEST(TraceDagflow, FramesInheritTheContextOfTheMessageThatWokeThem) {
  TraceSink sink(4096);
  const std::uint64_t root_trace = next_trace_id();
  std::mutex seen_mutex;
  std::vector<std::uint64_t> seen;  // consumer-side context per frame

  dag::Graph g;
  const int src = g.add_node("src", [](dag::Context& ctx) {
    for (int i = 0; i < 5; ++i) ctx.emit(0, {static_cast<std::uint8_t>(i)});
  });
  const int dst = g.add_node("dst", [&](dag::Context& ctx) {
    while (auto msg = ctx.recv()) {
      (void)msg;
      std::lock_guard<std::mutex> lock(seen_mutex);
#if MM_OBS_ENABLED
      seen.push_back(current_trace_context().trace_id);
#else
      seen.push_back(0);
#endif
    }
  });
  g.connect(src, 0, dst, 0);

  dag::RunOptions options;
  options.trace = &sink;
  options.trace_context = make_trace_context(root_trace);
  const auto result = g.run(options);
  for (const auto& node : result.nodes) EXPECT_TRUE(node.ok()) << node.name;

  ASSERT_EQ(seen.size(), 5u);
#if MM_OBS_ENABLED
  // Every frame the source emitted carried the root context (installed on
  // its rank thread by the run harness), and the consumer inherited it the
  // moment recv() handed the frame over.
  for (const std::uint64_t id : seen) EXPECT_EQ(id, root_trace);
  // Data frames stitched: at least one flow pair per frame. Finishes can
  // trail starts — the last credits a consumer returns may go unreceived
  // when the producer has already finished — but never exceed them.
  EXPECT_GE(sink.total_flow_starts(), 5u);
  EXPECT_GE(sink.total_flow_finishes(), 5u);
  EXPECT_LE(sink.total_flow_finishes(), sink.total_flow_starts());
#endif
}

// --- kill -> flight bundle --------------------------------------------------

namespace {
std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}
}  // namespace

TEST(TraceFlight, KilledRankSpansAppearInFlightBundle) {
  md::Universe universe = md::make_universe(4);
  md::GeneratorConfig gen;
  gen.quote_rate = 0.15;
  const md::SyntheticDay day(universe, gen, 0);

  const auto flight_dir =
      std::filesystem::temp_directory_path() /
      ("mm_trace_flight_" + std::to_string(static_cast<long long>(::getpid())));
  std::filesystem::remove_all(flight_dir);

  // Rank layout (one rank per node, add order): collector=0, cleaner=1,
  // snapshot=2, correlation=3, strategy-0=4, master=5.
  constexpr int kStrategyRank = 4;
  TraceSink sink;
  engine::PipelineConfig cfg;
  cfg.symbols = 4;
  core::StrategyParams p = core::ParamGrid::base();
  p.ctype = stats::Ctype::pearson;
  p.divergence = 0.0005;
  cfg.strategies = {p};
  cfg.batch_size = 64;  // chatty transport: a mid-day kill step lands
  cfg.fault.kill_rank = kStrategyRank;
  cfg.fault.kill_at_op = 150;
  cfg.stage_deadline = milliseconds{1000};
  cfg.replica_deadline = milliseconds{1000};
  cfg.trace = &sink;
  cfg.trace_context = make_trace_context(next_trace_id());
  cfg.live.enabled = true;
  cfg.live.heartbeat_interval = milliseconds{200};
  cfg.live.snapshot_period = milliseconds{100};
  cfg.live.http_port = -1;  // no listener in this test
  cfg.live.flight_dir = flight_dir.string();

  const auto result = engine::run_pipeline(cfg, universe, day.quotes());
  EXPECT_TRUE(result.degraded);

#if MM_OBS_ENABLED
  ASSERT_FALSE(result.live.flight_bundle.empty());
  const std::string trace =
      read_file(std::filesystem::path(result.live.flight_bundle) / "trace.json");
  // The killed rank's ring made it into the postmortem: its row exists, its
  // in-flight spans (send/recv around the kill step) were recorded, and the
  // cross-rank flow stitching survived up to the point of death.
  EXPECT_NE(trace.find("\"pid\":4"), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"recv\",\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);
  // The victim's spans carry the job-root causality: at least one flow
  // endpoint recorded on the dead rank's own ring.
  const bool victim_flow =
      sink.ring(kStrategyRank, "rank 4").size() > 0;
  EXPECT_TRUE(victim_flow);
#endif
  std::filesystem::remove_all(flight_dir);
}

}  // namespace
}  // namespace mm::obs
