#include "dagflow/context.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dagflow/graph.hpp"

namespace mm::dag {
namespace {

constexpr std::uint8_t kind_data = 0;
constexpr std::uint8_t kind_eos = 1;
constexpr std::uint8_t kind_fail = 2;  // NodeFailure marker: EOS + poisoned lineage

}  // namespace

Context::Context(mpi::Comm& comm, int node, std::string name,
                 const std::vector<Edge>& edges, const std::vector<int>& leader_ranks,
                 std::chrono::milliseconds pump_timeout, obs::Registry* metrics,
                 obs::TraceRing* ring)
    : comm_(comm),
      node_(node),
      name_(std::move(name)),
      pump_timeout_(pump_timeout),
      metrics_(metrics),
      ring_(ring) {
  if (metrics_ != nullptr) {
    frames_in_ = &metrics_->counter("dag." + name_ + ".frames_in");
    frames_out_ = &metrics_->counter("dag." + name_ + ".frames_out");
    credit_stall_ns_ = &metrics_->counter("dag." + name_ + ".credit_stall_ns");
  }
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const Edge& edge = edges[e];
    if (edge.to_node == node) {
      inputs_.push_back({static_cast<int>(e),
                         leader_ranks[static_cast<std::size_t>(edge.from_node)],
                         edge.to_port, true, false});
    }
    if (edge.from_node == node) {
      outputs_.push_back({static_cast<int>(e),
                          leader_ranks[static_cast<std::size_t>(edge.to_node)],
                          edge.from_port, edge.capacity, true});
    }
  }
}

bool Context::all_inputs_closed() const {
  for (const auto& in : inputs_)
    if (in.open) return false;
  return true;
}

std::vector<int> Context::failed_input_ports() const {
  std::vector<int> ports;
  for (const auto& in : inputs_)
    if (in.failed) ports.push_back(in.port);
  std::sort(ports.begin(), ports.end());
  return ports;
}

bool Context::pump(std::chrono::steady_clock::time_point deadline) {
  std::vector<std::uint8_t> payload;
  mpi::RecvStatus status;
  if (pump_timeout_.count() > 0) {
    const auto now = std::chrono::steady_clock::now();
    const auto budget =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    auto result = comm_.recv_for(std::max(budget, std::chrono::milliseconds{1}),
                                 mpi::any_source, mpi::any_tag, &status);
    if (!result) {
      timed_out_ = true;
      return false;
    }
    payload = std::move(*result);
  } else {
    payload = comm_.recv(mpi::any_source, mpi::any_tag, &status);
  }

  // Credit for one of my output edges?
  for (auto& out : outputs_) {
    if (credit_tag(out.edge_id) == status.tag && out.peer_node == status.source) {
      ++out.credits;
      return true;
    }
  }

  // Data, EOS or failure marker on one of my input edges.
  for (auto& in : inputs_) {
    if (data_tag(in.edge_id) == status.tag && in.peer_node == status.source) {
      MM_ASSERT_MSG(!payload.empty(), "dagflow: empty transport frame");
      const std::uint8_t kind = payload.front();
      if (kind == kind_eos || kind == kind_fail) {
        in.open = false;
        if (kind == kind_fail) {
          in.failed = true;
          upstream_failed_ = true;
        }
        return true;
      }
      MM_ASSERT_MSG(kind == kind_data, "dagflow: unknown frame kind");
      payload.erase(payload.begin());
      InMessage frame{in.port, std::move(payload)};
#if MM_OBS_ENABLED
      // Buffer the frame's causal context alongside its bytes: the frame may
      // sit in ready_ behind others, and the context must be installed when
      // the node consumes it, not when the transport happened to deliver it.
      frame.trace = obs::make_trace_context(status.trace_id, status.flow);
#endif
      ready_.push_back(std::move(frame));
      // Credit the producer as soon as the frame is buffered, not when the
      // node consumes it. Any ALIVE node keeps pumping — recv() pumps, and a
      // blocked emit() pumps while it waits — so producers starve of credits
      // only when the consumer rank is truly dead. Crediting on consumption
      // instead would let one dead edge cascade: a node stalled in emit()
      // against it would stop crediting its own producers, and their emit
      // deadlines would fire against a perfectly alive consumer. Steady-state
      // backpressure is preserved because a busy node pumps roughly once per
      // recv(), so credits still flow at its consumption rate.
      comm_.send(in.peer_node, credit_tag(in.edge_id), {});
      return true;
    }
  }
  MM_ASSERT_MSG(false, "dagflow: message for an unknown edge");
  return false;
}

std::optional<InMessage> Context::recv() {
  while (ready_.empty() && !all_inputs_closed()) {
    // Progress-based deadline: each processed message buys a fresh window.
    // The window is twice the emit deadline because an ALIVE upstream can
    // legitimately go silent for one full emit deadline while it waits out a
    // dead sibling edge of its own; declaring it dead on the same clock
    // would cascade one stage's fault across its healthy peers.
    if (!pump(std::chrono::steady_clock::now() + 2 * pump_timeout_)) {
      // Transport silent: whoever still owes us a stream is presumed dead.
      if (ring_ != nullptr) ring_->instant("recv-timeout");
      for (auto& in : inputs_) {
        if (in.open) {
          in.open = false;
          in.failed = true;
          upstream_failed_ = true;
        }
      }
      break;
    }
  }
  if (ready_.empty()) return std::nullopt;

  InMessage msg = std::move(ready_.front());
  ready_.pop_front();
  ++messages_in_;
  if (frames_in_ != nullptr) frames_in_->add(1);
  // Node code inherits the causality of the frame that woke it: from here
  // until the next recv(), every send this thread makes carries this frame's
  // trace id. Installed unconditionally so an untraced frame cannot ride a
  // stale context from its predecessor.
  obs::set_trace_context(msg.trace);
  return msg;
}

void Context::emit(int port, std::vector<std::uint8_t> bytes) {
  OutputEdge* target = nullptr;
  for (auto& out : outputs_)
    if (out.port == port) target = &out;
  MM_ASSERT_MSG(target != nullptr, "emit on an unconnected output port");
  if (!target->open) return;  // consumer declared dead earlier: drop

  // Backpressure: service the transport until a credit frees capacity. The
  // deadline is absolute across the whole wait — a consumer that returns no
  // credit within it is dead, and this edge degrades to a message sink.
  if (target->credits == 0) {
    // Credit stall: the consumer is the bottleneck. Timed only on this slow
    // path so the uncontended emit never reads the clock.
    obs::ObsSpan span(ring_, "credit-stall");
    const std::int64_t stall_start = credit_stall_ns_ != nullptr ? obs::now_ns() : 0;
    const auto deadline = std::chrono::steady_clock::now() + pump_timeout_;
    while (target->credits == 0) {
      if (!pump(deadline)) {
        if (ring_ != nullptr) ring_->instant("emit-timeout");
        target->open = false;
        if (credit_stall_ns_ != nullptr)
          credit_stall_ns_->add(static_cast<std::uint64_t>(obs::now_ns() - stall_start));
        return;  // drop the message: nobody is consuming this edge
      }
    }
    if (credit_stall_ns_ != nullptr)
      credit_stall_ns_->add(static_cast<std::uint64_t>(obs::now_ns() - stall_start));
  }

  bytes.insert(bytes.begin(), kind_data);
  comm_.send(target->peer_node, data_tag(target->edge_id), std::move(bytes));
  --target->credits;
  ++messages_out_;
  if (frames_out_ != nullptr) frames_out_->add(1);
}

void Context::close_output(int port) {
  for (auto& out : outputs_) {
    if (out.port == port && out.open) {
      // EOS bypasses flow control: it is a zero-payload frame and the only
      // message allowed to exceed capacity by one.
      comm_.send(out.peer_node, data_tag(out.edge_id),
                 {upstream_failed_ ? kind_fail : kind_eos});
      out.open = false;
    }
  }
}

void Context::close_outputs_with(std::uint8_t kind) {
  for (auto& out : outputs_) {
    if (out.open) {
      comm_.send(out.peer_node, data_tag(out.edge_id), {kind});
      out.open = false;
    }
  }
}

void Context::close_all_outputs() {
  // A clean close from a poisoned lineage still propagates the failure
  // marker, so sinks can tell a degraded stream from a healthy one.
  close_outputs_with(upstream_failed_ ? kind_fail : kind_eos);
}

void Context::fail_all_outputs() { close_outputs_with(kind_fail); }

}  // namespace mm::dag
