// mm::obs periodic snapshots — registry deltas on a cadence, rates derived
// from consecutive deltas.
//
// A SnapshotScheduler thread snapshots a Registry every `period` into a small
// ring of timestamped frames. Consecutive frames give delta counters over a
// known wall-time window, i.e. live rates (msgs/s, frames/s) and windowed
// latency quantiles (p95 of the last period's step histogram delta) — the
// numbers an operator needs DURING the day, which the end-of-run snapshot
// cannot provide. The ring doubles as the flight recorder's short-term
// memory: the last K frames ship in every postmortem bundle.
//
// All reads and writes are cold-path (registry aggregation under its own
// mutex, ring under a mutex); nothing here touches the metric hot path.
//
// With MM_OBS_ENABLED=0 the scheduler is a field-free no-op: no thread, an
// empty ring, zero rates. SnapshotFrame/RateSample stay real in both modes.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.hpp"

#if MM_OBS_ENABLED
#include <condition_variable>
#endif

namespace mm::obs {

struct SnapshotFrame {
  std::int64_t t_ns = 0;  // monitor clock (now_ns) at capture
  Snapshot snap;
};

// Live rates between the ring's two newest frames (zeros until two exist).
struct RateSample {
  std::int64_t t_ns = 0;   // newest frame's capture time
  std::int64_t dt_ns = 0;  // window between the two frames
  double msgs_per_s = 0.0;     // mpmini.recv.messages rate
  double bytes_per_s = 0.0;    // mpmini.recv.bytes rate
  double frames_per_s = 0.0;   // sum of dag *.frames_in counters rate
  double p50_step_ns = 0.0;    // quantiles of the step histogram's delta
  double p95_step_ns = 0.0;
  double p99_step_ns = 0.0;
};

#if MM_OBS_ENABLED

// Fixed-capacity ring of frames; push overwrites the oldest (unlike the
// trace ring, the NEWEST snapshots are the ones a postmortem needs).
class SnapshotRing {
 public:
  explicit SnapshotRing(std::size_t capacity);

  void push(SnapshotFrame frame);
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  // Oldest -> newest copies of the last `k` frames (all when k == 0).
  std::vector<SnapshotFrame> last(std::size_t k = 0) const;

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SnapshotFrame> frames_;  // ring storage
  std::size_t next_ = 0;               // next write position
  std::size_t count_ = 0;              // frames ever pushed (saturates)
};

class SnapshotScheduler {
 public:
  struct Config {
    std::chrono::nanoseconds period{std::chrono::milliseconds{250}};
    std::size_t ring_capacity = 32;
    // Histogram whose per-period delta provides the step-latency quantiles.
    std::string step_histogram = "engine.strategy.step_ns";
  };

  SnapshotScheduler(const Registry& registry, Config config);
  ~SnapshotScheduler();

  void start();
  void stop();

  // Capture one frame now (also what the background thread does each period).
  void tick();

  RateSample rates() const;
  std::vector<SnapshotFrame> frames(std::size_t k = 0) const { return ring_.last(k); }
  const Config& config() const { return config_; }

 private:
  const Registry& registry_;
  Config config_;
  SnapshotRing ring_;
  std::thread thread_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
};

#else  // !MM_OBS_ENABLED

class SnapshotRing {
 public:
  explicit SnapshotRing(std::size_t = 0) {}
  void push(SnapshotFrame) {}
  std::size_t size() const { return 0; }
  std::size_t capacity() const { return 0; }
  std::vector<SnapshotFrame> last(std::size_t = 0) const { return {}; }
};

class SnapshotScheduler {
 public:
  struct Config {
    std::chrono::nanoseconds period{std::chrono::milliseconds{250}};
    std::size_t ring_capacity = 32;
    std::string step_histogram = "engine.strategy.step_ns";
  };
  SnapshotScheduler(const Registry&, Config config) : config_(config) {}
  void start() {}
  void stop() {}
  void tick() {}
  RateSample rates() const { return {}; }
  std::vector<SnapshotFrame> frames(std::size_t = 0) const { return {}; }
  const Config& config() const { return config_; }

 private:
  Config config_;
};

#endif  // MM_OBS_ENABLED

}  // namespace mm::obs
