#include "common/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace mm {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

Expected<double> parse_double(std::string_view text) {
  const std::string_view t = trim(text);
  if (t.empty()) return Error(Errc::parse_error, "empty number");
  const std::string buf(t);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Error(Errc::parse_error, "number out of range: " + buf);
  if (end != buf.c_str() + buf.size())
    return Error(Errc::parse_error, "not a number: " + buf);
  return v;
}

Expected<std::int64_t> parse_int(std::string_view text) {
  const std::string_view t = trim(text);
  if (t.empty()) return Error(Errc::parse_error, "empty integer");
  const std::string buf(t);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Error(Errc::parse_error, "integer out of range: " + buf);
  if (end != buf.c_str() + buf.size())
    return Error(Errc::parse_error, "not an integer: " + buf);
  return static_cast<std::int64_t>(v);
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string pad_left(std::string s, std::size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string pad_right(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

}  // namespace mm
