# Empty dependencies file for test_dagflow.
# This may be replaced when dependencies are built.
