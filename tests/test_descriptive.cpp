// Tests for descriptive statistics against hand-computed and known values.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/descriptive.hpp"

namespace mm::stats {
namespace {

TEST(Mean, HandComputed) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(mean({-5.0}), -5.0);
}

TEST(Variance, SampleDenominator) {
  // Var of {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, ss 32, sample var 32/7.
  EXPECT_NEAR(variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(variance({3.0, 3.0}), 0.0);
}

TEST(Stddev, SqrtOfVariance) {
  EXPECT_NEAR(stddev({1.0, 3.0}), std::sqrt(2.0), 1e-12);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

TEST(Median, RobustToOutlier) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0, 1e9}), 3.0);
}

TEST(Quantile, Type7Interpolation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);  // R type-7
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 3.25);
}

TEST(Skewness, SymmetricIsZero) {
  EXPECT_NEAR(skewness({1.0, 2.0, 3.0, 4.0, 5.0}), 0.0, 1e-12);
}

TEST(Skewness, RightTailPositive) {
  EXPECT_GT(skewness({1.0, 1.1, 1.2, 0.9, 5.0}), 1.0);
  EXPECT_LT(skewness({-5.0, 0.9, 1.0, 1.1, 1.2}), -1.0);
}

TEST(Kurtosis, NormalSampleNearThree) {
  mm::Rng rng(5);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(kurtosis(xs), 3.0, 0.15);
  EXPECT_NEAR(skewness(xs), 0.0, 0.05);
}

TEST(Kurtosis, UniformIsPlatykurtic) {
  mm::Rng rng(6);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.uniform();
  EXPECT_NEAR(kurtosis(xs), 1.8, 0.1);  // uniform kurtosis = 9/5
}

TEST(SharpeRatio, MeanOverStd) {
  const std::vector<double> xs = {0.01, 0.03};
  EXPECT_NEAR(sharpe_ratio(xs), 0.02 / std::sqrt(2e-4), 1e-9);
}

TEST(Summarize, AllFieldsConsistent) {
  mm::Rng rng(9);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.normal(10.0, 2.0);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, xs.size());
  EXPECT_NEAR(s.mean, mean(xs), 1e-12);
  EXPECT_NEAR(s.median, median(xs), 1e-12);
  EXPECT_NEAR(s.stddev, stddev(xs), 1e-12);
  EXPECT_NEAR(s.sharpe, s.mean / s.stddev, 1e-12);
  EXPECT_LE(s.min, s.median);
  EXPECT_GE(s.max, s.median);
}

TEST(Summarize, ConstantSampleIsSafe) {
  const Summary s = summarize({2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.sharpe, 0.0);
  EXPECT_DOUBLE_EQ(s.skewness, 0.0);
  EXPECT_DOUBLE_EQ(s.kurtosis, 0.0);
}

}  // namespace
}  // namespace mm::stats
