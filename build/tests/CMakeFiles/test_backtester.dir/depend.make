# Empty dependencies file for test_backtester.
# This may be replaced when dependencies are built.
