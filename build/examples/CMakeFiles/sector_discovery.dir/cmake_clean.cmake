file(REMOVE_RECURSE
  "CMakeFiles/sector_discovery.dir/sector_discovery.cpp.o"
  "CMakeFiles/sector_discovery.dir/sector_discovery.cpp.o.d"
  "sector_discovery"
  "sector_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sector_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
