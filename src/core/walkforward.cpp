#include "core/walkforward.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "stats/descriptive.hpp"

namespace mm::core {
namespace {

// Per (ctype, level) objective score from one single-day experiment.
using DayScores = std::array<std::vector<double>, 3>;  // [ctype][level]

double level_score(const ExperimentResult& result, std::size_t c, std::size_t l,
                   Objective objective) {
  const auto& returns = result.level_monthly_return_plus1[c][l];
  switch (objective) {
    case Objective::mean_return:
      return stats::mean(returns);
    case Objective::sharpe: {
      const double sd = returns.size() >= 2 ? stats::stddev(returns) : 0.0;
      return sd > 0.0 ? stats::mean(returns) / sd : 0.0;
    }
    case Objective::drawdown:
      return -stats::mean(result.level_max_daily_drawdown[c][l]);
    case Objective::win_loss:
      return stats::mean(result.level_win_loss[c][l]);
  }
  MM_ASSERT_MSG(false, "unreachable Objective");
  return 0.0;
}

}  // namespace

WalkForwardResult walk_forward(const WalkForwardConfig& config) {
  const int days = config.experiment.days;
  const int f = config.formation_days;
  MM_ASSERT_MSG(f >= 1, "formation_days must be >= 1");
  MM_ASSERT_MSG(days >= 2 * f, "need at least two blocks of days");

  const std::size_t n_levels = config.experiment.grid.levels().size();

  // One single-day experiment per day, retaining level detail.
  std::vector<DayScores> per_day(static_cast<std::size_t>(days));
  for (int d = 0; d < days; ++d) {
    ExperimentConfig day_cfg = config.experiment;
    day_cfg.days = 1;
    day_cfg.first_day_index = config.experiment.first_day_index + d;
    day_cfg.keep_level_detail = true;
    const auto result = run_experiment(day_cfg);
    for (std::size_t c = 0; c < 3; ++c) {
      per_day[static_cast<std::size_t>(d)][c].resize(n_levels);
      for (std::size_t l = 0; l < n_levels; ++l)
        per_day[static_cast<std::size_t>(d)][c][l] =
            level_score(result, c, l, config.objective);
    }
  }

  const auto block_mean = [&](std::size_t c, std::size_t l, int first,
                              int count) {
    double sum = 0.0;
    for (int d = first; d < first + count; ++d)
      sum += per_day[static_cast<std::size_t>(d)][c][l];
    return sum / static_cast<double>(count);
  };

  WalkForwardResult out;
  std::array<double, 3> sum_in{}, sum_out{};
  for (int start = 0; start + 2 * f <= days; start += f) {
    WalkForwardFold fold;
    fold.formation_first_day = start;
    fold.evaluation_first_day = start + f;
    for (std::size_t c = 0; c < 3; ++c) {
      std::size_t best = 0;
      double best_score = block_mean(c, 0, start, f);
      for (std::size_t l = 1; l < n_levels; ++l) {
        const double score = block_mean(c, l, start, f);
        if (score > best_score) {
          best_score = score;
          best = l;
        }
      }
      fold.chosen_level[c] = best;
      fold.in_sample_score[c] = best_score;
      fold.out_of_sample_score[c] = block_mean(c, best, start + f, f);
      sum_in[c] += best_score;
      sum_out[c] += fold.out_of_sample_score[c];
    }
    out.folds.push_back(fold);
  }
  MM_ASSERT(!out.folds.empty());
  for (std::size_t c = 0; c < 3; ++c) {
    const auto nf = static_cast<double>(out.folds.size());
    out.mean_in_sample[c] = sum_in[c] / nf;
    out.mean_out_of_sample[c] = sum_out[c] / nf;
  }
  return out;
}

std::string render_walk_forward(const WalkForwardResult& result,
                                const WalkForwardConfig& config) {
  std::string out = format(
      "walk-forward evaluation (objective %s, %d-day formation blocks, %zu folds)\n",
      to_string(config.objective), config.formation_days, result.folds.size());
  for (std::size_t c = 0; c < 3; ++c) {
    out += format("\n%s:\n", stats::to_string(stats::all_ctypes[c]));
    for (const auto& fold : result.folds) {
      out += format("  days %d-%d pick k'%zu: in-sample %8.3f -> "
                    "out-of-sample %8.3f on days %d-%d\n",
                    fold.formation_first_day,
                    fold.formation_first_day + config.formation_days - 1,
                    fold.chosen_level[c] + 1, fold.in_sample_score[c],
                    fold.out_of_sample_score[c], fold.evaluation_first_day,
                    fold.evaluation_first_day + config.formation_days - 1);
    }
    out += format("  mean: in-sample %8.3f, out-of-sample %8.3f "
                  "(overfitting penalty %.3f)\n",
                  result.mean_in_sample[c], result.mean_out_of_sample[c],
                  result.mean_in_sample[c] - result.mean_out_of_sample[c]);
  }
  return out;
}

}  // namespace mm::core
