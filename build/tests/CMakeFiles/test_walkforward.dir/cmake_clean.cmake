file(REMOVE_RECURSE
  "CMakeFiles/test_walkforward.dir/test_walkforward.cpp.o"
  "CMakeFiles/test_walkforward.dir/test_walkforward.cpp.o.d"
  "test_walkforward"
  "test_walkforward.pdb"
  "test_walkforward[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_walkforward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
