# Empty dependencies file for repro_significance.
# This may be replaced when dependencies are built.
