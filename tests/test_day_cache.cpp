// DayCache: once-flag loading, LRU byte budget, tickdb-backed factory.
#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "marketdata/day_cache.hpp"
#include "marketdata/tickdb.hpp"

namespace {

using mm::Errc;
using mm::Error;
using mm::Expected;
using mm::md::DayCache;
using mm::md::Quote;

std::vector<Quote> make_day(int n, double base_price) {
  std::vector<Quote> quotes;
  for (int i = 0; i < n; ++i) {
    Quote q;
    q.ts_ms = 34'200'000 + i * 1000;
    q.symbol = static_cast<mm::md::SymbolId>(i % 4);
    q.bid = base_price;
    q.ask = base_price + 0.01;
    q.bid_size = 100;
    q.ask_size = 100;
    quotes.push_back(q);
  }
  return quotes;
}

TEST(DayCache, LoadsOncePerKeyAndServesSharedBuffers) {
  std::atomic<int> loads{0};
  DayCache cache([&](const std::string& key) -> Expected<std::vector<Quote>> {
    loads.fetch_add(1);
    return make_day(8, key == "a" ? 100.0 : 50.0);
  });

  auto a1 = cache.get("a");
  ASSERT_TRUE(a1.has_value());
  auto a2 = cache.get("a");
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(a1.value().get(), a2.value().get());  // same immutable buffer
  EXPECT_EQ(loads.load(), 1);

  auto b = cache.get("b");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(loads.load(), 2);
  EXPECT_DOUBLE_EQ(b.value()->front().bid, 50.0);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_NE(cache.peek("a"), nullptr);
  EXPECT_EQ(cache.peek("missing"), nullptr);
}

TEST(DayCache, ConcurrentGettersShareOneLoad) {
  std::atomic<int> loads{0};
  DayCache cache([&](const std::string&) -> Expected<std::vector<Quote>> {
    loads.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return make_day(16, 100.0);
  });

  constexpr int kThreads = 8;
  std::vector<DayCache::Day> days(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      auto day = cache.get("2008-03-03");
      ASSERT_TRUE(day.has_value());
      days[static_cast<std::size_t>(t)] = day.value();
    });
  for (auto& t : threads) t.join();

  EXPECT_EQ(loads.load(), 1);
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(days[static_cast<std::size_t>(t)].get(), days[0].get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  // Every non-owner resolves to a hit (after waiting if it arrived early).
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_LE(stats.waits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(DayCache, FailedLoadIsNotCachedAndHandsOffToWaiters) {
  std::atomic<int> loads{0};
  DayCache cache([&](const std::string&) -> Expected<std::vector<Quote>> {
    if (loads.fetch_add(1) == 0)
      return Error(Errc::io_error, "disk on fire");
    return make_day(4, 100.0);
  });

  auto first = cache.get("k");
  ASSERT_FALSE(first.has_value());
  EXPECT_EQ(first.error().code, Errc::io_error);
  EXPECT_EQ(cache.entries(), 0u);

  // The failure was not cached: the next caller retries the loader.
  auto second = cache.get("k");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(loads.load(), 2);
  EXPECT_EQ(cache.stats().load_errors, 1u);
}

TEST(DayCache, EvictionRespectsByteBudgetInLruOrder) {
  const std::size_t one_day = sizeof(std::vector<Quote>) + 64 * sizeof(Quote);
  DayCache cache(
      [&](const std::string&) -> Expected<std::vector<Quote>> {
        auto day = make_day(64, 100.0);
        day.shrink_to_fit();
        return day;
      },
      2 * one_day + one_day / 2);

  ASSERT_TRUE(cache.get("a").has_value());
  ASSERT_TRUE(cache.get("b").has_value());
  EXPECT_EQ(cache.entries(), 2u);

  // Touch "a" so "b" is the LRU victim when "c" lands.
  auto held_b = cache.get("b").value();
  ASSERT_TRUE(cache.get("a").has_value());
  ASSERT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(cache.peek("b"), nullptr);
  EXPECT_NE(cache.peek("a"), nullptr);
  EXPECT_NE(cache.peek("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Eviction dropped only the cache's reference; ours still reads fine.
  EXPECT_EQ(held_b->size(), 64u);

  // A single day larger than the budget still publishes (newest is immune).
  DayCache tiny(
      [&](const std::string&) -> Expected<std::vector<Quote>> {
        return make_day(64, 100.0);
      },
      16);
  ASSERT_TRUE(tiny.get("big").has_value());
  EXPECT_EQ(tiny.entries(), 1u);
}

TEST(DayCache, FromTickdbLoadsIsoDatesAndRejectsBadKeys) {
  const std::string root =
      (std::filesystem::temp_directory_path() / "mm_day_cache_test").string();
  std::filesystem::remove_all(root);
  auto db = mm::md::TickDb::open(root);
  ASSERT_TRUE(db.has_value());
  const auto day = make_day(32, 75.0);
  ASSERT_TRUE(db.value().write_day({2008, 3, 3}, day).has_value());

  auto cache = DayCache::from_tickdb(root);
  auto loaded = cache.get("2008-03-03");
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded.value()->size(), day.size());
  EXPECT_DOUBLE_EQ(loaded.value()->front().bid, 75.0);

  EXPECT_FALSE(cache.get("not-a-date").has_value());
  EXPECT_FALSE(cache.get("2008-03-04").has_value());  // absent day
  std::filesystem::remove_all(root);
}

}  // namespace
