// Dataset builder: materialize a synthetic "month" of TAQ-style data into an
// embedded tickdb store — the offline-data workflow (Fig. 1's "MySQL DB" /
// "Custom TAQ Files" inputs).
//
//   $ ./make_dataset --out /tmp/mm_march2008 --symbols 10 --days 5
//
// Writes per business day: quotes.bin + trades.bin; plus symbols.txt, and a
// sample day exported as Table-II-style CSV. Then reads everything back and
// prints an inventory with integrity checks.
#include <cstdio>

#include "common/cli.hpp"
#include "marketdata/generator.hpp"
#include "marketdata/taq.hpp"
#include "marketdata/tickdb.hpp"

int main(int argc, char** argv) {
  using namespace mm;
  Cli cli("make_dataset", "Generate a synthetic TAQ dataset into a tickdb store");
  auto& out = cli.add_string("out", "/tmp/mm_dataset", "tickdb root directory");
  auto& symbols = cli.add_int("symbols", 10, "universe size (2..61)");
  auto& days = cli.add_int("days", 5, "business days starting 2008-03-03");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  auto& csv = cli.add_flag("csv", "also export day 1 as TAQ CSV");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(symbols);
  const auto universe = md::make_universe(n);

  auto db = md::TickDb::open(out);
  if (!db) {
    std::fprintf(stderr, "cannot open tickdb: %s\n", db.error().message.c_str());
    return 1;
  }
  if (auto st = db->put_symbols(universe.table); !st) {
    std::fprintf(stderr, "%s\n", st.error().message.c_str());
    return 1;
  }

  md::GeneratorConfig gen;
  gen.seed = static_cast<std::uint64_t>(seed);
  const auto dates = md::business_days(md::Date{2008, 3, 3}, static_cast<int>(days));

  std::size_t total_quotes = 0, total_trades = 0;
  for (int d = 0; d < static_cast<int>(dates.size()); ++d) {
    const md::SyntheticDay day(universe, gen, d);
    if (auto st = db->write_day(dates[static_cast<std::size_t>(d)], day.quotes()); !st) {
      std::fprintf(stderr, "%s\n", st.error().message.c_str());
      return 1;
    }
    if (auto st = db->write_trades(dates[static_cast<std::size_t>(d)], day.trades());
        !st) {
      std::fprintf(stderr, "%s\n", st.error().message.c_str());
      return 1;
    }
    total_quotes += day.quotes().size();
    total_trades += day.trades().size();
    std::printf("  %s: %8zu quotes, %7zu trades (%zu corrupted at source)\n",
                dates[static_cast<std::size_t>(d)].iso().c_str(), day.quotes().size(),
                day.trades().size(), day.corrupted_count());
    if (csv && d == 0) {
      const std::string csv_path = out + "/day1.csv";
      if (md::write_taq_csv(csv_path, day.quotes(), universe.table))
        std::printf("  exported %s\n", csv_path.c_str());
    }
  }

  // Read-back inventory with integrity checks.
  std::printf("\nstore %s:\n", out.c_str());
  auto loaded_symbols = db->get_symbols();
  std::printf("  symbols: %zu\n", loaded_symbols ? loaded_symbols->size() : 0);
  std::size_t verify_quotes = 0, verify_trades = 0;
  for (const auto& date : db->days()) {
    const auto quotes = db->read_day(date);
    const auto trades = db->read_trades(date);
    if (!quotes || !trades) {
      std::fprintf(stderr, "  %s: read-back FAILED\n", date.iso().c_str());
      return 1;
    }
    verify_quotes += quotes->size();
    verify_trades += trades->size();
  }
  std::printf("  days: %zu, quotes: %zu, trades: %zu\n", db->days().size(),
              verify_quotes, verify_trades);
  if (verify_quotes != total_quotes || verify_trades != total_trades) {
    std::fprintf(stderr, "integrity check FAILED\n");
    return 1;
  }
  std::printf("  integrity: OK (read-back matches written counts)\n");
  return 0;
}
