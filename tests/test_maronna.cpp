// Tests for the Maronna robust correlation estimator — the property the
// paper uses it for: agreement with Pearson on clean data, resistance to the
// outliers that destroy Pearson.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/maronna.hpp"
#include "stats/pearson.hpp"

namespace mm::stats {
namespace {

struct CleanPair {
  std::vector<double> x, y;
  double target;
};

CleanPair make_correlated(std::size_t n, double factor_load, std::uint64_t seed) {
  mm::Rng rng(seed);
  CleanPair out;
  out.x.resize(n);
  out.y.resize(n);
  const double a = factor_load;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = rng.normal();
    out.x[i] = a * f + rng.normal();
    out.y[i] = a * f + rng.normal();
  }
  out.target = a * a / (a * a + 1.0);
  return out;
}

TEST(Maronna, AgreesWithPearsonOnCleanGaussian) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto p = make_correlated(2000, 1.2, seed);
    const double mr = maronna(p.x, p.y);
    const double pr = pearson(p.x, p.y);
    EXPECT_NEAR(mr, pr, 0.05) << "seed " << seed;
  }
}

TEST(Maronna, RecoversTargetCorrelation) {
  const auto p = make_correlated(20000, 1.0, 7);
  EXPECT_NEAR(maronna(p.x, p.y), 0.5, 0.03);
}

TEST(Maronna, PerfectCorrelationDegenerate) {
  std::vector<double> x(50), y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x[i] = static_cast<double>(i) * 0.1 - 2.0;
    y[i] = 3.0 * x[i] + 1.0;
  }
  EXPECT_NEAR(maronna(x, y), 1.0, 0.05);
}

TEST(Maronna, ResistsOutliersThatDestroyPearson) {
  auto p = make_correlated(100, 2.0, 11);
  const double clean_m = maronna(p.x, p.y);
  const double clean_p = pearson(p.x, p.y);
  EXPECT_GT(clean_p, 0.7);

  // Contaminate 5% of points with adversarial (anti-correlated, huge) values.
  for (std::size_t i = 0; i < p.x.size(); i += 20) {
    p.x[i] = 50.0;
    p.y[i] = -50.0;
  }
  const double dirty_m = maronna(p.x, p.y);
  const double dirty_p = pearson(p.x, p.y);

  EXPECT_LT(dirty_p, 0.0);                       // Pearson wrecked
  EXPECT_GT(dirty_m, 0.55);                      // Maronna holds
  EXPECT_LT(std::abs(dirty_m - clean_m), 0.25);  // close to its clean value
}

TEST(Maronna, SingleFatFingerBarelyMoves) {
  auto p = make_correlated(100, 2.0, 13);
  const double clean = maronna(p.x, p.y);
  p.x[50] = 1000.0;
  p.y[50] = -1000.0;
  EXPECT_NEAR(maronna(p.x, p.y), clean, 0.1);
}

TEST(Maronna, ZeroDispersionReturnsZero) {
  const std::vector<double> c(20, 1.5);
  EXPECT_DOUBLE_EQ(maronna(c, c), 0.0);
}

TEST(Maronna, ReportsConvergence) {
  const auto p = make_correlated(500, 1.0, 17);
  const auto result = maronna_estimate(p.x.data(), p.y.data(), p.x.size());
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.iterations, 0);
  EXPECT_LE(result.iterations, 50);
  EXPECT_GT(result.scatter_xx, 0.0);
  EXPECT_GT(result.scatter_yy, 0.0);
}

TEST(Maronna, LocationEstimateIsRobust) {
  mm::Rng rng(19);
  std::vector<double> x(200), y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x[i] = 5.0 + rng.normal();
    y[i] = -3.0 + rng.normal();
  }
  x[0] = 1e4;  // location outlier
  const auto result = maronna_estimate(x.data(), y.data(), x.size());
  EXPECT_NEAR(result.location_x, 5.0, 0.5);
  EXPECT_NEAR(result.location_y, -3.0, 0.5);
}

TEST(Maronna, BoundedOutput) {
  mm::Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x(30), y(30);
    for (std::size_t i = 0; i < 30; ++i) {
      x[i] = rng.student_t(3.0);
      y[i] = rng.student_t(3.0);
    }
    const double r = maronna(x, y);
    EXPECT_GE(r, -1.0);
    EXPECT_LE(r, 1.0);
  }
}

class MaronnaWindowSizes : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(PaperWindows, MaronnaWindowSizes,
                         ::testing::Values<std::size_t>(50, 100, 200));

TEST_P(MaronnaWindowSizes, StableAcrossPaperWindowLengths) {
  // Table I's M values: the estimator must behave on every window size the
  // grid uses.
  const auto p = make_correlated(GetParam(), 1.5, 29);
  const double r = maronna(p.x, p.y);
  EXPECT_GT(r, 0.4);
  EXPECT_LE(r, 1.0);
}

TEST(Maronna, ScratchOverloadMatchesConvenienceBitwise) {
  // The scratch-taking overload is the same algorithm routed through reused
  // buffers; it must agree with the allocating convenience form bit-for-bit,
  // including when the scratch arrives oversized from a previous larger pair.
  MaronnaScratch scratch;
  scratch.xs.resize(4096);
  scratch.ys.resize(4096);
  scratch.dev.resize(4096);
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    const auto p = make_correlated(100, 1.2, seed);
    const auto a = maronna_estimate(p.x.data(), p.y.data(), p.x.size());
    const auto b =
        maronna_estimate(p.x.data(), p.y.data(), p.x.size(), {}, scratch);
    EXPECT_EQ(a.correlation, b.correlation) << "seed " << seed;
    EXPECT_EQ(a.scatter_xx, b.scatter_xx);
    EXPECT_EQ(a.scatter_xy, b.scatter_xy);
    EXPECT_EQ(a.scatter_yy, b.scatter_yy);
    EXPECT_EQ(a.location_x, b.location_x);
    EXPECT_EQ(a.location_y, b.location_y);
    EXPECT_EQ(a.iterations, b.iterations);

    const auto c = maronna_reestimate(p.x.data(), p.y.data(), p.x.size(), a, {});
    const auto d =
        maronna_reestimate(p.x.data(), p.y.data(), p.x.size(), a, {}, scratch);
    EXPECT_EQ(c.correlation, d.correlation) << "seed " << seed;
    EXPECT_EQ(c.iterations, d.iterations);
  }
}

}  // namespace
}  // namespace mm::stats
