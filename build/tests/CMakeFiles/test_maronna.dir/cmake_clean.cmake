file(REMOVE_RECURSE
  "CMakeFiles/test_maronna.dir/test_maronna.cpp.o"
  "CMakeFiles/test_maronna.dir/test_maronna.cpp.o.d"
  "test_maronna"
  "test_maronna.pdb"
  "test_maronna[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maronna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
