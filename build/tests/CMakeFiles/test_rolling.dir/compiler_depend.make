# Empty compiler generated dependencies file for test_rolling.
# This may be replaced when dependencies are built.
