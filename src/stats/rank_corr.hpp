// Rank correlation measures — extensions beyond the paper's three treatments
// (§VI anticipates comparing further correlation measures).
//
// Spearman's rho (Pearson on average ranks, tie-aware) and Kendall's tau-b
// are both robust to monotone distortions and far less outlier-sensitive than
// Pearson, at very different computational costs — a natural comparison point
// for the Maronna estimator in the correlation_study example.
#pragma once

#include <cstddef>
#include <vector>

namespace mm::stats {

// Average ranks (1-based; ties share the mean of their positions).
std::vector<double> average_ranks(const double* x, std::size_t n);

// Spearman's rho. Returns 0 for degenerate (constant) inputs. O(n log n).
double spearman(const double* x, const double* y, std::size_t n);
double spearman(const std::vector<double>& x, const std::vector<double>& y);

// Kendall's tau-b (tie-corrected). Returns 0 for degenerate inputs. O(n²) —
// fine for the strategy's window lengths (M <= 200).
double kendall_tau(const double* x, const double* y, std::size_t n);
double kendall_tau(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace mm::stats
