// Runtime dispatch for the SIMD kernel variants.
#include "stats/simd_detail.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace mm::stats::simd {
namespace {

bool cpu_has_avx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Level detect_best_level() {
  if (!avx2_compiled() || !cpu_has_avx2()) return Level::scalar;
  // MM_SIMD_LEVEL=scalar pins the fallback kernels on capable hosts (ops
  // knob, and how the scalar CI leg exercises the fallback on AVX2 runners).
  if (const char* env = std::getenv("MM_SIMD_LEVEL");
      env != nullptr && std::strcmp(env, "scalar") == 0)
    return Level::scalar;
  return Level::avx2;
}

std::atomic<const KernelTable*>& active_table() {
  static std::atomic<const KernelTable*> table{&table_for(detect_best_level())};
  return table;
}

}  // namespace

const char* level_name(Level level) {
  return level == Level::avx2 ? "avx2" : "scalar";
}

bool avx2_compiled() {
#if MM_SIMD_AVX2
  return true;
#else
  return false;
#endif
}

bool avx2_supported() { return avx2_compiled() && cpu_has_avx2(); }

const KernelTable& scalar_kernels() { return detail::scalar_table(); }

const KernelTable& table_for(Level level) {
#if MM_SIMD_AVX2
  if (level == Level::avx2 && cpu_has_avx2()) return detail::avx2_table();
#endif
  (void)level;
  return detail::scalar_table();
}

const KernelTable& kernels() {
  return *active_table().load(std::memory_order_relaxed);
}

Level active_level() {
  const KernelTable* current = active_table().load(std::memory_order_relaxed);
#if MM_SIMD_AVX2
  if (current == &detail::avx2_table()) return Level::avx2;
#endif
  (void)current;
  return Level::scalar;
}

bool set_level(Level level) {
  if (level == Level::avx2 && !avx2_supported()) return false;
  active_table().store(&table_for(level), std::memory_order_relaxed);
  return true;
}

ScopedLevel::ScopedLevel(Level level)
    : saved_(active_level()), engaged_(set_level(level)) {}

ScopedLevel::~ScopedLevel() {
  if (engaged_) set_level(saved_);
}

}  // namespace mm::stats::simd
