#include "core/report.hpp"

#include <fstream>

#include "common/strings.hpp"
#include "stats/descriptive.hpp"

namespace mm::core {
namespace {

// Column order used throughout the paper's tables.
constexpr std::size_t column_order[] = {
    static_cast<std::size_t>(stats::Ctype::maronna),
    static_cast<std::size_t>(stats::Ctype::pearson),
    static_cast<std::size_t>(stats::Ctype::combined),
};

std::string row(const char* label, const double* values, bool as_percent,
                int decimals) {
  std::string out = pad_right(label, 20);
  for (int c = 0; c < 3; ++c) {
    const double v = as_percent ? values[c] * 100.0 : values[c];
    out += pad_left(format("%.*f%s", decimals, v, as_percent ? "%" : ""), 14);
  }
  return out + "\n";
}

}  // namespace

const char* measure_name(Measure m) {
  switch (m) {
    case Measure::monthly_return: return "average cumulative monthly returns";
    case Measure::max_daily_drawdown: return "average maximum daily drawdown";
    case Measure::win_loss: return "average win-loss ratio";
  }
  return "?";
}

const std::vector<double>& sample_of(const ExperimentResult& result, Measure m,
                                     std::size_t ctype_index) {
  switch (m) {
    case Measure::monthly_return: return result.monthly_return_plus1[ctype_index];
    case Measure::max_daily_drawdown: return result.max_daily_drawdown[ctype_index];
    case Measure::win_loss: return result.win_loss[ctype_index];
  }
  MM_ASSERT_MSG(false, "unreachable Measure");
  return result.win_loss[0];
}

std::string render_table(const ExperimentResult& result, Measure m,
                         bool include_sharpe, bool as_percent) {
  stats::Summary s[3];
  for (int c = 0; c < 3; ++c)
    s[c] = stats::summarize(sample_of(result, m, column_order[c]));

  std::string out = pad_right("", 20);
  for (const auto c : column_order)
    out += pad_left(stats::to_string(static_cast<stats::Ctype>(c)), 14);
  out += "\n";

  const int dec = as_percent ? 4 : 4;
  double v[3];
  const auto emit = [&](const char* label, auto getter, bool pct, int decimals) {
    for (int c = 0; c < 3; ++c) v[c] = getter(s[c]);
    out += row(label, v, pct, decimals);
  };
  emit("Mean", [](const stats::Summary& x) { return x.mean; }, as_percent, dec);
  emit("Median", [](const stats::Summary& x) { return x.median; }, as_percent, dec);
  emit("Standard Deviation", [](const stats::Summary& x) { return x.stddev; },
       as_percent, dec);
  if (include_sharpe)
    emit("Sharpe Ratio", [](const stats::Summary& x) { return x.sharpe; }, false, 4);
  emit("Skewness", [](const stats::Summary& x) { return x.skewness; }, false, 4);
  emit("Kurtosis", [](const stats::Summary& x) { return x.kurtosis; }, false, 4);
  return out;
}

std::string render_boxplots(const ExperimentResult& result, Measure m) {
  // Shared axis across treatments so the plots compare visually.
  double lo = 1e300, hi = -1e300;
  stats::BoxPlot boxes[3];
  for (int c = 0; c < 3; ++c) {
    const auto& sample = sample_of(result, m, column_order[c]);
    boxes[c] = stats::box_plot(sample);
    for (double x : sample) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
  if (hi <= lo) hi = lo + 1e-9;

  std::string out;
  for (int c = 0; c < 3; ++c) {
    const auto name = stats::to_string(static_cast<stats::Ctype>(column_order[c]));
    const auto& b = boxes[c];
    out += format("%-9s q1=%.4f med=%.4f q3=%.4f whiskers=[%.4f, %.4f] outliers=%zu\n",
                  name, b.q1, b.median, b.q3, b.whisker_low, b.whisker_high,
                  b.outliers.size());
    out += format("%-9s ", name) + stats::render_ascii(b, lo, hi, 70) + "\n";
  }
  out += format("axis: [%.4f, %.4f]\n", lo, hi);
  return out;
}

std::string paper_reference(Measure m) {
  switch (m) {
    case Measure::monthly_return:
      return
          "paper (Table III):        Maronna       Pearson      Combined\n"
          "  Mean                     1.1473        1.1521        1.1098\n"
          "  Median                   1.1204        1.1278        1.0979\n"
          "  Standard Deviation       0.1235        0.1085        0.0747\n"
          "  Sharpe Ratio             9.2899       10.6184       14.8568\n"
          "  Skewness                 2.8484        1.9281        1.4871\n"
          "  Kurtosis                16.6541        9.4091        7.1706\n"
          "shape: all treatments profitable on average; Pearson highest mean;\n"
          "Combined lowest dispersion => highest Sharpe; heavy right skew and\n"
          "excess kurtosis everywhere, fattest tail for Maronna.\n";
    case Measure::max_daily_drawdown:
      return
          "paper (Table IV):         Maronna       Pearson      Combined\n"
          "  Mean                    1.6662%       1.5433%       1.5666%\n"
          "  Median                  1.2446%       1.1533%       1.1702%\n"
          "  Standard Deviation       1.5481        1.4606        1.4668\n"
          "  Skewness                 3.4443        3.5005        3.8890\n"
          "  Kurtosis                21.5922       21.5295       27.3131\n"
          "shape: small (~1-2%) average worst daily peak-to-valley drops;\n"
          "Pearson lowest, Maronna highest; strongly right-skewed.\n";
    case Measure::win_loss:
      return
          "paper (Table V):          Maronna       Pearson      Combined\n"
          "  Mean                     1.2697        1.2724        1.2787\n"
          "  Median                   1.2652        1.2688        1.2689\n"
          "  Standard Deviation       0.1263        0.1269        0.1356\n"
          "  Skewness                 0.2897        0.2521        0.3002\n"
          "  Kurtosis                 3.0781        3.0665        3.0991\n"
          "shape: all three nearly identical, ratios ~1.27, mild right skew,\n"
          "Combined a hair ahead on the mean.\n";
  }
  return "";
}

Status write_experiment_csv(const ExperimentResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Error(Errc::io_error, "cannot open for write: " + path);
  out << "pair,ctype,monthly_return_plus1,max_daily_drawdown,win_loss\n";
  for (std::size_t c = 0; c < 3; ++c) {
    const auto* name = stats::to_string(static_cast<stats::Ctype>(c));
    for (std::size_t p = 0; p < result.pair_count; ++p) {
      out << result.pair_names[p] << ',' << name << ','
          << format("%.10g,%.10g,%.10g\n", result.monthly_return_plus1[c][p],
                    result.max_daily_drawdown[c][p], result.win_loss[c][p]);
    }
  }
  out.flush();
  if (!out) return Error(Errc::io_error, "write failed: " + path);
  return {};
}

}  // namespace mm::core
