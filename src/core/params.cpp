#include "core/params.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace mm::core {

Status StrategyParams::validate() const {
  if (delta_s <= 0) return Error(Errc::invalid_argument, "delta_s must be positive");
  if (min_correlation < 0.0 || min_correlation >= 1.0)
    return Error(Errc::invalid_argument, "A must be in [0, 1)");
  if (corr_window < 2) return Error(Errc::invalid_argument, "M must be >= 2");
  if (avg_window < 1) return Error(Errc::invalid_argument, "W must be >= 1");
  if (divergence_window < 1) return Error(Errc::invalid_argument, "Y must be >= 1");
  if (divergence <= 0.0 || divergence >= 1.0)
    return Error(Errc::invalid_argument, "d must be in (0, 1)");
  if (retracement <= 0.0 || retracement >= 1.0)
    return Error(Errc::invalid_argument, "l must be in (0, 1)");
  if (spread_window < 1) return Error(Errc::invalid_argument, "RT must be >= 1");
  if (max_holding < 1) return Error(Errc::invalid_argument, "HP must be >= 1");
  if (no_entry_before_close < 0)
    return Error(Errc::invalid_argument, "ST must be >= 0");
  if (stop_loss < 0.0) return Error(Errc::invalid_argument, "stop_loss must be >= 0");
  if (cost_per_share < 0.0)
    return Error(Errc::invalid_argument, "cost_per_share must be >= 0");
  if (lot_size <= 0.0) return Error(Errc::invalid_argument, "lot_size must be positive");
  if (slippage_frac < 0.0 || slippage_frac >= 0.1)
    return Error(Errc::invalid_argument, "slippage_frac must be in [0, 0.1)");
  return {};
}

std::string StrategyParams::describe() const {
  return format("{ds=%lld %s A=%.2f M=%lld W=%lld Y=%lld d=%.4f%% l=%.3f RT=%lld "
                "HP=%lld ST=%lld}",
                static_cast<long long>(delta_s), stats::to_string(ctype),
                min_correlation, static_cast<long long>(corr_window),
                static_cast<long long>(avg_window),
                static_cast<long long>(divergence_window), divergence * 100.0,
                retracement, static_cast<long long>(spread_window),
                static_cast<long long>(max_holding),
                static_cast<long long>(no_entry_before_close));
}

StrategyParams ParamGrid::base() {
  StrategyParams p;
  p.delta_s = 30;
  p.min_correlation = 0.1;
  p.corr_window = 100;
  p.avg_window = 60;
  p.divergence_window = 10;
  p.divergence = 0.0002;  // 0.02%
  p.retracement = 2.0 / 3.0;
  p.spread_window = 60;
  p.max_holding = 30;
  p.no_entry_before_close = 20;
  return p;
}

ParamGrid::ParamGrid() {
  // 14 levels built from the Table I values: a one-factor-at-a-time design
  // around the base, plus two interaction levels (M x W, M x d). This matches
  // the paper's "14 different parameter vectors of the form
  // {ds, M, W, d, l, RT, HP, ST, Y}".
  const StrategyParams b = base();
  levels_.push_back(b);  // 1: base

  auto with = [&](auto&& mutate) {
    StrategyParams p = b;
    mutate(p);
    levels_.push_back(p);
  };
  with([](StrategyParams& p) { p.corr_window = 50; });     // 2
  with([](StrategyParams& p) { p.corr_window = 200; });    // 3
  with([](StrategyParams& p) { p.avg_window = 120; });     // 4
  with([](StrategyParams& p) { p.divergence_window = 20; });  // 5
  with([](StrategyParams& p) { p.divergence = 0.0001; });  // 6
  with([](StrategyParams& p) { p.divergence = 0.0003; });  // 7
  with([](StrategyParams& p) { p.divergence = 0.0004; });  // 8
  with([](StrategyParams& p) { p.divergence = 0.0005; });  // 9
  with([](StrategyParams& p) { p.divergence = 0.0010; });  // 10
  with([](StrategyParams& p) { p.retracement = 1.0 / 3.0; });  // 11
  with([](StrategyParams& p) { p.max_holding = 40; });     // 12
  with([](StrategyParams& p) {                             // 13: M x W
    p.corr_window = 50;
    p.avg_window = 120;
  });
  with([](StrategyParams& p) {                             // 14: M x d
    p.corr_window = 200;
    p.divergence = 0.0005;
  });
  MM_ASSERT(levels_.size() == 14);
  for (const auto& level : levels_) MM_ASSERT(level.validate().has_value());
}

std::vector<StrategyParams> ParamGrid::all() const {
  std::vector<StrategyParams> out;
  out.reserve(levels_.size() * 3);
  for (const auto ctype : stats::all_ctypes) {
    for (const auto& level : levels_) {
      StrategyParams p = level;
      p.ctype = ctype;
      out.push_back(p);
    }
  }
  return out;
}

std::vector<std::int64_t> ParamGrid::distinct_corr_windows() const {
  std::vector<std::int64_t> out;
  for (const auto& level : levels_) out.push_back(level.corr_window);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace mm::core
