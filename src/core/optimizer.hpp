// Parameter-set identification — the paper's §VI future work: "identification
// of optimal parameter sets for a given correlation measure".
//
// Given an experiment run with per-level detail retained, score every one of
// the 14 factor levels per correlation treatment by an objective computed
// over the cross-pair sample, and rank them. Objectives mirror the paper's
// three performance views plus the risk-adjusted composite.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace mm::core {

enum class Objective {
  mean_return,     // highest mean cumulative monthly return
  sharpe,          // highest cross-pair mean/stddev of (r + 1)
  drawdown,        // lowest mean maximum daily drawdown
  win_loss,        // highest mean win-loss ratio
};

const char* to_string(Objective objective);
Expected<Objective> parse_objective(const std::string& name);

struct LevelScore {
  std::size_t level_index = 0;       // into ParamGrid::levels()
  StrategyParams params;             // the level with ctype applied
  double mean_return_plus1 = 0.0;    // cross-pair mean
  double return_stddev = 0.0;
  double sharpe = 0.0;
  double mean_drawdown = 0.0;
  double mean_win_loss = 0.0;
  double score = 0.0;                // objective value (higher = better)
};

struct OptimizerResult {
  Objective objective = Objective::sharpe;
  // Per treatment, levels sorted best-first.
  std::array<std::vector<LevelScore>, 3> ranked;
};

// Requires result.level_* to be populated (run the experiment with
// keep_level_detail = true).
OptimizerResult rank_levels(const ExperimentResult& result, const ParamGrid& grid,
                            Objective objective);

// Plain-text report: best few levels per treatment with their measures.
std::string render_optimizer_report(const OptimizerResult& result, std::size_t top_n);

}  // namespace mm::core
