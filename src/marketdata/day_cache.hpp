// Shared read-only day cache: load each trading day's quote vector once,
// hand every concurrent backtest the same immutable buffer.
//
// The backtest service (src/svc) runs many tenants' jobs over overlapping
// (day, universe) pairs. Without sharing, every pipeline copies the full day
// into its collector; with the cache, N concurrent runs hold N shared_ptrs to
// ONE std::vector<Quote> (PipelineConfig::day) and the collector replays it
// in place.
//
// Concurrency contract mirrors stats::CorrStore's once-flag: the first caller
// through a missing key runs the loader (outside the lock); concurrent
// callers on a loading key block until it resolves. A failed load is not
// cached — the error goes to the owning caller and ownership hands off to one
// blocked waiter, which retries the loader. Published days are immutable;
// LRU eviction (bounded by byte_budget) only drops the cache's reference,
// never a caller's.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "marketdata/types.hpp"
#include "obs/registry.hpp"

namespace mm::md {

class DayCache {
 public:
  using Day = std::shared_ptr<const std::vector<Quote>>;
  // Resolves a cache key to a time-sorted day of quotes. Runs outside the
  // cache lock; may block on IO. Must be safe to call from any thread.
  using Loader = std::function<Expected<std::vector<Quote>>(const std::string& key)>;

  struct Stats {
    std::uint64_t hits = 0;       // get() served a resident day
    std::uint64_t misses = 0;     // get() ran (or inherited) the loader
    std::uint64_t waits = 0;      // get() blocked behind a loading caller
    std::uint64_t load_errors = 0;  // loader invocations that failed
    std::uint64_t evictions = 0;  // days dropped by the byte budget
  };

  // byte_budget 0 = unbounded. `registry` mirrors the stats as day_cache.*
  // counters/gauges when observability is compiled in.
  explicit DayCache(Loader loader, std::size_t byte_budget = 0,
                    obs::Registry* registry = nullptr);

  // The shared day for `key`, loading it exactly once under concurrency.
  Expected<Day> get(const std::string& key);

  // Non-blocking lookup; null when absent or still loading.
  Day peek(const std::string& key) const;

  // Cache over a tickdb store at `root`; keys are ISO dates ("2008-03-03").
  static DayCache from_tickdb(std::string root, std::size_t byte_budget = 0,
                              obs::Registry* registry = nullptr);

  Stats stats() const;
  std::size_t bytes() const;    // resident quote bytes
  std::size_t entries() const;  // resident days

  // Non-copyable, non-movable (mutex member); from_tickdb returns a prvalue,
  // which C++17 constructs in place.
  DayCache(const DayCache&) = delete;
  DayCache& operator=(const DayCache&) = delete;

 private:
  struct Entry {
    Day day;  // null while a caller is loading
    bool loading = false;
    // Bumped on publish/failure so waiters can tell progress from spurious
    // wakeups even across ownership handoffs.
    std::uint64_t generation = 0;
    std::list<std::string>::iterator lru;  // valid only when day != nullptr
  };

  void evict_locked();
  void touch_locked(Entry& entry, const std::string& key);
  void sync_gauges_locked();

  Loader loader_;
  std::size_t byte_budget_ = 0;
  obs::Registry* registry_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  std::size_t bytes_ = 0;
  Stats stats_;
};

}  // namespace mm::md
