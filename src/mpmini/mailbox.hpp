// Per-rank mailbox implementing MPI envelope matching.
//
// A mailbox holds messages delivered to one rank and the rank's posted
// (pending) receives. Matching rules follow MPI:
//   * a receive posted with (comm, source, tag) matches a message with the
//     same comm, and source/tag equal or wildcard (any_source / any_tag);
//   * among queued messages, the earliest-arrived match wins, which together
//     with locked FIFO delivery preserves per-(source, comm) non-overtaking;
//   * among posted receives, the earliest-posted match wins.
//
// Probe/recv matching contract (the MPI_Mprobe problem): a blocking probe
// RESERVES the message it reports for the probing thread. Reserved messages
// are invisible to every other thread's receives and probes, so the classic
// probe -> recv sequence can never lose its message to a concurrent wildcard
// receive on another thread. The reservation is released when the probing
// thread posts a matching receive (which then consumes exactly that message).
// iprobe is advisory and does not reserve.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "mpmini/message.hpp"
#include "obs/registry.hpp"

namespace mm::mpi {

// Shared completion state for one posted receive. Guarded by the owning
// mailbox's mutex; waiters block on the mailbox's condition variable.
struct RecvTicket {
  std::uint64_t comm_id = 0;
  int source = any_source;
  int tag = any_tag;
  bool done = false;
  Message message;
};

class Mailbox {
 public:
  // Deliver a message to this rank. Called from the sending thread; wakes any
  // matching posted receive, otherwise queues the message.
  void deliver(Message msg);

  // Post a receive. If a queued message already matches, the ticket completes
  // immediately; otherwise it completes on a future deliver().
  std::shared_ptr<RecvTicket> post_recv(std::uint64_t comm_id, int source, int tag);

  // Block until the ticket completes, then return its message.
  Message wait(const std::shared_ptr<RecvTicket>& ticket);

  // Deadline wait: true once the ticket completed, false if the deadline
  // passed first (the ticket stays posted — wait again, or cancel()).
  bool wait_for(const std::shared_ptr<RecvTicket>& ticket,
                std::chrono::nanoseconds timeout);

  // Withdraw a posted receive (after a wait_for timeout). If the ticket
  // completed in the meantime its message is returned — the caller must
  // treat that as a successful receive, the message is not requeued.
  std::optional<Message> cancel(const std::shared_ptr<RecvTicket>& ticket);

  // Non-blocking completion check.
  bool test(const std::shared_ptr<RecvTicket>& ticket);

  // Non-blocking probe: reports the envelope of the earliest matching queued
  // message without consuming or reserving it.
  bool iprobe(std::uint64_t comm_id, int source, int tag, RecvStatus* status);

  // Blocking probe; reserves the reported message for the calling thread.
  RecvStatus probe(std::uint64_t comm_id, int source, int tag);

  // Deadline probe: true (and *status filled, message reserved) if a match
  // arrived before the deadline.
  bool probe_for(std::uint64_t comm_id, int source, int tag,
                 std::chrono::nanoseconds timeout, RecvStatus* status);

  // Number of queued (undelivered-to-receiver) messages; for tests/stats.
  std::size_t queued() const;

  // Telemetry: record this mailbox's queue-depth high watermark on `peak`
  // (shared across the world's mailboxes). Set before traffic starts.
  void set_obs(obs::Gauge* queue_peak) { queue_peak_ = queue_peak; }

 private:
  struct Queued {
    Message msg;
    bool reserved = false;
    std::thread::id reserved_by;
  };

  static bool matches(const RecvTicket& ticket, const Message& msg) {
    return ticket.comm_id == msg.comm_id &&
           (ticket.source == any_source || ticket.source == msg.source) &&
           (ticket.tag == any_tag || ticket.tag == msg.tag);
  }

  // A queued entry is visible to `thread` unless another thread reserved it.
  static bool visible_to(const Queued& entry, std::thread::id thread) {
    return !entry.reserved || entry.reserved_by == thread;
  }

  // Earliest queued match visible to the calling thread, or queue_.end().
  std::deque<Queued>::iterator find_match(const RecvTicket& ticket);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Queued> queue_;
  std::list<std::shared_ptr<RecvTicket>> pending_;
  obs::Gauge* queue_peak_ = nullptr;
};

}  // namespace mm::mpi
