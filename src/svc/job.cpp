#include "svc/job.hpp"

#include <algorithm>
#include <cstdio>

namespace mm::svc {

StageLatency summarize_stage(std::string stage,
                             std::vector<std::int64_t> samples_ns) {
  StageLatency out;
  out.stage = std::move(stage);
  if (samples_ns.empty()) return out;
  std::sort(samples_ns.begin(), samples_ns.end());
  out.count = samples_ns.size();
  for (const std::int64_t s : samples_ns) out.total_ns += s;
  // Nearest-rank: the smallest sample with at least q of the mass at or
  // below it — exact over the job's own samples, no interpolation.
  const auto rank = [&](double q) {
    const auto n = static_cast<double>(samples_ns.size());
    auto i = static_cast<std::size_t>(q * n + 0.999999);
    if (i > 0) --i;
    return samples_ns[std::min(i, samples_ns.size() - 1)];
  };
  out.p50_ns = rank(0.50);
  out.p95_ns = rank(0.95);
  out.p99_ns = rank(0.99);
  return out;
}

std::string JobSpec::universe_key() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "synthetic/%zu/%llu", symbols,
                static_cast<unsigned long long>(seed));
  return buf;
}

std::string JobSpec::day_key() const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "synthetic/%zu/%llu/%d", symbols,
                static_cast<unsigned long long>(seed), day);
  return buf;
}

const char* ctype_wire_name(stats::Ctype c) {
  switch (c) {
    case stats::Ctype::pearson: return "pearson";
    case stats::Ctype::maronna: return "maronna";
    case stats::Ctype::combined: return "combined";
  }
  return "?";
}

Expected<stats::Ctype> ctype_from_wire(const std::string& name) {
  if (name == "pearson") return stats::Ctype::pearson;
  if (name == "maronna") return stats::Ctype::maronna;
  if (name == "combined") return stats::Ctype::combined;
  return Error(Errc::invalid_argument,
               "unknown ctype \"" + name + "\" (pearson|maronna|combined)");
}

namespace {

// The paramset fields a spec may override on ParamGrid::base(). Numeric
// fields use get_int/get_double with the base value as fallback; `ctype` is
// a wire string. Anything else in the object is an error.
Expected<core::StrategyParams> parse_paramset(const json::Value& obj,
                                              std::size_t index) {
  const auto err = [index](const std::string& what) {
    return Error(Errc::invalid_argument,
                 "paramsets[" + std::to_string(index) + "]: " + what);
  };
  if (!obj.is_object()) return err("must be an object");

  static const char* const kKnown[] = {
      "ctype",        "delta_s",           "min_correlation",
      "corr_window",  "avg_window",        "divergence_window",
      "divergence",   "retracement",       "spread_window",
      "max_holding",  "no_entry_before_close", "stop_loss",
      "cost_per_share", "lot_size",        "slippage_frac"};
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    bool known = false;
    for (const char* k : kKnown)
      if (key == k) known = true;
    if (!known) return err("unknown field \"" + key + "\"");
  }

  core::StrategyParams p = core::ParamGrid::base();
  if (const auto* c = obj.find("ctype")) {
    auto ctype = ctype_from_wire(c->as_string());
    if (!ctype.has_value()) return err(ctype.error().message);
    p.ctype = ctype.value();
  }
  p.delta_s = obj.get_int("delta_s", p.delta_s);
  p.min_correlation = obj.get_double("min_correlation", p.min_correlation);
  p.corr_window = obj.get_int("corr_window", p.corr_window);
  p.avg_window = obj.get_int("avg_window", p.avg_window);
  p.divergence_window = obj.get_int("divergence_window", p.divergence_window);
  p.divergence = obj.get_double("divergence", p.divergence);
  p.retracement = obj.get_double("retracement", p.retracement);
  p.spread_window = obj.get_int("spread_window", p.spread_window);
  p.max_holding = obj.get_int("max_holding", p.max_holding);
  p.no_entry_before_close =
      obj.get_int("no_entry_before_close", p.no_entry_before_close);
  p.stop_loss = obj.get_double("stop_loss", p.stop_loss);
  p.cost_per_share = obj.get_double("cost_per_share", p.cost_per_share);
  p.lot_size = obj.get_double("lot_size", p.lot_size);
  p.slippage_frac = obj.get_double("slippage_frac", p.slippage_frac);

  if (auto valid = p.validate(); !valid.has_value())
    return err(valid.error().message);
  return p;
}

}  // namespace

Expected<JobSpec> parse_job_spec(const std::string& body) {
  auto doc = json::parse(body);
  if (!doc.has_value())
    return Error(Errc::parse_error, "job spec: " + doc.error().message);
  const json::Value& root = doc.value();
  if (!root.is_object())
    return Error(Errc::invalid_argument, "job spec must be a JSON object");

  JobSpec spec;
  spec.tenant = root.get_string("tenant", "");
  if (spec.tenant.empty())
    return Error(Errc::invalid_argument, "job spec needs a non-empty tenant");

  const std::int64_t symbols = root.get_int("symbols", 10);
  if (symbols < 2 || symbols > 4096)
    return Error(Errc::invalid_argument, "symbols must be in [2, 4096]");
  spec.symbols = static_cast<std::size_t>(symbols);
  spec.seed = static_cast<std::uint64_t>(root.get_int(
      "seed", static_cast<std::int64_t>(JobSpec{}.seed)));
  const std::int64_t day = root.get_int("day", 0);
  if (day < 0 || day > 100000)
    return Error(Errc::invalid_argument, "day must be in [0, 100000]");
  spec.day = static_cast<int>(day);

  const json::Value* paramsets = root.find("paramsets");
  if (paramsets == nullptr || !paramsets->is_array() || paramsets->size() == 0)
    return Error(Errc::invalid_argument,
                 "job spec needs a non-empty paramsets array");
  if (paramsets->size() > 256)
    return Error(Errc::invalid_argument, "at most 256 paramsets per job");
  for (std::size_t i = 0; i < paramsets->size(); ++i) {
    auto p = parse_paramset(paramsets->at(i), i);
    if (!p.has_value()) return p.error();
    spec.paramsets.push_back(p.value());
  }
  return spec;
}

json::Value job_spec_json(const JobSpec& spec) {
  json::Value root = json::Value::object();
  root.set("tenant", spec.tenant);
  root.set("symbols", spec.symbols);
  root.set("seed", static_cast<std::int64_t>(spec.seed));
  root.set("day", spec.day);
  json::Value sets = json::Value::array();
  const core::StrategyParams base = core::ParamGrid::base();
  for (const auto& p : spec.paramsets) {
    json::Value obj = json::Value::object();
    // Emit only the overrides so the round-trip stays readable; parsing
    // fills the rest from base() again.
    obj.set("ctype", ctype_wire_name(p.ctype));
    if (p.delta_s != base.delta_s) obj.set("delta_s", p.delta_s);
    if (p.min_correlation != base.min_correlation)
      obj.set("min_correlation", p.min_correlation);
    if (p.corr_window != base.corr_window) obj.set("corr_window", p.corr_window);
    if (p.avg_window != base.avg_window) obj.set("avg_window", p.avg_window);
    if (p.divergence_window != base.divergence_window)
      obj.set("divergence_window", p.divergence_window);
    if (p.divergence != base.divergence) obj.set("divergence", p.divergence);
    if (p.retracement != base.retracement) obj.set("retracement", p.retracement);
    if (p.spread_window != base.spread_window)
      obj.set("spread_window", p.spread_window);
    if (p.max_holding != base.max_holding) obj.set("max_holding", p.max_holding);
    if (p.no_entry_before_close != base.no_entry_before_close)
      obj.set("no_entry_before_close", p.no_entry_before_close);
    if (p.stop_loss != base.stop_loss) obj.set("stop_loss", p.stop_loss);
    if (p.cost_per_share != base.cost_per_share)
      obj.set("cost_per_share", p.cost_per_share);
    if (p.lot_size != base.lot_size) obj.set("lot_size", p.lot_size);
    if (p.slippage_frac != base.slippage_frac)
      obj.set("slippage_frac", p.slippage_frac);
    sets.push(std::move(obj));
  }
  root.set("paramsets", std::move(sets));
  return root;
}

json::Value job_status_json(const Job& job) {
  json::Value root = json::Value::object();
  root.set("id", job.id);
  root.set("tenant", job.spec.tenant);
  const JobState state = job.state.load(std::memory_order_acquire);
  root.set("state", to_string(state));
  root.set("paramsets", job.spec.paramsets.size());
  root.set("units_total", job.units_total);
  root.set("units_done", job.units_done.load(std::memory_order_relaxed));
  if (job.trace_id != 0)
    root.set("trace_id", static_cast<std::int64_t>(job.trace_id));
  if (state == JobState::failed) {
    std::lock_guard<std::mutex> lock(job.mutex);
    root.set("error", job.error);
  }
  return root;
}

json::Value job_result_json(const Job& job) {
  std::lock_guard<std::mutex> lock(job.mutex);
  const JobResult& r = job.result;
  json::Value root = json::Value::object();
  root.set("id", job.id);
  root.set("tenant", job.spec.tenant);
  root.set("orders", static_cast<std::int64_t>(r.orders));
  root.set("trades", static_cast<std::int64_t>(r.trades));
  root.set("wall_seconds", r.wall_seconds);
  root.set("units", r.units);
  root.set("units_from_cache", r.units_from_cache);
  if (job.trace_id != 0)
    root.set("trace_id", static_cast<std::int64_t>(job.trace_id));
  if (!r.latency.empty()) {
    json::Value stages = json::Value::array();
    for (const auto& stage : r.latency) {
      json::Value obj = json::Value::object();
      obj.set("stage", stage.stage);
      obj.set("count", static_cast<std::int64_t>(stage.count));
      obj.set("total_ns", stage.total_ns);
      obj.set("p50_ns", stage.p50_ns);
      obj.set("p95_ns", stage.p95_ns);
      obj.set("p99_ns", stage.p99_ns);
      stages.push(std::move(obj));
    }
    root.set("latency", std::move(stages));
  }
  json::Value sets = json::Value::array();
  for (const auto& p : r.paramsets) {
    json::Value obj = json::Value::object();
    obj.set("index", p.index);
    obj.set("ctype", ctype_wire_name(job.spec.paramsets[p.index].ctype));
    obj.set("trades", static_cast<std::int64_t>(p.trades));
    obj.set("total_pnl", p.total_pnl);
    json::Value returns = json::Value::array();
    for (const double tr : p.trade_returns) returns.push(tr);
    obj.set("trade_returns", std::move(returns));
    sets.push(std::move(obj));
  }
  root.set("paramsets", std::move(sets));
  return root;
}

}  // namespace mm::svc
