# Empty dependencies file for test_maronna.
# This may be replaced when dependencies are built.
