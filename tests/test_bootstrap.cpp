// Tests for bootstrap confidence intervals.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"

namespace mm::stats {
namespace {

TEST(Bootstrap, DeterministicInSeed) {
  std::vector<double> sample = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto statistic = [](const std::vector<double>& s) { return mean(s); };
  const auto a = bootstrap_ci(sample, statistic, 500, 0.95, 7);
  const auto b = bootstrap_ci(sample, statistic, 500, 0.95, 7);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  const auto c = bootstrap_ci(sample, statistic, 500, 0.95, 8);
  EXPECT_NE(a.lo, c.lo);
}

TEST(Bootstrap, IntervalBracketsEstimate) {
  mm::Rng rng(1);
  std::vector<double> sample(200);
  for (auto& x : sample) x = rng.normal(3.0, 1.0);
  const auto ci = bootstrap_ci(
      sample, [](const std::vector<double>& s) { return mean(s); });
  EXPECT_NEAR(ci.estimate, 3.0, 0.3);
  EXPECT_LT(ci.lo, ci.estimate);
  EXPECT_GT(ci.hi, ci.estimate);
  // For n=200, sigma=1: CI half-width ~ 1.96/sqrt(200) ~ 0.14.
  EXPECT_NEAR(ci.hi - ci.lo, 2 * 1.96 / std::sqrt(200.0), 0.08);
}

TEST(Bootstrap, CoverageNearNominal) {
  // Repeat: the 90% CI should contain the true mean roughly 90% of the time.
  // The percentile bootstrap undercovers somewhat at modest n, so accept a
  // band rather than a tight tolerance.
  mm::Rng rng(2);
  int covered = 0;
  constexpr int trials = 150;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> sample(120);
    for (auto& x : sample) x = rng.normal(1.0, 2.0);
    const auto ci = bootstrap_ci(
        sample, [](const std::vector<double>& s) { return mean(s); }, 600, 0.90,
        static_cast<std::uint64_t>(t + 1));
    if (ci.lo <= 1.0 && 1.0 <= ci.hi) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GE(coverage, 0.80);
  EXPECT_LE(coverage, 0.97);
}

TEST(Bootstrap, MeanDiffDetectsShift) {
  mm::Rng rng(3);
  std::vector<double> x(150), y(150);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double base = rng.normal();
    x[i] = base + 0.5;
    y[i] = base + 0.05 * rng.normal();
  }
  const auto ci = bootstrap_mean_diff_ci(x, y);
  EXPECT_TRUE(ci.excludes_zero());
  EXPECT_NEAR(ci.estimate, 0.5, 0.05);
  EXPECT_GT(ci.lo, 0.3);
}

TEST(Bootstrap, MeanDiffNoEffectIncludesZero) {
  mm::Rng rng(4);
  std::vector<double> x(200), y(200);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_FALSE(bootstrap_mean_diff_ci(x, y).excludes_zero());
}

TEST(Bootstrap, MedianStatisticWorks) {
  mm::Rng rng(5);
  std::vector<double> sample(99);
  for (auto& x : sample) x = rng.student_t(3.0) + 2.0;  // heavy tails, median ~2
  const auto ci = bootstrap_ci(
      sample, [](const std::vector<double>& s) { return median(s); }, 600);
  EXPECT_GT(ci.hi, ci.lo);
  EXPECT_NEAR(ci.estimate, 2.0, 0.5);
}

}  // namespace
}  // namespace mm::stats
