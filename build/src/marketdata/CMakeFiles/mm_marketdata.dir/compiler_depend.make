# Empty compiler generated dependencies file for mm_marketdata.
# This may be replaced when dependencies are built.
