#include "core/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mm::core {

double cumulative_return(const std::vector<double>& returns) {
  double wealth = 1.0;
  for (double r : returns) {
    MM_ASSERT_MSG(r > -1.0, "a return of -100% or worse breaks compounding");
    wealth *= 1.0 + r;
  }
  return wealth - 1.0;
}

std::vector<double> equity_curve(const std::vector<double>& returns) {
  std::vector<double> out;
  out.reserve(returns.size());
  double wealth = 1.0;
  for (double r : returns) {
    wealth *= 1.0 + r;
    out.push_back(wealth - 1.0);
  }
  return out;
}

double max_drawdown(const std::vector<double>& returns) {
  double wealth = 1.0;
  double peak = 1.0;
  double worst = 0.0;
  for (double r : returns) {
    wealth *= 1.0 + r;
    peak = std::max(peak, wealth);
    // The paper's Eq. (6) subtracts cumulative returns (r_qa - r_qb), i.e.
    // additive on the (wealth - 1) scale.
    worst = std::max(worst, peak - wealth);
  }
  return worst;
}

WinLoss win_loss(const std::vector<double>& returns) {
  WinLoss wl;
  for (double r : returns) wl.add(r);
  return wl;
}

ExitBreakdown exit_breakdown(const std::vector<Trade>& trades) {
  ExitBreakdown out;
  for (const auto& t : trades) {
    const auto idx = static_cast<std::size_t>(t.exit_reason);
    MM_ASSERT(idx < 5);
    ++out.counts[idx];
    ++out.total;
  }
  return out;
}

}  // namespace mm::core
