// Bounded worker pool over the JobQueue.
//
// `workers` threads loop take() -> run(job) -> finished(). stop() is
// DETERMINISTIC: it closes the queue, flags every in-flight job's cancel
// bit (honored by the runner at unit boundaries), joins every worker, and
// marks the still-queued jobs cancelled. No thread outlives stop(); no job
// is left in a non-terminal state. A second stop() is a no-op.
//
// The runner owns state transitions queued -> running -> done/failed; the
// scheduler only sets `cancelled` for jobs it never handed to a runner.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "svc/queue.hpp"

namespace mm::svc {

class Scheduler {
 public:
  // Runs one job to a terminal state; must honor job->cancel between units.
  using RunFn = std::function<void(const std::shared_ptr<Job>&)>;

  Scheduler(JobQueue* queue, RunFn run, int workers);
  ~Scheduler();  // calls stop()

  void start();
  void stop();

  int workers() const { return workers_; }

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

 private:
  void worker_loop(std::size_t slot);

  JobQueue* const queue_;
  const RunFn run_;
  const int workers_;

  std::vector<std::thread> threads_;
  // Per-worker in-flight job, so stop() can flag cancellation. Guarded by
  // current_mutex_; slots are nulled when a job finishes.
  std::mutex current_mutex_;
  std::vector<std::shared_ptr<Job>> current_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace mm::svc
