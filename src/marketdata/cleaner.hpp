// Tick cleaning: the paper's "TCP-like" outlier filter (§III).
//
// Raw TAQ-style quote streams contain typing errors, test quotes and far-out
// limit orders. The paper eliminates prices "more than a few standard
// deviations from their corresponding moving average and deviation" with a
// simple TCP-like filter — i.e. the exponentially weighted mean/deviation
// estimators TCP uses for RTT (SRTT/RTTVAR) — and lets the robust correlation
// downweight whatever survives. QuoteCleaner implements exactly that, plus
// structural checks (crossed or non-positive quotes are always dropped).
#pragma once

#include <vector>

#include "common/error.hpp"
#include "marketdata/types.hpp"

namespace mm::md {

struct CleanerConfig {
  // EWMA gains, mirroring TCP's alpha (mean) and beta (deviation).
  double mean_gain = 1.0 / 8.0;
  double dev_gain = 1.0 / 4.0;
  // Reject when |bam - mean| > band_k * deviation ("a few standard
  // deviations" in the paper). Real return distributions are fat-tailed, so
  // the band is wider than a Gaussian rule of thumb would suggest.
  double band_k = 5.0;
  // Quotes accepted unconditionally while the estimators warm up. The live
  // phase starts from the median/MAD of this window, not from an EWMA seeded
  // at the first quote — a fat-fingered opening tick must not anchor the
  // mean and blind the band to genuine outliers for the rest of the day.
  int warmup_ticks = 8;
  // Deviation floor as a fraction of price, so a quiet stretch cannot shrink
  // the band to zero and start rejecting good ticks.
  double min_dev_frac = 5e-4;
  // Level-shift recovery: after this many consecutive band rejections the
  // filter concludes the price genuinely moved (it is not a burst of bad
  // ticks), re-seeds its estimators at the current quote and accepts it.
  // Without this, one fast move freezes the stale mean and the filter
  // rejects every quote until the price happens to come back.
  int level_shift_ticks = 8;
};

// Per-symbol streaming filter state.
class SymbolFilter {
 public:
  explicit SymbolFilter(const CleanerConfig& config) : config_(config) {}

  // True if the quote passes; passing quotes update the estimators.
  bool accept(const Quote& quote);

  double mean() const { return mean_; }
  double deviation() const { return dev_; }
  int seen() const { return seen_; }
  int consecutive_rejects() const { return consecutive_rejects_; }

 private:
  CleanerConfig config_;
  double mean_ = 0.0;
  double dev_ = 0.0;
  int seen_ = 0;
  int consecutive_rejects_ = 0;
  std::vector<double> warmup_;  // BAMs buffered for the median/MAD seed
};

// Multi-symbol streaming cleaner with drop accounting.
class QuoteCleaner {
 public:
  QuoteCleaner(std::size_t symbol_count, const CleanerConfig& config);

  bool accept(const Quote& quote);

  // Batch convenience: returns the surviving quotes in order.
  std::vector<Quote> clean(const std::vector<Quote>& quotes);

  std::size_t accepted() const { return accepted_; }
  std::size_t dropped_structural() const { return dropped_structural_; }
  std::size_t dropped_band() const { return dropped_band_; }

 private:
  std::vector<SymbolFilter> filters_;
  std::size_t accepted_ = 0;
  std::size_t dropped_structural_ = 0;
  std::size_t dropped_band_ = 0;
};

}  // namespace mm::md
