// Spin-then-park wait strategy and transport tuning knobs.
//
// The mpmini hot path never parks while traffic is flowing: a waiter polls
// its inbound rings through a bounded spin (cheap pause instructions first,
// then sched yields, with the yield share sized for core-oversubscribed
// hosts), and only after the budget is spent does it fall back to the
// mailbox's condition variable — the park side of the eventcount protocol in
// mailbox.cpp. All knobs are environment variables read once per process and
// validated at Environment startup (unknown or garbage values warn once and
// fall back to the default):
//
//   MM_MPMINI_TRANSPORT  "ring" (default) | "locked" | "socket" — lane rings,
//                        the legacy mutex/condvar-only delivery path, or the
//                        multi-process TCP transport (one process per rank,
//                        see socket_transport.hpp; requires MM_MPMINI_RANK
//                        and MM_MPMINI_RENDEZVOUS)
//   MM_MPMINI_SPIN       total spin iterations before parking (default 512;
//                        0 parks immediately, reproducing legacy waits)
//   MM_MPMINI_RING_CAP   per-lane ring capacity, rounded up to a power of
//                        two and clamped to [2, 2^20] (default 256 messages)
//   MM_MPMINI_PIN        "1" pins rank thread r to CPU (r mod cores) at
//                        Environment::run startup (default off)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mm::mpi {

enum class TransportMode : std::uint8_t { ring, locked, socket };

struct SpinPolicy {
  // Total iterations before parking. The first `pause_share` of them issue a
  // CPU pause/relax; the rest yield the core so a same-core peer can run.
  std::uint32_t iterations = 512;
  std::uint32_t pause_share = 64;

  bool enabled() const { return iterations > 0; }
};

// Everything the transport env knobs control, parsed and validated in one
// place. `warnings` holds one line per rejected value (the corresponding
// field carries the default instead).
struct TransportEnv {
  TransportMode transport = TransportMode::ring;
  SpinPolicy spin{};
  std::uint64_t ring_capacity = 256;
  bool pin = false;
  std::vector<std::string> warnings;
};

// Pure parser over raw getenv values (null = unset), exposed for tests.
// `hardware_threads` sizes the single-core spin default.
TransportEnv parse_transport_env(const char* transport, const char* spin,
                                 const char* ring_cap, const char* pin,
                                 unsigned hardware_threads);

// Process-wide knob values (parsed from the environment on first use).
TransportMode transport_mode();
const SpinPolicy& spin_policy();
std::uint64_t ring_capacity();
bool pin_requested();

// Log each env-validation warning exactly once per process. Called at
// Environment startup so misconfigurations surface before traffic starts.
void validate_transport_env();

// One spin step: pause for low `step`, yield once past the policy's pause
// share. Callers loop `for (step = 0; step < policy.iterations; ++step)`.
void spin_relax(const SpinPolicy& policy, std::uint32_t step);

// Best-effort thread pinning; false when unsupported or the mask is denied.
bool pin_current_thread(int cpu);

}  // namespace mm::mpi
