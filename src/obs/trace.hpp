// mm::obs tracing — per-rank rings of compact events drained to Chrome JSON,
// stitched across ranks by causal flow events.
//
// A TraceRing is a fixed-capacity, single-writer ring of 64-byte events owned
// by one rank thread: recording a span is two steady_clock reads plus one
// bounded memcpy, no locks and no allocation; when the ring is full the
// newest events are dropped and counted. A TraceSink owns one ring per rank
// ("process" in the viewer) and serializes them into the chrome://tracing /
// Perfetto JSON format after the run — one process per rank, one named thread
// per dagflow node.
//
// Recording is RAII: ObsSpan emits a complete ("X") event covering its own
// lifetime and can simultaneously record the duration into a Histogram, which
// is how dagflow keeps one timing mechanism for traces and metrics.
//
// Causal propagation: a TraceContext (trace_id + parent span) travels with
// the work. Each thread has one current context and one current ring (see
// thread_trace()); mpmini stamps the context into every outgoing Message
// header and emits a flow-start on the sender's ring, the matching receive
// emits a flow-finish with the same id on the receiver's ring, and the
// viewer draws the arrow — one causally connected trace per pipeline run
// instead of N disconnected per-rank timelines. dagflow makes node code
// inherit the context of the frame that woke it (see dag::Context::recv).
//
// With MM_OBS_ENABLED=0 every type here is a field-free no-op (ObsSpan does
// not even read the clock), TraceContext carries nothing, and chrome_json()
// returns an empty trace.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "obs/registry.hpp"

#if MM_OBS_ENABLED
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <vector>
#endif

namespace mm::obs {

// Longest event name stored without truncation (TraceEvent::name capacity
// minus the terminator). Real in both build modes so tests can assert it.
inline constexpr std::size_t kMaxEventName = 38;

#if MM_OBS_ENABLED

// Absolute steady-clock nanoseconds (the time base for every trace event).
inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The causal coordinates a unit of work carries: which end-to-end trace it
// belongs to and which span caused it. trace_id == 0 means "not traced" —
// send sites skip the envelope header and emit no flow events.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint32_t parent_span = 0;

  bool valid() const { return trace_id != 0; }
};

inline TraceContext make_trace_context(std::uint64_t trace_id,
                                       std::uint32_t parent_span = 0) {
  return {trace_id, parent_span};
}

// Process-wide id allocators (relaxed atomic counters; never return 0, so 0
// stays the "untraced" sentinel in envelopes and contexts).
std::uint64_t next_trace_id();
std::uint32_t next_span_id();

struct TraceEvent {
  char name[39];        // truncated copy; self-contained, no interning
  std::uint8_t kind;    // one of TraceRing::kSpan / kInstant / kFlow*
  std::int64_t ts_ns;   // relative to the sink epoch
  std::int64_t dur_ns;
  std::int32_t tid;
  std::uint32_t flow;   // flow-event id (kFlowStart/kFlowFinish), else 0
};
static_assert(sizeof(TraceEvent) == 64, "one event per cache line");
static_assert(sizeof(TraceEvent{}.name) == kMaxEventName + 1, "name capacity");

class TraceRing {
 public:
  static constexpr std::uint8_t kSpan = 0;        // complete ("X") event
  static constexpr std::uint8_t kInstant = 1;     // instant ("i") event
  static constexpr std::uint8_t kFlowStart = 2;   // flow start ("s")
  static constexpr std::uint8_t kFlowFinish = 3;  // flow finish ("f")

  TraceRing(std::int32_t pid, std::int64_t epoch_ns, std::size_t capacity);

  // The thread row subsequent events belong to (a dagflow node id).
  void set_tid(std::int32_t tid) { tid_ = tid; }
  std::int32_t pid() const { return pid_; }

  // Record a complete span [start_ns, start_ns + dur_ns) (absolute ns).
  void complete(const char* name, std::int64_t start_ns, std::int64_t dur_ns) {
    push(name, start_ns, dur_ns, kSpan, 0);
  }

  // Record a zero-duration instant event at now.
  void instant(const char* name) { push(name, now_ns(), 0, kInstant, 0); }

  // Flow events: start on the producing rank, finish on the consuming rank,
  // same id. ts_ns must fall inside a complete span on the same (pid, tid)
  // row — the viewer binds the arrow ends to the enclosing slices.
  void flow_start(const char* name, std::int64_t ts_ns, std::uint32_t id) {
    push(name, ts_ns, 0, kFlowStart, id);
  }
  void flow_finish(const char* name, std::int64_t ts_ns, std::uint32_t id) {
    push(name, ts_ns, 0, kFlowFinish, id);
  }

  std::size_t size() const { return size_; }
  std::uint64_t dropped() const { return dropped_; }
  const TraceEvent& event(std::size_t i) const { return events_[i]; }

 private:
  void push(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
            std::uint8_t kind, std::uint32_t flow);

  std::int32_t pid_;
  std::int32_t tid_ = 0;
  std::int64_t epoch_ns_;
  std::vector<TraceEvent> events_;  // filled [0, size_)
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

class TraceSink {
 public:
  explicit TraceSink(std::size_t ring_capacity = 1u << 16);

  // The ring for rank `pid`, created (and its process named) on first use.
  // Creation is mutex-guarded; the returned ring must only be written by the
  // rank's own thread.
  TraceRing& ring(std::int32_t pid, const std::string& process_name);

  // Name the (pid, tid) row — e.g. the dagflow node running on that rank.
  void set_thread_name(std::int32_t pid, std::int32_t tid, const std::string& name);

  // Attach a key/value to the trace's "otherData" object (job id, tenant,
  // trace id — anything a consumer needs to identify the trace).
  void set_meta(const std::string& key, const std::string& value);

  std::int64_t epoch_ns() const { return epoch_ns_; }

  // Serialize all rings. Call after every writer thread has finished (the
  // reader takes the registration mutex but events themselves are unsynchronized
  // by design).
  std::string chrome_json() const;
  Status write_file(const std::string& path) const;

  std::uint64_t total_events() const;
  std::uint64_t total_dropped() const;
  // Flow-event totals across rings (cross-rank stitches; finishes can trail
  // starts when messages were dropped in flight).
  std::uint64_t total_flow_starts() const;
  std::uint64_t total_flow_finishes() const;

 private:
  std::uint64_t count_kind(std::uint8_t kind) const;

  std::int64_t epoch_ns_;
  std::size_t ring_capacity_;
  mutable std::mutex mutex_;
  std::map<std::int32_t, std::unique_ptr<TraceRing>> rings_;
  std::map<std::int32_t, std::string> process_names_;
  std::map<std::pair<std::int32_t, std::int32_t>, std::string> thread_names_;
  std::map<std::string, std::string> meta_;
};

// RAII span: records its constructor→destructor lifetime as a trace event
// on `ring` and/or a sample in `hist`. Null arguments are skipped; with both
// null the span is free (no clock reads). `name` must outlive the span.
class ObsSpan {
 public:
  ObsSpan(TraceRing* ring, const char* name, Histogram* hist = nullptr)
      : ring_(ring), hist_(hist), name_(name) {
#ifndef NDEBUG
    // Debug-only truncation guard: a name longer than the event's inline
    // buffer would be silently cut, and stitched cross-rank span names must
    // not diverge between the sender's and receiver's rings.
    MM_ASSERT_MSG(ring == nullptr || name == nullptr ||
                      std::strlen(name) <= kMaxEventName,
                  "ObsSpan name longer than TraceEvent::name; shorten it");
#endif
    if (ring_ != nullptr || hist_ != nullptr) start_ns_ = now_ns();
  }

  // End the span now instead of at destruction (idempotent).
  void close() {
    if (ring_ == nullptr && hist_ == nullptr) return;
    const std::int64_t dur = now_ns() - start_ns_;
    if (ring_ != nullptr) ring_->complete(name_, start_ns_, dur);
    if (hist_ != nullptr) hist_->record(dur);
    ring_ = nullptr;
    hist_ = nullptr;
  }

  ~ObsSpan() { close(); }

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  TraceRing* ring_;
  Histogram* hist_;
  const char* name_;
  std::int64_t start_ns_ = 0;
};

// The calling thread's tracing state: the ring its spans go to (set by the
// dagflow run harness / service worker for the thread's lifetime) and the
// context of the work it is currently executing (updated as frames are
// consumed). One TLS slot for both so the transport hot path pays a single
// thread-local address computation when idle.
struct ThreadTrace {
  TraceRing* ring = nullptr;
  TraceContext context{};
};

ThreadTrace& thread_trace() noexcept;

inline TraceRing* current_trace_ring() noexcept { return thread_trace().ring; }
inline TraceContext current_trace_context() noexcept {
  return thread_trace().context;
}
inline void set_trace_context(TraceContext context) noexcept {
  thread_trace().context = context;
}

// Scoped installation of a thread's trace ring (the rank thread's row in the
// sink). Restores the previous ring on destruction.
class TraceRingScope {
 public:
  explicit TraceRingScope(TraceRing* ring) : prev_(thread_trace().ring) {
    thread_trace().ring = ring;
  }
  ~TraceRingScope() { thread_trace().ring = prev_; }

  TraceRingScope(const TraceRingScope&) = delete;
  TraceRingScope& operator=(const TraceRingScope&) = delete;

 private:
  TraceRing* prev_;
};

// Scoped installation of the thread's current causal context.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext context)
      : prev_(thread_trace().context) {
    thread_trace().context = context;
  }
  ~TraceContextScope() { thread_trace().context = prev_; }

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
};

#else  // !MM_OBS_ENABLED

inline std::int64_t now_ns() noexcept { return 0; }

// Field-free: carries nothing, compares invalid, costs nothing to copy.
struct TraceContext {
  bool valid() const { return false; }
};

inline TraceContext make_trace_context(std::uint64_t, std::uint32_t = 0) {
  return {};
}

inline std::uint64_t next_trace_id() { return 0; }
inline std::uint32_t next_span_id() { return 0; }

class TraceRing {
 public:
  static constexpr std::uint8_t kSpan = 0;
  static constexpr std::uint8_t kInstant = 1;
  static constexpr std::uint8_t kFlowStart = 2;
  static constexpr std::uint8_t kFlowFinish = 3;

  void set_tid(std::int32_t) {}
  std::int32_t pid() const { return 0; }
  void complete(const char*, std::int64_t, std::int64_t) {}
  void instant(const char*) {}
  void flow_start(const char*, std::int64_t, std::uint32_t) {}
  void flow_finish(const char*, std::int64_t, std::uint32_t) {}
  std::size_t size() const { return 0; }
  std::uint64_t dropped() const { return 0; }
};

class TraceSink {
 public:
  explicit TraceSink(std::size_t = 0) {}
  TraceRing& ring(std::int32_t, const std::string&) { return ring_; }
  void set_thread_name(std::int32_t, std::int32_t, const std::string&) {}
  void set_meta(const std::string&, const std::string&) {}
  std::int64_t epoch_ns() const { return 0; }
  std::string chrome_json() const { return "{\"traceEvents\":[]}"; }
  Status write_file(const std::string& path) const;
  std::uint64_t total_events() const { return 0; }
  std::uint64_t total_dropped() const { return 0; }
  std::uint64_t total_flow_starts() const { return 0; }
  std::uint64_t total_flow_finishes() const { return 0; }

 private:
  TraceRing ring_;
};

class ObsSpan {
 public:
  ObsSpan(TraceRing*, const char*, Histogram* = nullptr) {}
  void close() {}
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;
};

struct ThreadTrace {
  TraceRing* ring = nullptr;
  TraceContext context{};
};

inline ThreadTrace& thread_trace() noexcept {
  static ThreadTrace state;
  return state;
}

inline TraceRing* current_trace_ring() noexcept { return nullptr; }
inline TraceContext current_trace_context() noexcept { return {}; }
inline void set_trace_context(TraceContext) noexcept {}

class TraceRingScope {
 public:
  explicit TraceRingScope(TraceRing*) {}
  TraceRingScope(const TraceRingScope&) = delete;
  TraceRingScope& operator=(const TraceRingScope&) = delete;
};

class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext) {}
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;
};

#endif  // MM_OBS_ENABLED

}  // namespace mm::obs
