// Tests for batch and sliding-window Pearson correlation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/pearson.hpp"
#include "stats/windows.hpp"  // kRebuildInterval

namespace mm::stats {
namespace {

TEST(Pearson, PerfectLinearRelationships) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> ny = {-2, -4, -6, -8, -10};
  EXPECT_NEAR(pearson(x, ny), -1.0, 1e-12);
}

TEST(Pearson, ShiftAndScaleInvariant) {
  mm::Rng rng(1);
  std::vector<double> x(200), y(200), y2(200);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = 0.6 * x[i] + 0.8 * rng.normal();
    y2[i] = 100.0 + 7.5 * y[i];
  }
  EXPECT_NEAR(pearson(x, y), pearson(x, y2), 1e-12);
}

TEST(Pearson, IndependentNearZero) {
  mm::Rng rng(2);
  std::vector<double> x(20000), y(20000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.03);
}

TEST(Pearson, KnownFactorCorrelation) {
  // y = a*f + e with matched variances: corr = a / sqrt(a² + 1).
  mm::Rng rng(3);
  const double a = 1.0;
  std::vector<double> x(200000), y(200000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double f = rng.normal();
    x[i] = f + rng.normal();
    y[i] = a * f + rng.normal();
  }
  EXPECT_NEAR(pearson(x, y), 0.5, 0.01);
}

TEST(Pearson, ConstantInputGivesZero) {
  const std::vector<double> c = {3, 3, 3, 3};
  const std::vector<double> x = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(pearson(c, x), 0.0);
  EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
}

TEST(Pearson, SensitiveToOneOutlier) {
  // The motivation for Maronna (§II): a single bad tick swings Pearson hard.
  mm::Rng rng(4);
  std::vector<double> x(100), y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    const double f = rng.normal();
    x[i] = f + 0.3 * rng.normal();
    y[i] = f + 0.3 * rng.normal();
  }
  const double clean = pearson(x, y);
  EXPECT_GT(clean, 0.8);
  x[50] = 100.0;  // one fat-finger
  y[50] = -100.0;
  const double dirty = pearson(x, y);
  EXPECT_LT(dirty, -0.5);  // completely destroyed
}

TEST(SlidingPearson, NotReadyUntilWindowFull) {
  SlidingPearson sp(5);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(sp.ready());
    sp.push(i, i * 2.0);
  }
  sp.push(4, 8.0);
  EXPECT_TRUE(sp.ready());
}

TEST(SlidingPearson, MatchesBatchOnEveryStep) {
  constexpr std::size_t window = 20;
  SlidingPearson sp(window);
  mm::Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 3000; ++i) {
    const double f = rng.normal();
    const double x = f + rng.normal() * 0.7;
    const double y = f + rng.normal() * 0.7;
    sp.push(x, y);
    xs.push_back(x);
    ys.push_back(y);
    if (!sp.ready()) continue;
    const std::size_t lo = xs.size() - window;
    const double batch = pearson(xs.data() + lo, ys.data() + lo, window);
    ASSERT_NEAR(sp.correlation(), batch, 1e-9) << "at step " << i;
  }
}

TEST(SlidingPearson, StableUnderAdversarialScale) {
  // Large offsets stress the running-sums formulation; the periodic rebuild
  // must keep drift bounded.
  constexpr std::size_t window = 50;
  SlidingPearson sp(window);
  mm::Rng rng(6);
  std::vector<double> xs, ys;
  for (int i = 0; i < 20000; ++i) {
    const double f = rng.normal();
    const double x = 1e7 + f + rng.normal();
    const double y = 1e7 + f + rng.normal();
    sp.push(x, y);
    xs.push_back(x);
    ys.push_back(y);
  }
  const std::size_t lo = xs.size() - window;
  const double batch = pearson(xs.data() + lo, ys.data() + lo, window);
  EXPECT_NEAR(sp.correlation(), batch, 1e-4);
}

TEST(SlidingPearson, ReanchorsAfterStrongTrend) {
  // Regression: the centering offset used to be captured from the FIRST
  // observation and never moved. A series that ramps far from its starting
  // level (here to ~1e8) then plateaus leaves the stored values huge
  // relative to their unit-scale dispersion, and the running sums cancel
  // catastrophically — the old code's relative variance floor reported 0
  // correlation forever after. rebuild() now re-anchors the offset to the
  // window mean, so once the periodic rebuild fires the estimate recovers.
  constexpr std::size_t window = 50;
  SlidingPearson sp(window);
  mm::Rng rng(7);
  std::vector<double> xs, ys;
  const auto push = [&](double x, double y) {
    sp.push(x, y);
    xs.push_back(x);
    ys.push_back(y);
  };
  // Ramp: 1000 steps climbing to 1e8.
  for (int i = 0; i < 1000; ++i) {
    const double level = 1e5 * static_cast<double>(i);
    push(level + rng.normal(), level + rng.normal());
  }
  // Plateau: strongly correlated unit-scale noise around the new level,
  // long enough that the kRebuildInterval rebuild fires well within it.
  for (std::size_t i = 1000; i < kRebuildInterval + 2 * window; ++i) {
    const double f = rng.normal();
    push(1e8 + f + 0.3 * rng.normal(), 1e8 + f + 0.3 * rng.normal());
  }
  const std::size_t lo = xs.size() - window;
  const double batch = pearson(xs.data() + lo, ys.data() + lo, window);
  ASSERT_GT(batch, 0.5);  // the signal really is there
  EXPECT_NEAR(sp.correlation(), batch, 1e-6);
}

TEST(SlidingPearson, BoundedInMinusOnePlusOne) {
  SlidingPearson sp(3);
  sp.push(1, 1);
  sp.push(2, 2);
  sp.push(3, 3);
  const double r = sp.correlation();
  EXPECT_LE(r, 1.0);
  EXPECT_GE(r, -1.0);
  EXPECT_NEAR(r, 1.0, 1e-9);
}

}  // namespace
}  // namespace mm::stats
