# Empty dependencies file for test_ewma.
# This may be replaced when dependencies are built.
