// Prometheus text-exposition rendering for mm::obs (exposition format 0.0.4).
//
// Pure cold-path string formatting over Snapshot / RankHealth / RateSample —
// no sockets, no threads (the listener lives in obs/http.hpp, the wiring in
// obs/live.hpp). Compiled identically with MM_OBS_ENABLED on or off: a
// disabled build renders an empty snapshot.
//
// Mapping rules:
//   * metric names are sanitized to [a-zA-Z_:][a-zA-Z0-9_:]* (every other
//     byte becomes '_', a leading digit gets a '_' prefix) and prefixed
//     (default "mm_");
//   * counters are suffixed "_total"; gauges map 1:1;
//   * histograms emit the native histogram family (cumulative "_bucket" with
//     an le label per bound plus le="+Inf", "_sum", "_count") AND a
//     "<name>_quantile" gauge family whose samples carry quantile labels —
//     the interpolated p50/p95/p99 from MetricValue::quantile;
//   * label values are escaped per the spec: backslash, double-quote and
//     newline become \\, \" and \n.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "obs/heartbeat.hpp"
#include "obs/registry.hpp"
#include "obs/snapshots.hpp"

namespace mm::obs {

// Sanitized Prometheus metric name (no prefixing; pure character rules).
std::string prom_name(const std::string& raw);

// Label-value escaping: \ -> \\, " -> \", newline -> \n.
std::string prom_label_escape(const std::string& value);

// Label-embedded metric names. Registry metrics are keyed by one flat string;
// labels ride inside it using the exposition's own syntax:
//
//   labeled("svc.jobs.submitted", {{"tenant", "alice"}})
//     -> `svc.jobs.submitted{tenant="alice"}`
//
// Each distinct label set is its own Counter/Gauge/Histogram (updates stay on
// the registry's lock-free hot path); prom_render splits the name back into
// family + label block and merges le/quantile labels for histograms, so the
// scrape shows one properly labeled family. Snapshot::find takes the full
// labeled string.
std::string labeled(const std::string& name,
                    std::initializer_list<std::pair<std::string, std::string>> labels);

// One full registry snapshot as text exposition. Every family gets HELP and
// TYPE lines; `prefix` is prepended to every (sanitized) name.
std::string prom_render(const Snapshot& snap, const std::string& prefix = "mm_");

// Heartbeat liveness as labeled gauge families: mm_heartbeat_up (1 while the
// rank is believed alive, 0 once down or done), mm_heartbeat_state (0 up,
// 1 suspect, 2 down, 3 done), mm_heartbeat_seq, mm_heartbeat_age_seconds
// (now - last_seen) and mm_heartbeat_missed_scans, each labeled
// {rank="..",node=".."}. `rank_nodes` maps world rank to its dagflow node
// name (shorter vectors leave the node label empty).
std::string prom_render_health(const std::vector<RankHealth>& health,
                               const std::vector<std::string>& rank_nodes,
                               std::int64_t now_ns,
                               const std::string& prefix = "mm_");

// Live rates from the snapshot scheduler as gauges (mm_rate_messages_per_
// second, mm_rate_frames_per_second, mm_rate_step_latency_ns{quantile=..},
// mm_snapshot_age_seconds).
std::string prom_render_rates(const RateSample& rates, std::int64_t now_ns,
                              const std::string& prefix = "mm_");

}  // namespace mm::obs
