#include "marketdata/cleaner.hpp"

#include <cmath>

namespace mm::md {

bool SymbolFilter::accept(const Quote& quote) {
  const double x = quote.bam();
  if (seen_ < config_.warmup_ticks) {
    // Warmup: seed the estimators.
    if (seen_ == 0) {
      mean_ = x;
      dev_ = x * config_.min_dev_frac;
    } else {
      const double err = x - mean_;
      mean_ += config_.mean_gain * err;
      dev_ += config_.dev_gain * (std::abs(err) - dev_);
    }
    ++seen_;
    return true;
  }

  const double floor_dev = mean_ * config_.min_dev_frac;
  const double band = config_.band_k * std::max(dev_, floor_dev);
  const double err = x - mean_;
  if (std::abs(err) > band) {
    if (++consecutive_rejects_ >= config_.level_shift_ticks) {
      // Persistent disagreement: the market really moved. Re-seed here.
      mean_ = x;
      dev_ = x * config_.min_dev_frac;
      consecutive_rejects_ = 0;
      ++seen_;
      return true;
    }
    return false;
  }

  consecutive_rejects_ = 0;
  mean_ += config_.mean_gain * err;
  dev_ += config_.dev_gain * (std::abs(err) - dev_);
  ++seen_;
  return true;
}

QuoteCleaner::QuoteCleaner(std::size_t symbol_count, const CleanerConfig& config) {
  filters_.reserve(symbol_count);
  for (std::size_t i = 0; i < symbol_count; ++i) filters_.emplace_back(config);
}

bool QuoteCleaner::accept(const Quote& quote) {
  MM_ASSERT_MSG(quote.symbol < filters_.size(), "cleaner: unknown symbol id");
  if (!quote.plausible()) {
    ++dropped_structural_;
    return false;
  }
  if (!filters_[quote.symbol].accept(quote)) {
    ++dropped_band_;
    return false;
  }
  ++accepted_;
  return true;
}

std::vector<Quote> QuoteCleaner::clean(const std::vector<Quote>& quotes) {
  std::vector<Quote> out;
  out.reserve(quotes.size());
  for (const auto& q : quotes)
    if (accept(q)) out.push_back(q);
  return out;
}

}  // namespace mm::md
