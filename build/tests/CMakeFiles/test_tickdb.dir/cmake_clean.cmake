file(REMOVE_RECURSE
  "CMakeFiles/test_tickdb.dir/test_tickdb.cpp.o"
  "CMakeFiles/test_tickdb.dir/test_tickdb.cpp.o.d"
  "test_tickdb"
  "test_tickdb.pdb"
  "test_tickdb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tickdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
