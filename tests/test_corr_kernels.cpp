// Golden tests for the stateful correlation kernels: warm-started Maronna
// must track the batch (cold-start) estimator through outlier bursts and
// degenerate stretches, and the blocked Pearson matrix kernel must equal the
// element-wise incremental path bit-for-bit.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/backtester.hpp"
#include "mpmini/collectives.hpp"
#include "mpmini/environment.hpp"
#include "obs/registry.hpp"
#include "stats/corr_engine.hpp"
#include "stats/maronna.hpp"
#include "stats/windows.hpp"

namespace mm::stats {
namespace {

// 500-step correlated return stream with two adversarial episodes:
//   * steps 120..134 — fat-finger outlier bursts on symbols 0 and 2
//     (alternating sign, 500× the return scale),
//   * steps 250..309 — symbol 1 freezes (exactly constant value), long
//     enough to drive its whole window degenerate and out again.
std::vector<std::vector<double>> golden_stream(std::size_t symbols,
                                               std::size_t steps,
                                               std::uint64_t seed) {
  mm::Rng rng(seed);
  std::vector<std::vector<double>> out(steps, std::vector<double>(symbols));
  for (std::size_t s = 0; s < steps; ++s) {
    const double f = rng.normal();
    for (std::size_t i = 0; i < symbols; ++i)
      out[s][i] = 1e-4 * (0.7 * f + rng.normal());
    if (s >= 120 && s < 135) {
      out[s][0] = (s % 2 == 0 ? 5e-2 : -5e-2);
      out[s][2] = (s % 2 == 0 ? -5e-2 : 5e-2);
    }
    if (s >= 250 && s < 310) out[s][1] = 2.5e-4;
  }
  return out;
}

TEST(WarmMaronna, GoldenStreamMatchesColdWithinTolerance) {
  constexpr std::size_t symbols = 5;
  constexpr std::size_t window = 40;
  const auto stream = golden_stream(symbols, 500, 42);

  // Tight tolerance so both paths run to the shared fixed point; the 1e-8
  // agreement below is the contract documented in DESIGN.md. The iteration
  // contracts slowly under heavy contamination, so the distance to the fixed
  // point can exceed the step-size tolerance by ~100x — hence 1e-12 here.
  CorrEngineConfig cold_cfg;
  cold_cfg.type = Ctype::maronna;
  cold_cfg.window = window;
  cold_cfg.maronna.tolerance = 1e-12;
  cold_cfg.maronna.max_iterations = 2000;
  CorrEngineConfig warm_cfg = cold_cfg;
  warm_cfg.warm_start = true;

  CorrelationCalculator cold(cold_cfg, symbols);
  CorrelationCalculator warm(warm_cfg, symbols);

  std::size_t compared = 0;
  for (const auto& r : stream) {
    cold.push(r);
    warm.push(r);
    if (!cold.ready()) continue;
    const auto mc = cold.matrix();
    const auto mw = warm.matrix();
    const double diff = SymMatrix::max_abs_diff(mc, mw);
    ASSERT_LE(diff, 1e-8) << "at step " << compared;
    ++compared;
  }
  EXPECT_GT(compared, 400u);
}

TEST(WarmMaronna, DegenerateStretchesMatchBatchExactly) {
  // While a window is exactly constant the engine must fall back to the cold
  // start, which reproduces the batch estimator bit-for-bit (including its
  // "zero dispersion -> correlation 0" convention).
  constexpr std::size_t symbols = 3;
  constexpr std::size_t window = 20;
  const auto stream = golden_stream(symbols, 400, 7);

  CorrEngineConfig cfg;
  cfg.type = Ctype::maronna;
  cfg.window = window;
  cfg.warm_start = true;
  cfg.maronna.tolerance = 1e-12;
  cfg.maronna.max_iterations = 2000;
  CorrelationCalculator warm(cfg, symbols);

  std::vector<std::vector<double>> history(symbols);
  std::vector<double> wx(window), wy(window);
  for (const auto& r : stream) {
    warm.push(r);
    for (std::size_t i = 0; i < symbols; ++i) history[i].push_back(r[i]);
    if (!warm.ready()) continue;
    const std::size_t steps = history[0].size();
    // Symbol 1 is frozen over steps 250..310: its windows pass through
    // partially- and fully-degenerate states. Compare against batch.
    if (steps >= 260 && steps <= 340) {
      const std::size_t lo = steps - window;
      for (std::size_t t = 0; t < window; ++t) {
        wx[t] = history[0][lo + t];
        wy[t] = history[1][lo + t];
      }
      const double batch = maronna(wx.data(), wy.data(), window, cfg.maronna);
      EXPECT_NEAR(warm.pair(0, 1), batch, 1e-8) << "at step " << steps;
    }
  }
}

TEST(WarmMaronna, WarmPathActuallyRunsWarm) {
  // Sanity check on the machinery itself: on a clean stream the warm path
  // must dominate, with cold starts only at seeding/restart cadence.
  constexpr std::size_t window = 30;
  const auto stream = golden_stream(2, 300, 9);
  WarmMaronna warm(1, MaronnaConfig{});
  ReturnWindows windows(2, window, false);
  std::vector<double> arena(2 * window);
  for (const auto& r : stream) {
    windows.push(r);
    warm.advance();
    if (!windows.ready()) continue;
    windows.unwrap_all(arena.data());
    warm.estimate(0, arena.data(), arena.data() + window, window);
  }
  EXPECT_GT(warm.warm_calls(), 4 * warm.cold_calls());
  EXPECT_GE(warm.cold_calls(), 1u);  // at least the initial seed + cadence
}

TEST(WarmMaronna, ReestimateFallsBackOnBadSeed) {
  const auto stream = golden_stream(2, 60, 11);
  std::vector<double> x, y;
  for (const auto& r : stream) {
    x.push_back(r[0]);
    y.push_back(r[1]);
  }
  const auto cold = maronna_estimate(x.data(), y.data(), x.size());

  MaronnaResult bad;  // default: not converged, zero scatter
  const auto fell_back = maronna_reestimate(x.data(), y.data(), x.size(), bad);
  EXPECT_DOUBLE_EQ(fell_back.correlation, cold.correlation);

  MaronnaResult poisoned = cold;
  poisoned.scatter_xx = std::nan("");
  const auto fell_back2 =
      maronna_reestimate(x.data(), y.data(), x.size(), poisoned);
  EXPECT_DOUBLE_EQ(fell_back2.correlation, cold.correlation);
}

TEST(MadIsZero, MatchesMedianDefinition) {
  // mad_is_zero must agree with "a strict majority of values coincide".
  std::vector<double> v = {1.0, 1.0, 1.0, 2.0, 3.0};
  EXPECT_TRUE(mad_is_zero(v.data(), v.size()));
  v = {1.0, 1.0, 2.0, 2.0, 3.0};
  EXPECT_FALSE(mad_is_zero(v.data(), v.size()));
  v = {4.0, 4.0, 4.0, 4.0};
  EXPECT_TRUE(mad_is_zero(v.data(), v.size()));
  v = {1.0, 2.0};
  EXPECT_FALSE(mad_is_zero(v.data(), v.size()));
  // Exactly half is not a majority (even n: the upper middle deviation is
  // nonzero, so the MAD is nonzero).
  v = {5.0, 5.0, 1.0, 2.0};
  EXPECT_FALSE(mad_is_zero(v.data(), v.size()));
}

TEST(PearsonMatrix, EqualsElementwisePearsonExactly) {
  constexpr std::size_t symbols = 9;
  constexpr std::size_t window = 25;
  const auto stream = golden_stream(symbols, 300, 13);
  ReturnWindows w(symbols, window, true);
  SymMatrix m;
  for (const auto& r : stream) {
    w.push(r);
    if (!w.ready()) continue;
    w.pearson_matrix(m);
    ASSERT_EQ(m.size(), symbols);
    for (std::size_t i = 0; i < symbols; ++i) {
      ASSERT_DOUBLE_EQ(m(i, i), 1.0);
      for (std::size_t j = i + 1; j < symbols; ++j)
        ASSERT_DOUBLE_EQ(m(i, j), w.pearson(i, j))
            << "pair (" << i << "," << j << ")";
    }
  }
}

TEST(UnwrapAll, MatchesCopyWindowForEverySymbol) {
  constexpr std::size_t symbols = 4;
  constexpr std::size_t window = 7;
  const auto stream = golden_stream(symbols, 40, 17);
  ReturnWindows w(symbols, window, false);
  std::vector<double> arena(symbols * window);
  std::vector<double> reference(window);
  for (const auto& r : stream) {
    w.push(r);
    if (!w.ready()) continue;
    w.unwrap_all(arena.data());
    for (std::size_t i = 0; i < symbols; ++i) {
      w.copy_window(i, reference.data());
      for (std::size_t t = 0; t < window; ++t)
        ASSERT_DOUBLE_EQ(arena[i * window + t], reference[t]);
    }
  }
}

TEST(MarketCorrSeries, WarmMatchesColdWithinTolerance) {
  // End-to-end through the backtester's Approach-3 series: warm and cold
  // Maronna series agree within the tolerance contract, and Pearson series
  // are identical.
  constexpr std::size_t symbols = 4;
  const auto stream = golden_stream(symbols, 260, 19);
  // Convert the return stream into a fake BAM price matrix: prices with the
  // given log-returns.
  std::vector<std::vector<double>> bam(symbols,
                                       std::vector<double>(stream.size() + 1, 0.0));
  for (std::size_t i = 0; i < symbols; ++i) {
    bam[i][0] = 100.0;
    for (std::size_t s = 0; s < stream.size(); ++s)
      bam[i][s + 1] = bam[i][s] * std::exp(stream[s][i]);
  }

  // Window 40 keeps the 15-step outlier burst at 37.5% contamination —
  // below the bivariate M-estimator's breakdown point, where the fixed
  // point is unique. (At >=50% contamination warm and cold starts can land
  // in different, equally valid fixed points; see DESIGN.md.)
  stats::MaronnaConfig tight;
  tight.tolerance = 1e-12;
  tight.max_iterations = 2000;
  const auto cold = core::compute_market_corr_series(bam, 40, true, tight,
                                                     /*warm_maronna=*/false);
  const auto warm = core::compute_market_corr_series(bam, 40, true, tight,
                                                     /*warm_maronna=*/true);
  ASSERT_EQ(cold.maronna.size(), warm.maronna.size());
  for (std::size_t k = 0; k < cold.maronna.size(); ++k) {
    for (std::size_t s = 0; s < cold.maronna[k].size(); ++s) {
      ASSERT_NEAR(warm.maronna[k][s], cold.maronna[k][s], 1e-8)
          << "pair " << k << " step " << s;
      ASSERT_DOUBLE_EQ(warm.pearson[k][s], cold.pearson[k][s]);
    }
  }
}

TEST(ParallelEngine, WarmStartMatchesSerialAcrossRankCounts) {
  // Warm state is per pair and the shards are deterministic, so the parallel
  // engine must produce identical matrices under any rank count.
  constexpr std::size_t symbols = 6;
  CorrEngineConfig cfg;
  cfg.type = Ctype::maronna;
  cfg.window = 15;
  cfg.warm_start = true;
  const auto stream = golden_stream(symbols, 60, 23);

  CorrelationCalculator serial(cfg, symbols);
  SymMatrix expected;
  for (const auto& r : stream) {
    serial.push(r);
    if (serial.ready()) expected = serial.matrix();
  }

  for (int ranks : {1, 3}) {
    obs::Registry registry;
    mpi::Environment::run(ranks, [&](mpi::Comm& comm) {
      ParallelCorrelationEngine engine(comm, cfg, symbols, &registry);
      SymMatrix last;
      for (const auto& r : stream) last = engine.step(r);
      ASSERT_EQ(last.size(), symbols);
      EXPECT_EQ(SymMatrix::max_abs_diff(last, expected), 0.0);
    });
#if MM_OBS_ENABLED
    // Step-phase timings land in the obs histograms: one compute sample per
    // rank per ready step.
    const auto snap = registry.snapshot();
    const auto* compute = snap.find("corr.step.compute_ns");
    ASSERT_NE(compute, nullptr);
    EXPECT_GT(compute->count, 0u);
#endif
  }
}

}  // namespace
}  // namespace mm::stats
