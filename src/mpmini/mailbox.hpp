// Per-rank mailbox implementing MPI envelope matching.
//
// A mailbox holds messages delivered to one rank and the rank's posted
// (pending) receives. Matching rules follow MPI:
//   * a receive posted with (comm, source, tag) matches a message with the
//     same comm, and source/tag equal or wildcard (any_source / any_tag);
//   * among queued messages, the earliest-arrived match wins, which together
//     with locked FIFO delivery preserves per-(source, comm) non-overtaking;
//   * among posted receives, the earliest-posted match wins.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>

#include "mpmini/message.hpp"

namespace mm::mpi {

// Shared completion state for one posted receive. Guarded by the owning
// mailbox's mutex; waiters block on the mailbox's condition variable.
struct RecvTicket {
  std::uint64_t comm_id = 0;
  int source = any_source;
  int tag = any_tag;
  bool done = false;
  Message message;
};

class Mailbox {
 public:
  // Deliver a message to this rank. Called from the sending thread; wakes any
  // matching posted receive, otherwise queues the message.
  void deliver(Message msg);

  // Post a receive. If a queued message already matches, the ticket completes
  // immediately; otherwise it completes on a future deliver().
  std::shared_ptr<RecvTicket> post_recv(std::uint64_t comm_id, int source, int tag);

  // Block until the ticket completes, then return its message.
  Message wait(const std::shared_ptr<RecvTicket>& ticket);

  // Non-blocking completion check.
  bool test(const std::shared_ptr<RecvTicket>& ticket);

  // Non-blocking probe: reports the envelope of the earliest matching queued
  // message without consuming it.
  bool iprobe(std::uint64_t comm_id, int source, int tag, RecvStatus* status);

  // Blocking probe.
  RecvStatus probe(std::uint64_t comm_id, int source, int tag);

  // Number of queued (undelivered-to-receiver) messages; for tests/stats.
  std::size_t queued() const;

 private:
  static bool matches(const RecvTicket& ticket, const Message& msg) {
    return ticket.comm_id == msg.comm_id &&
           (ticket.source == any_source || ticket.source == msg.source) &&
           (ticket.tag == any_tag || ticket.tag == msg.tag);
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::list<std::shared_ptr<RecvTicket>> pending_;
};

}  // namespace mm::mpi
