# Empty compiler generated dependencies file for test_rank_corr.
# This may be replaced when dependencies are built.
