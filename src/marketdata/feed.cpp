#include "marketdata/feed.hpp"

#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace mm::md {

MergingFeed::MergingFeed(std::vector<std::unique_ptr<QuoteFeed>> feeds)
    : feeds_(std::move(feeds)) {
  heads_.reserve(feeds_.size());
  for (auto& feed : feeds_) {
    MM_ASSERT(feed != nullptr);
    heads_.push_back(feed->next());
  }
}

std::optional<Quote> MergingFeed::next() {
  std::size_t best = heads_.size();
  for (std::size_t i = 0; i < heads_.size(); ++i) {
    if (!heads_[i]) continue;
    if (best == heads_.size() || heads_[i]->ts_ms < heads_[best]->ts_ms) best = i;
  }
  if (best == heads_.size()) return std::nullopt;
  Quote q = *heads_[best];
  heads_[best] = feeds_[best]->next();
  return q;
}

ThrottledFeed::ThrottledFeed(std::unique_ptr<QuoteFeed> inner, double speedup)
    : inner_(std::move(inner)), speedup_(speedup) {
  MM_ASSERT(inner_ != nullptr);
  MM_ASSERT_MSG(speedup_ > 0.0, "speedup must be positive");
}

std::optional<Quote> ThrottledFeed::next() {
  auto q = inner_->next();
  if (!q) return std::nullopt;

  using clock = std::chrono::steady_clock;
  const auto now_us = [&] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               clock::now().time_since_epoch())
        .count();
  };

  if (!started_) {
    started_ = true;
    first_ts_ = q->ts_ms;
    start_wall_us_ = now_us();
    return q;
  }

  const double stream_elapsed_us = static_cast<double>(q->ts_ms - first_ts_) * 1000.0;
  const auto due_us =
      start_wall_us_ + static_cast<std::int64_t>(stream_elapsed_us / speedup_);
  const auto wait = due_us - now_us();
  if (wait > 0) std::this_thread::sleep_for(std::chrono::microseconds(wait));
  return q;
}

}  // namespace mm::md
