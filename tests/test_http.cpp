// MetricsServer request plumbing: method + body dispatch, prefix routes,
// and the bounded-parse error ladder (400 / 404 / 405 / 413 / 431).
//
// Everything here drives the real listener over loopback sockets — no mocks;
// each test binds an ephemeral port and speaks raw HTTP/1.1.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "obs/http.hpp"

namespace mm::obs {
namespace {

// One raw HTTP exchange against 127.0.0.1:port; returns the full response.
std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  ::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  ::shutdown(fd, SHUT_WR);  // half-close: the server sees EOF after the bytes
  std::string response;
  char buf[4096];
  ssize_t got;
  while ((got = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    response.append(buf, static_cast<std::size_t>(got));
  ::close(fd);
  return response;
}

std::string request_with_body(const std::string& method, const std::string& path,
                              const std::string& body) {
  return method + " " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string{} : response.substr(split + 4);
}

int status_of(const std::string& response) {
  if (response.rfind("HTTP/1.1 ", 0) != 0 || response.size() < 12) return -1;
  return std::stoi(response.substr(9, 3));
}

class HttpServerTest : public ::testing::Test {
 protected:
  void TearDown() override { server.stop(); }
  MetricsServer server;
};

TEST_F(HttpServerTest, DispatchesMethodTargetAndBodyToHandlers) {
  server.route(
      "/echo",
      [](const HttpRequest& req) {
        return HttpResponse{200, "text/plain",
                            req.method + " " + req.target + "|" + req.body};
      },
      {"POST", "PUT"});
  ASSERT_TRUE(server.start(0).has_value());

  const std::string post =
      http_exchange(server.port(), request_with_body("POST", "/echo", "hello body"));
  EXPECT_EQ(status_of(post), 200);
  EXPECT_EQ(body_of(post), "POST /echo|hello body");

  const std::string put =
      http_exchange(server.port(), request_with_body("PUT", "/echo", ""));
  EXPECT_EQ(status_of(put), 200);
  EXPECT_EQ(body_of(put), "PUT /echo|");
}

TEST_F(HttpServerTest, UnsupportedMethodOnRegisteredRouteGets405WithAllow) {
  server.route(
      "/jobs", [](const HttpRequest&) { return HttpResponse{}; }, {"POST", "GET"});
  ASSERT_TRUE(server.start(0).has_value());

  const std::string resp = http_exchange(
      server.port(), "DELETE /jobs HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
  EXPECT_EQ(status_of(resp), 405);
  EXPECT_NE(resp.find("Allow: POST, GET"), std::string::npos);
}

TEST_F(HttpServerTest, PrefixRoutesServePathFamiliesAndExactRoutesWin) {
  server.route_prefix(
      "/jobs/",
      [](const HttpRequest& req) {
        return HttpResponse{200, "text/plain", "prefix:" + req.target};
      },
      {"GET", "DELETE"});
  server.route_prefix("/jobs/special/", [](const HttpRequest& req) {
    return HttpResponse{200, "text/plain", "special:" + req.target};
  });
  server.route("/jobs/exact", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "exact"};
  });
  ASSERT_TRUE(server.start(0).has_value());

  EXPECT_EQ(body_of(http_exchange(
                server.port(), "GET /jobs/abc123 HTTP/1.1\r\nHost: x\r\n\r\n")),
            "prefix:/jobs/abc123");
  // The longest matching prefix wins regardless of registration order.
  EXPECT_EQ(body_of(http_exchange(
                server.port(), "GET /jobs/special/9 HTTP/1.1\r\nHost: x\r\n\r\n")),
            "special:/jobs/special/9");
  EXPECT_EQ(body_of(http_exchange(
                server.port(), "GET /jobs/exact HTTP/1.1\r\nHost: x\r\n\r\n")),
            "exact");
  // DELETE is allowed on the prefix family.
  EXPECT_EQ(body_of(http_exchange(
                server.port(), "DELETE /jobs/abc123 HTTP/1.1\r\nHost: x\r\n\r\n")),
            "prefix:/jobs/abc123");
  // An unmatched path still 404s even with prefixes registered.
  EXPECT_EQ(status_of(http_exchange(server.port(),
                                    "GET /other HTTP/1.1\r\nHost: x\r\n\r\n")),
            404);
}

TEST_F(HttpServerTest, MalformedRequestsGet400) {
  server.route("/ok", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.start(0).has_value());

  // No spaces in the request line.
  EXPECT_EQ(status_of(http_exchange(server.port(), "garbage\r\n\r\n")), 400);
  // Target does not start with '/'.
  EXPECT_EQ(status_of(http_exchange(server.port(),
                                    "GET ok HTTP/1.1\r\nHost: x\r\n\r\n")),
            400);
  // Connection closed before the header terminator.
  EXPECT_EQ(status_of(http_exchange(server.port(), "GET /ok HTTP/1.1\r\n")), 400);
  // Unparseable Content-Length.
  EXPECT_EQ(
      status_of(http_exchange(
          server.port(),
          "POST /ok HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n")),
      400);
  // Declared body longer than what arrives before EOF.
  EXPECT_EQ(
      status_of(http_exchange(
          server.port(),
          "POST /ok HTTP/1.1\r\nHost: x\r\nContent-Length: 50\r\n\r\nshort")),
      400);
}

TEST_F(HttpServerTest, OversizedHeadersGet431) {
  server.route("/ok", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.start(0).has_value());

  std::string request = "GET /ok HTTP/1.1\r\nX-Pad: ";
  request.append(MetricsServer::kMaxHeaderBytes, 'a');  // blows the 8 KiB cap
  request += "\r\n\r\n";
  EXPECT_EQ(status_of(http_exchange(server.port(), request)), 431);
}

TEST_F(HttpServerTest, OversizedBodyGets413WithoutReadingIt) {
  server.route(
      "/ingest", [](const HttpRequest&) { return HttpResponse{}; }, {"POST"});
  ASSERT_TRUE(server.start(0).has_value());

  // The declared length alone triggers the rejection; no body bytes are sent,
  // so a server that tried to read them first would stall until its timeout.
  const std::string resp = http_exchange(
      server.port(),
      "POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Length: " +
          std::to_string(MetricsServer::kMaxBodyBytes + 1) + "\r\n\r\n");
  EXPECT_EQ(status_of(resp), 413);
}

TEST_F(HttpServerTest, BodyAtTheCapIsAccepted) {
  std::size_t seen = 0;
  server.route(
      "/ingest",
      [&seen](const HttpRequest& req) {
        seen = req.body.size();
        return HttpResponse{};
      },
      {"POST"});
  ASSERT_TRUE(server.start(0).has_value());

  const std::string body(MetricsServer::kMaxBodyBytes, 'b');
  EXPECT_EQ(status_of(http_exchange(server.port(),
                                    request_with_body("POST", "/ingest", body))),
            200);
  EXPECT_EQ(seen, MetricsServer::kMaxBodyBytes);
}

TEST_F(HttpServerTest, ZeroArgHandlersStillRegister) {
  server.route("/simple", [] { return HttpResponse{200, "text/plain", "simple\n"}; });
  ASSERT_TRUE(server.start(0).has_value());
  const std::string resp =
      http_exchange(server.port(), "GET /simple HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(status_of(resp), 200);
  EXPECT_EQ(body_of(resp), "simple\n");
}

TEST_F(HttpServerTest, ReRegisteringAPathReplacesTheRoute) {
  server.route("/v", [] { return HttpResponse{200, "text/plain", "one"}; });
  server.route(
      "/v", [] { return HttpResponse{200, "text/plain", "two"}; }, {"GET", "POST"});
  ASSERT_TRUE(server.start(0).has_value());
  EXPECT_EQ(body_of(http_exchange(server.port(),
                                  "GET /v HTTP/1.1\r\nHost: x\r\n\r\n")),
            "two");
  EXPECT_EQ(status_of(http_exchange(server.port(),
                                    request_with_body("POST", "/v", ""))),
            200);
}

}  // namespace
}  // namespace mm::obs
