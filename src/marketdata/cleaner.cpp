#include "marketdata/cleaner.hpp"

#include <algorithm>
#include <cmath>

namespace mm::md {
namespace {

double median_of(std::vector<double> v) {
  const auto mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    const auto lower =
        *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (lower + m);
  }
  return m;
}

}  // namespace

bool SymbolFilter::accept(const Quote& quote) {
  const double x = quote.bam();
  if (seen_ < config_.warmup_ticks) {
    // Warmup: accept unconditionally, and seed the live-phase estimators
    // from the window's median (center) and MAD (spread). Robust seeding
    // means one fat-fingered tick in the warmup window neither drags the
    // mean toward itself nor inflates the deviation into a band so wide the
    // filter is blind for the rest of the session.
    warmup_.push_back(x);
    const double med = median_of(warmup_);
    std::vector<double> abs_dev(warmup_.size());
    for (std::size_t i = 0; i < warmup_.size(); ++i)
      abs_dev[i] = std::abs(warmup_[i] - med);
    mean_ = med;
    dev_ = std::max(median_of(std::move(abs_dev)), med * config_.min_dev_frac);
    ++seen_;
    if (seen_ == config_.warmup_ticks) {
      warmup_.clear();
      warmup_.shrink_to_fit();
    }
    return true;
  }

  const double floor_dev = mean_ * config_.min_dev_frac;
  const double band = config_.band_k * std::max(dev_, floor_dev);
  const double err = x - mean_;
  if (std::abs(err) > band) {
    if (++consecutive_rejects_ >= config_.level_shift_ticks) {
      // Persistent disagreement: the market really moved. Re-seed here.
      mean_ = x;
      dev_ = x * config_.min_dev_frac;
      consecutive_rejects_ = 0;
      ++seen_;
      return true;
    }
    return false;
  }

  consecutive_rejects_ = 0;
  mean_ += config_.mean_gain * err;
  dev_ += config_.dev_gain * (std::abs(err) - dev_);
  ++seen_;
  return true;
}

QuoteCleaner::QuoteCleaner(std::size_t symbol_count, const CleanerConfig& config) {
  filters_.reserve(symbol_count);
  for (std::size_t i = 0; i < symbol_count; ++i) filters_.emplace_back(config);
}

bool QuoteCleaner::accept(const Quote& quote) {
  MM_ASSERT_MSG(quote.symbol < filters_.size(), "cleaner: unknown symbol id");
  if (!quote.plausible()) {
    ++dropped_structural_;
    return false;
  }
  if (!filters_[quote.symbol].accept(quote)) {
    ++dropped_band_;
    return false;
  }
  ++accepted_;
  return true;
}

std::vector<Quote> QuoteCleaner::clean(const std::vector<Quote>& quotes) {
  std::vector<Quote> out;
  out.reserve(quotes.size());
  for (const auto& q : quotes)
    if (accept(q)) out.push_back(q);
  return out;
}

}  // namespace mm::md
