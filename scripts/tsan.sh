#!/usr/bin/env bash
# Configure the ThreadSanitizer build tree and run the `tsan`-labeled test
# subset (mpmini transport, dagflow graph execution, collectives, the engine
# fault matrix, and the mm::obs sharded metrics). Usage: scripts/tsan.sh
# [build-dir] (default: build-tsan). Extra safety: TSAN_OPTIONS makes any
# race a hard failure.
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-tsan"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Tsan
cmake --build "$build_dir" -j --target \
  test_mpmini test_transport test_collectives test_dagflow test_faults test_obs
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ctest --test-dir "$build_dir" -L tsan --output-on-failure
