#include "core/distance.hpp"

#include <algorithm>
#include <cmath>

namespace mm::core {

Status DistanceParams::validate() const {
  if (formation_intervals < 2)
    return Error(Errc::invalid_argument, "formation needs >= 2 intervals");
  if (open_threshold <= 0.0)
    return Error(Errc::invalid_argument, "open_threshold must be positive");
  if (close_threshold < 0.0 || close_threshold >= open_threshold)
    return Error(Errc::invalid_argument,
                 "close_threshold must be in [0, open_threshold)");
  if (top_pairs < 1) return Error(Errc::invalid_argument, "top_pairs must be >= 1");
  if (max_holding < 0) return Error(Errc::invalid_argument, "max_holding must be >= 0");
  if (no_entry_before_close < 0)
    return Error(Errc::invalid_argument, "ST must be >= 0");
  return {};
}

FormationResult distance_formation(const std::vector<std::vector<double>>& bam,
                                   const DistanceParams& params) {
  MM_ASSERT(params.validate().has_value());
  const std::size_t n = bam.size();
  MM_ASSERT_MSG(n >= 2, "need at least two symbols");
  const auto f = static_cast<std::size_t>(params.formation_intervals);
  MM_ASSERT_MSG(f <= bam[0].size(), "formation window exceeds the day");

  FormationResult out;
  out.anchors.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    MM_ASSERT_MSG(bam[i][0] > 0.0, "non-positive anchor price");
    out.anchors[i] = bam[i][0];
  }

  std::vector<PairProfile> profiles;
  const auto pairs = stats::all_pairs(n);
  profiles.reserve(pairs.size());
  for (const auto& pair : pairs) {
    PairProfile profile;
    profile.pair = pair;
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t t = 0; t < f; ++t) {
      const double spread = bam[pair.i][t] / out.anchors[pair.i] -
                            bam[pair.j][t] / out.anchors[pair.j];
      profile.ssd += spread * spread;
      sum += spread;
      sum_sq += spread * spread;
    }
    const auto count = static_cast<double>(f);
    profile.spread_mean = sum / count;
    const double var = sum_sq / count - profile.spread_mean * profile.spread_mean;
    profile.spread_std = var > 0.0 ? std::sqrt(var) : 0.0;
    profiles.push_back(profile);
  }

  std::stable_sort(profiles.begin(), profiles.end(),
                   [](const PairProfile& a, const PairProfile& b) {
                     return a.ssd < b.ssd;
                   });
  const std::size_t keep = std::min(params.top_pairs, profiles.size());
  out.selected.assign(profiles.begin(),
                      profiles.begin() + static_cast<std::ptrdiff_t>(keep));
  // Pairs with a degenerate (zero-variance) formation spread cannot signal.
  out.selected.erase(std::remove_if(out.selected.begin(), out.selected.end(),
                                    [](const PairProfile& p) {
                                      return p.spread_std <= 0.0;
                                    }),
                     out.selected.end());
  return out;
}

std::vector<Trade> run_distance_pair_day(const DistanceParams& params,
                                         const PairProfile& profile,
                                         const std::vector<double>& prices_i,
                                         const std::vector<double>& prices_j,
                                         double anchor_i, double anchor_j) {
  MM_ASSERT(params.validate().has_value());
  MM_ASSERT(prices_i.size() == prices_j.size());
  MM_ASSERT(profile.spread_std > 0.0);
  const auto smax = static_cast<std::int64_t>(prices_i.size());

  std::vector<Trade> trades;
  bool open = false;
  std::int64_t entry_s = 0;
  double entry_i = 0.0, entry_j = 0.0;
  double ni = 0.0, nj = 0.0;
  double entry_sign = 0.0;  // sign of z at entry; close when z re-crosses

  const auto close_position = [&](std::int64_t s, ExitReason reason) {
    Trade t;
    t.entry_interval = entry_s;
    t.exit_interval = s;
    t.entry_price_i = entry_i;
    t.entry_price_j = entry_j;
    t.exit_price_i = prices_i[static_cast<std::size_t>(s)];
    t.exit_price_j = prices_j[static_cast<std::size_t>(s)];
    t.shares_i = ni;
    t.shares_j = nj;
    t.gross_basis = std::abs(ni) * entry_i + std::abs(nj) * entry_j;
    t.pnl = ni * (t.exit_price_i - entry_i) + nj * (t.exit_price_j - entry_j);
    t.trade_return = t.pnl / t.gross_basis;
    t.exit_reason = reason;
    trades.push_back(t);
    open = false;
  };

  for (std::int64_t s = params.formation_intervals; s < smax; ++s) {
    const auto si = static_cast<std::size_t>(s);
    const double spread =
        prices_i[si] / anchor_i - prices_j[si] / anchor_j;
    const double z = (spread - profile.spread_mean) / profile.spread_std;

    if (open) {
      // Gatev's convergence rule: close when the spread crosses back through
      // the formation mean (within close_threshold sigmas of it).
      if (entry_sign * z <= params.close_threshold) {
        close_position(s, ExitReason::retracement);  // convergence
      } else if (params.max_holding > 0 && s - entry_s >= params.max_holding) {
        close_position(s, ExitReason::max_holding);
      }
      continue;
    }

    if (std::abs(z) <= params.open_threshold) continue;
    if (s >= smax - params.no_entry_before_close) continue;

    // Diverged: short the rich leg (positive z means leg i is rich).
    const bool long_i = z < 0.0;
    const auto shares = size_position(prices_i[si], prices_j[si], long_i);
    open = true;
    entry_s = s;
    entry_i = prices_i[si];
    entry_j = prices_j[si];
    ni = shares.shares_i;
    nj = shares.shares_j;
    entry_sign = z > 0.0 ? 1.0 : -1.0;
  }

  if (open) close_position(smax - 1, ExitReason::end_of_day);
  return trades;
}

}  // namespace mm::core
