# Empty compiler generated dependencies file for repro_table5.
# This may be replaced when dependencies are built.
