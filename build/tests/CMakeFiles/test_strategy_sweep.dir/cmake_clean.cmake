file(REMOVE_RECURSE
  "CMakeFiles/test_strategy_sweep.dir/test_strategy_sweep.cpp.o"
  "CMakeFiles/test_strategy_sweep.dir/test_strategy_sweep.cpp.o.d"
  "test_strategy_sweep"
  "test_strategy_sweep.pdb"
  "test_strategy_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strategy_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
