// Thin RAII wrappers over POSIX TCP/UDP sockets for the wire layer and the
// mpmini socket transport. Loopback/LAN plumbing, not a general networking
// library: blocking I/O, IPv4, explicit Expected<> errors instead of errno
// spelunking at every call site.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace mm::wire {

// Owning file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();
  // Relinquish ownership (the caller becomes responsible for the fd).
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

// --- TCP -----------------------------------------------------------------

// Bind + listen on host:port (port 0 picks an ephemeral port, reported via
// `bound_port` when non-null). SO_REUSEADDR is set.
Expected<Socket> tcp_listen(const std::string& host, std::uint16_t port,
                            std::uint16_t* bound_port = nullptr);

// Accept one connection. A zero timeout blocks indefinitely; otherwise
// Errc::timeout when nothing arrived in time.
Expected<Socket> tcp_accept(const Socket& listener,
                            std::chrono::milliseconds timeout =
                                std::chrono::milliseconds{0});

// Connect to host:port, retrying (connection-refused, not-yet-listening) for
// up to `retry_for` — rendezvous peers race their listeners up.
Expected<Socket> tcp_connect(const std::string& host, std::uint16_t port,
                             std::chrono::milliseconds retry_for =
                                 std::chrono::milliseconds{0});

void set_nodelay(const Socket& sock);

// Write exactly `size` bytes (handles short writes; SIGPIPE suppressed).
Status send_all(const Socket& sock, const void* data, std::size_t size);

// Read exactly `size` bytes; Errc::io_error on EOF/reset mid-read.
Status recv_exact(const Socket& sock, void* data, std::size_t size);

// Read whatever is available, up to `cap`. 0 means orderly EOF.
Expected<std::size_t> recv_some(const Socket& sock, void* data, std::size_t cap);

// --- UDP -----------------------------------------------------------------

Expected<Socket> udp_bind(const std::string& host, std::uint16_t port,
                          std::uint16_t* bound_port = nullptr);

// Connected UDP socket for sends to a fixed destination.
Expected<Socket> udp_connect(const std::string& host, std::uint16_t port);

Status udp_send(const Socket& sock, const void* data, std::size_t size);

// Receive one datagram (up to `cap` bytes). A zero timeout blocks; otherwise
// Errc::timeout when no datagram arrived in time.
Expected<std::size_t> udp_recv(const Socket& sock, void* data, std::size_t cap,
                               std::chrono::milliseconds timeout =
                                   std::chrono::milliseconds{0});

}  // namespace mm::wire
