// Thread-safe leveled logging.
//
// The engine runs many ranks concurrently; each log line is emitted atomically
// with a timestamp and the calling thread's rank label (set via
// set_thread_label) so interleaved component output stays readable.
#pragma once

#include <sstream>
#include <string>

namespace mm::log {

enum class Level { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

// Global minimum level; messages below it are dropped cheaply.
void set_level(Level level);
Level level();

// Label attached to every message from the current thread (e.g. "rank 3").
void set_thread_label(std::string label);

// Emit one line. Prefer the MM_LOG_* macros, which skip formatting when the
// level is disabled.
void write(Level level, const std::string& message);

const char* to_string(Level level);

}  // namespace mm::log

#define MM_LOG_AT(lvl, expr)                                \
  do {                                                      \
    if (static_cast<int>(lvl) >= static_cast<int>(::mm::log::level())) { \
      std::ostringstream mm_log_os;                         \
      mm_log_os << expr;                                    \
      ::mm::log::write(lvl, mm_log_os.str());               \
    }                                                       \
  } while (0)

#define MM_LOG_TRACE(expr) MM_LOG_AT(::mm::log::Level::trace, expr)
#define MM_LOG_DEBUG(expr) MM_LOG_AT(::mm::log::Level::debug, expr)
#define MM_LOG_INFO(expr) MM_LOG_AT(::mm::log::Level::info, expr)
#define MM_LOG_WARN(expr) MM_LOG_AT(::mm::log::Level::warn, expr)
#define MM_LOG_ERROR(expr) MM_LOG_AT(::mm::log::Level::error, expr)
