# Empty dependencies file for test_strategy_sweep.
# This may be replaced when dependencies are built.
