// LivePlane — the monitoring plane's front door, owned by one engine run.
//
// Composes the pieces the rest of mm::obs provides into the lifecycle the
// engine needs:
//
//   begin_run(ranks)   create the heartbeat board, start the monitor and the
//                      periodic snapshot scheduler, bring up the /metrics +
//                      /healthz loopback HTTP listener (port 0 = ephemeral;
//                      the bound port is published through `port_out`)
//   board()            handed to mpmini so every rank thread arms a pulse
//   end_run(crashes)   stop the listener, settle the monitor (guaranteeing a
//                      silent rank is classified before anyone reads health),
//                      write the metrics file-dump fallback, and — if anything
//                      died — dump a flight-recorder bundle
//
// All HTTP handlers read through thread-safe paths only (registry snapshot,
// monitor health copies, snapshot-ring copies), so the listener needs no
// extra locking against the run.
//
// With MM_OBS_ENABLED=0 LivePlane is a field-free no-op: begin_run does
// nothing, board() is null, end_run returns an empty report. LiveConfig and
// LiveReport stay real in both modes so engine code compiles unchanged.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/heartbeat.hpp"
#include "obs/http.hpp"
#include "obs/registry.hpp"
#include "obs/snapshots.hpp"
#include "obs/trace.hpp"

namespace mm::obs {

struct LiveConfig {
  bool enabled = false;

  // Heartbeats: publish cadence for idle ranks and the monitor thresholds
  // (multiples of the interval of silence before suspect/down).
  std::chrono::nanoseconds heartbeat_interval{std::chrono::milliseconds{100}};
  double suspect_after = 1.0;
  double dead_after = 1.5;

  // Periodic registry snapshots feeding live rates and the flight recorder.
  std::chrono::nanoseconds snapshot_period{std::chrono::milliseconds{250}};
  std::size_t snapshot_ring = 32;
  std::string step_histogram = "engine.strategy.step_ns";

  // HTTP exposition: port to bind on 127.0.0.1 (0 = ephemeral, negative = no
  // listener). The actually-bound port is stored to *port_out (if non-null)
  // once the listener is up — the mid-run hand-off for ephemeral ports.
  int http_port = -1;
  std::atomic<std::uint16_t>* port_out = nullptr;

  // File-dump fallback: final Prometheus page written here at end_run when
  // non-empty (for hosts where a listener is unwanted).
  std::string metrics_dump_path;

  // Flight-recorder bundle parent directory and snapshot depth.
  std::string flight_dir = "flight";
  std::size_t flight_frames = 8;
};

// What the run learned from the live plane, returned to callers.
struct LiveReport {
  bool enabled = false;
  std::vector<RankHealth> health;        // final per-rank liveness
  std::vector<std::string> rank_nodes;   // rank -> node name
  std::vector<CrashEntry> crashes;       // merged caller + heartbeat deaths
  std::string flight_bundle;             // bundle dir, empty if none written
  std::uint16_t http_port = 0;           // bound port, 0 if no listener
};

#if MM_OBS_ENABLED

class LivePlane {
 public:
  LivePlane(LiveConfig config, Registry& registry, const TraceSink* trace);
  ~LivePlane();

  // Start monitoring `ranks` rank threads; `rank_names` maps rank -> dagflow
  // node name (used for /metrics labels and crash reports). Idempotent per
  // plane: a second call before end_run is ignored.
  void begin_run(int ranks, std::vector<std::string> rank_names);

  // Null until begin_run (or when disabled); mpmini arms one pulse per rank
  // thread against this board.
  HeartbeatBoard* board() { return board_.get(); }
  std::chrono::nanoseconds heartbeat_interval() const {
    return config_.heartbeat_interval;
  }

  // Tear down (listener first, then monitor settle) and merge
  // `caller_crashes` (deadline timeouts, node exceptions) with ranks the
  // heartbeat monitor declared down. Safe to call when begin_run never ran.
  LiveReport end_run(std::vector<CrashEntry> caller_crashes);

  // Full Prometheus page: registry + heartbeat health + windowed rates.
  std::string render_metrics() const;
  HttpResponse healthz() const;

  HeartbeatMonitor* monitor() { return monitor_.get(); }
  SnapshotScheduler* scheduler() { return scheduler_.get(); }
  std::uint16_t http_port() const { return server_ ? server_->port() : 0; }
  const LiveConfig& config() const { return config_; }

  LivePlane(const LivePlane&) = delete;
  LivePlane& operator=(const LivePlane&) = delete;

 private:
  LiveConfig config_;
  Registry& registry_;
  const TraceSink* trace_ = nullptr;
  std::vector<std::string> rank_nodes_;
  bool active_ = false;

  std::unique_ptr<HeartbeatBoard> board_;
  std::unique_ptr<HeartbeatMonitor> monitor_;
  std::unique_ptr<SnapshotScheduler> scheduler_;
  std::unique_ptr<MetricsServer> server_;  // brought up last, torn down first
};

#else  // !MM_OBS_ENABLED

class LivePlane {
 public:
  LivePlane(LiveConfig config, Registry&, const TraceSink*) : config_(std::move(config)) {}
  void begin_run(int, std::vector<std::string>) {}
  HeartbeatBoard* board() { return nullptr; }
  std::chrono::nanoseconds heartbeat_interval() const {
    return config_.heartbeat_interval;
  }
  LiveReport end_run(std::vector<CrashEntry>) { return {}; }
  std::string render_metrics() const { return {}; }
  HttpResponse healthz() const { return {200, "text/plain; charset=utf-8", "ok\n"}; }
  HeartbeatMonitor* monitor() { return nullptr; }
  SnapshotScheduler* scheduler() { return nullptr; }
  std::uint16_t http_port() const { return 0; }
  const LiveConfig& config() const { return config_; }

 private:
  LiveConfig config_;
};

#endif  // MM_OBS_ENABLED

}  // namespace mm::obs
