// Correlation measures: the paper's three treatments (Table I's Ctype).
//
//   Pearson  — the classical product-moment estimator; fast, outlier-
//              sensitive.
//   Maronna  — robust bivariate M-estimator (maronna.hpp); expensive,
//              outlier-resistant.
//   Combined — the paper uses a third, undefined "Combined" measure whose
//              reported behaviour is *more conservative* (lower dispersion of
//              returns, slightly better win–loss, lower mean return). We
//              implement the natural conservative combination: Pearson and
//              Maronna must agree in sign, and the smaller magnitude is used
//              (0 on sign disagreement). A pair only trades when both the
//              classical and the robust view call it correlated — documented
//              as a substitution in DESIGN.md.
#pragma once

#include <string>

#include "common/error.hpp"
#include "stats/maronna.hpp"
#include "stats/pearson.hpp"

namespace mm::stats {

enum class Ctype { pearson = 0, maronna = 1, combined = 2 };

inline const char* to_string(Ctype c) {
  switch (c) {
    case Ctype::pearson: return "Pearson";
    case Ctype::maronna: return "Maronna";
    case Ctype::combined: return "Combined";
  }
  return "?";
}

Expected<Ctype> parse_ctype(const std::string& name);

// Conservative combination of the two estimates (see header comment).
double combine(double pearson_r, double maronna_r);

// Batch dispatch on Ctype over a pair of equal-length samples.
double correlation(Ctype type, const double* x, const double* y, std::size_t n,
                   const MaronnaConfig& maronna_config = {});

inline constexpr Ctype all_ctypes[] = {Ctype::pearson, Ctype::maronna, Ctype::combined};

}  // namespace mm::stats
