// Tests for the lock-free transport layer under mpmini: the SPSC lane rings,
// the pooled envelope store, the spin-then-park wait strategy, and the
// matching/fault contracts that must survive the lock-free rewrite — probe
// reservation under concurrent wildcard receives, tight-deadline receives
// under load, delay injection outside the mailbox critical section, and the
// zero-allocation steady state.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "mpmini/comm.hpp"
#include "mpmini/environment.hpp"
#include "mpmini/mailbox.hpp"
#include "mpmini/pool.hpp"
#include "mpmini/ring.hpp"
#include "mpmini/wait.hpp"

// Global allocation counter for the zero-alloc steady-state tests. Replacing
// the global operator new is binary-wide, which is why these tests live in
// their own executable.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

// GCC pairs these replacements against its builtin knowledge of new/delete
// and flags the malloc/free plumbing; the pairing here is consistent.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mm::mpi {
namespace {

// --- SPSC ring ---------------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(256).capacity(), 256u);
  EXPECT_EQ(SpscRing<int>(300).capacity(), 512u);
}

TEST(SpscRing, RoundUpPow2SaturatesInsteadOfLooping) {
  // Requests above the top bit used to shift p to zero and spin forever.
  constexpr std::size_t top = std::size_t{1} << (sizeof(std::size_t) * 8 - 1);
  EXPECT_EQ(round_up_pow2(top), top);
  EXPECT_EQ(round_up_pow2(top + 1), top);
  EXPECT_EQ(round_up_pow2(~std::size_t{0}), top);
}

TEST(SpscRing, PushPopAcrossManyWraps) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  // Keep two in flight while cycling far past the capacity, so head and tail
  // wrap the index mask many times.
  ASSERT_TRUE(ring.try_push(0));
  ASSERT_TRUE(ring.try_push(1));
  for (int i = 2; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(int(i)));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i - 2);
  }
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 998);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 999);
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, RejectsWhenFullAcceptsAfterDrain) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(int(i)));
  EXPECT_FALSE(ring.try_push(99));
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));   // one slot freed
  EXPECT_FALSE(ring.try_push(5));  // and only one
}

TEST(SpscRing, TwoThreadStreamKeepsFifo) {
  // One producer, one consumer, no external synchronization: the ring's own
  // acquire/release protocol must carry both the values and their order.
  // (TSan build exercises this hard.)
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t n = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < n;) {
      if (ring.try_push(std::uint64_t(i)))
        ++i;
      else
        std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < n) {
    std::uint64_t v = 0;
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// --- envelope pool -----------------------------------------------------------

TEST(EnvelopePool, SteadyStateChurnStaysInOneBlock) {
  EnvelopePool pool(8);
  // Churn far more envelopes than the first block holds, but never more than
  // 8 live at once: the free list must recycle instead of growing.
  std::vector<Envelope*> live;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 8; ++i) live.push_back(pool.acquire());
    for (Envelope* e : live) pool.release(e);
    live.clear();
  }
  EXPECT_EQ(pool.blocks(), 1u);
}

TEST(EnvelopePool, GrowsGeometricallyUnderBacklog) {
  EnvelopePool pool(8);
  std::vector<Envelope*> live;
  for (int i = 0; i < 8 + 16 + 32; ++i) live.push_back(pool.acquire());
  EXPECT_EQ(pool.blocks(), 3u);  // 8, then 16, then 32
  for (Envelope* e : live) pool.release(e);
  for (int i = 0; i < 56; ++i) live.push_back(pool.acquire());
  EXPECT_EQ(pool.blocks(), 3u);  // backlog of the same depth re-uses the arena
}

// --- ring transport semantics ------------------------------------------------

TEST(RingTransport, BigBurstOverflowsToLockedPathWithoutLossOrReorder) {
  // 5000 messages blow through the default 256-slot lane ring, forcing the
  // sender onto the deliver() fallback mid-burst. Per-source FIFO must hold
  // across the seam (deliver drains the lane backlog before queueing).
  Environment::run(2, [](Comm& comm) {
    constexpr int n = 5000;
    if (comm.rank() == 0) {
      for (int i = 0; i < n; ++i) comm.send_value<int>(1, 1, i);
    } else {
      for (int i = 0; i < n; ++i) ASSERT_EQ(comm.recv_value<int>(0, 1), i);
    }
  });
}

TEST(RingTransport, LockedModeStillWorksEndToEnd) {
  // The legacy locked transport stays alive as the bench baseline and the
  // overflow route; a world constructed in locked mode must behave
  // identically at the API level.
  World world(2, TransportMode::locked);
  ASSERT_EQ(world.transport(), TransportMode::locked);
  const std::uint64_t comm_id = world.allocate_comm_id();
  constexpr int n = 500;
  std::thread receiver([&] {
    Comm comm(&world, comm_id, 1, {0, 1});
    for (int i = 0; i < n; ++i) ASSERT_EQ(comm.recv_value<int>(0, 1), i);
  });
  Comm comm(&world, comm_id, 0, {0, 1});
  for (int i = 0; i < n; ++i) comm.send_value<int>(1, 1, i);
  receiver.join();
}

TEST(RingTransport, WaitForDrainsRingAtDeadlineEdge) {
  // A message sitting undrained in a lane ring must satisfy a wait_for whose
  // deadline has already passed: the deadline check happens only after a
  // drain, so "arrived but not yet absorbed" never turns into a timeout.
  Mailbox box;
  box.init_lanes(1);
  auto ticket = box.post_recv(1, any_source, any_tag);
  Message m;
  m.source = 0;
  m.tag = 4;
  m.comm_id = 1;
  m.payload = {7};
  Lane& lane = box.lane_for_sender(0);
  ASSERT_TRUE(lane.ring.try_push(std::move(m)));
  box.notify_ring_push();
  ASSERT_TRUE(box.wait_for(ticket, std::chrono::nanoseconds{0}));
  EXPECT_EQ(box.wait(ticket).payload.front(), 7);
}

// --- probe reservation vs. concurrent wildcard receives (ring path) ----------

TEST(ProbeRaceRing, ExactAccountingUnderConcurrentWildcardReceives) {
  // N producers feed one mailbox through their own SPSC lanes while M
  // consumer threads drain it concurrently — half with blocking wildcard
  // receives, half with probe-then-matched-receive. Every message must be
  // received exactly once, per-source sequence order must be monotone in the
  // global take order, and a probed message must never be stolen by a
  // wildcard receive on another thread. (This is the TSan stress for the
  // lock-free path: ring push/pop, eventcount park/wake, pooled envelopes.)
  constexpr int producers = 4;
  constexpr int per_producer = 2000;
  constexpr int total = producers * per_producer;
  constexpr std::uint64_t comm_id = 1;

  Mailbox box;
  box.init_lanes(producers);

  // seen[source * per_producer + seq] counts deliveries to consumers.
  auto seen = std::make_unique<std::atomic<int>[]>(total);
  for (int i = 0; i < total; ++i) seen[i].store(0);

  std::atomic<int> tickets{0};
  // `last` is the calling consumer's OWN per-source high-water mark: one
  // thread's successive takes from a source are mutex-serialized in program
  // order, and matching always hands out the source's earliest queued
  // message, so the sequences one consumer sees from one source must be
  // strictly increasing. (The interleaving of DIFFERENT consumers' takes is
  // not observable here — this bookkeeping runs after the mailbox unlock —
  // so no cross-thread order is asserted.)
  auto consume = [&](const Message& msg, std::vector<std::int64_t>& last) {
    ASSERT_GE(msg.source, 0);
    ASSERT_LT(msg.source, producers);
    const int idx = msg.source * per_producer + static_cast<int>(msg.sequence);
    EXPECT_EQ(seen[idx].fetch_add(1), 0) << "message delivered twice";
    EXPECT_LT(last[msg.source], static_cast<std::int64_t>(msg.sequence))
        << "per-source FIFO violated";
    last[msg.source] = static_cast<std::int64_t>(msg.sequence);
  };

  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      Lane& lane = box.lane_for_sender(p);
      for (int j = 0; j < per_producer; ++j) {
        Message m;
        m.source = p;
        m.tag = 3;
        m.comm_id = comm_id;
        m.sequence = static_cast<std::uint64_t>(j);
        m.payload = {static_cast<std::uint8_t>(j & 0xff)};
        if (lane.ring.try_push(std::move(m))) {
          lane.note_depth();
          box.notify_ring_push();
        } else {
          box.deliver(std::move(m));  // ring full: locked fallback, FIFO-safe
        }
      }
    });
  }
  for (int c = 0; c < 2; ++c) {  // wildcard receivers
    threads.emplace_back([&] {
      std::vector<std::int64_t> last(producers, -1);
      while (tickets.fetch_add(1) < total)
        consume(box.receive(comm_id, any_source, any_tag), last);
    });
  }
  for (int c = 0; c < 2; ++c) {  // probe-then-receive consumers
    threads.emplace_back([&] {
      std::vector<std::int64_t> last(producers, -1);
      while (tickets.fetch_add(1) < total) {
        const RecvStatus st = box.probe(comm_id, any_source, any_tag);
        // The reservation contract: the receive matching the probed envelope
        // completes immediately with the reserved message.
        auto ticket = box.post_recv(comm_id, st.source, st.tag);
        EXPECT_TRUE(box.test(ticket)) << "probed message was stolen";
        consume(box.wait(ticket), last);
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < total; ++i)
    ASSERT_EQ(seen[i].load(), 1) << "message " << i << " lost";
  EXPECT_EQ(box.queued(), 0u);
}

// --- tight deadlines under load ----------------------------------------------

TEST(Deadline, TightDeadlineHammerLosesNothing) {
  // Hammer recv_for with ~1 ms deadlines while a paced sender trickles
  // messages in and two other ranks generate scheduler load. Timeouts are
  // expected and fine; lost, duplicated or reordered messages are not. This
  // is the regression for the timeout/completion race: a ticket withdrawn at
  // the deadline edge must either carry its message out or leave it for the
  // next receive — never both, never neither.
  Environment::run(4, [](Comm& comm) {
    constexpr int n = 400;
    if (comm.rank() == 0) {
      int received = 0;
      int timeouts = 0;
      while (received < n) {
        RecvStatus st;
        const auto r =
            comm.recv_for(std::chrono::milliseconds{1}, 1, 1, &st);
        if (!r.has_value()) {
          ASSERT_EQ(r.error().code, Errc::timeout);
          ASSERT_LT(++timeouts, 200000) << "hammer stopped making progress";
          continue;
        }
        ASSERT_EQ(r->size(), sizeof(int));
        int v = 0;
        std::memcpy(&v, r->data(), sizeof(int));
        ASSERT_EQ(v, received) << "lost or reordered under deadline churn";
        ++received;
      }
      // Nothing left over: no message was delivered twice.
      EXPECT_FALSE(comm.iprobe(1, 1));
    } else if (comm.rank() == 1) {
      for (int i = 0; i < n; ++i) {
        comm.send_value<int>(0, 1, i);
        if ((i & 15) == 0)
          std::this_thread::sleep_for(std::chrono::microseconds{300});
      }
    } else {
      // Load generators: ranks 2 and 3 pingpong to keep the scheduler busy
      // while rank 0 races its deadlines.
      const int peer = comm.rank() == 2 ? 3 : 2;
      for (int i = 0; i < 1500; ++i) {
        if (comm.rank() == 2) {
          comm.send_value<int>(peer, 9, i);
          (void)comm.recv_value<int>(peer, 9);
        } else {
          const int v = comm.recv_value<int>(peer, 9);
          comm.send_value<int>(peer, 9, v);
        }
      }
    }
  });
}

// --- fault-plan delay outside the critical section ---------------------------

TEST(FaultPlan, DelaySleepsOutsideTheMailboxCriticalSection) {
  // A delayed send must stall only the sending rank's own stream. While the
  // sender sleeps, the receiver's mailbox stays fully operable: short-deadline
  // receives keep timing out promptly instead of blocking on a mutex the
  // sleeper holds. (Regression: the delay used to be injectable inside the
  // delivery path, where it would freeze every mailbox user for its whole
  // duration.)
  FaultPlan plan;
  plan.seed = 3;
  plan.delay_prob = 1.0;
  plan.delay = std::chrono::microseconds{60000};
  Environment::run(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          int timeouts = 0;
          for (;;) {
            const auto r = comm.recv_for(std::chrono::milliseconds{2}, 1, 1);
            if (r.has_value()) {
              EXPECT_EQ(r->front(), 42);
              break;
            }
            ++timeouts;
            ASSERT_LT(timeouts, 100000) << "delayed message never arrived";
          }
          // The 60 ms delay spans many 2 ms deadlines; if the sleeping sender
          // held the mailbox lock, the first recv_for would have blocked for
          // the full delay and no timeout could have been observed.
          EXPECT_GE(timeouts, 2);
        } else {
          comm.send(0, 1, {42});
        }
      },
      plan);
}

// --- zero-allocation steady state --------------------------------------------

TEST(ZeroAlloc, RingSelfLoopSteadyStateAllocatesNothing) {
  // One rank sends to itself and receives back, recycling the payload buffer
  // through the transport. After warmup (lane creation, pool carve, vector
  // growth) the ring path must be allocation-free: ring slots recycle payload
  // capacity, receives use stack tickets, nothing touches operator new.
  World world(1, TransportMode::ring);
  Comm comm(&world, world.allocate_comm_id(), 0, {0});
  std::vector<std::uint8_t> payload(64, 0xab);
  for (int i = 0; i < 512; ++i) {
    comm.send(0, 1, std::move(payload));
    payload = comm.recv(0, 1);
  }
  const std::uint64_t before = g_alloc_count.load();
  for (int i = 0; i < 4096; ++i) {
    comm.send(0, 1, std::move(payload));
    payload = comm.recv(0, 1);
  }
  EXPECT_EQ(g_alloc_count.load() - before, 0u);
  EXPECT_EQ(payload.size(), 64u);
}

TEST(ZeroAlloc, LockedSelfLoopSteadyStateAllocatesNothing) {
  // The locked fallback shares the pooled envelope store and intrusive
  // lists, so it too must run allocation-free once warm — the overflow route
  // does not silently reintroduce per-message heap traffic.
  World world(1, TransportMode::locked);
  Comm comm(&world, world.allocate_comm_id(), 0, {0});
  std::vector<std::uint8_t> payload(64, 0xcd);
  for (int i = 0; i < 512; ++i) {
    comm.send(0, 1, std::move(payload));
    payload = comm.recv(0, 1);
  }
  const std::uint64_t before = g_alloc_count.load();
  for (int i = 0; i < 4096; ++i) {
    comm.send(0, 1, std::move(payload));
    payload = comm.recv(0, 1);
  }
  EXPECT_EQ(g_alloc_count.load() - before, 0u);
}

}  // namespace
}  // namespace mm::mpi
