// Message envelope and wildcard constants for the mpmini runtime.
//
// mpmini is this repository's stand-in for MPI (none is installed in the
// build environment): ranks are threads inside one process, and messages move
// between per-rank mailboxes with MPI envelope-matching semantics — a message
// is addressed by (communicator, destination) and matched on (source, tag),
// with per-(source, comm) FIFO non-overtaking order, exactly the guarantees
// the MarketMiner DAG workflow relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"

namespace mm::mpi {

// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int any_source = -1;
inline constexpr int any_tag = -1;

// Tags at or above this value are reserved for internal use (collectives).
// User code must use tags in [0, reserved_tag_base).
inline constexpr int reserved_tag_base = 1 << 24;

// Delivery envelope plus payload. Payloads are raw bytes; typed access goes
// through serde.hpp (Packer/Unpacker) or the trivially-copyable helpers on
// Comm.
struct Message {
  int source = any_source;
  int tag = any_tag;
  std::uint64_t comm_id = 0;
  std::uint64_t sequence = 0;  // per-(source, comm) counter; enforces FIFO order
#if MM_OBS_ENABLED
  // Causal trace header (packed extension, no heap): the sender's TraceContext
  // trace id plus the flow-event id linking the send span to the recv span.
  // 0/0 means untraced. Travels intact through the SPSC lane rings and the
  // pooled-envelope path because both recycle slots by whole-Message
  // assignment. Compiled out entirely (zero bytes) when MM_OBS_ENABLED=OFF.
  std::uint64_t trace_id = 0;
  std::uint32_t flow = 0;
#endif
  std::vector<std::uint8_t> payload;
};

// Result of a completed receive or probe, mirroring MPI_Status.
struct RecvStatus {
  int source = any_source;
  int tag = any_tag;
  std::size_t byte_count = 0;
#if MM_OBS_ENABLED
  // Trace header of the received message (0/0 when untraced), so consumers
  // (dagflow) can adopt the sender's causal context without re-parsing.
  std::uint64_t trace_id = 0;
  std::uint32_t flow = 0;
#endif
};

}  // namespace mm::mpi
