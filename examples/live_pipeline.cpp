// Live pipeline: the Fig. 1 graph fed by a paced "live" feed.
//
// Replays a synthetic day through a ThrottledFeed at a configurable speedup
// (e.g. 2340x plays the 6.5-hour session in ten seconds), streaming quotes
// through collector -> cleaner -> snapshot -> correlation -> strategies ->
// master exactly as a real-time deployment would, and prints the master's
// basket summary at the end.
//
//   $ ./live_pipeline [--symbols 8] [--speedup 23400] [--workers 3]
#include <cstdio>

#include "common/cli.hpp"
#include "engine/messages.hpp"
#include "engine/pipeline.hpp"
#include "marketdata/feed.hpp"
#include "marketdata/generator.hpp"

int main(int argc, char** argv) {
  using namespace mm;
  Cli cli("live_pipeline", "Stream a paced synthetic feed through the Fig. 1 graph");
  auto& symbols = cli.add_int("symbols", 8, "universe size");
  auto& speedup = cli.add_double("speedup", 23400.0,
                                 "replay speedup (23400 = full day in 1 s)");
  auto& workers = cli.add_int("workers", 3, "strategy worker nodes");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(symbols);
  const auto universe = md::make_universe(n);
  md::GeneratorConfig gen;
  gen.seed = static_cast<std::uint64_t>(seed);
  gen.quote_rate = 0.3;
  const md::SyntheticDay day(universe, gen, 0);

  // Drain the throttled feed into the ordered stream the collector emits.
  // (The pacing happens here, ahead of the pipeline, so the pipeline itself
  // sees a live-rate stream; this is exactly what the Live Collector does.)
  md::ThrottledFeed feed(std::make_unique<md::VectorFeed>(day.quotes()), speedup);
  std::vector<md::Quote> live_stream;
  live_stream.reserve(day.quotes().size());
  std::printf("replaying %zu quotes at %.0fx...\n", day.quotes().size(), speedup);
  while (auto q = feed.next()) live_stream.push_back(*q);

  engine::PipelineConfig cfg;
  cfg.symbols = n;
  cfg.batch_size = 64;  // smaller batches: lower latency, live-feed style
  const auto all = core::ParamGrid().all();
  for (const auto& p : all) {
    if (p.corr_window != 100) continue;
    cfg.strategies.push_back(p);
    if (static_cast<std::int64_t>(cfg.strategies.size()) >= workers) break;
  }

  const auto result = engine::run_pipeline(cfg, universe, live_stream);

  std::printf("\npipeline processed %llu quotes in %.2f s (%.0f quotes/s)\n",
              static_cast<unsigned long long>(result.quotes_in), result.wall_seconds,
              result.quotes_per_second);
  std::printf("strategies: %zu workers sharing one correlation engine\n",
              cfg.strategies.size());
  std::printf("orders: %llu in %llu interval baskets; %llu round trips, "
              "total pnl $%.2f\n",
              static_cast<unsigned long long>(result.master.orders),
              static_cast<unsigned long long>(result.master.basket_count),
              static_cast<unsigned long long>(result.master.trades),
              result.master.total_pnl);
  if (!result.master.trade_returns.empty()) {
    double best = result.master.trade_returns[0], worst = best;
    for (double r : result.master.trade_returns) {
      best = std::max(best, r);
      worst = std::min(worst, r);
    }
    std::printf("trade returns: best %+.3f%%, worst %+.3f%%\n", best * 100.0,
                worst * 100.0);
  }
  return 0;
}
