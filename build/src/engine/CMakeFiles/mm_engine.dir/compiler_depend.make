# Empty compiler generated dependencies file for mm_engine.
# This may be replaced when dependencies are built.
