#include "marketdata/bars.hpp"

#include <cmath>

namespace mm::md {

BamSampler::BamSampler(std::size_t symbol_count, const Session& session,
                       std::int64_t delta_s)
    : session_(session),
      delta_s_(delta_s),
      smax_(session.interval_count(delta_s)),
      last_bam_(symbol_count, 0.0),
      have_(symbol_count, false) {
  MM_ASSERT(delta_s > 0);
}

void BamSampler::observe(const Quote& quote) {
  MM_ASSERT_MSG(quote.symbol < last_bam_.size(), "BamSampler: unknown symbol");
  if (!session_.contains(quote.ts_ms)) return;
  last_bam_[quote.symbol] = quote.bam();
  have_[quote.symbol] = true;
}

std::optional<double> BamSampler::sample(SymbolId symbol, std::int64_t) const {
  MM_ASSERT(symbol < last_bam_.size());
  if (!have_[symbol]) return std::nullopt;
  return last_bam_[symbol];
}

std::vector<std::optional<double>> BamSampler::sample_all(std::int64_t s) const {
  std::vector<std::optional<double>> out(last_bam_.size());
  for (SymbolId i = 0; i < last_bam_.size(); ++i) out[i] = sample(i, s);
  return out;
}

std::vector<std::vector<double>> sample_bam_series(const std::vector<Quote>& quotes,
                                                   std::size_t symbol_count,
                                                   const Session& session,
                                                   std::int64_t delta_s) {
  const std::int64_t smax = session.interval_count(delta_s);
  std::vector<std::vector<double>> series(
      symbol_count, std::vector<double>(static_cast<std::size_t>(smax), 0.0));
  std::vector<double> last(symbol_count, 0.0);
  std::vector<bool> have(symbol_count, false);
  std::vector<std::int64_t> first_quote_interval(symbol_count, smax);

  std::size_t qi = 0;
  for (std::int64_t s = 0; s < smax; ++s) {
    const TimeMs end = session.interval_end(s, delta_s);
    for (; qi < quotes.size() && quotes[qi].ts_ms < end; ++qi) {
      const Quote& q = quotes[qi];
      if (q.symbol >= symbol_count || !session.contains(q.ts_ms)) continue;
      last[q.symbol] = q.bam();
      if (!have[q.symbol]) {
        have[q.symbol] = true;
        first_quote_interval[q.symbol] = s;
      }
    }
    for (std::size_t i = 0; i < symbol_count; ++i)
      series[i][static_cast<std::size_t>(s)] = last[i];
  }

  // Backfill the stretch before a symbol's first quote with its first price,
  // so log-returns there are zero instead of undefined.
  for (std::size_t i = 0; i < symbol_count; ++i) {
    MM_ASSERT_MSG(have[i], "sample_bam_series: symbol never quoted");
    const auto first = static_cast<std::size_t>(first_quote_interval[i]);
    for (std::size_t s = 0; s < first; ++s) series[i][s] = series[i][first];
  }
  return series;
}

BarAccumulator::BarAccumulator(std::size_t symbol_count, const Session& session,
                               std::int64_t delta_s)
    : session_(session), delta_s_(delta_s), working_(symbol_count) {
  MM_ASSERT(delta_s > 0);
}

std::optional<Bar> BarAccumulator::roll(Working& w, std::int64_t new_interval,
                                        SymbolId symbol) {
  std::optional<Bar> finished;
  if (w.active && w.interval != new_interval) {
    finished = w.bar;
    w.active = false;
  }
  if (!w.active) {
    w.interval = new_interval;
    w.bar = Bar{};
    w.bar.symbol = symbol;
    w.bar.start_ms = session_.interval_start(new_interval, delta_s_);
    w.bar.end_ms = session_.interval_end(new_interval, delta_s_);
  }
  return finished;
}

std::optional<Bar> BarAccumulator::observe(const Quote& quote) {
  MM_ASSERT_MSG(quote.symbol < working_.size(), "BarAccumulator: unknown symbol");
  const std::int64_t s = session_.interval_of(quote.ts_ms, delta_s_);
  if (s < 0) return std::nullopt;

  Working& w = working_[quote.symbol];
  auto finished = roll(w, s, quote.symbol);

  const double price = quote.bam();
  Bar& bar = w.bar;
  if (bar.tick_count == 0) {
    bar.open = bar.high = bar.low = bar.close = price;
  } else {
    bar.high = std::max(bar.high, price);
    bar.low = std::min(bar.low, price);
    bar.close = price;
  }
  bar.tick_count += 1;
  w.active = true;
  return finished;
}

std::vector<Bar> BarAccumulator::flush() {
  std::vector<Bar> out;
  for (auto& w : working_) {
    if (w.active && w.bar.tick_count > 0) out.push_back(w.bar);
    w.active = false;
  }
  return out;
}

TradeBarAccumulator::TradeBarAccumulator(std::size_t symbol_count,
                                         const Session& session, std::int64_t delta_s)
    : session_(session), delta_s_(delta_s), working_(symbol_count) {
  MM_ASSERT(delta_s > 0);
}

std::optional<Bar> TradeBarAccumulator::observe(const Trade& trade) {
  MM_ASSERT_MSG(trade.symbol < working_.size(), "TradeBarAccumulator: unknown symbol");
  const std::int64_t s = session_.interval_of(trade.ts_ms, delta_s_);
  if (s < 0) return std::nullopt;

  Working& w = working_[trade.symbol];
  std::optional<Bar> finished;
  if (w.active && w.interval != s) {
    finished = w.bar;
    w.active = false;
  }
  if (!w.active) {
    w.interval = s;
    w.bar = Bar{};
    w.bar.symbol = trade.symbol;
    w.bar.start_ms = session_.interval_start(s, delta_s_);
    w.bar.end_ms = session_.interval_end(s, delta_s_);
  }

  Bar& bar = w.bar;
  if (bar.tick_count == 0) {
    bar.open = bar.high = bar.low = bar.close = trade.price;
  } else {
    bar.high = std::max(bar.high, trade.price);
    bar.low = std::min(bar.low, trade.price);
    bar.close = trade.price;
  }
  bar.tick_count += 1;
  bar.volume += trade.size;
  w.active = true;
  return finished;
}

std::vector<Bar> TradeBarAccumulator::flush() {
  std::vector<Bar> out;
  for (auto& w : working_) {
    if (w.active && w.bar.tick_count > 0) out.push_back(w.bar);
    w.active = false;
  }
  return out;
}

std::vector<double> log_returns(const std::vector<double>& prices) {
  std::vector<double> out;
  if (prices.size() < 2) return out;
  out.reserve(prices.size() - 1);
  for (std::size_t t = 1; t < prices.size(); ++t) {
    MM_ASSERT_MSG(prices[t] > 0.0 && prices[t - 1] > 0.0,
                  "log_returns: non-positive price");
    out.push_back(std::log(prices[t] / prices[t - 1]));
  }
  return out;
}

}  // namespace mm::md
