// Quote feeds: the pipeline's data-adapter abstraction (Fig. 1's collectors).
//
// A QuoteFeed yields time-ordered quotes one at a time. Implementations:
//   * VectorFeed   — replay an in-memory day (what the Live Collector sees);
//   * MergingFeed  — k-way merge of several feeds by timestamp, modelling the
//                    consolidated view across "Live Data Feed 1 / 2 / files";
//   * ThrottledFeed— wraps a feed and simulates wall-clock pacing at a given
//                    speedup (for the live-pipeline example).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "marketdata/types.hpp"

namespace mm::md {

class QuoteFeed {
 public:
  virtual ~QuoteFeed() = default;

  // Next quote in time order, or nullopt at end of stream.
  virtual std::optional<Quote> next() = 0;
};

class VectorFeed final : public QuoteFeed {
 public:
  explicit VectorFeed(std::vector<Quote> quotes) : quotes_(std::move(quotes)) {}

  std::optional<Quote> next() override {
    if (index_ >= quotes_.size()) return std::nullopt;
    return quotes_[index_++];
  }

 private:
  std::vector<Quote> quotes_;
  std::size_t index_ = 0;
};

// Merges several time-ordered feeds into one time-ordered stream. Ties are
// broken by feed index (stable).
class MergingFeed final : public QuoteFeed {
 public:
  explicit MergingFeed(std::vector<std::unique_ptr<QuoteFeed>> feeds);

  std::optional<Quote> next() override;

 private:
  std::vector<std::unique_ptr<QuoteFeed>> feeds_;
  std::vector<std::optional<Quote>> heads_;
};

// Replays an underlying feed paced to quote timestamps divided by `speedup`
// (e.g. speedup = 390 plays a full session in one minute). Pacing is relative
// to the first quote.
class ThrottledFeed final : public QuoteFeed {
 public:
  ThrottledFeed(std::unique_ptr<QuoteFeed> inner, double speedup);

  std::optional<Quote> next() override;

 private:
  std::unique_ptr<QuoteFeed> inner_;
  double speedup_;
  bool started_ = false;
  TimeMs first_ts_ = 0;
  std::int64_t start_wall_us_ = 0;
};

}  // namespace mm::md
