# Empty compiler generated dependencies file for repro_baseline_distance.
# This may be replaced when dependencies are built.
