// Tests for the deterministic RNG: reproducibility and distribution sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace mm {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntUnbiasedRange) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) {
    // Each bucket expects 10000; allow 5 sigma (~±475).
    EXPECT_NEAR(c, draws / 10, 500);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(42);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0, sum4 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
    sum3 += x * x * x;
    sum4 += x * x * x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
  EXPECT_NEAR(sum3 / n, 0.0, 0.05);
  EXPECT_NEAR(sum4 / n, 3.0, 0.1);  // normal kurtosis
}

TEST(Rng, NormalShiftScale) {
  Rng rng(42);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(3);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, StudentTSymmetricFatTails) {
  Rng rng(9);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0, sum4 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.student_t(5.0);
    sum += x;
    sum2 += x * x;
    sum4 += x * x * x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  // Var of t(5) = 5/3.
  EXPECT_NEAR(var, 5.0 / 3.0, 0.1);
  // Kurtosis of t(5) = 9 — clearly fat-tailed vs the normal's 3.
  const double kurt = (sum4 / n) / (var * var);
  EXPECT_GT(kurt, 5.0);
}

TEST(Rng, ReseedResetsStream) {
  Rng rng(100);
  const auto a = rng.next_u64();
  rng.reseed(100);
  EXPECT_EQ(rng.next_u64(), a);
}

TEST(Splitmix, ProducesDistinctStreamSeeds) {
  std::uint64_t state = 42;
  const auto a = splitmix64(state);
  const auto b = splitmix64(state);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mm
