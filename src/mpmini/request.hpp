// Non-blocking operation handle, mirroring MPI_Request.
//
// isend in mpmini is buffered (the payload is copied into the destination
// mailbox at call time), so send requests are born complete; receive requests
// complete when a matching message is delivered.
#pragma once

#include <memory>

#include "common/error.hpp"
#include "mpmini/mailbox.hpp"

namespace mm::mpi {

class Request {
 public:
  Request() = default;

  // Born-complete request (isend).
  static Request completed() {
    Request r;
    r.send_complete_ = true;
    return r;
  }

  // Receive request backed by a mailbox ticket.
  static Request receiving(Mailbox* mailbox, std::shared_ptr<RecvTicket> ticket) {
    Request r;
    r.mailbox_ = mailbox;
    r.ticket_ = std::move(ticket);
    return r;
  }

  bool valid() const { return send_complete_ || ticket_ != nullptr; }

  // True once the operation has completed (always true for sends).
  bool test() {
    if (send_complete_) return true;
    MM_ASSERT_MSG(ticket_ != nullptr, "test() on an empty Request");
    return mailbox_->test(ticket_);
  }

  // Block until complete; returns the received message (empty for sends).
  Message wait() {
    if (send_complete_) return {};
    MM_ASSERT_MSG(ticket_ != nullptr, "wait() on an empty Request");
    Message msg = mailbox_->wait(ticket_);
    send_complete_ = true;  // mark consumed
    ticket_.reset();
    return msg;
  }

  // Deadline wait: the message, or Errc::timeout if the operation has not
  // completed in time. On timeout the request stays valid — wait again,
  // wait_for again, or drop it (a dropped receive request stays posted).
  Expected<Message> wait_for(std::chrono::milliseconds timeout) {
    if (send_complete_) return Message{};
    MM_ASSERT_MSG(ticket_ != nullptr, "wait_for() on an empty Request");
    if (!mailbox_->wait_for(ticket_, timeout))
      return Error(Errc::timeout, "Request::wait_for: not complete within deadline");
    Message msg = mailbox_->wait(ticket_);  // returns immediately: ticket is done
    send_complete_ = true;
    ticket_.reset();
    return msg;
  }

 private:
  Mailbox* mailbox_ = nullptr;
  std::shared_ptr<RecvTicket> ticket_;
  bool send_complete_ = false;
};

// Block until every request completes; returns their messages in order
// (empty messages for sends), mirroring MPI_Waitall.
inline std::vector<Message> wait_all(std::vector<Request>& requests) {
  std::vector<Message> out;
  out.reserve(requests.size());
  for (auto& r : requests) out.push_back(r.wait());
  return out;
}

// Block until at least one request completes; returns its index and message,
// mirroring MPI_Waitany. Completed-and-consumed requests must not be passed
// again. Polls with exponential backoff (mpmini has no unified wait queue).
std::size_t wait_any(std::vector<Request>& requests, Message* message);

}  // namespace mm::mpi
