// Tests for the symbol table and built-in universe.
#include <gtest/gtest.h>

#include <set>

#include "marketdata/symbols.hpp"

namespace mm::md {
namespace {

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable t;
  const auto a = t.intern("MSFT");
  const auto b = t.intern("IBM");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.intern("MSFT"), a);
  EXPECT_EQ(t.size(), 2u);
}

TEST(SymbolTable, LookupAndName) {
  SymbolTable t;
  const auto id = t.intern("ORCL");
  EXPECT_EQ(t.lookup("ORCL"), id);
  EXPECT_EQ(t.lookup("ZZZZ"), invalid_symbol);
  EXPECT_EQ(t.name(id), "ORCL");
}

TEST(DefaultUniverse, HasExactly61Symbols) {
  // The paper's experiment trades 61 highly liquid US stocks.
  EXPECT_EQ(default_universe().size(), 61u);
}

TEST(DefaultUniverse, TickersUniqueAndPricesPositive) {
  std::set<std::string> seen;
  for (const auto& e : default_universe()) {
    EXPECT_TRUE(seen.insert(e.ticker).second) << "duplicate ticker " << e.ticker;
    EXPECT_GT(e.price_2008, 0.0);
  }
}

TEST(DefaultUniverse, ContainsTableIISymbols) {
  // Table II's sample rows show NVDA, ORCL, SLB, TWX and BK.
  std::set<std::string> tickers;
  for (const auto& e : default_universe()) tickers.insert(e.ticker);
  for (const char* name : {"NVDA", "ORCL", "SLB", "TWX", "BK"})
    EXPECT_TRUE(tickers.count(name)) << name;
}

TEST(MakeUniverse, SubsetsAreConsistent) {
  const auto u = make_universe(10);
  EXPECT_EQ(u.table.size(), 10u);
  EXPECT_EQ(u.sector.size(), 10u);
  EXPECT_EQ(u.base_price.size(), 10u);
  for (int g : u.sector) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, static_cast<int>(u.sector_names.size()));
  }
}

TEST(MakeUniverse, FullUniverseCoversAllSectors) {
  const auto u = make_universe(61);
  EXPECT_EQ(u.sector_names.size(), 7u);  // tech/financial/energy/consumer/
                                         // industrial/health/media
  // Every sector has at least two members so every symbol has a potential
  // fundamental pair.
  std::vector<int> counts(u.sector_names.size(), 0);
  for (int g : u.sector) ++counts[static_cast<std::size_t>(g)];
  for (int c : counts) EXPECT_GE(c, 2);
}

TEST(MakeUniverse, SameSectorSharedAcrossSizes) {
  const auto small = make_universe(12);
  const auto big = make_universe(61);
  for (SymbolId i = 0; i < 12; ++i)
    EXPECT_EQ(small.table.name(i), big.table.name(i));
}

TEST(MakeUniverse, ScalesPastBuiltinsWithSyntheticSymbols) {
  constexpr std::size_t n = 2000;
  const auto u = make_universe(n);
  ASSERT_EQ(u.table.size(), n);
  ASSERT_EQ(u.sector.size(), n);
  ASSERT_EQ(u.base_price.size(), n);

  // Built-ins stay put; the extension is uniquely named and sanely priced.
  EXPECT_EQ(u.table.name(0), "MSFT");
  EXPECT_EQ(u.table.name(61), "SYN00061");
  std::set<std::string> tickers;
  for (SymbolId i = 0; i < n; ++i) {
    tickers.insert(u.table.name(i));
    EXPECT_GT(u.base_price[i], 0.0) << i;
    if (i >= 61) {  // synthetics draw from the hash-derived [5, 150] range
      EXPECT_GE(u.base_price[i], 5.0) << i;
      EXPECT_LE(u.base_price[i], 150.0) << i;
    }
    EXPECT_GE(u.sector[i], 0);
    EXPECT_LT(u.sector[i], static_cast<int>(u.sector_names.size()));
  }
  EXPECT_EQ(tickers.size(), n);  // no collisions

  // Synthetic sectors group 25 consecutive names.
  EXPECT_EQ(u.sector[61], u.sector[85]);
  EXPECT_NE(u.sector[61], u.sector[86]);
  const auto base_sectors = make_universe(61).sector_names.size();
  EXPECT_EQ(u.sector_names.size(), base_sectors + (n - 61 + 24) / 25);
}

TEST(MakeUniverse, LargerUniverseIsPrefixStable) {
  const auto small = make_universe(100);
  const auto big = make_universe(3000);
  for (SymbolId i = 0; i < 100; ++i) {
    EXPECT_EQ(small.table.name(i), big.table.name(i));
    EXPECT_EQ(small.sector[i], big.sector[i]);
    EXPECT_EQ(small.base_price[i], big.base_price[i]);
  }
}

}  // namespace
}  // namespace mm::md
