# Empty compiler generated dependencies file for bench_backtest.
# This may be replaced when dependencies are built.
