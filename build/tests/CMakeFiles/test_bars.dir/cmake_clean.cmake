file(REMOVE_RECURSE
  "CMakeFiles/test_bars.dir/test_bars.cpp.o"
  "CMakeFiles/test_bars.dir/test_bars.cpp.o.d"
  "test_bars"
  "test_bars.pdb"
  "test_bars[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
