// Baseline comparison: the canonical correlation-divergence strategy (§III)
// vs the classical Gatev distance method ([1]) on identical synthetic days.
//
// The paper positions its approach against the older literature; this driver
// quantifies the contrast: the correlation strategy monitors every pair every
// interval (enabled by the parallel correlation engine), while the distance
// method freezes a formation profile and trades only its pre-selected pairs.
#include <cstdio>

#include "common/cli.hpp"
#include "core/backtester.hpp"
#include "core/distance.hpp"
#include "core/metrics.hpp"
#include "marketdata/bars.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"

int main(int argc, char** argv) {
  using namespace mm;
  Cli cli("repro_baseline_distance",
          "Canonical correlation strategy vs the Gatev distance baseline");
  auto& symbols = cli.add_int("symbols", 16, "universe size");
  auto& days = cli.add_int("days", 3, "trading days");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(symbols);
  const auto universe = md::make_universe(n);

  core::StrategyParams corr_params = core::ParamGrid::base();
  corr_params.divergence = 0.0005;
  core::DistanceParams dist_params;
  dist_params.top_pairs = n;  // as many pairs as symbols, Gatev's convention

  double corr_total = 0.0, dist_total = 0.0;
  std::uint64_t corr_trades = 0, dist_trades = 0;
  std::uint64_t corr_pairs_traded = 0, dist_pairs_selected = 0;

  for (int d = 0; d < days; ++d) {
    md::GeneratorConfig gen;
    gen.seed = static_cast<std::uint64_t>(seed);
    const md::SyntheticDay day(universe, gen, d);
    md::QuoteCleaner cleaner(n, md::CleanerConfig{});
    const auto bam =
        md::sample_bam_series(cleaner.clean(day.quotes()), n, gen.session, 30);
    const auto pairs = stats::all_pairs(n);

    // Canonical strategy: every pair, shared correlation series.
    const auto market =
        core::compute_market_corr_series(bam, corr_params.corr_window, false);
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      const auto trades = core::run_pair_day(corr_params, bam[pairs[k].i],
                                             bam[pairs[k].j], market, k);
      if (!trades.empty()) ++corr_pairs_traded;
      std::vector<double> returns;
      for (const auto& t : trades) returns.push_back(t.trade_return);
      corr_total += core::cumulative_return(returns);
      corr_trades += trades.size();
    }

    // Distance method: formation on the first half, trade the second half.
    const auto formation = core::distance_formation(bam, dist_params);
    dist_pairs_selected += formation.selected.size();
    for (const auto& profile : formation.selected) {
      const auto trades = core::run_distance_pair_day(
          dist_params, profile, bam[profile.pair.i], bam[profile.pair.j],
          formation.anchors[profile.pair.i], formation.anchors[profile.pair.j]);
      std::vector<double> returns;
      for (const auto& t : trades) returns.push_back(t.trade_return);
      dist_total += core::cumulative_return(returns);
      dist_trades += trades.size();
    }
  }

  const auto pair_count = static_cast<double>(stats::all_pairs(n).size() * days);
  std::printf("baseline comparison — %zu symbols, %lld day(s)\n\n", n,
              static_cast<long long>(days));
  std::printf("  %-34s %10s %12s %14s\n", "strategy", "trades", "pairs",
              "sum daily ret");
  std::printf("  %-34s %10llu %12llu %13.2f%%\n",
              "correlation divergence (this paper)",
              static_cast<unsigned long long>(corr_trades),
              static_cast<unsigned long long>(corr_pairs_traded),
              corr_total * 100.0);
  std::printf("  %-34s %10llu %12llu %13.2f%%\n", "distance method (Gatev [1])",
              static_cast<unsigned long long>(dist_trades),
              static_cast<unsigned long long>(dist_pairs_selected),
              dist_total * 100.0);
  std::printf("\n(correlation strategy monitors all %.0f pair-days; the distance\n"
              "method pre-selects ~%zu pairs per day and trades at most once per\n"
              "divergence — fewer, longer trades. The paper's §I case for the\n"
              "market-wide brute-force search is that it misses nothing.)\n",
              pair_count, static_cast<std::size_t>(dist_params.top_pairs));
  return 0;
}
