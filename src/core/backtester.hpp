// Backtesting engines: per-pair day runs and correlation-series production.
//
// Two compute paths, mirroring the paper's §IV:
//
//   * "Approach 2" (ScalarBacktester path): compute_pair_corr_series —
//     recomputes one pair's correlation time series from scratch with batch
//     estimators. Cost O(smax · M) per pair for Pearson and O(smax · M ·
//     iterations) for Maronna, paid again for every pair and every parameter
//     set. This is the deliberately naive Matlab-equivalent baseline.
//
//   * "Approach 3" (integrated path): compute_market_corr_series — one pass
//     of the incremental market-wide calculator produces Pearson AND Maronna
//     series for ALL pairs simultaneously; every strategy parameter set that
//     shares (∆s, M) reuses them. This is the amortization that makes the
//     brute-force parameter sweep feasible.
//
// run_pair_day() then drives the PairStrategy state machine over the series.
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "core/strategy.hpp"
#include "stats/correlation.hpp"
#include "stats/sym_matrix.hpp"

namespace mm::core {

// One pair's correlation coefficients across a day: values[s] is C(s),
// valid for s >= first_valid (the window needs M returns; returns start at
// interval 1, so first_valid == M).
struct CorrSeries {
  std::int64_t first_valid = 0;
  std::vector<double> values;

  bool valid_at(std::int64_t s) const {
    return s >= first_valid && s < static_cast<std::int64_t>(values.size());
  }
};

// Per-pair recomputation with batch estimators (Approach 2).
CorrSeries compute_pair_corr_series(const std::vector<double>& prices_i,
                                    const std::vector<double>& prices_j,
                                    stats::Ctype ctype, std::int64_t corr_window,
                                    const stats::MaronnaConfig& maronna_config = {});

// Market-wide series for every pair in canonical (i < j) order, produced in
// one incremental pass (Approach 3). Pearson always; Maronna only when
// `need_maronna` (it dominates the cost).
struct MarketCorrSeries {
  std::int64_t first_valid = 0;
  std::int64_t smax = 0;
  std::size_t symbols = 0;
  bool has_maronna = false;
  // [pair][s]; entries below first_valid are 0.
  std::vector<std::vector<double>> pearson;
  std::vector<std::vector<double>> maronna;

  // C(s) for pair index k under the requested measure (Combined derives from
  // the other two).
  double at(stats::Ctype ctype, std::size_t pair_index, std::int64_t s) const;
};

// `warm_maronna` seeds each pair's Maronna fixed point from its previous
// step's converged estimate (stats::WarmMaronna): typically 3×+ faster, and
// accurate to the convergence tolerance rather than bit-for-bit — so it is
// opt-in; the default reproduces the batch estimator exactly.
MarketCorrSeries compute_market_corr_series(
    const std::vector<std::vector<double>>& bam, std::int64_t corr_window,
    bool need_maronna, const stats::MaronnaConfig& maronna_config = {},
    bool warm_maronna = false);

// Shard variant: series only for `pairs` (any subset, output in that order).
// The incremental window state is market-wide either way; only the per-pair
// estimation loop is restricted — this is the unit the parallel ranks own.
// Warm-start state is per pair, so shard outputs are independent of the
// sharding.
MarketCorrSeries compute_market_corr_series(
    const std::vector<std::vector<double>>& bam, std::int64_t corr_window,
    bool need_maronna, const stats::MaronnaConfig& maronna_config,
    const std::vector<stats::PairIndex>& pairs, bool warm_maronna = false);

// Drive one pair's strategy across one day. `corr(s)` is looked up in the
// series; intervals before first_valid step the machine with corr_valid =
// false so its price windows still warm up.
std::vector<Trade> run_pair_day(const StrategyParams& params,
                                const std::vector<double>& prices_i,
                                const std::vector<double>& prices_j,
                                const CorrSeries& corr);

// Same, but reading from a MarketCorrSeries (no per-pair copy).
std::vector<Trade> run_pair_day(const StrategyParams& params,
                                const std::vector<double>& prices_i,
                                const std::vector<double>& prices_j,
                                const MarketCorrSeries& market,
                                std::size_t pair_index);

}  // namespace mm::core
